#!/usr/bin/env bash
# Canonical tier-1 verification: hermetic build + full test suite + format
# check, entirely offline. Referenced from ROADMAP.md; CI and pre-merge
# checks should run exactly this.
set -euo pipefail

cd "$(dirname "$0")/.."

# Warnings are errors: the workspace must build clean.
export RUSTFLAGS="-D warnings"

echo "==> checking for stray proptest-regressions files"
if regressions=$(find . -path ./target -prune -o -name '*.proptest-regressions' -print | grep .); then
    echo "error: stale proptest-regressions files checked in:" >&2
    echo "$regressions" >&2
    echo "The in-repo props! harness replays via OMT_PROP_SEED instead;" >&2
    echo "fix the failure and delete the file." >&2
    exit 1
fi

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

# The churn fuzz validates the dynamic overlay after every membership
# event and proves the sharded batch engine bit-identical to it; run it
# in release so the every-event snapshot checks stay cheap, with
# OMT_THREADS=4 so the sharded phase-A speculation actually runs on
# multiple workers (output is identical for every thread count — that is
# part of what the suite asserts).
echo "==> OMT_THREADS=4 cargo test -q --release --offline -p omt-core --test churn_fuzz"
OMT_THREADS=4 cargo test -q --release --offline -p omt-core --test churn_fuzz

# The hierarchical capacity index must answer every best-parent search
# bit-identically to the per-cell scan; the parity suite proves it
# differentially per degree and churn schedule and audits the prune log
# against brute force. OMT_THREADS=4 matches the churn suite above.
echo "==> OMT_THREADS=4 cargo test -q --release --offline -p omt-geom --test hgrid_parity"
OMT_THREADS=4 cargo test -q --release --offline -p omt-geom --test hgrid_parity

# The decentralized protocol's acceptance pair: differential parity
# against the centralized builder plus the fault-injection fuzz
# campaigns, in release so the 10k-host legs stay fast. OMT_THREADS=4
# pins the ambient thread count the suites assume (the protocol engine
# itself is deterministic for any value — that is part of the contract).
echo "==> OMT_THREADS=4 cargo test -q --release --offline -p omt-proto"
OMT_THREADS=4 cargo test -q --release --offline -p omt-proto

# API docs are part of the contract: the library crates deny
# missing_docs, and this build additionally fails on any rustdoc
# warning (broken intra-doc links, bad code fences). CI's docs job runs
# the same command plus the doctests.
echo "==> RUSTDOCFLAGS='-D warnings' cargo doc --no-deps --offline --workspace"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
