#!/usr/bin/env bash
# Canonical tier-1 verification: hermetic build + full test suite + format
# check, entirely offline. Referenced from ROADMAP.md; CI and pre-merge
# checks should run exactly this.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
