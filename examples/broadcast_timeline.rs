//! Broadcast timeline: watch one packet propagate through the tree under a
//! realistic transmission model — per-copy serialization cost, per-hop
//! processing, link jitter — and see what a few crashed relays do to
//! coverage.
//!
//! ```text
//! cargo run --release --example broadcast_timeline
//! ```

use omt_rng::rngs::SmallRng;
use omt_rng::{RngExt, SeedableRng};
use overlay_multicast::algo::PolarGridBuilder;
use overlay_multicast::baselines::star_tree;
use overlay_multicast::geom::{Disk, Point2, Region};
use overlay_multicast::sim::{simulate, simulate_with_failures, simulate_with_rng, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(5);
    let hosts = Disk::unit().sample_n(&mut rng, 5_000);
    let tree = PolarGridBuilder::new().build(Point2::ORIGIN, &hosts)?;
    let star = star_tree(Point2::ORIGIN, &hosts)?;

    // Transmission model: each forwarded copy costs 2 ms of uplink time,
    // 0.5 ms processing per hop, up to 1 ms of jitter per link (delays in
    // the same unit as the unit-disk distances, scaled for illustration).
    let cfg = SimConfig {
        serialization_delay: 0.002,
        processing_delay: 0.0005,
        jitter: 0.001,
        ..SimConfig::default()
    };
    let run = simulate_with_rng(&tree, &cfg, &mut rng);
    println!("degree-6 tree over {} hosts:", tree.len());
    println!("  geometric radius:   {:.4}", tree.radius());
    println!("  simulated makespan: {:.4}", run.makespan);
    println!("  mean arrival:       {:.4}", run.mean_arrival);

    // Delivery-time histogram (deciles).
    let mut arrivals = run.arrival.clone();
    arrivals.sort_by(f64::total_cmp);
    print!("  arrival deciles:   ");
    for d in 1..=9 {
        print!(" {:.3}", arrivals[arrivals.len() * d / 10]);
    }
    println!();

    // The star pays the serialization bill at the source.
    let star_run = simulate(
        &star,
        &SimConfig {
            serialization_delay: 0.002,
            processing_delay: 0.0005,
            ..SimConfig::default()
        },
    );
    println!(
        "unconstrained star makespan: {:.4} ({}x worse)",
        star_run.makespan,
        (star_run.makespan / run.makespan) as u32
    );

    // Crash 1% of the relays and measure coverage.
    let n = tree.len();
    let failed: Vec<usize> = (0..n).filter(|_| rng.random::<f64>() < 0.01).collect();
    let report = simulate_with_failures(&tree, &failed);
    println!(
        "\nafter crashing {} hosts: {} delivered, {} stranded ({:.2}% coverage of survivors)",
        report.crashed,
        report.reached,
        report.stranded,
        100.0 * report.reached as f64 / (n - report.crashed) as f64
    );
    Ok(())
}
