//! Quickstart: build a minimal-delay overlay multicast tree over 10,000
//! hosts and inspect it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;
use overlay_multicast::algo::PolarGridBuilder;
use overlay_multicast::geom::{Disk, Point2, Region};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 10,000 hosts mapped to points uniform in the unit disk; the source
    // (the streaming origin, say) sits at the center.
    let mut rng = SmallRng::seed_from_u64(7);
    let hosts = Disk::unit().sample_n(&mut rng, 10_000);
    let source = Point2::ORIGIN;

    // Every host can forward to at most 6 peers.
    let (tree, report) = PolarGridBuilder::new()
        .max_out_degree(6)
        .build_with_report(source, &hosts)?;

    // The tree is a valid spanning tree under the degree budget.
    tree.validate(Some(6))?;

    let metrics = tree.metrics();
    println!("hosts:                {}", tree.len());
    println!("grid rings (k):       {}", report.rings);
    println!("max out-degree:       {}", metrics.max_out_degree);
    println!("worst delay (radius): {:.4}", metrics.radius);
    println!("  lower bound:        {:.4}", report.lower_bound);
    println!("  analytic bound (7): {:.4}", report.bound);
    println!("tree diameter:        {:.4}", metrics.diameter);
    println!("mean delay:           {:.4}", metrics.mean_depth);
    println!("max hops:             {}", metrics.max_hops);
    println!("worst stretch:        {:.2}x", metrics.max_stretch);

    // Walk the worst path for illustration.
    let worst = tree.deepest_node().expect("nonempty");
    let path: Vec<usize> = tree.path_to_source(worst).collect();
    println!(
        "worst path: {} hops from host {} back to the source",
        path.len(),
        worst
    );
    Ok(())
}
