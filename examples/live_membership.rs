//! Live membership: hosts joining and leaving an active multicast session.
//!
//! Demonstrates the [`DynamicOverlay`] maintenance structure — the
//! decentralized-version extension the paper's conclusion calls for — under
//! heavy churn, comparing the maintained tree's worst delay against a fresh
//! static rebuild of the same membership.
//!
//! ```text
//! cargo run --release --example live_membership
//! ```

use omt_rng::rngs::SmallRng;
use omt_rng::{RngExt, SeedableRng};
use overlay_multicast::algo::{DynamicOverlay, PolarGridBuilder};
use overlay_multicast::geom::{Disk, Point2, Region};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(42);
    let disk = Disk::unit();
    let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6)?;
    let mut live = Vec::new();

    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>7}",
        "event", "hosts", "maintained", "rebuilt", "ratio"
    );
    for step in 0..20_000 {
        // 60/40 join/leave mix once the session has warmed up.
        if live.len() < 200 || rng.random::<f64>() < 0.6 {
            live.push(overlay.join(disk.sample(&mut rng)));
        } else {
            let i = rng.random_range(0..live.len());
            overlay.leave(live.swap_remove(i))?;
        }
        if step % 2500 == 0 && overlay.len() > 10 {
            let maintained = overlay.radius();
            let snapshot = overlay.snapshot()?;
            snapshot.validate(Some(6))?;
            let rebuilt = PolarGridBuilder::new()
                .build(Point2::ORIGIN, snapshot.points())?
                .radius();
            println!(
                "{step:>8} {:>8} {maintained:>12.4} {rebuilt:>12.4} {:>6.2}x",
                overlay.len(),
                maintained / rebuilt
            );
        }
    }
    println!("\nThe maintained tree tracks the static optimum through churn;");
    println!("amortized rebuilds keep the grid parameters matched to the membership.");
    Ok(())
}
