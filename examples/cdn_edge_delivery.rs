//! CDN edge-delivery scenario: the full pipeline the paper assumes.
//!
//! A content origin must push a stream to edge caches scattered across a
//! synthetic Internet. Nobody knows Euclidean coordinates up front — only
//! delays can be measured. The pipeline:
//!
//! 1. generate a Waxman underlay and measure host-to-host delays;
//! 2. embed the hosts into 3-D Euclidean space with a GNP-style landmark
//!    embedding (the paper's reference [12]);
//! 3. build the degree-constrained minimal-delay tree on the coordinates;
//! 4. evaluate the tree on the *true* delays — the experiment the paper
//!    calls future work.
//!
//! ```text
//! cargo run --release --example cdn_edge_delivery
//! ```

use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;
use overlay_multicast::algo::SphereGridBuilder;
use overlay_multicast::geom::Point3;
use overlay_multicast::net::{
    distortion_report, gnp_embed, median_relative_error, stress, DelayMatrix, GnpConfig,
    WaxmanConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(2004);

    // A 400-router continental backbone; 150 of the routers host edge caches.
    let underlay = WaxmanConfig {
        routers: 400,
        ..WaxmanConfig::default()
    }
    .sample(&mut rng);
    println!(
        "underlay: {} routers, {} links",
        underlay.len(),
        underlay.edge_count()
    );
    let hosts: Vec<usize> = (0..150).collect();
    let delays = DelayMatrix::from_graph(&underlay, &hosts);
    println!(
        "measured delays: mean {:.2} ms, max {:.2} ms",
        delays.mean(),
        delays.max()
    );

    // GNP landmark embedding into 3-D (the GNP paper's recommendation).
    let embedding = gnp_embed::<3>(&delays, &GnpConfig::default(), &mut rng);
    let estimated = DelayMatrix::from_fn(delays.len(), |i, j| {
        embedding.coordinates[i].distance(&embedding.coordinates[j])
    });
    println!(
        "embedding: stress {:.3}, median relative error {:.3}",
        stress(&delays, &estimated),
        median_relative_error(&delays, &estimated)
    );

    // Host 0 is the origin; the rest receive. Edge caches forward to at
    // most 6 peers.
    let origin: Point3 = embedding.coordinates[0];
    let receivers: Vec<usize> = (1..hosts.len()).collect();
    let coords: Vec<Point3> = receivers
        .iter()
        .map(|&h| embedding.coordinates[h])
        .collect();
    let tree = SphereGridBuilder::new()
        .max_out_degree(6)
        .build(origin, &coords)?;
    tree.validate(Some(6))?;

    // What the algorithm believes vs. what the network delivers.
    let report = distortion_report(&tree, &delays, 0, &receivers);
    println!(
        "tree: {} receivers, max out-degree {}",
        tree.len(),
        tree.max_out_degree()
    );
    println!("  radius in embedded space: {:.2}", report.embedded_radius);
    println!("  radius on true delays:    {:.2} ms", report.true_radius);
    println!(
        "  true lower bound:         {:.2} ms",
        report.true_lower_bound
    );
    println!(
        "  deployment overhead:      {:.2}x the best possible",
        report.true_ratio
    );
    Ok(())
}
