//! Video-conference scenario: tight fan-out budgets.
//!
//! Interactive video can rarely afford more than two simultaneous upstream
//! copies per participant, so this example compares the paper's degree-2
//! construction against the compact-tree heuristic and a random tree, and
//! — for a small meeting — against the exact optimum.
//!
//! ```text
//! cargo run --release --example video_conference
//! ```

use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;
use overlay_multicast::algo::PolarGridBuilder;
use overlay_multicast::baselines::{
    exact_tree, optimal_radius_lower_bound, random_tree, GreedyBuilder, GreedyObjective,
};
use overlay_multicast::geom::{Disk, Point2, Region};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(99);

    // --- A small 8-person meeting: we can afford the exact optimum.
    let small = Disk::unit().sample_n(&mut rng, 8);
    let host = Point2::ORIGIN;
    let opt = exact_tree(host, &small, 2)?;
    let pg = PolarGridBuilder::new()
        .max_out_degree(2)
        .build(host, &small)?;
    let cpt = GreedyBuilder::new(GreedyObjective::MinDelay)
        .max_out_degree(2)
        .build(host, &small)?;
    println!("8-person meeting (out-degree 2):");
    println!("  exact optimum:  {:.4}", opt.radius());
    println!(
        "  polar grid:     {:.4} ({:.2}x)",
        pg.radius(),
        pg.radius() / opt.radius()
    );
    println!(
        "  compact tree:   {:.4} ({:.2}x)",
        cpt.radius(),
        cpt.radius() / opt.radius()
    );

    // --- A 2,000-seat webinar: heuristics only.
    let large = Disk::unit().sample_n(&mut rng, 2000);
    let lb = optimal_radius_lower_bound(host, &large);
    let pg = PolarGridBuilder::new()
        .max_out_degree(2)
        .build(host, &large)?;
    let cpt = GreedyBuilder::new(GreedyObjective::MinDelay)
        .max_out_degree(2)
        .build(host, &large)?;
    let rnd = random_tree(host, &large, 2, &mut rng)?;
    for t in [&pg, &cpt, &rnd] {
        t.validate(Some(2))?;
    }
    println!("\n2,000-seat webinar (out-degree 2, lower bound {lb:.4}):");
    println!(
        "  polar grid:     radius {:.4} ({:.2}x), max hops {}",
        pg.radius(),
        pg.radius() / lb,
        pg.max_hops()
    );
    println!(
        "  compact tree:   radius {:.4} ({:.2}x), max hops {}",
        cpt.radius(),
        cpt.radius() / lb,
        cpt.max_hops()
    );
    println!(
        "  random tree:    radius {:.4} ({:.2}x), max hops {}",
        rnd.radius(),
        rnd.radius() / lb,
        rnd.max_hops()
    );
    Ok(())
}
