//! Convex regions and arbitrary source placement (Section IV-C of the
//! paper): the algorithm is not tied to the centered unit disk.
//!
//! ```text
//! cargo run --release --example convex_regions
//! ```

use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;
use overlay_multicast::algo::PolarGridBuilder;
use overlay_multicast::geom::{Annulus, BoxRegion, ConvexPolygon, Disk, Point, Point2, Region};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(17);
    let n = 20_000;
    let scenarios: Vec<(&str, Box<dyn Region<2>>, Point2)> = vec![
        (
            "disk, centered source",
            Box::new(Disk::unit()),
            Point2::ORIGIN,
        ),
        (
            "disk, offset source",
            Box::new(Disk::unit()),
            Point2::new([0.6, 0.0]),
        ),
        (
            "square, corner source",
            Box::new(BoxRegion::new(
                Point::new([0.0, 0.0]),
                Point::new([1.0, 1.0]),
            )),
            Point2::new([0.05, 0.05]),
        ),
        (
            "hexagon, centered source",
            Box::new(ConvexPolygon::regular(6, Point2::ORIGIN, 1.0)),
            Point2::ORIGIN,
        ),
        (
            "annulus (NON-convex control)",
            Box::new(Annulus::new(Point2::ORIGIN, 0.8, 1.0)),
            Point2::ORIGIN,
        ),
    ];
    println!("{n} hosts per scenario, out-degree 6\n");
    println!(
        "{:<32} {:>6} {:>9} {:>9} {:>7}",
        "scenario", "rings", "delay", "lower", "ratio"
    );
    for (name, region, source) in scenarios {
        let hosts = region.sample_n(&mut rng, n);
        let (tree, report) = PolarGridBuilder::new()
            .max_out_degree(6)
            .build_with_report(source, &hosts)?;
        tree.validate(Some(6))?;
        println!(
            "{:<32} {:>6} {:>9.4} {:>9.4} {:>6.3}x",
            name,
            report.rings,
            report.delay,
            report.lower_bound,
            report.delay / report.lower_bound
        );
    }
    println!("\nConvex regions stay near-optimal (Theorem 2 generalized); the");
    println!("annulus violates the hypothesis and pays a visibly larger ratio.");
    Ok(())
}
