//! Planetary-scale swarm: the paper's headline scalability claim.
//!
//! Builds trees over 100k, 1M and 5M hosts and reports construction time —
//! the near-linear growth of Figure 7. Run in release mode; the 5M case
//! needs a couple hundred MB of RAM.
//!
//! ```text
//! cargo run --release --example planetary_swarm
//! ```

use std::time::Instant;

use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;
use overlay_multicast::algo::PolarGridBuilder;
use overlay_multicast::geom::{Disk, Point2, Region};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("n, rings, delay, seconds, ns/host");
    for n in [100_000usize, 1_000_000, 5_000_000] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let hosts = Disk::unit().sample_n(&mut rng, n);
        let t0 = Instant::now();
        let (tree, report) = PolarGridBuilder::new()
            .max_out_degree(6)
            .build_with_report(Point2::ORIGIN, &hosts)?;
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{n}, {}, {:.4}, {:.2}, {:.0}",
            report.rings,
            report.delay,
            secs,
            secs / n as f64 * 1e9
        );
        assert!(tree.max_out_degree() <= 6);
    }
    println!(
        "\n(the paper's Pentium II needed 132 s for 5M nodes; near-linear scaling is the point)"
    );
    Ok(())
}
