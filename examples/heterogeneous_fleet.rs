//! Heterogeneous fleet: servers, desktops, and mobile viewers in one
//! session. Demonstrates per-host fan-out capacities — the realistic
//! version of the paper's uniform degree bound.
//!
//! ```text
//! cargo run --release --example heterogeneous_fleet
//! ```

use omt_rng::rngs::SmallRng;
use omt_rng::{RngExt, SeedableRng};
use overlay_multicast::algo::HeteroGridBuilder;
use overlay_multicast::geom::{Disk, Point2, Region};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(12);
    let n = 20_000;
    let hosts = Disk::unit().sample_n(&mut rng, n);
    // 5% edge servers (fan-out 12), 35% desktops (4), 40% laptops (1),
    // 20% mobile viewers (0 — pure leeches).
    let capacities: Vec<u32> = (0..n)
        .map(|_| match rng.random_range(0..100u32) {
            0..=4 => 12,
            5..=39 => 4,
            40..=79 => 1,
            _ => 0,
        })
        .collect();
    let (tree, report) =
        HeteroGridBuilder::new()
            .source_capacity(12)
            .build(Point2::ORIGIN, &hosts, &capacities)?;
    tree.validate(None)?;
    for (i, &cap) in capacities.iter().enumerate() {
        assert!(tree.out_degree(i) <= cap, "capacity violated at {i}");
    }
    println!("fleet of {n} hosts:");
    println!("  relays (cap >= 2):   {}", report.relays);
    println!("  constrained (0/1):   {}", report.constrained);
    println!("  worst delay:         {:.4}", report.delay);
    println!("  lower bound:         {:.4}", report.lower_bound);
    println!(
        "  overhead:            {:.2}x",
        report.delay / report.lower_bound
    );
    let m = tree.metrics();
    println!("  max hops:            {}", m.max_hops);
    println!("  max out-degree used: {}", m.max_out_degree);

    // Contrast: pretend everyone had capacity 6 (the paper's setting).
    let uniform = overlay_multicast::algo::PolarGridBuilder::new().build(Point2::ORIGIN, &hosts)?;
    println!(
        "\nuniform capacity-6 fantasy would give delay {:.4}; heterogeneity costs {:.1}%",
        uniform.radius(),
        100.0 * (report.delay / uniform.radius() - 1.0)
    );
    Ok(())
}
