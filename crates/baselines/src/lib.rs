//! Baseline degree-constrained multicast tree heuristics.
//!
//! The prior-art constructions the paper positions itself against, plus an
//! exact solver for tiny instances:
//!
//! * [`GreedyBuilder`] with [`GreedyObjective::MinDelay`] — the
//!   compact-tree (CPT) heuristic of Shi & Turner (references \[16\], \[17\]):
//!   always attach the node that ends up closest to the source. `O(n²)`.
//! * [`GreedyBuilder`] with [`GreedyObjective::MinEdge`] —
//!   degree-constrained Prim: always attach the cheapest edge.
//! * [`BandwidthLatency`] — the bandwidth-latency heuristic of Chu et al.
//!   (references \[5\], \[19\]): joiners pick the parent with the most spare
//!   fan-out, tie-broken by latency; supports heterogeneous capacities.
//! * [`random_tree`] — a uniformly random feasible tree (sanity ceiling).
//! * [`star_tree`] / [`optimal_radius_lower_bound`] — the unconstrained
//!   star whose radius lower-bounds every spanning tree's radius.
//! * [`exact_tree`] — exhaustive optimum for `n ≤ 9`, the oracle used to
//!   certify Theorem 1's constant factors empirically.
//!
//! # Examples
//!
//! Compare the CPT baseline against the universal lower bound:
//!
//! ```
//! use omt_baselines::{optimal_radius_lower_bound, GreedyBuilder, GreedyObjective};
//! use omt_geom::Point2;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pts = vec![Point2::new([1.0, 0.0]), Point2::new([0.0, 1.0])];
//! let tree = GreedyBuilder::new(GreedyObjective::MinDelay)
//!     .max_out_degree(2)
//!     .build(Point2::ORIGIN, &pts)?;
//! assert!(tree.radius() >= optimal_radius_lower_bound(Point2::ORIGIN, &pts));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth_latency;
mod error;
mod exact;
mod greedy;
mod random_tree;
mod star;

pub use bandwidth_latency::BandwidthLatency;
pub use error::BaselineError;
pub use exact::{exact_tree, EXACT_MAX_N};
pub use greedy::{GreedyBuilder, GreedyObjective};
pub use random_tree::random_tree;
pub use star::{optimal_radius_lower_bound, star_tree};
