//! The unconstrained star: every receiver attaches directly to the source.
//!
//! Infeasible under real fan-out budgets (the source would need out-degree
//! `n`), but its radius — the largest direct distance — is the absolute
//! lower bound `OPT ≥ max_i ‖p_i - s‖` every experiment reports against.

use omt_geom::Point;
use omt_tree::{MulticastTree, TreeBuilder};

use crate::error::BaselineError;
use crate::greedy::check_finite;

/// Builds the star tree (out-degree bound ignored; the source adopts every
/// node).
///
/// # Errors
///
/// Returns [`BaselineError::NonFinite`] for bad coordinates.
///
/// # Examples
///
/// ```
/// use omt_baselines::star_tree;
/// use omt_geom::Point2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pts = vec![Point2::new([3.0, 4.0]), Point2::new([1.0, 0.0])];
/// let star = star_tree(Point2::ORIGIN, &pts)?;
/// assert_eq!(star.radius(), 5.0); // the optimum can never beat this
/// # Ok(())
/// # }
/// ```
pub fn star_tree<const D: usize>(
    source: Point<D>,
    points: &[Point<D>],
) -> Result<MulticastTree<D>, BaselineError> {
    check_finite(source, points)?;
    let mut builder = TreeBuilder::new(source, points.to_vec());
    for i in 0..points.len() {
        builder.attach_to_source(i).expect("unbounded degree");
    }
    Ok(builder.finish().expect("all attached"))
}

/// The radius of the star — the universal lower bound on any spanning
/// tree's radius, degree-constrained or not.
pub fn optimal_radius_lower_bound<const D: usize>(source: Point<D>, points: &[Point<D>]) -> f64 {
    points
        .iter()
        .map(|p| p.distance(&source))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::Point2;

    #[test]
    fn star_radius_is_max_distance() {
        let pts = vec![
            Point2::new([1.0, 0.0]),
            Point2::new([0.0, -2.0]),
            Point2::new([0.5, 0.5]),
        ];
        let t = star_tree(Point2::ORIGIN, &pts).unwrap();
        assert_eq!(t.radius(), 2.0);
        assert_eq!(t.source_out_degree(), 3);
        assert_eq!(t.max_hops(), 1);
        assert_eq!(optimal_radius_lower_bound(Point2::ORIGIN, &pts), 2.0);
    }

    #[test]
    fn empty_star() {
        let t = star_tree::<2>(Point2::ORIGIN, &[]).unwrap();
        assert!(t.is_empty());
        assert_eq!(optimal_radius_lower_bound::<2>(Point2::ORIGIN, &[]), 0.0);
    }

    #[test]
    fn lower_bound_is_sound_for_all_builders() {
        use crate::greedy::{GreedyBuilder, GreedyObjective};
        use omt_geom::{Disk, Region};
        use omt_rng::rngs::SmallRng;
        use omt_rng::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(6);
        let pts = Disk::unit().sample_n(&mut rng, 100);
        let lb = optimal_radius_lower_bound(Point2::ORIGIN, &pts);
        let t = GreedyBuilder::new(GreedyObjective::MinDelay)
            .max_out_degree(2)
            .build(Point2::ORIGIN, &pts)
            .unwrap();
        assert!(t.radius() >= lb - 1e-12);
    }
}
