//! Exact minimum-radius degree-constrained spanning tree by exhaustive
//! enumeration of parent functions, for tiny instances.
//!
//! The problem is NP-hard in general (Malouch et al., reference [11] of the
//! paper), so this solver is strictly a test oracle: it certifies the
//! constant-factor claims of Theorem 1 and lets the experiment suite report
//! true approximation ratios on small instances. The search enumerates
//! every assignment `parent: node → {source} ∪ nodes`, pruning on degree
//! violations and on a radius lower bound, and validates acyclicity at the
//! leaves. Complexity is `O((n+1)^n)`; the hard cap is `n ≤ 9`.

use omt_geom::Point;
use omt_tree::{MulticastTree, TreeBuilder};

use crate::error::BaselineError;
use crate::greedy::check_finite;

/// Hard cap on the instance size accepted by [`exact_tree`].
pub const EXACT_MAX_N: usize = 9;

/// Computes an exact minimum-radius tree with out-degree at most
/// `max_out_degree`.
///
/// Returns the optimal tree; its [`radius`](MulticastTree::radius) is the
/// optimum.
///
/// # Errors
///
/// * [`BaselineError::TooLargeForExact`] if `points.len() > EXACT_MAX_N`;
/// * [`BaselineError::DegreeTooSmall`] if `max_out_degree == 0` with a
///   nonempty input;
/// * [`BaselineError::NonFinite`] for bad coordinates.
///
/// # Examples
///
/// ```
/// use omt_baselines::exact_tree;
/// use omt_geom::Point2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pts = vec![Point2::new([1.0, 0.0]), Point2::new([2.0, 0.0])];
/// let opt = exact_tree(Point2::ORIGIN, &pts, 1)?;
/// // Chain through the nearer point: radius 2.
/// assert_eq!(opt.radius(), 2.0);
/// # Ok(())
/// # }
/// ```
pub fn exact_tree<const D: usize>(
    source: Point<D>,
    points: &[Point<D>],
    max_out_degree: u32,
) -> Result<MulticastTree<D>, BaselineError> {
    check_finite(source, points)?;
    let n = points.len();
    if n > EXACT_MAX_N {
        return Err(BaselineError::TooLargeForExact {
            n,
            max: EXACT_MAX_N,
        });
    }
    if max_out_degree == 0 && n > 0 {
        return Err(BaselineError::DegreeTooSmall { got: 0, min: 1 });
    }
    if n == 0 {
        return Ok(TreeBuilder::new(source, vec![])
            .finish()
            .expect("empty tree"));
    }
    // Distance tables. Index n = the source.
    let dist = |a: usize, b: usize| -> f64 {
        let pa = if a == n { source } else { points[a] };
        let pb = if b == n { source } else { points[b] };
        pa.distance(&pb)
    };
    let mut best_radius = f64::INFINITY;
    let mut best_parent: Vec<usize> = Vec::new();
    // parent[i] in 0..=n (n = source).
    let mut parent = vec![n; n];
    let mut degree = vec![0u32; n + 1];
    // Depth-first over assignment positions with degree pruning.
    #[allow(clippy::too_many_arguments)]
    fn search<const D: usize>(
        i: usize,
        n: usize,
        max_deg: u32,
        dist: &impl Fn(usize, usize) -> f64,
        parent: &mut Vec<usize>,
        degree: &mut Vec<u32>,
        best_radius: &mut f64,
        best_parent: &mut Vec<usize>,
    ) {
        if i == n {
            // Validate acyclicity and compute the radius.
            if let Some(radius) = radius_of(n, parent, dist) {
                if radius < *best_radius {
                    *best_radius = radius;
                    *best_parent = parent.clone();
                }
            }
            return;
        }
        for p in 0..=n {
            if p == i || degree[p] >= max_deg {
                continue;
            }
            // Prune: any node's depth is at least its direct distance, and
            // at least the edge into it.
            if dist(p, i) >= *best_radius {
                continue;
            }
            parent[i] = p;
            degree[p] += 1;
            search::<D>(
                i + 1,
                n,
                max_deg,
                dist,
                parent,
                degree,
                best_radius,
                best_parent,
            );
            degree[p] -= 1;
        }
    }
    search::<D>(
        0,
        n,
        max_out_degree,
        &dist,
        &mut parent,
        &mut degree,
        &mut best_radius,
        &mut best_parent,
    );
    debug_assert!(best_radius.is_finite(), "a chain is always feasible");
    // Materialize the winning assignment as a tree (attach in topological
    // order by walking depths).
    let mut builder = TreeBuilder::new(source, points.to_vec()).max_out_degree(max_out_degree);
    let mut attached = vec![false; n];
    let mut remaining = n;
    while remaining > 0 {
        let before = remaining;
        for i in 0..n {
            if attached[i] {
                continue;
            }
            let p = best_parent[i];
            if p == n {
                builder.attach_to_source(i).expect("validated assignment");
            } else if attached[p] {
                builder.attach(i, p).expect("validated assignment");
            } else {
                continue;
            }
            attached[i] = true;
            remaining -= 1;
        }
        assert!(remaining < before, "assignment contained a cycle");
    }
    Ok(builder.finish().expect("spanning by construction"))
}

/// Radius of a parent assignment, or `None` if it contains a cycle.
fn radius_of(n: usize, parent: &[usize], dist: &impl Fn(usize, usize) -> f64) -> Option<f64> {
    let mut depth = vec![f64::NAN; n];
    let mut radius = 0.0f64;
    for start in 0..n {
        if !depth[start].is_nan() {
            continue;
        }
        // Walk up collecting the chain; bail on cycles via a step cap.
        let mut chain = Vec::new();
        let mut u = start;
        let mut steps = 0;
        loop {
            if u == n {
                break;
            }
            if !depth[u].is_nan() {
                break;
            }
            chain.push(u);
            u = parent[u];
            steps += 1;
            if steps > n {
                return None;
            }
        }
        // `u` is resolved (source or known depth); check the chain didn't
        // re-enter itself.
        let mut base = if u == n { 0.0 } else { depth[u] };
        if chain.contains(&u) {
            return None;
        }
        let mut prev = u;
        for &v in chain.iter().rev() {
            base += dist(prev, v);
            depth[v] = base;
            radius = radius.max(base);
            prev = v;
        }
    }
    Some(radius)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Disk, Point2, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    #[test]
    fn trivial_instances() {
        let t = exact_tree::<2>(Point2::ORIGIN, &[], 2).unwrap();
        assert!(t.is_empty());
        let t = exact_tree(Point2::ORIGIN, &[Point2::new([3.0, 4.0])], 1).unwrap();
        assert_eq!(t.radius(), 5.0);
    }

    #[test]
    fn unbounded_degree_gives_star_radius() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pts = Disk::unit().sample_n(&mut rng, 6);
        let t = exact_tree(Point2::ORIGIN, &pts, 6).unwrap();
        let star = pts.iter().map(|p| p.norm()).fold(0.0, f64::max);
        assert!((t.radius() - star).abs() < 1e-12);
    }

    #[test]
    fn chain_forced_by_degree_one() {
        // Three collinear points, degree 1: only chains are feasible, and
        // the sorted chain is optimal.
        let pts = vec![
            Point2::new([2.0, 0.0]),
            Point2::new([1.0, 0.0]),
            Point2::new([3.0, 0.0]),
        ];
        let t = exact_tree(Point2::ORIGIN, &pts, 1).unwrap();
        assert_eq!(t.radius(), 3.0);
        t.validate(Some(1)).unwrap();
    }

    #[test]
    fn optimum_beats_heuristics() {
        use crate::greedy::{GreedyBuilder, GreedyObjective};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            let pts = Disk::unit().sample_n(&mut rng, 6);
            let opt = exact_tree(Point2::ORIGIN, &pts, 2).unwrap();
            opt.validate(Some(2)).unwrap();
            let cpt = GreedyBuilder::new(GreedyObjective::MinDelay)
                .max_out_degree(2)
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            assert!(
                opt.radius() <= cpt.radius() + 1e-12,
                "exact {} > CPT {}",
                opt.radius(),
                cpt.radius()
            );
            // And never below the trivial lower bound.
            let lb = pts.iter().map(|p| p.norm()).fold(0.0, f64::max);
            assert!(opt.radius() >= lb - 1e-12);
        }
    }

    #[test]
    fn size_cap_enforced() {
        let pts = vec![Point2::new([1.0, 0.0]); EXACT_MAX_N + 1];
        assert!(matches!(
            exact_tree(Point2::ORIGIN, &pts, 2),
            Err(BaselineError::TooLargeForExact { .. })
        ));
    }

    #[test]
    fn radius_of_detects_cycles() {
        let d = |_: usize, _: usize| 1.0;
        // 0 -> 1 -> 0 cycle.
        assert_eq!(radius_of(2, &[1, 0], &d), None);
        // Valid chain 1 -> 0 -> source(2).
        let r = radius_of(2, &[2, 0], &d).unwrap();
        assert_eq!(r, 2.0);
        // A valid three-node chain source(3) <- 0 <- 1 <- 2.
        assert_eq!(radius_of(3, &[3, 0, 1], &d), Some(3.0));
        // Self-parent cycles.
        assert_eq!(radius_of(3, &[3, 1, 1], &d), None); // 1 is its own parent
        assert_eq!(radius_of(2, &[0, 0], &d), None); // 0 is its own parent
    }

    #[test]
    fn theorem1_factors_hold_empirically() {
        // Bisection is within factor 5 (deg 4) / 9 (deg 2) of the true
        // optimum on random tiny instances.
        use omt_core::Bisection;
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..8 {
            let pts = Disk::unit().sample_n(&mut rng, 6);
            let opt4 = exact_tree(Point2::ORIGIN, &pts, 4).unwrap().radius();
            let b4 = Bisection::new(4)
                .unwrap()
                .build(Point2::ORIGIN, &pts)
                .unwrap()
                .radius();
            assert!(b4 <= 5.0 * opt4 + 1e-12, "factor 5: {b4} vs opt {opt4}");
            let opt2 = exact_tree(Point2::ORIGIN, &pts, 2).unwrap().radius();
            let b2 = Bisection::new(2)
                .unwrap()
                .build(Point2::ORIGIN, &pts)
                .unwrap()
                .radius();
            assert!(b2 <= 9.0 * opt2 + 1e-12, "factor 9: {b2} vs opt {opt2}");
        }
    }

    #[test]
    fn polar_grid_close_to_optimal_on_small_instances() {
        use omt_core::PolarGridBuilder;
        let mut rng = SmallRng::seed_from_u64(13);
        let mut total_ratio = 0.0;
        let trials = 8;
        for _ in 0..trials {
            let pts = Disk::unit().sample_n(&mut rng, 7);
            let opt = exact_tree(Point2::ORIGIN, &pts, 6).unwrap().radius();
            let pg = PolarGridBuilder::new()
                .build(Point2::ORIGIN, &pts)
                .unwrap()
                .radius();
            assert!(pg >= opt - 1e-12);
            total_ratio += pg / opt;
        }
        // On 7-point instances the polar grid should average well under 3x.
        assert!(
            total_ratio / trials as f64 <= 3.0,
            "{}",
            total_ratio / trials as f64
        );
    }
}
