//! The bandwidth-latency heuristic of Chu et al. ([5]/[19] in the paper):
//! joining hosts pick the attached parent with the greatest *available
//! bandwidth* (modelled as residual fan-out capacity), breaking ties by the
//! latency of the resulting path. Hosts join in order of increasing
//! distance from the source, modelling the natural expansion of a session.
//!
//! Unlike the paper's algorithms this heuristic supports *heterogeneous*
//! capacities — each host brings its own fan-out budget — which is exactly
//! the regime it was designed for.

use omt_geom::Point;
use omt_tree::{MulticastTree, TreeBuilder};

use crate::error::BaselineError;
use crate::greedy::check_finite;

/// Builder for the bandwidth-latency heuristic.
///
/// # Examples
///
/// ```
/// use omt_baselines::BandwidthLatency;
/// use omt_geom::Point2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pts = vec![Point2::new([1.0, 0.0]), Point2::new([0.0, 2.0])];
/// let tree = BandwidthLatency::uniform(2).build(Point2::ORIGIN, &pts)?;
/// assert_eq!(tree.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BandwidthLatency {
    source_capacity: u32,
    capacities: Capacities,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Capacities {
    Uniform(u32),
    PerNode(Vec<u32>),
}

impl BandwidthLatency {
    /// Every host (and the source) has the same fan-out capacity.
    pub fn uniform(capacity: u32) -> Self {
        Self {
            source_capacity: capacity,
            capacities: Capacities::Uniform(capacity),
        }
    }

    /// Heterogeneous per-host capacities; `capacities[i]` is host `i`'s
    /// fan-out budget.
    pub fn per_node(source_capacity: u32, capacities: Vec<u32>) -> Self {
        Self {
            source_capacity,
            capacities: Capacities::PerNode(capacities),
        }
    }

    fn capacity_of(&self, i: usize) -> u32 {
        match &self.capacities {
            Capacities::Uniform(c) => *c,
            Capacities::PerNode(v) => v[i],
        }
    }

    /// Builds the tree: hosts join closest-first; each picks the parent
    /// with maximal residual capacity, breaking ties by smallest resulting
    /// delay.
    ///
    /// # Errors
    ///
    /// * [`BaselineError::CapacityMismatch`] if per-node capacities don't
    ///   match the point count;
    /// * [`BaselineError::InsufficientCapacity`] if the capacities cannot
    ///   host all `n` hosts;
    /// * [`BaselineError::NonFinite`] for bad coordinates.
    pub fn build<const D: usize>(
        &self,
        source: Point<D>,
        points: &[Point<D>],
    ) -> Result<MulticastTree<D>, BaselineError> {
        check_finite(source, points)?;
        let n = points.len();
        if let Capacities::PerNode(v) = &self.capacities {
            if v.len() != n {
                return Err(BaselineError::CapacityMismatch {
                    capacities: v.len(),
                    points: n,
                });
            }
        }
        // Feasibility: the source plus the n-1 cheapest-capacity hosts must
        // be able to host n children in the worst case; a simpler sufficient
        // and necessary condition for sequential join (closest-first) is
        // total capacity >= n, with every prefix hostable. We check the
        // total; prefix failures surface as a structured error below.
        let total: u64 = u64::from(self.source_capacity)
            + (0..n).map(|i| u64::from(self.capacity_of(i))).sum::<u64>();
        if (total as usize) < n && n > 0 {
            return Err(BaselineError::InsufficientCapacity { total, needed: n });
        }
        let mut builder = TreeBuilder::new(source, points.to_vec());
        let mut residual: Vec<u32> = (0..n).map(|i| self.capacity_of(i)).collect();
        let mut residual_source = self.source_capacity;
        // Join order: increasing distance from the source.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            source
                .distance(&points[a as usize])
                .total_cmp(&source.distance(&points[b as usize]))
        });
        let mut attached: Vec<u32> = Vec::with_capacity(n);
        for &node in &order {
            let node = node as usize;
            // Candidate parents: the source plus all attached hosts with
            // residual capacity; maximize the parent's *bandwidth* — its
            // total fan-out capacity ("maximum possible fanout" in the
            // paper's description of the heuristic) — breaking ties by the
            // latency of the resulting path. With uniform capacities every
            // candidate ties and the heuristic degenerates to latency-only
            // attachment, matching its published behaviour.
            let mut best: Option<(u32, f64, Option<usize>)> = None;
            if residual_source > 0 {
                best = Some((self.source_capacity, source.distance(&points[node]), None));
            }
            for &a in &attached {
                let a = a as usize;
                if residual[a] == 0 {
                    continue;
                }
                let bandwidth = self.capacity_of(a);
                let delay =
                    builder.depth_of(a).expect("attached") + points[a].distance(&points[node]);
                let better = match &best {
                    None => true,
                    Some((bc, bd, _)) => bandwidth > *bc || (bandwidth == *bc && delay < *bd),
                };
                if better {
                    best = Some((bandwidth, delay, Some(a)));
                }
            }
            match best {
                Some((_, _, None)) => {
                    builder.attach_to_source(node).expect("source has capacity");
                    residual_source -= 1;
                }
                Some((_, _, Some(p))) => {
                    builder.attach(node, p).expect("parent has capacity");
                    residual[p] -= 1;
                }
                None => {
                    return Err(BaselineError::InsufficientCapacity { total, needed: n });
                }
            }
            attached.push(node as u32);
        }
        Ok(builder.finish().expect("all nodes attached"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Disk, Point2, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    fn disk_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = SmallRng::seed_from_u64(seed);
        Disk::unit().sample_n(&mut rng, n)
    }

    #[test]
    fn uniform_capacity_valid_tree() {
        for n in [1usize, 2, 50, 400] {
            let pts = disk_points(n, n as u64);
            let t = BandwidthLatency::uniform(3)
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            assert_eq!(t.len(), n);
            t.validate(Some(3)).unwrap();
        }
    }

    #[test]
    fn heterogeneous_capacities_respected() {
        let pts = disk_points(60, 7);
        let caps: Vec<u32> = (0..60).map(|i| (i % 4) as u32).collect();
        let t = BandwidthLatency::per_node(4, caps.clone())
            .build(Point2::ORIGIN, &pts)
            .unwrap();
        t.validate(None).unwrap();
        assert!(t.source_out_degree() <= 4);
        for (i, &cap) in caps.iter().enumerate() {
            assert!(
                t.out_degree(i) <= cap,
                "node {i}: degree {} > capacity {cap}",
                t.out_degree(i)
            );
        }
    }

    #[test]
    fn capacity_mismatch_rejected() {
        let pts = disk_points(5, 1);
        assert!(matches!(
            BandwidthLatency::per_node(2, vec![1, 1]).build(Point2::ORIGIN, &pts),
            Err(BaselineError::CapacityMismatch {
                capacities: 2,
                points: 5
            })
        ));
    }

    #[test]
    fn insufficient_capacity_rejected() {
        let pts = disk_points(10, 2);
        assert!(matches!(
            BandwidthLatency::per_node(1, vec![0; 10]).build(Point2::ORIGIN, &pts),
            Err(BaselineError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn prefers_high_capacity_parents() {
        // One host with huge capacity near the source should adopt most
        // late joiners.
        let mut pts = vec![Point2::new([0.1, 0.0])];
        pts.extend(
            disk_points(30, 3)
                .iter()
                .map(|p| *p + Point2::new([2.0, 0.0])),
        );
        let mut caps = vec![100u32];
        caps.extend(vec![1u32; 30]);
        let t = BandwidthLatency::per_node(1, caps)
            .build(Point2::ORIGIN, &pts)
            .unwrap();
        // Node 0 joins first (closest) and takes the source's only slot;
        // joiners then prefer it while its residual stays highest.
        assert!(t.out_degree(0) >= 10, "degree {}", t.out_degree(0));
    }

    #[test]
    fn empty_input() {
        let t = BandwidthLatency::uniform(2)
            .build::<2>(Point2::ORIGIN, &[])
            .unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn closest_first_join_order_means_sorted_depths_roughly() {
        // Sanity: a valid tree with every node reachable.
        let pts = disk_points(100, 11);
        let t = BandwidthLatency::uniform(2)
            .build(Point2::ORIGIN, &pts)
            .unwrap();
        assert!(t.radius() >= pts.iter().map(|p| p.norm()).fold(0.0, f64::max) - 1e-12);
    }
}
