//! A uniformly random feasible tree — the "no intelligence" reference that
//! upper-bounds what any reasonable heuristic should produce.

use omt_rng::{Rng, RngExt};

use omt_geom::Point;
use omt_tree::{MulticastTree, TreeBuilder};

use crate::error::BaselineError;
use crate::greedy::check_finite;

/// Builds a random spanning tree: nodes are attached in a random order,
/// each to a uniformly random already-attached node (or the source) with
/// residual degree.
///
/// # Errors
///
/// * [`BaselineError::DegreeTooSmall`] if `max_out_degree == 0` with a
///   nonempty input;
/// * [`BaselineError::NonFinite`] for bad coordinates.
///
/// # Examples
///
/// ```
/// use omt_baselines::random_tree;
/// use omt_geom::Point2;
/// use omt_rng::rngs::SmallRng;
/// use omt_rng::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = SmallRng::seed_from_u64(4);
/// let pts = vec![Point2::new([1.0, 0.0]); 10];
/// let tree = random_tree(Point2::ORIGIN, &pts, 2, &mut rng)?;
/// tree.validate(Some(2))?;
/// # Ok(())
/// # }
/// ```
pub fn random_tree<const D: usize>(
    source: Point<D>,
    points: &[Point<D>],
    max_out_degree: u32,
    rng: &mut (impl Rng + ?Sized),
) -> Result<MulticastTree<D>, BaselineError> {
    check_finite(source, points)?;
    let n = points.len();
    if max_out_degree == 0 && n > 0 {
        return Err(BaselineError::DegreeTooSmall { got: 0, min: 1 });
    }
    let mut builder = TreeBuilder::new(source, points.to_vec()).max_out_degree(max_out_degree);
    // Random insertion order.
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    // Available parents (with residual degree). Index n = the source.
    let mut avail: Vec<u32> = vec![n as u32];
    let mut used: Vec<u32> = vec![0; n + 1];
    for &node in &order {
        let pick = rng.random_range(0..avail.len());
        let parent = avail[pick] as usize;
        if parent == n {
            builder
                .attach_to_source(node as usize)
                .expect("budget tracked");
        } else {
            builder
                .attach(node as usize, parent)
                .expect("budget tracked");
        }
        used[parent] += 1;
        if used[parent] >= max_out_degree {
            avail.swap_remove(pick);
        }
        avail.push(node);
    }
    Ok(builder.finish().expect("all nodes attached"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Disk, Point2, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    #[test]
    fn random_trees_are_valid() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pts = Disk::unit().sample_n(&mut rng, 200);
        for deg in [1u32, 2, 5] {
            let t = random_tree(Point2::ORIGIN, &pts, deg, &mut rng).unwrap();
            assert_eq!(t.len(), 200);
            t.validate(Some(deg)).unwrap();
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut rng1 = SmallRng::seed_from_u64(1);
        let mut rng2 = SmallRng::seed_from_u64(2);
        let pts = Disk::unit().sample_n(&mut rng1, 50);
        let t1 = random_tree(Point2::ORIGIN, &pts, 2, &mut rng1).unwrap();
        let t2 = random_tree(Point2::ORIGIN, &pts, 2, &mut rng2).unwrap();
        assert_ne!(t1, t2);
    }

    #[test]
    fn same_seed_reproduces() {
        let pts = {
            let mut rng = SmallRng::seed_from_u64(3);
            Disk::unit().sample_n(&mut rng, 50)
        };
        let t1 = random_tree(Point2::ORIGIN, &pts, 2, &mut SmallRng::seed_from_u64(9)).unwrap();
        let t2 = random_tree(Point2::ORIGIN, &pts, 2, &mut SmallRng::seed_from_u64(9)).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn zero_degree_rejected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pts = vec![Point2::new([1.0, 0.0])];
        assert!(matches!(
            random_tree(Point2::ORIGIN, &pts, 0, &mut rng),
            Err(BaselineError::DegreeTooSmall { .. })
        ));
        assert!(random_tree::<2>(Point2::ORIGIN, &[], 0, &mut rng).is_ok());
    }

    #[test]
    fn random_is_worse_than_any_heuristic_usually() {
        use crate::greedy::{GreedyBuilder, GreedyObjective};
        let mut rng = SmallRng::seed_from_u64(5);
        let pts = Disk::unit().sample_n(&mut rng, 300);
        let rnd = random_tree(Point2::ORIGIN, &pts, 2, &mut rng).unwrap();
        let cpt = GreedyBuilder::new(GreedyObjective::MinDelay)
            .max_out_degree(2)
            .build(Point2::ORIGIN, &pts)
            .unwrap();
        assert!(
            rnd.radius() > cpt.radius(),
            "{} vs {}",
            rnd.radius(),
            cpt.radius()
        );
    }
}
