//! Greedy attachment heuristics: the **compact tree** (CPT) heuristic of
//! Shi & Turner (minimize the resulting source-to-node delay at every
//! attachment — reference [16]/[17] of the paper) and a degree-constrained
//! **Prim** variant (minimize the edge length instead).
//!
//! Both share one engine: repeatedly pick the unattached node with the
//! cheapest attachment under the chosen objective, using a lazy binary
//! heap. Complexity is `O(n² log n)` worst case — these are the quadratic
//! baselines the paper's `O(n)` algorithm is designed to out-scale.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use omt_geom::Point;
use omt_tree::{MulticastTree, TreeBuilder};

use crate::error::BaselineError;

/// What a greedy attachment minimizes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GreedyObjective {
    /// Minimize the resulting source-to-node delay (`depth(parent) +
    /// dist(parent, node)`): the compact-tree (CPT) heuristic.
    #[default]
    MinDelay,
    /// Minimize the edge length (`dist(parent, node)`): degree-constrained
    /// Prim. Greedily cheap edges, but paths can snake badly.
    MinEdge,
}

/// A totally ordered f64 key (delays are always finite here).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Key(f64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Greedy degree-constrained tree builder.
///
/// # Examples
///
/// ```
/// use omt_baselines::{GreedyBuilder, GreedyObjective};
/// use omt_geom::Point2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pts = vec![Point2::new([1.0, 0.0]), Point2::new([2.0, 0.0])];
/// let tree = GreedyBuilder::new(GreedyObjective::MinDelay)
///     .max_out_degree(1)
///     .build(Point2::ORIGIN, &pts)?;
/// // With budget 1 the tree is a chain through the closer node.
/// assert_eq!(tree.radius(), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GreedyBuilder {
    objective: GreedyObjective,
    max_out_degree: Option<u32>,
}

impl GreedyBuilder {
    /// Creates a builder with the given objective and no degree bound.
    pub fn new(objective: GreedyObjective) -> Self {
        Self {
            objective,
            max_out_degree: None,
        }
    }

    /// Sets the out-degree budget (applies to the source too).
    #[must_use]
    pub fn max_out_degree(mut self, bound: u32) -> Self {
        self.max_out_degree = Some(bound);
        self
    }

    /// Builds the tree over `points` rooted at `source`.
    ///
    /// # Errors
    ///
    /// * [`BaselineError::DegreeTooSmall`] if the budget is 0 (nothing can
    ///   attach);
    /// * [`BaselineError::NonFinite`] for NaN/infinite coordinates.
    pub fn build<const D: usize>(
        &self,
        source: Point<D>,
        points: &[Point<D>],
    ) -> Result<MulticastTree<D>, BaselineError> {
        if self.max_out_degree == Some(0) && !points.is_empty() {
            return Err(BaselineError::DegreeTooSmall { got: 0, min: 1 });
        }
        check_finite(source, points)?;
        let n = points.len();
        let mut builder = TreeBuilder::new(source, points.to_vec());
        if let Some(b) = self.max_out_degree {
            builder = builder.max_out_degree(b);
        }
        // Candidate heap: (key, node, parent) where parent = n means the
        // source. Entries go stale when nodes attach or parents saturate —
        // both are detected at pop time (lazy deletion).
        let mut heap: BinaryHeap<Reverse<(Key, u32, u32)>> = BinaryHeap::new();
        let key = |parent_depth: f64, dist: f64| match self.objective {
            GreedyObjective::MinDelay => parent_depth + dist,
            GreedyObjective::MinEdge => dist,
        };
        // Best key seen per node: only push improvements, which keeps the
        // heap near-linear in practice (the algorithm stays O(n^2) in the
        // distance evaluations, as any exact greedy must be).
        let mut best_key = vec![f64::INFINITY; n];
        for (i, point) in points.iter().enumerate() {
            let d = source.distance(point);
            best_key[i] = key(0.0, d);
            heap.push(Reverse((Key(best_key[i]), i as u32, n as u32)));
        }
        let mut attached_order: Vec<u32> = Vec::with_capacity(n);
        let mut attached_count = 0usize;
        while attached_count < n {
            let Some(Reverse((_, node, parent))) = heap.pop() else {
                // Heap exhausted with nodes left: recompute candidates for
                // all unattached nodes (can happen after saturations).
                for (i, bk) in best_key.iter_mut().enumerate() {
                    if builder.is_attached(i) {
                        continue;
                    }
                    if let Some(k) = push_candidates(
                        &mut heap,
                        &builder,
                        &attached_order,
                        source,
                        points,
                        i,
                        key,
                    ) {
                        *bk = k;
                    }
                }
                if heap.is_empty() {
                    // No feasible parent anywhere: only possible when the
                    // degree budget is 0, which was rejected above.
                    unreachable!("a positive degree budget always admits a chain");
                }
                continue;
            };
            let node = node as usize;
            if builder.is_attached(node) {
                continue;
            }
            // Try to attach; if the parent saturated since the entry was
            // pushed, recompute this node's best candidate and re-push.
            let ok = if parent as usize == n {
                builder.remaining_source_degree().is_none_or(|r| r > 0)
            } else {
                builder
                    .remaining_degree(parent as usize)
                    .is_none_or(|r| r > 0)
            };
            if !ok {
                if let Some(k) = push_candidates(
                    &mut heap,
                    &builder,
                    &attached_order,
                    source,
                    points,
                    node,
                    key,
                ) {
                    best_key[node] = k;
                }
                continue;
            }
            if parent as usize == n {
                builder.attach_to_source(node).expect("checked budget");
            } else {
                builder
                    .attach(node, parent as usize)
                    .expect("checked budget");
            }
            attached_order.push(node as u32);
            attached_count += 1;
            // Offer the new parent to every unattached node that improves.
            let nd = builder.depth_of(node).expect("just attached");
            for i in 0..n {
                if !builder.is_attached(i) {
                    let k = key(nd, points[node].distance(&points[i]));
                    if k < best_key[i] {
                        best_key[i] = k;
                        heap.push(Reverse((Key(k), i as u32, node as u32)));
                    }
                }
            }
        }
        Ok(builder.finish().expect("all nodes attached"))
    }
}

/// Pushes the current best feasible candidate for `node` (source plus every
/// attached node with spare budget) and returns its key.
fn push_candidates<const D: usize>(
    heap: &mut BinaryHeap<Reverse<(Key, u32, u32)>>,
    builder: &TreeBuilder<D>,
    attached_order: &[u32],
    source: Point<D>,
    points: &[Point<D>],
    node: usize,
    key: impl Fn(f64, f64) -> f64,
) -> Option<f64> {
    let n = points.len();
    let mut best: Option<(Key, u32)> = None;
    if builder.remaining_source_degree().is_none_or(|r| r > 0) {
        let d = source.distance(&points[node]);
        best = Some((Key(key(0.0, d)), n as u32));
    }
    for &a in attached_order {
        if builder.remaining_degree(a as usize).is_none_or(|r| r > 0) {
            let pd = builder.depth_of(a as usize).expect("attached");
            let d = points[a as usize].distance(&points[node]);
            let k = Key(key(pd, d));
            if best.as_ref().is_none_or(|(bk, _)| k < *bk) {
                best = Some((k, a));
            }
        }
    }
    if let Some((k, p)) = best {
        heap.push(Reverse((k, node as u32, p)));
        return Some(k.0);
    }
    None
}

pub(crate) fn check_finite<const D: usize>(
    source: Point<D>,
    points: &[Point<D>],
) -> Result<(), BaselineError> {
    if !source.is_finite() {
        return Err(BaselineError::NonFinite { index: None });
    }
    if let Some(i) = points.iter().position(|p| !p.is_finite()) {
        return Err(BaselineError::NonFinite { index: Some(i) });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Disk, Point2, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    fn disk_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = SmallRng::seed_from_u64(seed);
        Disk::unit().sample_n(&mut rng, n)
    }

    #[test]
    fn cpt_valid_and_degree_bounded() {
        for n in [1usize, 2, 10, 200] {
            let pts = disk_points(n, n as u64);
            for deg in [1u32, 2, 6] {
                let t = GreedyBuilder::new(GreedyObjective::MinDelay)
                    .max_out_degree(deg)
                    .build(Point2::ORIGIN, &pts)
                    .unwrap();
                assert_eq!(t.len(), n);
                t.validate(Some(deg)).unwrap();
            }
        }
    }

    #[test]
    fn prim_valid_and_degree_bounded() {
        let pts = disk_points(300, 5);
        for deg in [2u32, 6] {
            let t = GreedyBuilder::new(GreedyObjective::MinEdge)
                .max_out_degree(deg)
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            t.validate(Some(deg)).unwrap();
        }
    }

    #[test]
    fn unbounded_cpt_is_a_star() {
        // With no degree bound, attaching through any relay can never beat
        // the direct edge (triangle inequality), so CPT produces the star.
        let pts = disk_points(100, 9);
        let t = GreedyBuilder::new(GreedyObjective::MinDelay)
            .build(Point2::ORIGIN, &pts)
            .unwrap();
        assert_eq!(t.source_out_degree() as usize, 100);
        let direct_max = pts.iter().map(|p| p.norm()).fold(0.0, f64::max);
        assert!((t.radius() - direct_max).abs() < 1e-12);
    }

    #[test]
    fn cpt_delay_at_least_lower_bound() {
        let pts = disk_points(500, 3);
        let lb = pts.iter().map(|p| p.norm()).fold(0.0, f64::max);
        let t = GreedyBuilder::new(GreedyObjective::MinDelay)
            .max_out_degree(2)
            .build(Point2::ORIGIN, &pts)
            .unwrap();
        assert!(t.radius() >= lb - 1e-12);
    }

    #[test]
    fn cpt_no_worse_than_prim_on_radius() {
        // CPT optimizes delay directly; Prim does not. On random instances
        // CPT should not lose (allow a tiny slack for ties).
        let mut cpt_total = 0.0;
        let mut prim_total = 0.0;
        for seed in 0..5u64 {
            let pts = disk_points(150, 60 + seed);
            let cpt = GreedyBuilder::new(GreedyObjective::MinDelay)
                .max_out_degree(4)
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            let prim = GreedyBuilder::new(GreedyObjective::MinEdge)
                .max_out_degree(4)
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            cpt_total += cpt.radius();
            prim_total += prim.radius();
        }
        assert!(
            cpt_total <= prim_total * 1.02,
            "{cpt_total} vs {prim_total}"
        );
    }

    #[test]
    fn prim_no_worse_than_cpt_on_weight() {
        let mut cpt_total = 0.0;
        let mut prim_total = 0.0;
        for seed in 0..5u64 {
            let pts = disk_points(150, 80 + seed);
            let cpt = GreedyBuilder::new(GreedyObjective::MinDelay)
                .max_out_degree(4)
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            let prim = GreedyBuilder::new(GreedyObjective::MinEdge)
                .max_out_degree(4)
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            cpt_total += cpt.total_edge_weight();
            prim_total += prim.total_edge_weight();
        }
        assert!(
            prim_total <= cpt_total * 1.02,
            "{prim_total} vs {cpt_total}"
        );
    }

    #[test]
    fn degree_one_builds_a_chain() {
        let pts = disk_points(30, 4);
        let t = GreedyBuilder::new(GreedyObjective::MinDelay)
            .max_out_degree(1)
            .build(Point2::ORIGIN, &pts)
            .unwrap();
        t.validate(Some(1)).unwrap();
        assert_eq!(t.max_hops(), 30);
    }

    #[test]
    fn zero_degree_rejected() {
        let pts = disk_points(3, 1);
        assert!(matches!(
            GreedyBuilder::new(GreedyObjective::MinDelay)
                .max_out_degree(0)
                .build(Point2::ORIGIN, &pts),
            Err(BaselineError::DegreeTooSmall { .. })
        ));
        // ...but fine for an empty input.
        let t = GreedyBuilder::new(GreedyObjective::MinDelay)
            .max_out_degree(0)
            .build::<2>(Point2::ORIGIN, &[])
            .unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn non_finite_rejected() {
        assert!(matches!(
            GreedyBuilder::new(GreedyObjective::MinDelay).build(Point2::new([f64::NAN, 0.0]), &[]),
            Err(BaselineError::NonFinite { index: None })
        ));
        assert!(matches!(
            GreedyBuilder::new(GreedyObjective::MinDelay)
                .build(Point2::ORIGIN, &[Point2::new([f64::INFINITY, 0.0])]),
            Err(BaselineError::NonFinite { index: Some(0) })
        ));
    }

    #[test]
    fn works_in_three_dimensions() {
        use omt_geom::{Ball, Point3};
        let mut rng = SmallRng::seed_from_u64(2);
        let pts = Ball::<3>::unit().sample_n(&mut rng, 100);
        let t = GreedyBuilder::new(GreedyObjective::MinDelay)
            .max_out_degree(3)
            .build(Point3::ORIGIN, &pts)
            .unwrap();
        t.validate(Some(3)).unwrap();
    }

    #[test]
    fn duplicate_points() {
        let pts = vec![Point2::new([0.4, 0.4]); 25];
        let t = GreedyBuilder::new(GreedyObjective::MinDelay)
            .max_out_degree(2)
            .build(Point2::ORIGIN, &pts)
            .unwrap();
        t.validate(Some(2)).unwrap();
    }
}
