//! Error type shared by the baseline builders.

use core::fmt;

/// Errors raised by the baseline tree builders.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineError {
    /// The out-degree budget is too small for the algorithm.
    DegreeTooSmall {
        /// The requested budget.
        got: u32,
        /// The smallest supported budget.
        min: u32,
    },
    /// A coordinate is NaN or infinite (`index: None` = the source).
    NonFinite {
        /// Index of the offending point, or `None` for the source.
        index: Option<usize>,
    },
    /// Per-node capacities don't match the point count.
    CapacityMismatch {
        /// Number of capacities supplied.
        capacities: usize,
        /// Number of points.
        points: usize,
    },
    /// The per-node capacities cannot host every node (total capacity,
    /// counting the source, is below `n`).
    InsufficientCapacity {
        /// Sum of usable capacities.
        total: u64,
        /// Number of nodes to attach.
        needed: usize,
    },
    /// The instance is too large for the exact solver.
    TooLargeForExact {
        /// The instance size.
        n: usize,
        /// The solver's hard cap.
        max: usize,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DegreeTooSmall { got, min } => {
                write!(f, "out-degree budget {got} is below the minimum {min}")
            }
            Self::NonFinite { index: Some(i) } => {
                write!(f, "point {i} has a non-finite coordinate")
            }
            Self::NonFinite { index: None } => write!(f, "source has a non-finite coordinate"),
            Self::CapacityMismatch { capacities, points } => {
                write!(f, "{capacities} capacities supplied for {points} points")
            }
            Self::InsufficientCapacity { total, needed } => {
                write!(f, "total capacity {total} cannot host {needed} nodes")
            }
            Self::TooLargeForExact { n, max } => {
                write!(f, "instance size {n} exceeds the exact solver cap {max}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        for e in [
            BaselineError::DegreeTooSmall { got: 0, min: 1 },
            BaselineError::NonFinite { index: Some(2) },
            BaselineError::NonFinite { index: None },
            BaselineError::CapacityMismatch {
                capacities: 3,
                points: 5,
            },
            BaselineError::InsufficientCapacity {
                total: 2,
                needed: 9,
            },
            BaselineError::TooLargeForExact { n: 20, max: 9 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
