//! The property-test harness, tested with itself (passing properties) and
//! directly (failure reporting, shrinking, replay).

use omt_rng::proptest::{any, collection, Strategy};
use omt_rng::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, props};

props! {
    #[cases(128)]
    fn floats_stay_in_their_range(x in -5.0f64..5.0, y in 0.0f64..=1.0) {
        prop_assert!((-5.0..5.0).contains(&x));
        prop_assert!((0.0..=1.0).contains(&y));
    }

    #[cases(128)]
    fn tuples_and_maps_compose(
        p in (0u32..100, 0u32..100).prop_map(|(a, b)| (a + b, a.min(b))),
        flag in any::<bool>(),
    ) {
        let (sum, min) = p;
        prop_assert!(min <= sum);
        prop_assume!(flag);
        prop_assert!(sum < 200);
    }

    #[cases(64)]
    fn vectors_respect_length_bounds(v in collection::vec(0i32..10, 2..30)) {
        prop_assert!(v.len() >= 2 && v.len() < 30);
        prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
    }

    #[cases(64)]
    fn unions_draw_from_every_branch(x in prop_oneof![0u32..10, 100u32..110]) {
        prop_assert!(x < 10 || (100u32..110).contains(&x));
    }

    fn default_case_count_applies(n in 0u64..1000) {
        prop_assert_eq!(n, n);
    }
}

/// A deliberately failing property, run manually: the panic must carry the
/// replay seed and a shrunken input.
#[test]
fn failure_reports_seed_and_shrinks() {
    let result = std::panic::catch_unwind(|| {
        omt_rng::proptest::check(
            "harness::failure_reports_seed_and_shrinks",
            64,
            &(0u64..1_000_000,),
            |(x,)| {
                if x >= 17 {
                    Err("too big".to_string())
                } else {
                    Ok(())
                }
            },
        );
    });
    let msg = *result
        .expect_err("property must fail")
        .downcast::<String>()
        .expect("string panic payload");
    assert!(msg.contains("OMT_PROP_SEED="), "no replay seed: {msg}");
    assert!(msg.contains("too big"), "original error lost: {msg}");
    // Shrink-by-halving from anywhere in [17, 1e6) converges to exactly 17.
    assert!(msg.contains("(17,)"), "did not shrink to minimum: {msg}");
}

/// Shrinking hunts the failing component of a tuple while leaving the
/// others at their simplest surviving values.
#[test]
fn shrinking_is_componentwise() {
    let result = std::panic::catch_unwind(|| {
        omt_rng::proptest::check(
            "harness::shrinking_is_componentwise",
            64,
            &(0i64..100, -50.0f64..50.0),
            |(a, b)| {
                if a + (b.abs() as i64) >= 30 {
                    Err("boundary crossed".to_string())
                } else {
                    Ok(())
                }
            },
        );
    });
    let msg = *result
        .expect_err("property must fail")
        .downcast::<String>()
        .expect("string panic payload");
    assert!(msg.contains("shrunk input"), "no shrink report: {msg}");
}

/// Sampling is deterministic per (test name, case index): two checks with
/// the same name see the same inputs.
#[test]
fn case_streams_are_deterministic() {
    use std::sync::Mutex;
    let collect = |out: &Mutex<Vec<u64>>| {
        omt_rng::proptest::check("harness::case_streams", 32, &(any::<u64>(),), |(x,)| {
            out.lock().unwrap().push(x);
            Ok(())
        });
    };
    let a = Mutex::new(Vec::new());
    let b = Mutex::new(Vec::new());
    collect(&a);
    collect(&b);
    assert_eq!(*a.lock().unwrap(), *b.lock().unwrap());
}
