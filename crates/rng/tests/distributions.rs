//! Statistical and boundary behavior of the sampling facade.

use omt_rng::rngs::SmallRng;
use omt_rng::{Rng, RngExt, SeedableRng};

#[test]
fn unit_floats_are_in_range_and_uniform() {
    let mut rng = SmallRng::seed_from_u64(1);
    let n = 100_000;
    let mut sum = 0.0;
    for _ in 0..n {
        let x: f64 = rng.random();
        assert!((0.0..1.0).contains(&x));
        sum += x;
    }
    let mean = sum / f64::from(n);
    assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
}

#[test]
fn integer_ranges_cover_bounds_exactly() {
    let mut rng = SmallRng::seed_from_u64(2);
    let mut seen = [false; 10];
    for _ in 0..1_000 {
        let v = rng.random_range(0..10usize);
        seen[v] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "some residues never drawn: {seen:?}"
    );

    // Inclusive ranges reach the upper endpoint.
    let mut top = false;
    for _ in 0..200 {
        if rng.random_range(0..=3u32) == 3 {
            top = true;
        }
    }
    assert!(top);

    // Degenerate singleton.
    assert_eq!(rng.random_range(5..=5i64), 5);
}

#[test]
fn integer_ranges_are_unbiased_enough() {
    // Chi-squared over 8 buckets of a non-power-of-two span.
    let mut rng = SmallRng::seed_from_u64(3);
    let span = 24u64;
    let trials = 240_000;
    let mut counts = [0u32; 24];
    for _ in 0..trials {
        counts[rng.random_range(0..span) as usize] += 1;
    }
    let expected = trials as f64 / span as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = f64::from(c) - expected;
            d * d / expected
        })
        .sum();
    // 23 degrees of freedom: p = 0.999 quantile is ~49.7.
    assert!(chi2 < 49.7, "chi-squared {chi2}");
}

#[test]
fn signed_and_float_ranges_stay_inside() {
    let mut rng = SmallRng::seed_from_u64(4);
    for _ in 0..10_000 {
        let v = rng.random_range(-7i32..5);
        assert!((-7..5).contains(&v));
        let f = rng.random_range(-1.0f64..1.0);
        assert!((-1.0..1.0).contains(&f));
        let g = rng.random_range(0.0f64..=2.5);
        assert!((0.0..=2.5).contains(&g));
    }
}

#[test]
fn random_bool_matches_probability() {
    let mut rng = SmallRng::seed_from_u64(5);
    let n = 100_000;
    let hits = (0..n).filter(|_| rng.random_bool(0.3)).count();
    let freq = hits as f64 / f64::from(n);
    assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    assert!((0..100).all(|_| !rng.random_bool(0.0)));
    assert!((0..100).all(|_| rng.random_bool(1.0)));
}

#[test]
#[should_panic(expected = "empty range")]
fn empty_range_panics() {
    let mut rng = SmallRng::seed_from_u64(6);
    let _ = rng.random_range(3..3u32);
}

#[test]
fn shuffle_is_a_permutation_and_choose_hits_all() {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut v: Vec<u32> = (0..100).collect();
    rng.shuffle(&mut v);
    let mut sorted = v.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    assert_ne!(v, sorted, "a 100-element shuffle left the input sorted");

    let items = [1u8, 2, 3];
    let mut seen = [false; 3];
    for _ in 0..200 {
        let &c = rng.choose(&items).unwrap();
        seen[(c - 1) as usize] = true;
    }
    assert!(seen.iter().all(|&s| s));
    assert_eq!(rng.choose::<u8>(&[]), None);
}

#[test]
fn dyn_rng_objects_work() {
    // The geometric samplers rely on `&mut dyn Rng` receiving the full
    // extension API.
    let mut rng = SmallRng::seed_from_u64(8);
    let dyn_rng: &mut dyn Rng = &mut rng;
    let x: f64 = dyn_rng.random();
    assert!((0.0..1.0).contains(&x));
    let v = dyn_rng.random_range(0..10u64);
    assert!(v < 10);
}

#[test]
fn fill_bytes_covers_partial_chunks() {
    let mut rng = SmallRng::seed_from_u64(9);
    let mut buf = [0u8; 13];
    rng.fill_bytes(&mut buf);
    // Compare against the pinned stream: first 13 little-endian bytes.
    let mut rng2 = SmallRng::seed_from_u64(9);
    let a = rng2.next_u64().to_le_bytes();
    let b = rng2.next_u64().to_le_bytes();
    assert_eq!(&buf[..8], &a);
    assert_eq!(&buf[8..], &b[..5]);
}
