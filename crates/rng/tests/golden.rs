//! Golden-value tests pinning the generator streams bit-for-bit.
//!
//! These are the workspace's cross-machine reproducibility contract: if
//! any of them fails, every seeded experiment result in the repository is
//! suspect. The SplitMix64 and xoshiro256++ vectors below match the
//! published reference implementations (Vigna's `splitmix64.c` and
//! `xoshiro256plusplus.c`).

use omt_rng::rngs::SmallRng;
use omt_rng::{Rng, RngExt, SeedableRng, SplitMix64, Xoshiro256PlusPlus};

#[test]
fn splitmix64_reference_vectors_seed0() {
    // First outputs of splitmix64 from seed 0, as published.
    let mut sm = SplitMix64::new(0);
    let expect = [
        0xE220_A839_7B1D_CDAF,
        0x6E78_9E6A_A1B9_65F4,
        0x06C4_5D18_8009_454F,
        0xF88B_B8A8_724C_81EC,
        0x1B39_896A_51A8_749B,
    ];
    for (i, &e) in expect.iter().enumerate() {
        assert_eq!(sm.next_u64(), e, "splitmix64 output {i}");
    }
}

#[test]
fn splitmix64_seed42() {
    let mut sm = SplitMix64::new(42);
    let expect = [
        0xBDD7_3226_2FEB_6E95,
        0x28EF_E333_B266_F103,
        0x4752_6757_130F_9F52,
        0x581C_E1FF_0E4A_E394,
    ];
    for (i, &e) in expect.iter().enumerate() {
        assert_eq!(sm.next_u64(), e, "splitmix64 output {i}");
    }
}

#[test]
fn xoshiro256pp_reference_vector() {
    // Reference first outputs from state {1, 2, 3, 4}.
    let mut x = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
    let expect: [u64; 6] = [
        41_943_041,
        58_720_359,
        3_588_806_011_781_223,
        3_591_011_842_654_386,
        9_228_616_714_210_784_205,
        9_973_669_472_204_895_162,
    ];
    for (i, &e) in expect.iter().enumerate() {
        assert_eq!(x.next_u64(), e, "xoshiro256++ output {i}");
    }
}

#[test]
fn smallrng_seed_from_u64_pinned_streams() {
    // seed_from_u64 = SplitMix64 expansion into the four state words, then
    // xoshiro256++. Pinned for seeds 0 and 42: the first 8 u64 outputs.
    let mut rng = SmallRng::seed_from_u64(0);
    let expect0: [u64; 8] = [
        0x5317_5D61_490B_23DF,
        0x61DA_6F3D_C380_D507,
        0x5C0F_DF91_EC9A_7BFC,
        0x02EE_BF8C_3BBE_5E1A,
        0x7ECA_04EB_AF4A_5EEA,
        0x0543_C377_57F0_8D9A,
        0xDB74_90C7_5AB5_026E,
        0xD873_43E6_464B_C959,
    ];
    for (i, &e) in expect0.iter().enumerate() {
        assert_eq!(rng.next_u64(), e, "SmallRng(0) output {i}");
    }

    let mut rng = SmallRng::seed_from_u64(42);
    let expect42: [u64; 8] = [
        0xD076_4D4F_4476_689F,
        0x519E_4174_576F_3791,
        0xFBE0_7CFB_0C24_ED8C,
        0xB37D_9F60_0CD8_35B8,
        0xCB23_1C38_7484_6A73,
        0x968D_9F00_4E50_DE7D,
        0x2017_18FF_221A_3556,
        0x9AE9_4E07_0ED8_CB46,
    ];
    for (i, &e) in expect42.iter().enumerate() {
        assert_eq!(rng.next_u64(), e, "SmallRng(42) output {i}");
    }
}

#[test]
fn smallrng_unit_floats_pinned() {
    // f64 sampling is the 53 top bits of the pinned u64 stream.
    let mut rng = SmallRng::seed_from_u64(42);
    let expect = [
        0.814_305_145_122_909_9,
        0.318_821_040_061_661_1,
        0.983_894_168_177_488_8,
    ];
    for (i, &e) in expect.iter().enumerate() {
        let x: f64 = rng.random();
        assert!((x - e).abs() < 1e-15, "SmallRng(42) f64 {i}: {x} vs {e}");
    }
}

#[test]
fn same_seed_same_stream_different_seed_different_stream() {
    let a: Vec<u64> = {
        let mut r = SmallRng::seed_from_u64(7);
        (0..64).map(|_| r.next_u64()).collect()
    };
    let b: Vec<u64> = {
        let mut r = SmallRng::seed_from_u64(7);
        (0..64).map(|_| r.next_u64()).collect()
    };
    let c: Vec<u64> = {
        let mut r = SmallRng::seed_from_u64(8);
        (0..64).map(|_| r.next_u64()).collect()
    };
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn zero_state_is_remapped_not_stuck() {
    let mut x = Xoshiro256PlusPlus::from_state([0; 4]);
    let first = x.next_u64();
    let second = x.next_u64();
    assert!(first != 0 || second != 0, "all-zero state must be remapped");
}

#[test]
fn jump_streams_disagree() {
    let mut a = SmallRng::seed_from_u64(1);
    let mut b = a.clone();
    b.jump();
    let overlap = (0..1024).filter(|_| a.next_u64() == b.next_u64()).count();
    assert!(overlap < 8, "jumped stream tracks the original");
}
