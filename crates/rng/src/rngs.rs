//! Concrete generators, laid out like `rand`'s `rngs` module so call
//! sites migrate with an import swap.

use crate::{Rng, SeedableRng, Xoshiro256PlusPlus};

/// The workspace's small, fast default generator: xoshiro256++.
///
/// Unlike `rand`'s `SmallRng`, the algorithm is part of this type's
/// contract — golden tests pin its streams, so seeds are stable across
/// machines and versions.
///
/// ```
/// use omt_rng::rngs::SmallRng;
/// use omt_rng::{RngExt, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(42);
/// let x: f64 = rng.random();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng(Xoshiro256PlusPlus);

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self(Xoshiro256PlusPlus::from_seed(seed))
    }
}

impl SmallRng {
    /// Advance by 2^128 steps; see [`Xoshiro256PlusPlus::jump`].
    pub fn jump(&mut self) {
        self.0.jump();
    }
}
