//! Uniform sampling of primitive types and ranges.

use core::ops::{Range, RangeInclusive};

use crate::Rng;

/// Types with a canonical "standard" distribution: floats uniform in
/// `[0, 1)`, integers uniform over their full range, `bool` fair.
pub trait StandardUniform: Sized {
    /// Draw one value from the standard distribution.
    fn sample_standard(rng: &mut (impl Rng + ?Sized)) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample_standard(rng: &mut (impl Rng + ?Sized)) -> f64 {
        // 53 high bits → uniform multiples of 2^-53 in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample_standard(rng: &mut (impl Rng + ?Sized)) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample_standard(rng: &mut (impl Rng + ?Sized)) -> bool {
        // The top bit is the strongest xoshiro++ output bit.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl StandardUniform for $t {
            #[inline]
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_standard(rng: &mut (impl Rng + ?Sized)) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    #[inline]
    fn sample_standard(rng: &mut (impl Rng + ?Sized)) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Types uniformly samplable from a bounded range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform in `[lo, hi)` when `inclusive` is false, `[lo, hi]` when
    /// true. Callers guarantee the range is non-empty.
    fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut (impl Rng + ?Sized)) -> Self;
}

/// Uniform `u64` in `[0, span)` via Lemire's widening-multiply method with
/// rejection (exactly unbiased). `span == 0` means the full 2^64 range.
#[inline]
fn uniform_u64_below(span: u64, rng: &mut (impl Rng + ?Sized)) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Reject the low-product values that would make some residues over-
    // represented; at most `2^64 mod span` of the 2^64 inputs are rejected.
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[inline]
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut (impl Rng + ?Sized)) -> Self {
                // Width of [lo, hi) or [lo, hi]; 0 encodes the full u64 span
                // (only reachable for inclusive full-width u64/usize ranges).
                let span = (hi as u64)
                    .wrapping_sub(lo as u64)
                    .wrapping_add(u64::from(inclusive));
                lo.wrapping_add(uniform_u64_below(span, rng) as $t)
            }
        }
    )+};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty as $u:ty),+) => {$(
        impl SampleUniform for $t {
            #[inline]
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless, clippy::cast_sign_loss)]
            fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut (impl Rng + ?Sized)) -> Self {
                // Subtract at the type's own width so sign extension
                // cannot leak into the span, then widen.
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64)
                    .wrapping_add(u64::from(inclusive));
                lo.wrapping_add(uniform_u64_below(span, rng) as $t)
            }
        }
    )+};
}

impl_sample_uniform_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut (impl Rng + ?Sized)) -> Self {
                let unit = <$t as StandardUniform>::sample_standard(rng);
                let v = lo + unit * (hi - lo);
                // Floating rounding can land exactly on `hi`; fold it back
                // for half-open ranges.
                if !inclusive && v >= hi {
                    hi - (hi - lo) * <$t>::EPSILON
                } else {
                    v.clamp(lo, hi)
                }
            }
        }
    )+};
}

impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`RngExt::random_range`](crate::RngExt::random_range).
pub trait SampleRange<T> {
    /// Draw one value uniform in the range.
    fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> T {
        assert!(self.start < self.end, "cannot sample an empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample an empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}
