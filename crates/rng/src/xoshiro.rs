//! xoshiro256++ (Blackman & Vigna, 2019): the workspace's workhorse
//! generator. 256 bits of state, period 2^256 − 1, passes BigCrush and
//! PractRand; the `++` scrambler makes all 64 output bits full quality.

use crate::{Rng, SeedableRng, SplitMix64};

/// The xoshiro256++ generator.
///
/// Construct it via [`SeedableRng::seed_from_u64`] (SplitMix64 seed
/// expansion, matching `rand`'s historical streams) or [`SeedableRng::from_seed`]
/// with 32 bytes of entropy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Build directly from four state words.
    ///
    /// The all-zero state is the one fixed point of the transition
    /// function; it is remapped to the SplitMix64 expansion of 0 so the
    /// generator can never get stuck.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            let mut mixer = SplitMix64::new(0);
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = mixer.next_u64();
            }
            return Self { s };
        }
        Self { s }
    }

    /// The next output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);

        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);

        result
    }

    /// The jump function: advances the state by 2^128 steps, yielding a
    /// stream disjoint from the original for any realistic draw count.
    /// Use it to split one seed into parallel non-overlapping streams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_9759_90E0_741C,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl Rng for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256PlusPlus::next_u64(self)
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Self::from_state(s)
    }
}
