//! Deterministic, dependency-free randomness for the workspace.
//!
//! Every experiment in the paper ("Overlay Multicast Trees of Minimal
//! Delay") draws points from uniform disks and balls; reproducing its
//! tables and figures bit-for-bit across machines requires a PRNG whose
//! streams we fully own. This crate provides exactly that, with no
//! external dependencies:
//!
//! - [`rngs::SmallRng`] — xoshiro256++ (Blackman & Vigna), a small, fast,
//!   high-quality generator. Seeded from a single `u64` via SplitMix64,
//!   matching the widely published reference vectors (pinned by golden
//!   tests in this crate).
//! - [`SplitMix64`] — the seeding/mixing generator, also useful on its own
//!   for deriving independent per-component streams from one root seed.
//! - A `rand`-compatible facade: the [`Rng`] core trait (object-safe, so
//!   samplers can take `&mut dyn Rng`), the [`RngExt`] extension trait
//!   (`random`, `random_range`, `random_bool`, `shuffle`, `choose`), and
//!   [`SeedableRng`].
//! - [`mod@proptest`] — a small seeded property-test harness (the
//!   [`props!`] macro: N seeded cases, shrink-by-halving on failure, the
//!   failing seed printed for replay via `OMT_PROP_SEED`).
//!
//! # Seeding discipline
//!
//! Experiments use **one root seed**, and derive per-component streams via
//! SplitMix64 so that adding a component never perturbs the streams of the
//! others:
//!
//! ```
//! use omt_rng::rngs::SmallRng;
//! use omt_rng::{SeedableRng, SplitMix64};
//!
//! let root = 42u64;
//! let mut derive = SplitMix64::new(root);
//! let mut workload_rng = SmallRng::seed_from_u64(derive.next_u64());
//! let mut failure_rng = SmallRng::seed_from_u64(derive.next_u64());
//! # let _ = (&mut workload_rng, &mut failure_rng);
//! ```

mod distr;
pub mod proptest;
pub mod rngs;
mod splitmix;
mod xoshiro;

pub use distr::{SampleRange, SampleUniform, StandardUniform};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;

/// A source of random 64-bit words.
///
/// The trait is deliberately tiny and **object-safe**: geometric samplers
/// take `&mut dyn Rng`, so heterogeneous regions can share one generator.
/// All the ergonomic methods live on the blanket extension trait
/// [`RngExt`].
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (the high half of [`next_u64`](Rng::next_u64),
    /// which are the strongest bits of xoshiro-family outputs).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Ergonomic sampling methods, blanket-implemented for every [`Rng`]
/// (including `dyn Rng`).
pub trait RngExt: Rng {
    /// A value sampled from the standard distribution of `T`: floats are
    /// uniform in `[0, 1)`, integers uniform over their full range, `bool`
    /// fair.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform in `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        self.random::<f64>() < p
    }

    /// Shuffle `slice` in place (Fisher–Yates).
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` when empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.random_range(0..slice.len())])
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator that can be created from a fixed-size seed or a single
/// `u64` (expanded through SplitMix64, as `rand` does).
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it through SplitMix64.
    ///
    /// This matches `rand`'s `seed_from_u64`, so historical seeds keep
    /// producing the streams they always did.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut mixer = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = mixer.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}
