//! SplitMix64 (Steele, Lea & Flood): the seeding and stream-derivation
//! generator. One addition and two xor-multiply mixes per output; passes
//! BigCrush; every seed gives a full-period 2^64 sequence.

use crate::Rng;

/// The SplitMix64 generator.
///
/// Used to expand a single `u64` into larger seeds (see
/// [`SeedableRng::seed_from_u64`](crate::SeedableRng::seed_from_u64)) and to
/// derive independent per-component seeds from one experiment root seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Golden-ratio increment of the Weyl sequence underlying SplitMix64.
    pub const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// A generator starting from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        Self::mix(self.state)
    }

    /// The stateless finalizer: mixes one Weyl-sequence element into an
    /// output. Useful directly for hashing small integers into seeds.
    #[inline]
    #[must_use]
    pub fn mix(z: u64) -> u64 {
        let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}
