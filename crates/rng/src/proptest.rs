//! A small seeded property-test harness.
//!
//! Replaces the external `proptest` dependency for this workspace's needs:
//! run a test body over `N` deterministically seeded random cases, and on
//! failure shrink the input by halving toward the simplest element while
//! printing the failing case seed for replay.
//!
//! # Writing properties
//!
//! ```
//! use omt_rng::{props, prop_assert};
//!
//! props! {
//!     #[cases(128)]
//!     fn addition_commutes(a in -1.0e6f64..1.0e6, b in -1.0e6f64..1.0e6) {
//!         prop_assert!((a + b - (b + a)).abs() == 0.0);
//!     }
//! }
//! # fn main() {} // the generated #[test] runs under the test harness
//! ```
//!
//! # Replaying a failure
//!
//! A failing case panics with a message like:
//!
//! ```text
//! property 'my_crate::tests::addition_commutes' failed (case 17 of 128)
//!   replay: OMT_PROP_SEED=4821062307356269930 cargo test addition_commutes
//!   shrunk input: (0.0, 1.5)
//! ```
//!
//! Setting `OMT_PROP_SEED` reruns exactly that case (sampling, shrinking
//! and reporting included), regardless of the configured case count.
//! `OMT_PROP_CASES` overrides the case count globally.

use core::fmt;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rngs::SmallRng;
use crate::{RngExt, SeedableRng, SplitMix64};

/// Default number of cases per property when `#[cases(N)]` is omitted.
pub const DEFAULT_CASES: u32 = 64;

/// Hard cap on shrink attempts per failure.
const MAX_SHRINK_STEPS: usize = 512;

/// A generator of random test inputs.
///
/// Sampling happens on a `Raw` representation (kept `Clone + Debug` so the
/// harness can replay and report it); `realize` converts raw to the value
/// handed to the test body. The split lets mapped strategies
/// ([`Strategy::prop_map`]) shrink through the map: shrinking always
/// operates on raws.
pub trait Strategy {
    /// The sampled representation the harness stores, shrinks and prints.
    type Raw: Clone + fmt::Debug;
    /// The value handed to the test body.
    type Value;

    /// Draw one raw input.
    fn sample_raw(&self, rng: &mut SmallRng) -> Self::Raw;

    /// Convert a raw input into the test value.
    fn realize(&self, raw: &Self::Raw) -> Self::Value;

    /// Candidate simplifications of `raw`, each one "halved" toward the
    /// simplest input. The harness keeps a candidate only if the test
    /// still fails on it.
    fn shrink_raw(&self, _raw: &Self::Raw) -> Vec<Self::Raw> {
        Vec::new()
    }

    /// A strategy producing `f(value)`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

// ---------------------------------------------------------------------------
// Numeric range strategies
// ---------------------------------------------------------------------------

/// Shrink candidates for `v` toward `lo`: a ladder `v - Δ` with `Δ`
/// halving from the full distance down to the smallest step. Earlier
/// entries are simpler; because the runner restarts the ladder from every
/// accepted candidate, the search converges on the minimal failing value
/// like a binary search.
trait HalvingLadder: Sized {
    fn halving_ladder(self, lo: Self) -> Vec<Self>;
}

macro_rules! impl_ladder_int {
    ($($t:ty),+) => {$(
        impl HalvingLadder for $t {
            fn halving_ladder(self, lo: Self) -> Vec<Self> {
                // i128 arithmetic sidesteps overflow for every int width
                // used here (≤ 64 bits).
                let v = self as i128;
                let mut delta = v - (lo as i128);
                let mut out = Vec::new();
                // Sign-symmetric so full-range strategies shrink negative
                // values toward zero too.
                while delta != 0 {
                    out.push((v - delta) as $t);
                    delta /= 2;
                }
                out
            }
        }
    )+};
}

impl_ladder_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_ladder_float {
    ($($t:ty),+) => {$(
        impl HalvingLadder for $t {
            fn halving_ladder(self, lo: Self) -> Vec<Self> {
                let mut delta = self - lo;
                if !delta.is_finite() || delta <= 0.0 {
                    return Vec::new();
                }
                let mut out = Vec::new();
                // 48 halvings take the step below any meaningful scale.
                for _ in 0..48 {
                    let candidate = self - delta;
                    if candidate == self {
                        break;
                    }
                    out.push(candidate.max(lo));
                    delta /= 2.0;
                }
                out
            }
        }
    )+};
}

impl_ladder_float!(f32, f64);

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Raw = $t;
            type Value = $t;

            fn sample_raw(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }

            fn realize(&self, raw: &$t) -> $t {
                *raw
            }

            fn shrink_raw(&self, raw: &$t) -> Vec<$t> {
                raw.halving_ladder(self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Raw = $t;
            type Value = $t;

            fn sample_raw(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }

            fn realize(&self, raw: &$t) -> $t {
                *raw
            }

            fn shrink_raw(&self, raw: &$t) -> Vec<$t> {
                raw.halving_ladder(*self.start())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---------------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------------

/// Strategy over the full range of `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for a primitive: every `u64`, a fair `bool`, …
#[must_use]
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Raw = $t;
            type Value = $t;

            fn sample_raw(&self, rng: &mut SmallRng) -> $t {
                rng.random()
            }

            fn realize(&self, raw: &$t) -> $t {
                *raw
            }

            fn shrink_raw(&self, raw: &$t) -> Vec<$t> {
                raw.halving_ladder(0)
            }
        }
    )+};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Raw = bool;
    type Value = bool;

    fn sample_raw(&self, rng: &mut SmallRng) -> bool {
        rng.random()
    }

    fn realize(&self, raw: &bool) -> bool {
        *raw
    }

    fn shrink_raw(&self, raw: &bool) -> Vec<bool> {
        if *raw {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Raw = S::Raw;
    type Value = T;

    fn sample_raw(&self, rng: &mut SmallRng) -> S::Raw {
        self.inner.sample_raw(rng)
    }

    fn realize(&self, raw: &S::Raw) -> T {
        (self.f)(self.inner.realize(raw))
    }

    fn shrink_raw(&self, raw: &S::Raw) -> Vec<S::Raw> {
        self.inner.shrink_raw(raw)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Raw = ($($s::Raw,)+);
            type Value = ($($s::Value,)+);

            fn sample_raw(&self, rng: &mut SmallRng) -> Self::Raw {
                ($(self.$idx.sample_raw(rng),)+)
            }

            fn realize(&self, raw: &Self::Raw) -> Self::Value {
                ($(self.$idx.realize(&raw.$idx),)+)
            }

            fn shrink_raw(&self, raw: &Self::Raw) -> Vec<Self::Raw> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink_raw(&raw.$idx) {
                        let mut next = raw.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
}

/// Collection strategies.
pub mod collection {
    use super::{SmallRng, Strategy};
    use crate::RngExt;
    use core::ops::Range;

    /// A `Vec` of `element` values with length drawn from `len` (half-open,
    /// like `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Raw = Vec<S::Raw>;
        type Value = Vec<S::Value>;

        fn sample_raw(&self, rng: &mut SmallRng) -> Vec<S::Raw> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample_raw(rng)).collect()
        }

        fn realize(&self, raw: &Vec<S::Raw>) -> Vec<S::Value> {
            raw.iter().map(|r| self.element.realize(r)).collect()
        }

        fn shrink_raw(&self, raw: &Vec<S::Raw>) -> Vec<Vec<S::Raw>> {
            let mut out = Vec::new();
            // Halve the length toward the minimum first: shorter inputs
            // shrink the search space for the per-element passes below.
            let min = self.len.start;
            if raw.len() > min {
                out.push(raw[..min].to_vec());
                let half = min + (raw.len() - min) / 2;
                if half > min && half < raw.len() {
                    out.push(raw[..half].to_vec());
                }
            }
            // Then halve individual elements (bounded, front-biased).
            for (i, r) in raw.iter().enumerate().take(16) {
                for cand in self.element.shrink_raw(r) {
                    let mut next = raw.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Union (`prop_oneof!`)
// ---------------------------------------------------------------------------

/// Object-safe sampling face of [`Strategy`], used to erase the branches of
/// a [`Union`]. Blanket-implemented for every strategy.
pub trait SampleValue<V> {
    /// Sample and realize in one step.
    fn sample_value(&self, rng: &mut SmallRng) -> V;
}

impl<S: Strategy> SampleValue<S::Value> for S {
    fn sample_value(&self, rng: &mut SmallRng) -> S::Value {
        let raw = self.sample_raw(rng);
        self.realize(&raw)
    }
}

/// A uniform choice between strategies with a common value type; built by
/// [`prop_oneof!`](crate::prop_oneof). Branch raws are erased, so unions
/// sample (and replay) deterministically but do not shrink.
pub struct Union<V> {
    branches: Vec<Box<dyn SampleValue<V>>>,
}

impl<V> Union<V> {
    /// A union of the given branches, each drawn with equal probability.
    #[must_use]
    pub fn new(branches: Vec<Box<dyn SampleValue<V>>>) -> Self {
        assert!(!branches.is_empty(), "empty union");
        Self { branches }
    }
}

impl<V: Clone + fmt::Debug> Strategy for Union<V> {
    type Raw = V;
    type Value = V;

    fn sample_raw(&self, rng: &mut SmallRng) -> V {
        let branch = rng.random_range(0..self.branches.len());
        self.branches[branch].sample_value(rng)
    }

    fn realize(&self, raw: &V) -> V {
        raw.clone()
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

fn env_u64(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    let v = v.trim();
    let parsed = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    match parsed {
        Ok(n) => Some(n),
        Err(_) => panic!("{name} must be a u64, got {v:?}"),
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn run_once<S: Strategy>(
    strategy: &S,
    test: &impl Fn(S::Value) -> Result<(), String>,
    raw: &S::Raw,
) -> Result<(), String> {
    let value = strategy.realize(raw);
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Run `test` over `cases` seeded random inputs from `strategy`.
///
/// Used through the [`props!`](crate::props) macro. Panics on the first
/// failing case after shrinking it, printing the case seed; set
/// `OMT_PROP_SEED` to that value to replay the single failing case, and
/// `OMT_PROP_CASES` to override the case count.
pub fn check<S: Strategy>(
    name: &str,
    cases: u32,
    strategy: &S,
    test: impl Fn(S::Value) -> Result<(), String>,
) {
    if let Some(seed) = env_u64("OMT_PROP_SEED") {
        run_case(name, 0, 1, seed, strategy, &test);
        return;
    }
    let cases = env_u64("OMT_PROP_CASES").map_or(cases, |n| n.max(1) as u32);
    let mut seeds = SplitMix64::new(fnv1a(name));
    for case in 0..cases {
        run_case(name, case, cases, seeds.next_u64(), strategy, &test);
    }
}

fn run_case<S: Strategy>(
    name: &str,
    case: u32,
    cases: u32,
    seed: u64,
    strategy: &S,
    test: &impl Fn(S::Value) -> Result<(), String>,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let raw = strategy.sample_raw(&mut rng);
    let Err(first_error) = run_once(strategy, test, &raw) else {
        return;
    };

    // Shrink: accept any halved candidate on which the test still fails.
    let mut current = raw;
    let mut error = first_error;
    let mut steps = 0;
    'shrinking: while steps < MAX_SHRINK_STEPS {
        for candidate in strategy.shrink_raw(&current) {
            steps += 1;
            if let Err(e) = run_once(strategy, test, &candidate) {
                current = candidate;
                error = e;
                continue 'shrinking;
            }
            if steps >= MAX_SHRINK_STEPS {
                break;
            }
        }
        break;
    }

    let short = name.rsplit("::").next().unwrap_or(name);
    panic!(
        "property '{name}' failed (case {case} of {cases})\n  \
         replay: OMT_PROP_SEED={seed} cargo test {short}\n  \
         shrunk input ({steps} shrink steps): {current:?}\n  \
         {error}"
    );
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: seeded random cases with shrinking and replay.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// running the body over [`DEFAULT_CASES`] sampled inputs (override with
/// `#[cases(N)]` above the `fn`). Use [`prop_assert!`](crate::prop_assert),
/// [`prop_assert_eq!`](crate::prop_assert_eq) and
/// [`prop_assume!`](crate::prop_assume) inside the body.
#[macro_export]
macro_rules! props {
    () => {};
    (
        #[cases($cases:expr)]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $crate::__props_one!($cases, $name, ($($arg in $strategy),+), $body);
        $crate::props! { $($rest)* }
    };
    (
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $crate::__props_one!(
            $crate::proptest::DEFAULT_CASES,
            $name,
            ($($arg in $strategy),+),
            $body
        );
        $crate::props! { $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __props_one {
    ($cases:expr, $name:ident, ($($arg:ident in $strategy:expr),+), $body:block) => {
        #[test]
        fn $name() {
            let strategy = ($($strategy,)+);
            $crate::proptest::check(
                concat!(module_path!(), "::", stringify!($name)),
                $cases,
                &strategy,
                |($($arg,)+)| -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    };
}

/// Like `assert!`, but reports the failing case to the harness so it can
/// shrink and print the replay seed. Only usable inside [`props!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Like `assert_eq!`, for [`props!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed at {}:{}: {:?} != {:?}",
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
}

/// Skip the current case when its sampled input does not meet a
/// precondition. Only usable inside [`props!`] bodies.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// A uniform choice between strategies sharing a value type. Branches are
/// sampled with equal probability; see [`Union`].
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::proptest::Union::new(::std::vec![
            $(::std::boxed::Box::new($branch) as ::std::boxed::Box<dyn $crate::proptest::SampleValue<_>>),+
        ])
    };
}
