//! Unit tests of the event loop itself: transmission slot assignment per
//! child order, stable tie-breaking, and run-to-run determinism at a
//! fixed seed — the guarantees the experiment pipeline's seed-pinned
//! golden numbers rest on.

use omt_geom::Point2;
use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;
use omt_sim::{simulate, simulate_with_rng, ChildOrder, SimConfig};
use omt_tree::{MulticastTree, TreeBuilder};

/// A source at the origin fanning out directly to `points`, attached in
/// input order.
fn fan(points: &[Point2]) -> MulticastTree<2> {
    let mut b = TreeBuilder::new(Point2::ORIGIN, points.to_vec());
    for i in 0..points.len() {
        b.attach_to_source(i).unwrap();
    }
    b.finish().unwrap()
}

#[test]
fn input_order_serializes_in_attach_order() {
    // Children at distances 3, 1, 2; serialization delay 10 dominates, so
    // slots are read directly off the arrival times.
    let tree = fan(&[
        Point2::new([3.0, 0.0]),
        Point2::new([1.0, 0.0]),
        Point2::new([0.0, 2.0]),
    ]);
    let rep = simulate(
        &tree,
        &SimConfig {
            serialization_delay: 10.0,
            child_order: ChildOrder::InputOrder,
            ..SimConfig::default()
        },
    );
    assert_eq!(rep.arrival, vec![3.0, 10.0 + 1.0, 20.0 + 2.0]);
    assert_eq!(rep.makespan, 22.0);
}

#[test]
fn nearest_first_serializes_by_distance() {
    let tree = fan(&[
        Point2::new([3.0, 0.0]),
        Point2::new([1.0, 0.0]),
        Point2::new([0.0, 2.0]),
    ]);
    let rep = simulate(
        &tree,
        &SimConfig {
            serialization_delay: 10.0,
            child_order: ChildOrder::NearestFirst,
            ..SimConfig::default()
        },
    );
    // Slot order by distance: node 1 (d=1), node 2 (d=2), node 0 (d=3).
    assert_eq!(rep.arrival, vec![20.0 + 3.0, 1.0, 10.0 + 2.0]);
}

#[test]
fn critical_first_prioritizes_the_deep_subtree() {
    // Node 0 is nearby but roots a long chain (0 -> 2); node 1 is a far
    // leaf. Critical-first must schedule node 0's copy first because its
    // delay-weighted subtree is deeper.
    let points = vec![
        Point2::new([1.0, 0.0]),
        Point2::new([0.0, 2.0]),
        Point2::new([6.0, 0.0]),
    ];
    let mut b = TreeBuilder::new(Point2::ORIGIN, points);
    b.attach_to_source(0).unwrap();
    b.attach_to_source(1).unwrap();
    b.attach(2, 0).unwrap();
    let tree = b.finish().unwrap();
    let rep = simulate(
        &tree,
        &SimConfig {
            serialization_delay: 10.0,
            child_order: ChildOrder::CriticalFirst,
            ..SimConfig::default()
        },
    );
    // Source slots: node 0 (depth 1 + 5 = 6) before node 1 (depth 2).
    assert_eq!(rep.arrival[0], 1.0);
    assert_eq!(rep.arrival[1], 10.0 + 2.0);
    // Node 2 follows its parent: 1.0 arrival + 5.0 propagation.
    assert_eq!(rep.arrival[2], 6.0);
}

#[test]
fn equal_keys_tie_break_to_attach_order() {
    // All four children equidistant: every ordering key ties, and the
    // stable sort must fall back to attach order — bit-identical to
    // InputOrder for every schedule.
    let pts: Vec<Point2> = [(2.0, 0.0), (0.0, 2.0), (-2.0, 0.0), (0.0, -2.0)]
        .iter()
        .map(|&(x, y)| Point2::new([x, y]))
        .collect();
    let tree = fan(&pts);
    let reference = simulate(
        &tree,
        &SimConfig {
            serialization_delay: 7.0,
            child_order: ChildOrder::InputOrder,
            ..SimConfig::default()
        },
    );
    for order in [ChildOrder::NearestFirst, ChildOrder::CriticalFirst] {
        let rep = simulate(
            &tree,
            &SimConfig {
                serialization_delay: 7.0,
                child_order: order,
                ..SimConfig::default()
            },
        );
        assert_eq!(rep, reference, "{order:?} broke the tie differently");
    }
}

#[test]
fn arrivals_are_monotone_along_every_path() {
    // On a deterministic config, every node must arrive strictly after
    // the node it receives from.
    let points: Vec<Point2> = (0..40)
        .map(|i| {
            let a = i as f64 * 0.37;
            Point2::new([a.cos() * (1.0 + i as f64 * 0.05), a.sin()])
        })
        .collect();
    let tree = omt_core::PolarGridBuilder::new()
        .build(Point2::ORIGIN, &points)
        .unwrap();
    let rep = simulate(
        &tree,
        &SimConfig {
            serialization_delay: 0.5,
            processing_delay: 0.25,
            ..SimConfig::default()
        },
    );
    for u in tree.iter_bfs() {
        for &c in tree.children(u) {
            assert!(
                rep.arrival[c as usize] > rep.arrival[u],
                "child {c} arrived before parent {u}"
            );
        }
    }
}

/// The tie-break guarantee at *high* fan-in: 96 children all exactly
/// equidistant from the source, so every ordering key of every schedule
/// ties for every child. The serialization slots must fall back to attach
/// order — bit-identical to `InputOrder` — and stay strictly increasing.
/// The 4-child test above cannot catch instability that only appears once
/// the sort's internal runs exceed single-digit lengths; this one can.
#[test]
fn equal_keys_tie_break_at_64_plus_fanin() {
    let n = 96usize;
    // The four axis points have *bitwise* distance 2.0 (no rounding), so
    // cycling through them keeps every ordering key exactly tied — points
    // on a trigonometric circle would differ in the last ulp and the
    // orders would legitimately diverge. Duplicate points are supported
    // throughout the stack.
    let axis = [(2.0, 0.0), (0.0, 2.0), (-2.0, 0.0), (0.0, -2.0)];
    let pts: Vec<Point2> = (0..n)
        .map(|i| {
            let (x, y) = axis[i % 4];
            Point2::new([x, y])
        })
        .collect();
    let tree = fan(&pts);
    let cfg = |order| SimConfig {
        serialization_delay: 5.0,
        child_order: order,
        ..SimConfig::default()
    };
    let reference = simulate(&tree, &cfg(ChildOrder::InputOrder));
    // Attach order i gets slot i: arrival = i·5 + 2 exactly.
    for (i, &t) in reference.arrival.iter().enumerate() {
        assert_eq!(t, i as f64 * 5.0 + 2.0, "slot of child {i}");
    }
    for order in [ChildOrder::NearestFirst, ChildOrder::CriticalFirst] {
        let rep = simulate(&tree, &cfg(order));
        assert_eq!(rep, reference, "{order:?} broke a 96-way tie");
    }
}

/// The message engine's same-timestamp contract at ≥64 simultaneous
/// deliveries: a raw `BinaryHeap` pops equal keys in arbitrary (sift)
/// order, so without the explicit sequence tiebreak this test fails —
/// it pins the FIFO fix.
#[test]
fn event_queue_fifo_at_64_plus_simultaneous_deliveries() {
    use omt_sim::EventQueue;
    let mut q = EventQueue::new();
    // Prime the heap with structure: a few earlier events so the
    // simultaneous block lands in a non-trivial heap shape.
    for i in 0..7u32 {
        q.schedule(0.5, i, 1000 + i);
    }
    // 128 deliveries to one host at exactly t = 1.0, interleaved with 128
    // same-instant deliveries to other hosts.
    for i in 0..128u32 {
        q.schedule(1.0, 42, i);
        q.schedule(1.0, i % 5, 500 + i);
    }
    for _ in 0..7 {
        q.pop();
    }
    let mut seen = Vec::new();
    let mut others = Vec::new();
    while let Some(d) = q.pop() {
        assert_eq!(d.time, 1.0);
        if d.dst == 42 {
            seen.push(d.msg);
        } else {
            others.push(d.msg);
        }
    }
    // FIFO per the global schedule order, for both streams.
    assert_eq!(seen, (0..128).collect::<Vec<_>>());
    assert_eq!(others, (500..628).collect::<Vec<_>>());
}

/// The mailbox view of the same scenario: one host's 128 same-instant
/// messages arrive as a single FIFO batch, and the interleaved messages
/// to other hosts are neither lost nor reordered.
#[test]
fn mailbox_drains_64_plus_deliveries_in_fifo_order() {
    use omt_sim::EventQueue;
    let mut q = EventQueue::new();
    for i in 0..128u32 {
        q.schedule(1.0, 42, i);
        q.schedule(1.0, 7, 500 + i);
    }
    let mut batch = Vec::new();
    let (t, dst) = q.pop_mailbox(&mut batch).unwrap();
    assert_eq!((t, dst), (1.0, 42));
    assert_eq!(
        batch.iter().map(|d| d.msg).collect::<Vec<_>>(),
        (0..128).collect::<Vec<_>>()
    );
    let mut batch2 = Vec::new();
    let (t2, dst2) = q.pop_mailbox(&mut batch2).unwrap();
    assert_eq!((t2, dst2), (1.0, 7));
    assert_eq!(
        batch2.iter().map(|d| d.msg).collect::<Vec<_>>(),
        (500..628).collect::<Vec<_>>()
    );
    assert!(q.is_empty());
}

#[test]
fn jittered_runs_are_deterministic_at_a_fixed_seed() {
    let points: Vec<Point2> = (0..60)
        .map(|i| {
            let a = i as f64 * 0.61;
            Point2::new([a.cos() * (0.2 + i as f64 * 0.03), a.sin() * 1.3])
        })
        .collect();
    let tree = omt_core::PolarGridBuilder::new()
        .build(Point2::ORIGIN, &points)
        .unwrap();
    let cfg = SimConfig {
        serialization_delay: 0.1,
        jitter: 0.5,
        ..SimConfig::default()
    };
    let run = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        simulate_with_rng(&tree, &cfg, &mut rng)
    };
    // Same seed: bit-identical reports (PartialEq over all f64 fields).
    assert_eq!(run(9), run(9));
    assert_eq!(run(1234), run(1234));
    // Different seeds draw different jitter somewhere.
    assert_ne!(run(9).arrival, run(10).arrival);
    // Jitter only ever delays packets relative to the jitter-free run.
    let clean = simulate(&tree, &SimConfig { jitter: 0.0, ..cfg });
    let jittered = run(9);
    for (j, c) in jittered.arrival.iter().zip(&clean.arrival) {
        assert!(*j >= *c - 1e-12, "jitter made a packet arrive early");
    }
}
