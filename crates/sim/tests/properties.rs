//! Property-based tests of the dissemination simulator.

use omt_core::PolarGridBuilder;
use omt_geom::Point2;
use omt_rng::proptest::{any, collection, Strategy};
use omt_rng::{prop_assert, prop_assert_eq, props};
use omt_sim::{simulate, simulate_with_failures, ChildOrder, SimConfig};

fn arb_points() -> impl Strategy<Value = Vec<Point2>> {
    collection::vec(
        (-2.0f64..2.0, -2.0f64..2.0).prop_map(|(x, y)| Point2::new([x, y])),
        1..120,
    )
}

props! {
    #[cases(48)]
    fn propagation_only_equals_tree_depths(points in arb_points()) {
        let tree = PolarGridBuilder::new().build(Point2::ORIGIN, &points).unwrap();
        let rep = simulate(&tree, &SimConfig::propagation_only());
        for i in 0..tree.len() {
            prop_assert!((rep.arrival[i] - tree.depth(i)).abs() < 1e-9);
        }
        prop_assert!((rep.makespan - tree.radius()).abs() < 1e-9);
    }

    #[cases(48)]
    fn costs_are_monotone(points in arb_points(), s in 0.0f64..0.1, p in 0.0f64..0.1) {
        let tree = PolarGridBuilder::new().build(Point2::ORIGIN, &points).unwrap();
        let base = simulate(&tree, &SimConfig::propagation_only());
        let loaded = simulate(
            &tree,
            &SimConfig {
                serialization_delay: s,
                processing_delay: p,
                ..SimConfig::default()
            },
        );
        // Every arrival can only get later when costs are added.
        for (a, b) in loaded.arrival.iter().zip(&base.arrival) {
            prop_assert!(*a >= *b - 1e-12);
        }
        prop_assert!(loaded.makespan >= base.makespan - 1e-12);
        prop_assert!(loaded.mean_arrival >= base.mean_arrival - 1e-12);
    }

    #[cases(48)]
    fn critical_first_never_loses_on_tiny_configs(points in arb_points(), s in 0.0f64..0.2) {
        // Critical-first is the optimal two-child schedule; with fanout <= 2
        // it must never lose to input order.
        let tree = PolarGridBuilder::new()
            .max_out_degree(2)
            .build(Point2::ORIGIN, &points)
            .unwrap();
        let cfg = |order| SimConfig {
            serialization_delay: s,
            child_order: order,
            ..SimConfig::default()
        };
        let critical = simulate(&tree, &cfg(ChildOrder::CriticalFirst)).makespan;
        let input = simulate(&tree, &cfg(ChildOrder::InputOrder)).makespan;
        prop_assert!(critical <= input + 1e-9, "{critical} vs {input}");
    }

    #[cases(48)]
    fn failures_partition_receivers(points in arb_points(), selector in any::<u64>()) {
        let tree = PolarGridBuilder::new().build(Point2::ORIGIN, &points).unwrap();
        let failed: Vec<usize> = (0..tree.len()).filter(|i| (selector >> (i % 64)) & 1 == 1).collect();
        let rep = simulate_with_failures(&tree, &failed);
        prop_assert_eq!(rep.reached + rep.stranded + rep.crashed, tree.len());
        // Delivered nodes have fully delivered ancestor chains.
        for i in 0..tree.len() {
            if rep.delivered[i] {
                for u in tree.path_to_source(i) {
                    prop_assert!(rep.delivered[u], "delivered node {i} has undelivered ancestor {u}");
                }
            }
        }
        // No failures at all: everyone reached.
        let clean = simulate_with_failures(&tree, &[]);
        prop_assert_eq!(clean.reached, tree.len());
    }
}
