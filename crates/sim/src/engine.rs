//! Deterministic discrete-event message engine with per-host mailboxes.
//!
//! The dissemination simulator in the crate root walks a *finished* tree;
//! this module is the substrate for protocols that must *build* the tree
//! through messages: a priority queue of scheduled deliveries with a total
//! deterministic order, and a mailbox view that hands a host every message
//! arriving at one instant as a single batch.
//!
//! # Ordering contract
//!
//! Deliveries are ordered by `(time, sequence)`, where the sequence number
//! is assigned at scheduling time. Two deliveries at the *same* timestamp
//! therefore pop in the order they were scheduled — FIFO, never heap
//! order. `std::collections::BinaryHeap` alone does **not** provide this
//! (sift-up/sift-down reorder equal keys arbitrarily), which is exactly
//! the instability the ≥64-fan-in stress test in `tests/event_loop.rs`
//! pins down; the explicit sequence tiebreak is the fix.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A host address in the engine. Address 0 is conventionally the protocol
/// rendezvous (the multicast source).
pub type HostId = u32;

/// One delivered message: arrival time, destination, payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivery<M> {
    /// Arrival (delivery) time.
    pub time: f64,
    /// Destination host.
    pub dst: HostId,
    /// The payload.
    pub msg: M,
}

/// Internal heap entry; ordered by `(time, seq)` ascending via `Reverse`
/// semantics baked into the `Ord` impl (the heap is a max-heap, so the
/// comparison is inverted here).
struct Scheduled<M> {
    time: f64,
    seq: u64,
    dst: HostId,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: the smallest (time, seq) must be the heap maximum.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event queue.
///
/// # Examples
///
/// ```
/// use omt_sim::engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, 7, "late");
/// q.schedule(1.0, 3, "early");
/// q.schedule(1.0, 3, "early-second"); // same instant: FIFO
/// assert_eq!(q.pop().unwrap().msg, "early");
/// assert_eq!(q.pop().unwrap().msg, "early-second");
/// assert_eq!(q.pop().unwrap().msg, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<M> {
    heap: BinaryHeap<Scheduled<M>>,
    seq: u64,
    now: f64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// The time of the most recently popped delivery (0 before any pop).
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending deliveries.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no deliveries are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules a delivery at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN, infinite, or before [`EventQueue::now`]
    /// (the past is immutable).
    pub fn schedule(&mut self, time: f64, dst: HostId, msg: M) {
        assert!(time.is_finite(), "non-finite delivery time {time}");
        assert!(
            time >= self.now,
            "delivery at {time} scheduled before current time {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            time,
            seq,
            dst,
            msg,
        });
    }

    /// Pops the next delivery in `(time, seq)` order and advances the
    /// clock to it.
    pub fn pop(&mut self) -> Option<Delivery<M>> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some(Delivery {
            time: s.time,
            dst: s.dst,
            msg: s.msg,
        })
    }

    /// Pops the next delivery **and** every further delivery addressed to
    /// the same host at the same instant — the host's mailbox for that
    /// tick — appending them to `out` in scheduling (FIFO) order. Returns
    /// the `(time, host)` of the batch, or `None` if the queue is empty.
    ///
    /// Deliveries to *other* hosts at the same instant stay queued: each
    /// host drains its own mailbox in the deterministic global order.
    pub fn pop_mailbox(&mut self, out: &mut Vec<Delivery<M>>) -> Option<(f64, HostId)> {
        let first = self.pop()?;
        let (time, dst) = (first.time, first.dst);
        out.push(first);
        // Same-instant deliveries to this host may interleave (in seq
        // order) with deliveries to other hosts; drain the whole instant,
        // keep ours, and push the rest back (their seq keys restore the
        // original order).
        let mut stash = Vec::new();
        while let Some(head) = self.heap.peek() {
            if head.time != time {
                break;
            }
            let s = self.heap.pop().expect("peeked");
            if s.dst == dst {
                out.push(Delivery {
                    time: s.time,
                    dst: s.dst,
                    msg: s.msg,
                });
            } else {
                stash.push(s);
            }
        }
        self.heap.extend(stash);
        Some((time, dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 0, 'b');
        q.schedule(0.5, 1, 'a');
        q.schedule(1.0, 0, 'c');
        let popped: String = std::iter::from_fn(|| q.pop()).map(|d| d.msg).collect();
        assert_eq!(popped, "abc");
    }

    #[test]
    fn mailbox_batches_same_instant_same_host_only() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 5, 1);
        q.schedule(1.0, 9, 2); // other host, same instant
        q.schedule(1.0, 5, 3);
        q.schedule(2.0, 5, 4); // same host, later
        let mut box1 = Vec::new();
        assert_eq!(q.pop_mailbox(&mut box1), Some((1.0, 5)));
        assert_eq!(box1.iter().map(|d| d.msg).collect::<Vec<_>>(), [1, 3]);
        let mut box2 = Vec::new();
        assert_eq!(q.pop_mailbox(&mut box2), Some((1.0, 9)));
        assert_eq!(box2[0].msg, 2);
        let mut box3 = Vec::new();
        assert_eq!(q.pop_mailbox(&mut box3), Some((2.0, 5)));
        assert_eq!(box3[0].msg, 4);
        assert!(q.pop_mailbox(&mut Vec::new()).is_none());
    }

    #[test]
    fn clock_is_monotone() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 0, ());
        q.schedule(3.0, 1, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 3.0);
        // Scheduling at the current instant is allowed…
        q.schedule(3.0, 2, ());
        // …but the past is rejected.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.schedule(2.9, 0, ());
        }));
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_time() {
        EventQueue::new().schedule(f64::NAN, 0, ());
    }
}
