//! Discrete-event dissemination simulation over multicast trees.
//!
//! The paper's degree constraint is a *proxy* for bandwidth: a host that
//! forwards to `k` children must serialize `k` copies of every packet onto
//! its uplink. This crate makes that cost explicit with an event-driven
//! model, so the trade-off the paper optimizes (path length vs. fan-out)
//! can be observed directly:
//!
//! * [`simulate`] — delivery timeline of one packet: each node starts
//!   forwarding after it has fully received the packet, sends to its
//!   children one after another ([`SimConfig::serialization_delay`] apart),
//!   and each copy then takes the link's propagation delay (the Euclidean
//!   edge length) plus optional random jitter;
//! * [`ChildOrder`] — the forwarding schedule (critical-subtree-first,
//!   nearest-first, or input order) — a scheduling ablation on top of the
//!   tree structure;
//! * [`simulate_with_failures`] — which receivers a packet still reaches
//!   when a set of hosts has crashed, and how much of the tree is lost.
//!
//! With `serialization_delay = 0` and no jitter, the makespan of the
//! simulation equals the tree radius exactly — tested — so the simulator
//! is a strict generalization of the paper's delay model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fault;

pub use engine::{Delivery, EventQueue};
pub use fault::{FaultPlan, NetStats, Network, Partition};

use omt_rng::{Rng, RngExt, SeedableRng};

use omt_tree::MulticastTree;

/// How a node orders its children when serializing transmissions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChildOrder {
    /// Deepest-subtree-first (critical path first) — the classic
    /// makespan-reducing schedule.
    #[default]
    CriticalFirst,
    /// Closest child first — greedy but ignores subtrees.
    NearestFirst,
    /// The order children were attached in.
    InputOrder,
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Time to push one packet copy onto the uplink; the `i`-th child's
    /// transmission starts `i · serialization_delay` after forwarding
    /// begins. This is the bandwidth cost the degree constraint models.
    pub serialization_delay: f64,
    /// Fixed per-hop processing time before a node starts forwarding.
    pub processing_delay: f64,
    /// Forwarding schedule.
    pub child_order: ChildOrder,
    /// Uniform per-link extra delay in `[0, jitter]` (0 = deterministic).
    pub jitter: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            serialization_delay: 0.0,
            processing_delay: 0.0,
            child_order: ChildOrder::CriticalFirst,
            jitter: 0.0,
        }
    }
}

impl SimConfig {
    /// The pure propagation model of the paper: no serialization, no
    /// processing, no jitter — makespan equals the tree radius.
    pub fn propagation_only() -> Self {
        Self::default()
    }

    fn validate(&self) {
        assert!(
            self.serialization_delay >= 0.0 && self.serialization_delay.is_finite(),
            "bad serialization delay"
        );
        assert!(
            self.processing_delay >= 0.0 && self.processing_delay.is_finite(),
            "bad processing delay"
        );
        assert!(self.jitter >= 0.0 && self.jitter.is_finite(), "bad jitter");
    }
}

/// The delivery timeline of one packet.
#[derive(Clone, Debug, PartialEq)]
pub struct DeliveryReport {
    /// Arrival time at each receiver.
    pub arrival: Vec<f64>,
    /// Time of the last delivery (0 for an empty tree).
    pub makespan: f64,
    /// Mean arrival time (0 for an empty tree).
    pub mean_arrival: f64,
}

/// Simulates the dissemination of one packet from the source at time 0.
///
/// Deterministic when `config.jitter == 0`; otherwise pass an RNG via
/// [`simulate_with_rng`]. This convenience wrapper panics on nonzero
/// jitter to prevent silently unseeded randomness.
///
/// # Panics
///
/// Panics if `config.jitter != 0` (use [`simulate_with_rng`]) or any
/// config field is negative/non-finite.
pub fn simulate<const D: usize>(tree: &MulticastTree<D>, config: &SimConfig) -> DeliveryReport {
    assert!(
        config.jitter == 0.0,
        "jitter needs an RNG; use simulate_with_rng"
    );
    // The RNG is never sampled when jitter is zero; any seed works.
    let mut unused = omt_rng::rngs::SmallRng::seed_from_u64(0);
    simulate_with_rng(tree, config, &mut unused)
}

/// [`simulate`] with an explicit RNG for jitter.
///
/// # Panics
///
/// Panics if any config field is negative or non-finite.
pub fn simulate_with_rng<const D: usize>(
    tree: &MulticastTree<D>,
    config: &SimConfig,
    rng: &mut dyn Rng,
) -> DeliveryReport {
    config.validate();
    let n = tree.len();
    if n == 0 {
        return DeliveryReport {
            arrival: vec![],
            makespan: 0.0,
            mean_arrival: 0.0,
        };
    }
    // Subtree depths for the critical-first schedule (delay-weighted).
    let subtree_depth = subtree_depths(tree);
    let order_children = |node: Option<usize>, children: &[u32]| -> Vec<u32> {
        let mut c: Vec<u32> = children.to_vec();
        let pos = |i: u32| {
            match node {
                None => tree.source(),
                Some(p) => tree.point(p),
            }
            .distance(&tree.point(i as usize))
        };
        match config.child_order {
            ChildOrder::InputOrder => {}
            ChildOrder::NearestFirst => {
                c.sort_by(|&a, &b| pos(a).total_cmp(&pos(b)));
            }
            ChildOrder::CriticalFirst => {
                c.sort_by(|&a, &b| {
                    let da = pos(a) + subtree_depth[a as usize];
                    let db = pos(b) + subtree_depth[b as usize];
                    db.total_cmp(&da)
                });
            }
        }
        c
    };
    let mut arrival = vec![f64::NAN; n];
    // Process nodes top-down: the source first, then BFS order (parents
    // before children is all the schedule needs).
    let forward = |ready_at: f64,
                   node: Option<usize>,
                   children: &[u32],
                   arrival: &mut Vec<f64>,
                   rng: &mut dyn Rng| {
        let start = ready_at + config.processing_delay;
        for (slot, &c) in order_children(node, children).iter().enumerate() {
            let from = match node {
                None => tree.source(),
                Some(p) => tree.point(p),
            };
            let propagation = from.distance(&tree.point(c as usize));
            let jitter = if config.jitter > 0.0 {
                rng.random_range(0.0..config.jitter)
            } else {
                0.0
            };
            arrival[c as usize] =
                start + slot as f64 * config.serialization_delay + propagation + jitter;
        }
    };
    forward(0.0, None, tree.source_children(), &mut arrival, rng);
    for u in tree.iter_bfs() {
        let at = arrival[u];
        debug_assert!(!at.is_nan(), "BFS order guarantees arrival is known");
        forward(at, Some(u), tree.children(u), &mut arrival, rng);
    }
    let makespan = arrival.iter().copied().fold(0.0, f64::max);
    let mean_arrival = arrival.iter().sum::<f64>() / n as f64;
    DeliveryReport {
        arrival,
        makespan,
        mean_arrival,
    }
}

/// Delay-weighted depth of each node's subtree (longest downstream path).
fn subtree_depths<const D: usize>(tree: &MulticastTree<D>) -> Vec<f64> {
    let n = tree.len();
    let mut depth = vec![0.0f64; n];
    // Children are processed before parents when BFS order is reversed.
    let order: Vec<usize> = tree.iter_bfs().collect();
    for &u in order.iter().rev() {
        let mut best = 0.0f64;
        for &c in tree.children(u) {
            let d = tree.point(u).distance(&tree.point(c as usize)) + depth[c as usize];
            best = best.max(d);
        }
        depth[u] = best;
    }
    depth
}

/// Outcome of a dissemination with crashed hosts.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureReport {
    /// Whether each receiver got the packet (crashed hosts count as not
    /// delivered).
    pub delivered: Vec<bool>,
    /// Number of surviving receivers that got the packet.
    pub reached: usize,
    /// Number of *surviving* receivers cut off by upstream crashes.
    pub stranded: usize,
    /// Number of crashed receivers.
    pub crashed: usize,
}

impl FailureReport {
    /// Fraction of *surviving* receivers cut off by upstream crashes
    /// (0.0 when every receiver crashed or the tree is empty).
    pub fn stranded_fraction(&self) -> f64 {
        let survivors = self.delivered.len() - self.crashed;
        if survivors == 0 {
            0.0
        } else {
            self.stranded as f64 / survivors as f64
        }
    }

    /// Combines per-group reports (e.g. one per overlay shard) into one.
    ///
    /// Counts add; `delivered` is the groups' vectors concatenated in the
    /// given order (receiver indices are group-relative afterwards). The
    /// aggregate's [`stranded_fraction`](Self::stranded_fraction) is the
    /// correct membership-wide value — `Σ stranded / Σ survivors` — which
    /// an average of per-group fractions gets wrong whenever groups fail
    /// unevenly, because small heavily-crashed groups would be weighted
    /// like large intact ones.
    pub fn aggregate<'a>(parts: impl IntoIterator<Item = &'a FailureReport>) -> FailureReport {
        let mut total = FailureReport {
            delivered: Vec::new(),
            reached: 0,
            stranded: 0,
            crashed: 0,
        };
        for p in parts {
            total.delivered.extend_from_slice(&p.delivered);
            total.reached += p.reached;
            total.stranded += p.stranded;
            total.crashed += p.crashed;
        }
        total
    }
}

/// Runs [`simulate_with_failures`] and splits the outcome into one
/// [`FailureReport`] per group, where `group_of(i)` assigns receiver `i`
/// to a group in `0..groups` (e.g. the owning shard of a sharded
/// overlay). Recombine with [`FailureReport::aggregate`].
///
/// # Panics
///
/// Panics if a failed index is out of range or `group_of` returns a group
/// `>= groups`.
pub fn failure_reports_by_group<const D: usize>(
    tree: &MulticastTree<D>,
    failed: &[usize],
    group_of: impl Fn(usize) -> usize,
    groups: usize,
) -> Vec<FailureReport> {
    let global = simulate_with_failures(tree, failed);
    let mut crashed_flag = vec![false; tree.len()];
    for &f in failed {
        crashed_flag[f] = true;
    }
    let mut parts: Vec<FailureReport> = (0..groups)
        .map(|_| FailureReport {
            delivered: Vec::new(),
            reached: 0,
            stranded: 0,
            crashed: 0,
        })
        .collect();
    for i in 0..tree.len() {
        let g = group_of(i);
        assert!(
            g < groups,
            "receiver {i} assigned to out-of-range group {g}"
        );
        let part = &mut parts[g];
        part.delivered.push(global.delivered[i]);
        if crashed_flag[i] {
            part.crashed += 1;
        } else if global.delivered[i] {
            part.reached += 1;
        } else {
            part.stranded += 1;
        }
    }
    parts
}

/// Which receivers a packet still reaches when the hosts in `failed` have
/// crashed (they neither receive nor forward).
///
/// # Panics
///
/// Panics if a failed index is out of range.
pub fn simulate_with_failures<const D: usize>(
    tree: &MulticastTree<D>,
    failed: &[usize],
) -> FailureReport {
    let n = tree.len();
    let mut crashed_flag = vec![false; n];
    for &f in failed {
        assert!(f < n, "failed index {f} out of range");
        crashed_flag[f] = true;
    }
    let mut delivered = vec![false; n];
    for u in tree.iter_bfs() {
        if crashed_flag[u] {
            continue;
        }
        let parent_ok = match tree.parent(u) {
            omt_tree::ParentRef::Source => true,
            omt_tree::ParentRef::Node(p) => delivered[p],
        };
        delivered[u] = parent_ok;
    }
    let crashed = crashed_flag.iter().filter(|&&c| c).count();
    let reached = delivered.iter().filter(|&&d| d).count();
    let stranded = n - crashed - reached;
    FailureReport {
        delivered,
        reached,
        stranded,
        crashed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::Point2;
    use omt_tree::TreeBuilder;

    /// source -> 0 (1,0) -> 1 (2,0); source -> 2 (0,1)
    fn tree() -> MulticastTree<2> {
        let pts = vec![
            Point2::new([1.0, 0.0]),
            Point2::new([2.0, 0.0]),
            Point2::new([0.0, 1.0]),
        ];
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts);
        b.attach_to_source(0).unwrap();
        b.attach(1, 0).unwrap();
        b.attach_to_source(2).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn propagation_only_equals_radius() {
        let t = tree();
        let rep = simulate(&t, &SimConfig::propagation_only());
        assert_eq!(rep.arrival, vec![1.0, 2.0, 1.0]);
        assert_eq!(rep.makespan, t.radius());
        assert!((rep.mean_arrival - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn serialization_penalizes_fanout() {
        let t = tree();
        let cfg = SimConfig {
            serialization_delay: 0.5,
            ..SimConfig::default()
        };
        let rep = simulate(&t, &cfg);
        // Critical-first: the source serves child 0 (subtree depth 1+1=2)
        // before child 2 (depth 1). Child 1 unaffected (only child).
        assert_eq!(rep.arrival[0], 1.0);
        assert_eq!(rep.arrival[1], 2.0);
        assert_eq!(rep.arrival[2], 1.5);
        assert_eq!(rep.makespan, 2.0);
    }

    #[test]
    fn child_order_matters() {
        let t = tree();
        let nearest = SimConfig {
            serialization_delay: 0.5,
            child_order: ChildOrder::NearestFirst,
            ..SimConfig::default()
        };
        let rep = simulate(&t, &nearest);
        // Nearest-first serves child 2 (dist 1.0 ties with child 0; stable
        // sort keeps input order on ties, so child 0 first — construct a
        // clearer case below).
        assert!(rep.makespan >= 2.0);

        // A case where critical-first strictly beats nearest-first:
        // a very close leaf and a farther child with a deep subtree.
        let pts = vec![
            Point2::new([0.1, 0.0]), // close leaf
            Point2::new([1.0, 0.0]), // subtree root
            Point2::new([2.0, 0.0]), // deep child
        ];
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts);
        b.attach_to_source(0).unwrap();
        b.attach_to_source(1).unwrap();
        b.attach(2, 1).unwrap();
        let t = b.finish().unwrap();
        let mk = |order| {
            simulate(
                &t,
                &SimConfig {
                    serialization_delay: 1.0,
                    child_order: order,
                    ..SimConfig::default()
                },
            )
            .makespan
        };
        assert!(
            mk(ChildOrder::CriticalFirst) < mk(ChildOrder::NearestFirst),
            "{} vs {}",
            mk(ChildOrder::CriticalFirst),
            mk(ChildOrder::NearestFirst)
        );
    }

    #[test]
    fn processing_delay_accumulates_per_hop() {
        let t = tree();
        let cfg = SimConfig {
            processing_delay: 0.25,
            ..SimConfig::default()
        };
        let rep = simulate(&t, &cfg);
        assert_eq!(rep.arrival[0], 1.25);
        assert_eq!(rep.arrival[1], 2.5); // two hops, two processing delays
    }

    #[test]
    fn jitter_requires_rng_and_is_bounded() {
        use omt_rng::rngs::SmallRng;
        use omt_rng::SeedableRng;
        let t = tree();
        let cfg = SimConfig {
            jitter: 0.1,
            ..SimConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let rep = simulate_with_rng(&t, &cfg, &mut rng);
        let base = simulate(&t, &SimConfig::propagation_only());
        for (j, b) in rep.arrival.iter().zip(&base.arrival) {
            assert!(*j >= *b && *j <= *b + 0.2 + 1e-12, "{j} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "use simulate_with_rng")]
    fn simulate_rejects_jitter_without_rng() {
        let t = tree();
        let _ = simulate(
            &t,
            &SimConfig {
                jitter: 0.5,
                ..SimConfig::default()
            },
        );
    }

    #[test]
    fn empty_tree() {
        let t = TreeBuilder::<2>::new(Point2::ORIGIN, vec![])
            .finish()
            .unwrap();
        let rep = simulate(&t, &SimConfig::propagation_only());
        assert_eq!(rep.makespan, 0.0);
        let f = simulate_with_failures(&t, &[]);
        assert_eq!(f.reached, 0);
    }

    #[test]
    fn failures_cut_subtrees() {
        let t = tree();
        // Crash node 0: node 1 is stranded, node 2 unaffected.
        let f = simulate_with_failures(&t, &[0]);
        assert_eq!(f.delivered, vec![false, false, true]);
        assert_eq!(f.crashed, 1);
        assert_eq!(f.stranded, 1);
        assert_eq!(f.reached, 1);
        // No failures: everyone delivered.
        let f = simulate_with_failures(&t, &[]);
        assert_eq!(f.reached, 3);
        assert_eq!(f.stranded, 0);
    }

    #[test]
    fn stranded_fraction_normalizes_over_survivors() {
        let t = tree();
        // Crash node 0: of the 2 survivors, node 1 is stranded.
        let f = simulate_with_failures(&t, &[0]);
        assert_eq!(f.stranded_fraction(), 0.5);
        let f = simulate_with_failures(&t, &[]);
        assert_eq!(f.stranded_fraction(), 0.0);
        // All receivers crashed: no survivors, fraction defined as 0.
        let f = simulate_with_failures(&t, &[0, 1, 2]);
        assert_eq!(f.stranded_fraction(), 0.0);
        // Empty tree.
        let empty = TreeBuilder::<2>::new(Point2::ORIGIN, vec![])
            .finish()
            .unwrap();
        assert_eq!(simulate_with_failures(&empty, &[]).stranded_fraction(), 0.0);
    }

    #[test]
    fn star_loses_to_tree_under_serialization() {
        // The experiment that motivates degree bounds: with serialization
        // cost, a huge-fanout star is slower than a degree-6 tree.
        use omt_baselines::star_tree;
        use omt_core::PolarGridBuilder;
        use omt_geom::{Disk, Region};
        use omt_rng::rngs::SmallRng;
        use omt_rng::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(2);
        let pts = Disk::unit().sample_n(&mut rng, 2000);
        let cfg = SimConfig {
            serialization_delay: 0.01,
            ..SimConfig::default()
        };
        let star = star_tree(Point2::ORIGIN, &pts).unwrap();
        let grid = PolarGridBuilder::new().build(Point2::ORIGIN, &pts).unwrap();
        let star_makespan = simulate(&star, &cfg).makespan;
        let grid_makespan = simulate(&grid, &cfg).makespan;
        // Star: ~2000 serialized sends = ~20 time units; grid: bounded
        // fanout pipelines the work.
        assert!(
            grid_makespan < star_makespan / 3.0,
            "grid {grid_makespan} vs star {star_makespan}"
        );
    }

    /// Pins the per-group aggregation against the unsharded global
    /// report: splitting a mass-disconnect by shard and aggregating must
    /// reproduce the global counts and stranded fraction exactly, even
    /// when the shards fail maximally unevenly — while the naive mean of
    /// per-shard fractions (the bug this API replaces) does not.
    #[test]
    fn per_group_aggregate_pins_unsharded_value() {
        use omt_core::PolarGridBuilder;
        use omt_geom::{Disk, Region};
        use omt_rng::rngs::SmallRng;
        use omt_rng::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(5);
        let pts = Disk::unit().sample_n(&mut rng, 800);
        let t = PolarGridBuilder::new().build(Point2::ORIGIN, &pts).unwrap();
        // 4 angular groups; crash interior hosts of group 0 only, so the
        // groups fail maximally unevenly.
        let groups = 4usize;
        let group_of = |i: usize| {
            let p = t.point(i);
            let angle = p[1].atan2(p[0]).rem_euclid(core::f64::consts::TAU);
            ((angle / core::f64::consts::TAU * groups as f64) as usize).min(groups - 1)
        };
        let failed: Vec<usize> = (0..t.len())
            .filter(|&i| group_of(i) == 0 && !t.children(i).is_empty())
            .collect();
        assert!(!failed.is_empty());
        let global = simulate_with_failures(&t, &failed);
        let parts = failure_reports_by_group(&t, &failed, group_of, groups);
        assert_eq!(parts.len(), groups);
        // Every receiver is in exactly one part.
        assert_eq!(
            parts.iter().map(|p| p.delivered.len()).sum::<usize>(),
            t.len()
        );
        let agg = FailureReport::aggregate(&parts);
        assert_eq!(agg.reached, global.reached);
        assert_eq!(agg.stranded, global.stranded);
        assert_eq!(agg.crashed, global.crashed);
        assert_eq!(agg.delivered.len(), global.delivered.len());
        assert_eq!(
            agg.stranded_fraction().to_bits(),
            global.stranded_fraction().to_bits(),
            "aggregate must reproduce the unsharded stranded fraction"
        );
        // The naive per-shard mean is a different (wrong) number here.
        let naive = parts
            .iter()
            .map(FailureReport::stranded_fraction)
            .sum::<f64>()
            / groups as f64;
        assert!(
            (naive - global.stranded_fraction()).abs() > 1e-3,
            "scenario too even to demonstrate the aggregation fix: \
             naive {naive} vs global {}",
            global.stranded_fraction()
        );
        // Degenerate cases: no parts, and parts with no survivors.
        assert_eq!(FailureReport::aggregate([]).stranded_fraction(), 0.0);
    }

    #[test]
    fn failure_of_shallow_nodes_strands_more() {
        use omt_core::PolarGridBuilder;
        use omt_geom::{Disk, Region};
        use omt_rng::rngs::SmallRng;
        use omt_rng::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(3);
        let pts = Disk::unit().sample_n(&mut rng, 1000);
        let t = PolarGridBuilder::new().build(Point2::ORIGIN, &pts).unwrap();
        // Crash the source's direct children vs. the same number of leaves.
        let shallow: Vec<usize> = t.source_children().iter().map(|&c| c as usize).collect();
        let leaves: Vec<usize> = (0..t.len())
            .filter(|&i| t.children(i).is_empty())
            .take(shallow.len())
            .collect();
        let f_shallow = simulate_with_failures(&t, &shallow);
        let f_leaves = simulate_with_failures(&t, &leaves);
        assert!(f_shallow.stranded > f_leaves.stranded);
        assert_eq!(f_leaves.stranded, 0);
    }
}

/// Steady-state analysis of streaming (many back-to-back packets) through
/// a tree.
///
/// A node with out-degree `d` spends `d · serialization_delay` of uplink
/// time per packet, so the sustainable packet interval is set by the
/// busiest node. Total completion time for `packets` packets is the
/// single-packet makespan plus `(packets - 1)` steady-state intervals —
/// the standard pipeline bound, exact when every node forwards
/// back-to-back.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamReport {
    /// Time until the last receiver has the last packet.
    pub completion: f64,
    /// Steady-state interval between consecutive packet deliveries
    /// (`max_d out_degree(d) · serialization_delay`).
    pub interval: f64,
    /// The out-degree of the bottleneck node (including the source).
    pub bottleneck_degree: u32,
}

/// Computes the streaming pipeline bound for `packets` back-to-back
/// packets under `config`.
///
/// # Panics
///
/// Panics if `packets == 0`, `config.jitter != 0` (streaming analysis is
/// deterministic), or any config field is invalid.
pub fn stream_completion<const D: usize>(
    tree: &MulticastTree<D>,
    config: &SimConfig,
    packets: u64,
) -> StreamReport {
    assert!(packets > 0, "need at least one packet");
    assert!(config.jitter == 0.0, "streaming analysis is deterministic");
    let first = simulate(tree, config);
    let bottleneck_degree = tree.max_out_degree();
    let interval = f64::from(bottleneck_degree) * config.serialization_delay;
    StreamReport {
        completion: first.makespan + (packets - 1) as f64 * interval,
        interval,
        bottleneck_degree,
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use omt_geom::Point2;
    use omt_tree::TreeBuilder;

    fn fanout_tree(n: usize, deg: u32) -> MulticastTree<2> {
        let pts: Vec<Point2> = (0..n)
            .map(|i| Point2::new([(i as f64 * 0.37).cos(), (i as f64 * 0.37).sin()]))
            .collect();
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts).max_out_degree(deg);
        let mut parents = vec![];
        let mut head = 0usize;
        let mut used = 0u32;
        for i in 0..n {
            if used >= deg {
                head += 1;
                used = 0;
            }
            if parents.is_empty() || head == 0 && parents.len() < deg as usize {
                if b.remaining_source_degree() == Some(0) {
                    b.attach(i, parents[0]).unwrap();
                } else {
                    b.attach_to_source(i).unwrap();
                }
            } else {
                b.attach(i, parents[head - 1]).unwrap();
            }
            parents.push(i);
            used += 1;
        }
        b.finish().unwrap()
    }

    #[test]
    fn single_packet_equals_simulate() {
        let t = fanout_tree(30, 3);
        let cfg = SimConfig {
            serialization_delay: 0.05,
            ..SimConfig::default()
        };
        let stream = stream_completion(&t, &cfg, 1);
        let single = simulate(&t, &cfg);
        assert!((stream.completion - single.makespan).abs() < 1e-12);
        assert_eq!(stream.bottleneck_degree, 3);
    }

    #[test]
    fn throughput_scales_with_degree() {
        // Lower fan-out sustains a higher packet rate (smaller interval):
        // the throughput side of the latency/fan-out trade-off.
        let cfg = SimConfig {
            serialization_delay: 0.01,
            ..SimConfig::default()
        };
        let narrow = stream_completion(&fanout_tree(100, 2), &cfg, 1000);
        let wide = stream_completion(&fanout_tree(100, 8), &cfg, 1000);
        assert!(narrow.interval < wide.interval);
        // For long streams the interval dominates completion.
        assert!(narrow.completion < wide.completion);
    }

    #[test]
    fn completion_is_affine_in_packets() {
        let t = fanout_tree(50, 4);
        let cfg = SimConfig {
            serialization_delay: 0.02,
            ..SimConfig::default()
        };
        let one = stream_completion(&t, &cfg, 1).completion;
        let ten = stream_completion(&t, &cfg, 10).completion;
        let hundred = stream_completion(&t, &cfg, 100).completion;
        let slope1 = (ten - one) / 9.0;
        let slope2 = (hundred - ten) / 90.0;
        assert!((slope1 - slope2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn zero_packets_rejected() {
        let t = fanout_tree(5, 2);
        let _ = stream_completion(&t, &SimConfig::propagation_only(), 0);
    }
}
