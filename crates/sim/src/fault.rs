//! Fault injection for the message engine: loss, duplication, reordering
//! jitter, and network partitions, all seeded and deterministic.
//!
//! A [`Network`] wraps an [`EventQueue`] and
//! applies a [`FaultPlan`] to every [`Network::send`]. Local timers
//! ([`Network::timer`]) bypass the fault layer entirely — a host's own
//! clock does not lose ticks. All randomness comes from one RNG seeded at
//! construction, so a run is a pure function of (seed, plan, send
//! sequence): replaying the same inputs is bit-identical.

use omt_rng::rngs::SmallRng;
use omt_rng::{RngExt, SeedableRng};

use crate::engine::{Delivery, EventQueue, HostId};

/// A network partition window: while `start <= t < end`, messages whose
/// endpoints fall on different sides are dropped. Sides are derived from
/// the host id (`(id >> bit) & 1`), which splits any id space into two
/// deterministic halves; the rendezvous (host 0) is always on side 0.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Partition {
    /// Start of the partition window (inclusive).
    pub start: f64,
    /// End of the partition window (exclusive) — the heal time.
    pub end: f64,
    /// Which bit of the host id selects the side.
    pub bit: u32,
}

impl Partition {
    /// Which side of the split a host falls on.
    #[inline]
    pub fn side(&self, host: HostId) -> u32 {
        (host >> self.bit) & 1
    }

    /// Whether a `src -> dst` message at time `t` is severed by this
    /// partition.
    #[inline]
    pub fn severs(&self, t: f64, src: HostId, dst: HostId) -> bool {
        t >= self.start && t < self.end && self.side(src) != self.side(dst)
    }
}

/// The fault schedule applied to every protocol message.
///
/// Probabilistic faults (loss, duplication) and reordering jitter are
/// active only while `t < fault_until`; partitions carry their own
/// windows. After the last fault window closes the network is perfect,
/// which is what makes "eventual convergence after heal" testable.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Per-message drop probability in `[0, 1)`.
    pub drop_p: f64,
    /// Per-message duplication probability in `[0, 1)` (the duplicate
    /// takes an independently jittered delay).
    pub dup_p: f64,
    /// Extra uniform `[0, jitter)` delay per delivery — at `jitter`
    /// larger than inter-send gaps this reorders messages.
    pub jitter: f64,
    /// Probabilistic faults and jitter apply only before this time.
    pub fault_until: f64,
    /// Partition windows (each with its own `[start, end)`).
    pub partitions: Vec<Partition>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// A perfect network: no loss, duplication, jitter, or partitions.
    pub fn none() -> Self {
        Self {
            drop_p: 0.0,
            dup_p: 0.0,
            jitter: 0.0,
            fault_until: 0.0,
            partitions: Vec::new(),
        }
    }

    /// Whether the plan injects any fault at all.
    pub fn is_none(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.jitter == 0.0 && self.partitions.is_empty()
    }

    /// The instant after which no fault of any kind is active.
    pub fn heal_time(&self) -> f64 {
        self.partitions
            .iter()
            .map(|p| p.end)
            .fold(self.fault_until, f64::max)
    }

    fn validate(&self) {
        for (name, p) in [("drop_p", self.drop_p), ("dup_p", self.dup_p)] {
            assert!((0.0..1.0).contains(&p) && p.is_finite(), "bad {name} {p}");
        }
        assert!(
            self.jitter >= 0.0 && self.jitter.is_finite(),
            "bad jitter {}",
            self.jitter
        );
        assert!(
            self.fault_until >= 0.0 && self.fault_until.is_finite(),
            "bad fault_until {}",
            self.fault_until
        );
        for w in &self.partitions {
            assert!(
                w.start.is_finite() && w.end.is_finite() && w.start <= w.end,
                "bad partition window [{}, {})",
                w.start,
                w.end
            );
        }
    }
}

/// Message-delivery accounting, split by fate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to [`Network::send`].
    pub sent: u64,
    /// Copies actually scheduled for delivery (≥ sent − dropped; larger
    /// when duplication fires).
    pub delivered: u64,
    /// Messages dropped by loss probability.
    pub dropped: u64,
    /// Messages severed by an active partition.
    pub severed: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Local timer events scheduled (not network traffic).
    pub timers: u64,
}

/// A faulty, delayed message transport over an [`EventQueue`].
pub struct Network<M> {
    queue: EventQueue<M>,
    plan: FaultPlan,
    rng: SmallRng,
    /// Fixed per-hop latency added to every delivery.
    pub base_latency: f64,
    stats: NetStats,
}

impl<M: Clone> Network<M> {
    /// Creates a network with the given fault plan and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if the plan contains non-finite or out-of-range values.
    pub fn new(plan: FaultPlan, base_latency: f64, seed: u64) -> Self {
        plan.validate();
        assert!(
            base_latency >= 0.0 && base_latency.is_finite(),
            "bad base latency {base_latency}"
        );
        Self {
            queue: EventQueue::new(),
            plan,
            rng: SmallRng::seed_from_u64(seed),
            base_latency,
            stats: NetStats::default(),
        }
    }

    /// The underlying queue's clock.
    #[inline]
    pub fn now(&self) -> f64 {
        self.queue.now()
    }

    /// Pending deliveries (messages in flight plus timers).
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Delivery accounting so far.
    #[inline]
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The fault plan in force.
    #[inline]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Sends `msg` from `src` to `dst` over a link of propagation delay
    /// `distance` (the caller supplies the geometric distance between the
    /// hosts' true positions). Applies partitions, loss, duplication, and
    /// jitter per the plan.
    pub fn send(&mut self, src: HostId, dst: HostId, distance: f64, msg: M) {
        debug_assert!(distance >= 0.0 && distance.is_finite());
        self.stats.sent += 1;
        let now = self.queue.now();
        if self.plan.partitions.iter().any(|p| p.severs(now, src, dst)) {
            self.stats.severed += 1;
            return;
        }
        let faulty = now < self.plan.fault_until;
        if faulty && self.plan.drop_p > 0.0 && self.rng.random_bool(self.plan.drop_p) {
            self.stats.dropped += 1;
            return;
        }
        let copies = if faulty && self.plan.dup_p > 0.0 && self.rng.random_bool(self.plan.dup_p) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let jitter = if faulty && self.plan.jitter > 0.0 {
                self.rng.random_range(0.0..self.plan.jitter)
            } else {
                0.0
            };
            let at = now + self.base_latency + distance + jitter;
            self.queue.schedule(at, dst, msg.clone());
            self.stats.delivered += 1;
        }
    }

    /// Schedules a local timer at host `dst` firing at absolute time
    /// `at`. Timers bypass the fault layer.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or non-finite.
    pub fn timer(&mut self, at: f64, dst: HostId, msg: M) {
        self.stats.timers += 1;
        self.queue.schedule(at, dst, msg);
    }

    /// Pops the next delivery (message or timer) in deterministic order.
    pub fn pop(&mut self) -> Option<Delivery<M>> {
        self.queue.pop()
    }

    /// Drains the next mailbox; see
    /// [`EventQueue::pop_mailbox`](crate::engine::EventQueue::pop_mailbox).
    pub fn pop_mailbox(&mut self, out: &mut Vec<Delivery<M>>) -> Option<(f64, HostId)> {
        self.queue.pop_mailbox(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_network_delivers_everything_in_order() {
        let mut net: Network<u32> = Network::new(FaultPlan::none(), 0.5, 1);
        net.send(0, 1, 1.0, 10);
        net.send(0, 2, 0.1, 20);
        let first = net.pop().unwrap();
        assert_eq!((first.dst, first.msg), (2, 20));
        assert!((first.time - 0.6).abs() < 1e-12);
        let second = net.pop().unwrap();
        assert_eq!((second.dst, second.msg), (1, 10));
        assert_eq!(net.stats().sent, 2);
        assert_eq!(net.stats().delivered, 2);
        assert_eq!(net.stats().dropped, 0);
    }

    #[test]
    fn drop_probability_loses_messages_deterministically() {
        let run = |seed: u64| {
            let plan = FaultPlan {
                drop_p: 0.5,
                fault_until: 1e9,
                ..FaultPlan::none()
            };
            let mut net: Network<u32> = Network::new(plan, 0.0, seed);
            for i in 0..1000 {
                net.send(0, 1, 0.001, i);
            }
            net.stats()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same fates");
        assert!(a.dropped > 300 && a.dropped < 700, "{a:?}");
        assert_eq!(a.delivered + a.dropped, a.sent);
        let b = run(8);
        assert_ne!(a.dropped, b.dropped);
    }

    #[test]
    fn duplication_schedules_extra_copies() {
        let plan = FaultPlan {
            dup_p: 0.999,
            fault_until: 1e9,
            ..FaultPlan::none()
        };
        let mut net: Network<u32> = Network::new(plan, 0.0, 3);
        for i in 0..50 {
            net.send(0, 1, 0.001, i);
        }
        let st = net.stats();
        assert!(st.duplicated >= 45, "{st:?}");
        assert_eq!(st.delivered, st.sent + st.duplicated);
    }

    #[test]
    fn partition_severs_cross_side_messages_until_heal() {
        let plan = FaultPlan {
            partitions: vec![Partition {
                start: 0.0,
                end: 10.0,
                bit: 0,
            }],
            ..FaultPlan::none()
        };
        let mut net: Network<&str> = Network::new(plan, 0.0, 1);
        net.send(0, 1, 1.0, "cross"); // sides 0 vs 1: severed
        net.send(0, 2, 1.0, "same"); // sides 0 vs 0: delivered
        assert_eq!(net.stats().severed, 1);
        let d = net.pop().unwrap();
        assert_eq!(d.msg, "same");
        // Advance past the heal time and resend.
        net.timer(11.0, 0, "tick");
        net.pop();
        net.send(0, 1, 1.0, "cross-after-heal");
        assert_eq!(net.pop().unwrap().msg, "cross-after-heal");
        assert_eq!(net.stats().severed, 1);
    }

    #[test]
    fn jitter_stops_at_fault_until() {
        let plan = FaultPlan {
            jitter: 5.0,
            fault_until: 100.0,
            ..FaultPlan::none()
        };
        let mut net: Network<u32> = Network::new(plan, 0.0, 9);
        net.send(0, 1, 1.0, 0);
        let early = net.pop().unwrap();
        assert!(early.time >= 1.0 && early.time < 6.0);
        net.timer(200.0, 0, 0);
        net.pop();
        net.send(0, 1, 1.0, 0);
        let late = net.pop().unwrap();
        assert!((late.time - 201.0).abs() < 1e-12, "no jitter after heal");
    }

    #[test]
    fn timers_bypass_faults() {
        let plan = FaultPlan {
            drop_p: 0.999,
            fault_until: 1e9,
            ..FaultPlan::none()
        };
        let mut net: Network<u32> = Network::new(plan, 0.0, 2);
        for _ in 0..20 {
            net.timer(net.now() + 1.0, 3, 7);
            let d = net.pop().unwrap();
            assert_eq!((d.dst, d.msg), (3, 7));
        }
        assert_eq!(net.stats().timers, 20);
        assert_eq!(net.stats().dropped, 0);
    }

    #[test]
    fn heal_time_covers_all_windows() {
        let plan = FaultPlan {
            fault_until: 5.0,
            partitions: vec![
                Partition {
                    start: 0.0,
                    end: 3.0,
                    bit: 1,
                },
                Partition {
                    start: 4.0,
                    end: 9.0,
                    bit: 2,
                },
            ],
            ..FaultPlan::none()
        };
        assert_eq!(plan.heal_time(), 9.0);
        assert_eq!(FaultPlan::none().heal_time(), 0.0);
        assert!(FaultPlan::none().is_none());
        assert!(!plan.is_none());
    }
}
