//! General convex regions and arbitrary source placement (Section IV-C),
//! plus a deliberately non-convex control (the annulus) outside the
//! theorem's hypotheses.

use omt_core::PolarGridBuilder;
use omt_geom::{deepest_interior, Annulus, BoxRegion, ConvexPolygon, Disk, Point, Point2, Region};

use crate::stats::Accumulator;
use crate::workload::trial_rng;

/// One region scenario's aggregated result.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvexRow {
    /// Scenario label.
    pub scenario: String,
    /// Whether the region satisfies the theorem's convexity hypothesis.
    pub convex: bool,
    /// Average delay / lower-bound ratio (approaches 1 for convex regions).
    pub ratio: f64,
    /// Deviation of the ratio.
    pub dev: f64,
    /// Average ring count.
    pub rings: f64,
}

/// The region scenarios: `(label, convex?, region, source)`.
fn scenarios() -> Vec<(String, bool, Box<dyn Region<2>>, Point2)> {
    vec![
        (
            "disk, source at center".into(),
            true,
            Box::new(Disk::unit()),
            Point2::ORIGIN,
        ),
        (
            "disk, source offset".into(),
            true,
            Box::new(Disk::unit()),
            Point2::new([0.5, 0.0]),
        ),
        (
            "square, source at center".into(),
            true,
            Box::new(BoxRegion::new(
                Point::new([-1.0, -1.0]),
                Point::new([1.0, 1.0]),
            )),
            Point2::ORIGIN,
        ),
        (
            "square, source at corner".into(),
            true,
            Box::new(BoxRegion::new(
                Point::new([0.0, 0.0]),
                Point::new([1.0, 1.0]),
            )),
            Point2::new([0.02, 0.02]),
        ),
        (
            "hexagon, source at center".into(),
            true,
            Box::new(ConvexPolygon::regular(6, Point2::ORIGIN, 1.0)),
            Point2::ORIGIN,
        ),
        (
            "thin rectangle".into(),
            true,
            Box::new(BoxRegion::new(
                Point::new([-2.0, -0.05]),
                Point::new([2.0, 0.05]),
            )),
            Point2::ORIGIN,
        ),
        // Representative placement for the generalization workload: the
        // source sits at the region's deepest interior point (the
        // polylabel-style search of `omt_geom::deepest_interior`), the
        // natural center for polygons whose centroid hugs a boundary.
        (
            "trapezoid, deepest-interior source".into(),
            true,
            {
                let poly = skewed_trapezoid();
                Box::new(poly)
            },
            deepest_interior(&skewed_trapezoid(), 1e-6),
        ),
        (
            "sliver triangle, deepest-interior source".into(),
            true,
            Box::new(sliver_triangle()),
            deepest_interior(&sliver_triangle(), 1e-6),
        ),
        (
            "annulus (non-convex)".into(),
            false,
            Box::new(Annulus::new(Point2::ORIGIN, 0.8, 1.0)),
            Point2::ORIGIN,
        ),
    ]
}

/// A strongly skewed trapezoid whose centroid sits far from the deepest
/// interior point.
fn skewed_trapezoid() -> ConvexPolygon {
    ConvexPolygon::new(vec![
        Point2::new([-1.5, 0.0]),
        Point2::new([1.5, 0.0]),
        Point2::new([0.4, 0.8]),
        Point2::new([-0.2, 0.8]),
    ])
    .expect("CCW convex vertices")
}

/// A long thin triangle: the centroid lies close to the long edge, while
/// the deepest interior point maximizes clearance from all three sides.
fn sliver_triangle() -> ConvexPolygon {
    ConvexPolygon::new(vec![
        Point2::new([-2.0, 0.0]),
        Point2::new([2.0, 0.0]),
        Point2::new([0.0, 0.5]),
    ])
    .expect("CCW convex vertices")
}

/// Runs all region scenarios at size `n` with the degree-6 algorithm.
pub fn run_convex(seed: u64, n: usize, trials: usize) -> Vec<ConvexRow> {
    assert!(trials > 0, "need at least one trial");
    let builder = PolarGridBuilder::new();
    scenarios()
        .into_iter()
        .map(|(label, convex, region, source)| {
            let mut ratio = Accumulator::new();
            let mut rings = Accumulator::new();
            for trial in 0..trials {
                let mut rng = trial_rng(seed, n, trial);
                let pts = region.sample_n(&mut rng, n);
                let (tree, report) = builder
                    .build_with_report(source, &pts)
                    .expect("valid workload");
                debug_assert_eq!(tree.len(), n);
                ratio.push(report.delay / report.lower_bound);
                rings.push(f64::from(report.rings));
            }
            ConvexRow {
                scenario: label,
                convex,
                ratio: ratio.mean(),
                dev: ratio.stddev(),
                rings: rings.mean(),
            }
        })
        .collect()
}

/// Formats the rows as a markdown table.
pub fn convex_markdown(rows: &[ConvexRow]) -> String {
    let mut out =
        String::from("| Scenario | Convex | Delay/LB | Dev | Rings |\n|---|---|---:|---:|---:|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {:.3} | {:.3} | {:.2} |\n",
            r.scenario,
            if r.convex { "yes" } else { "no" },
            r.ratio,
            r.dev,
            r.rings
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convex_regions_stay_near_optimal() {
        let rows = run_convex(1, 3000, 3);
        assert_eq!(rows.len(), 9);
        for r in rows.iter().filter(|r| r.convex) {
            assert!(
                r.ratio < 2.0,
                "{}: ratio {} too large for a convex region",
                r.scenario,
                r.ratio
            );
            assert!(r.ratio >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn non_convex_control_is_clearly_worst() {
        // Counter-intuitively the centered disk is NOT the best ratio:
        // offset sources leave more cells inactive, admitting a larger k
        // and hence a finer grid. What must hold is that every convex
        // scenario is near-optimal while the annulus control is far off.
        let rows = run_convex(2, 3000, 3);
        let annulus = rows
            .iter()
            .find(|r| !r.convex)
            .expect("annulus control present");
        for r in rows.iter().filter(|r| r.convex) {
            assert!(
                r.ratio * 1.5 < annulus.ratio,
                "{} ({}) not clearly better than the annulus ({})",
                r.scenario,
                r.ratio,
                annulus.ratio
            );
        }
    }

    #[test]
    fn trees_remain_valid_everywhere() {
        // run_convex would panic internally otherwise; spot-check one
        // scenario end-to-end for degree validity too.
        use omt_geom::Region;
        let region = BoxRegion::new(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
        let mut rng = trial_rng(3, 500, 0);
        let pts = region.sample_n(&mut rng, 500);
        let tree = PolarGridBuilder::new()
            .build(Point2::new([0.02, 0.02]), &pts)
            .unwrap();
        tree.validate(Some(6)).unwrap();
    }

    #[test]
    fn markdown_contains_scenarios() {
        let rows = run_convex(4, 300, 2);
        let md = convex_markdown(&rows);
        assert!(md.contains("annulus (non-convex)"));
        assert!(md.contains("| yes |"));
        assert!(md.contains("| no |"));
    }
}
