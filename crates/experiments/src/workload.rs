//! Workload generation matching the paper's experimental setup: points
//! uniformly distributed in the unit disk (2-D) or unit ball (3-D), with
//! the source at the center, one independent set per trial.

use omt_rng::rngs::SmallRng;
use omt_rng::{SeedableRng, SplitMix64};

use omt_geom::{Ball, Point2, Point3, PointStore2, Region};

/// The problem sizes of Table I and Figures 4–8.
pub const PAPER_SIZES: [usize; 10] = [
    100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000,
];

/// A smaller sweep for quick runs and CI.
pub const QUICK_SIZES: [usize; 6] = [100, 500, 1_000, 5_000, 10_000, 50_000];

/// The paper uses 200 trials per size; at the largest sizes we scale down
/// by default to keep wall-clock sane (the paper's own Dev column is
/// already 0.00 there). Pass `--trials` to any experiment binary to
/// restore 200 everywhere.
pub fn default_trials(n: usize) -> usize {
    if n <= 100_000 {
        200
    } else if n <= 1_000_000 {
        20
    } else {
        5
    }
}

/// A deterministic per-(size, trial) RNG, so experiments are reproducible
/// and trials are independent.
pub fn trial_rng(experiment_seed: u64, n: usize, trial: usize) -> SmallRng {
    // Fold the three identifiers through the SplitMix64 finalizer one at a
    // time; each fold fully mixes before the next identifier enters, so
    // (seed, n, trial) triples land on well-separated streams.
    let z = SplitMix64::mix(
        SplitMix64::mix(experiment_seed.wrapping_add(SplitMix64::GAMMA.wrapping_mul(n as u64 + 1)))
            .wrapping_add(trial as u64 + 1),
    );
    SmallRng::seed_from_u64(z)
}

/// Runs `trials` independent trial bodies across the `omt-par` pool and
/// returns the results in trial order.
///
/// Because every trial derives its randomness from [`trial_rng`] (a pure
/// function of `(seed, n, trial)`) and results are joined by trial index,
/// any aggregate folded over the returned vector is bit-identical at any
/// thread count, including `OMT_THREADS=1`. Trial bodies should force
/// their inner builders to `.threads(1)` so parallelism lives at exactly
/// one level.
pub fn par_trials<R, F>(trials: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let idx: Vec<usize> = (0..trials).collect();
    omt_par::par_map_indexed(&idx, omt_par::effective_threads(), |_, &trial| f(trial))
}

/// Uniform points in the unit disk for one trial.
pub fn disk_trial(experiment_seed: u64, n: usize, trial: usize) -> Vec<Point2> {
    let mut rng = trial_rng(experiment_seed, n, trial);
    Ball::<2>::unit().sample_n(&mut rng, n)
}

/// The same trial as [`disk_trial`], sampled straight into an SoA point
/// store (identical RNG stream, hence bit-identical points).
pub fn disk_trial_store(experiment_seed: u64, n: usize, trial: usize) -> PointStore2 {
    let mut rng = trial_rng(experiment_seed, n, trial);
    PointStore2::sample_region(Point2::ORIGIN, &Ball::<2>::unit(), &mut rng, n)
}

/// Uniform points in the unit ball for one trial.
pub fn ball_trial(experiment_seed: u64, n: usize, trial: usize) -> Vec<Point3> {
    let mut rng = trial_rng(experiment_seed, n, trial);
    Ball::<3>::unit().sample_n(&mut rng, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_the_paper() {
        assert_eq!(PAPER_SIZES.len(), 10);
        assert_eq!(PAPER_SIZES[0], 100);
        assert_eq!(PAPER_SIZES[9], 5_000_000);
    }

    #[test]
    fn default_trials_policy() {
        assert_eq!(default_trials(100), 200);
        assert_eq!(default_trials(100_000), 200);
        assert_eq!(default_trials(500_000), 20);
        assert_eq!(default_trials(5_000_000), 5);
    }

    #[test]
    fn trials_are_reproducible_and_independent() {
        let a = disk_trial(1, 50, 0);
        let b = disk_trial(1, 50, 0);
        assert_eq!(a, b);
        let c = disk_trial(1, 50, 1);
        assert_ne!(a, c);
        let d = disk_trial(2, 50, 0);
        assert_ne!(a, d);
    }

    #[test]
    fn workloads_live_in_their_regions() {
        for p in disk_trial(3, 500, 0) {
            assert!(p.norm() <= 1.0 + 1e-12);
        }
        for p in ball_trial(3, 500, 0) {
            assert!(p.norm() <= 1.0 + 1e-12);
        }
    }
}
