//! Failure resilience: how much of the group loses the stream when a
//! random fraction of hosts crashes, per tree construction.
//!
//! Deep degree-2 chains strand whole suffixes; shallow degree-6 grids
//! localize damage; the (infeasible) star strands nobody. This quantifies
//! the robustness side of the fan-out trade-off the paper's delay
//! objective doesn't capture.

use omt_baselines::{star_tree, GreedyBuilder, GreedyObjective};
use omt_core::PolarGridBuilder;
use omt_geom::Point2;
use omt_rng::RngExt;
use omt_sim::simulate_with_failures;

use crate::stats::Accumulator;
use crate::workload::{disk_trial, par_trials, trial_rng};

/// A named tree constructor over one workload (`Sync` so trials can fan
/// out across the `omt-par` pool).
type Construction = (
    &'static str,
    Box<dyn Fn(&[Point2]) -> omt_tree::MulticastTree<2> + Sync>,
);

/// Aggregated stranding for one (tree, crash-rate) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceRow {
    /// Tree construction label.
    pub tree: String,
    /// Fraction of hosts crashed.
    pub crash_rate: f64,
    /// Mean fraction of *surviving* hosts cut off from the stream.
    pub stranded_fraction: f64,
    /// Deviation of the stranded fraction.
    pub dev: f64,
}

/// Runs the resilience sweep: for each construction and crash rate,
/// `trials` independent (workload, crash set) draws.
pub fn run_resilience(
    seed: u64,
    n: usize,
    crash_rates: &[f64],
    trials: usize,
) -> Vec<ResilienceRow> {
    assert!(trials > 0, "need at least one trial");
    let constructions: Vec<Construction> = vec![
        (
            "polar-grid deg6",
            Box::new(|pts: &[Point2]| {
                PolarGridBuilder::new()
                    .threads(1)
                    .build(Point2::ORIGIN, pts)
                    .expect("valid")
            }),
        ),
        (
            "polar-grid deg2",
            Box::new(|pts: &[Point2]| {
                PolarGridBuilder::new()
                    .max_out_degree(2)
                    .threads(1)
                    .build(Point2::ORIGIN, pts)
                    .expect("valid")
            }),
        ),
        (
            "compact-tree deg6",
            Box::new(|pts: &[Point2]| {
                GreedyBuilder::new(GreedyObjective::MinDelay)
                    .max_out_degree(6)
                    .build(Point2::ORIGIN, pts)
                    .expect("valid")
            }),
        ),
        (
            "star (unbounded)",
            Box::new(|pts: &[Point2]| star_tree(Point2::ORIGIN, pts).expect("valid")),
        ),
    ];
    let mut rows = Vec::new();
    for (name, build) in &constructions {
        for &rate in crash_rates {
            let mut acc = Accumulator::new();
            // Trials fan out across the pool; fold in trial order so the
            // aggregates are thread-count invariant.
            let fractions = par_trials(trials, |trial| {
                let pts = disk_trial(seed, n, trial);
                let tree = build(&pts);
                let mut rng = trial_rng(seed ^ 0xFA11, n, trial);
                let failed: Vec<usize> = (0..n).filter(|_| rng.random::<f64>() < rate).collect();
                let report = simulate_with_failures(&tree, &failed);
                let survivors = n - report.crashed;
                (survivors > 0).then(|| report.stranded as f64 / survivors as f64)
            });
            for f in fractions.into_iter().flatten() {
                acc.push(f);
            }
            rows.push(ResilienceRow {
                tree: (*name).to_string(),
                crash_rate: rate,
                stranded_fraction: acc.mean(),
                dev: acc.stddev(),
            });
        }
    }
    rows
}

/// Formats the rows as a markdown table.
pub fn resilience_markdown(rows: &[ResilienceRow]) -> String {
    let mut out = String::from(
        "| Tree | Crash rate | Stranded (of survivors) | Dev |\n|---|---:|---:|---:|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.0}% | {:.2}% | {:.2}% |\n",
            r.tree,
            r.crash_rate * 100.0,
            r.stranded_fraction * 100.0,
            r.dev * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stars_never_strand_and_chains_strand_most() {
        let rows = run_resilience(1, 1000, &[0.02], 4);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.tree == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .stranded_fraction
        };
        assert_eq!(get("star (unbounded)"), 0.0);
        assert!(get("polar-grid deg2") > get("polar-grid deg6"));
        assert!(get("polar-grid deg6") > 0.0);
    }

    #[test]
    fn stranding_grows_with_crash_rate() {
        let rows = run_resilience(2, 800, &[0.01, 0.05, 0.2], 3);
        let deg6: Vec<f64> = rows
            .iter()
            .filter(|r| r.tree == "polar-grid deg6")
            .map(|r| r.stranded_fraction)
            .collect();
        assert!(deg6[0] < deg6[1] && deg6[1] < deg6[2], "{deg6:?}");
    }

    #[test]
    fn markdown_formats() {
        let rows = run_resilience(3, 200, &[0.1], 2);
        let md = resilience_markdown(&rows);
        assert!(md.contains("polar-grid deg6"));
        assert!(md.contains("10%"));
    }
}
