//! Compares the paper's algorithms against the cited prior-art baselines
//! (compact tree, greedy Prim, bandwidth-latency, random) on delay and
//! construction time. Quadratic baselines are skipped above 20,000 nodes.

use omt_experiments::baseline_cmp::{baseline_markdown, run_baseline_cell, Algorithm};
use omt_experiments::cli::ExpArgs;
use omt_experiments::report::write_result;

fn main() {
    let args = ExpArgs::from_env();
    let sizes = args
        .sizes
        .clone()
        .unwrap_or_else(|| vec![100, 1_000, 10_000, 100_000]);
    let mut rows = Vec::new();
    for &n in &sizes {
        let trials = args.trials.unwrap_or(10);
        for alg in Algorithm::ALL {
            if alg.is_quadratic() && n > 20_000 {
                eprintln!("skipping {} at n = {n} (quadratic)", alg.name());
                continue;
            }
            eprintln!("running {} at n = {n} ({trials} trials)...", alg.name());
            rows.push(run_baseline_cell(alg, args.seed(), n, trials, 6));
        }
    }
    let md = baseline_markdown(&rows);
    println!("{md}");
    if let Some(dir) = &args.out {
        let p = write_result(dir, "baseline_cmp.md", &md).expect("write report");
        eprintln!("wrote {}", p.display());
    }
}
