//! Failure-resilience sweep: stranded survivors vs crash rate, per tree
//! construction.

use omt_experiments::cli::ExpArgs;
use omt_experiments::report::write_result;
use omt_experiments::resilience::{resilience_markdown, run_resilience};

fn main() {
    let args = ExpArgs::from_env();
    let n = args.sizes.as_ref().map_or(5_000, |s| s[0]);
    let trials = args.trials.unwrap_or(10);
    eprintln!("resilience sweep at n = {n}, {trials} trials");
    let rows = run_resilience(args.seed(), n, &[0.001, 0.01, 0.05, 0.1], trials);
    let md = resilience_markdown(&rows);
    println!("{md}");
    println!("(the star strands nobody but is infeasible; degree-6 localizes damage");
    println!(" far better than degree-2 — robustness is the hidden cost of tight fan-out)");
    if let Some(dir) = &args.out {
        let p = write_result(dir, "resilience.md", &md).expect("write report");
        eprintln!("wrote {}", p.display());
    }
}
