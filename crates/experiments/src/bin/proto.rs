//! The decentralized protocol at scale, side by side with the
//! centralized `Polar_Grid` builder on identical point sets.
//!
//! For each size and degree cap the binary samples one point set, builds
//! the centralized tree, then runs the message-driven join protocol
//! (`omt-proto`) on the same points with the same ring count and reports
//! tree quality (radius, stretch vs. the star lower bound, the
//! protocol/centralized radius factor), convergence time, and message
//! cost (total and per host). Non-quick runs add a faulty row per size —
//! loss, duplication, jitter, and a partition over the join window — to
//! show what healing costs in messages and convergence time.
//!
//! With `--out DIR` the results land in `DIR/BENCH_proto.json`
//! (`omt-bench/v1` shape, protocol columns as extra keys), `DIR/proto.md`
//! (the markdown report), and `DIR/proto.csv`.
//!
//! Repro: `cargo run --release --bin proto -- --out results`
//! (defaults to sizes 100k and 1M; `--quick` runs 1k/10k for CI smoke).

use std::time::Instant;

use omt_core::PolarGridBuilder;
use omt_experiments::cli::ExpArgs;
use omt_experiments::report::write_result;
use omt_geom::{Disk, Point2, Region};
use omt_proto::{ProtoConfig, ProtoSim};
use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;
use omt_sim::{FaultPlan, Partition};

/// One finished comparison row.
struct Row {
    n: usize,
    degree: u32,
    faulty: bool,
    proto_radius: f64,
    central_radius: f64,
    star_bound: f64,
    stretch: f64,
    convergence_time: f64,
    messages: u64,
    msgs_per_host: f64,
    orphans: usize,
    elapsed_ns: u128,
}

/// The standard fault mix for the faulty rows: 5% loss, 2% duplication,
/// jitter up to 0.3, and a partition across bit 1 of the host id during
/// the thick of the join window.
fn fault_mix() -> FaultPlan {
    FaultPlan {
        drop_p: 0.05,
        dup_p: 0.02,
        jitter: 0.3,
        fault_until: 25.0,
        partitions: vec![Partition {
            start: 5.0,
            end: 15.0,
            bit: 1,
        }],
        ..FaultPlan::none()
    }
}

fn run_case(n: usize, degree: u32, seed: u64, faulty: bool) -> Row {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts = Disk::unit().sample_n(&mut rng, n);
    let (tree, crep) = PolarGridBuilder::new()
        .max_out_degree(degree)
        .build_with_report(Point2::ORIGIN, &pts)
        .expect("valid points");
    let mut cfg = ProtoConfig::for_n(n, degree);
    cfg.rings = crep.rings;
    if faulty {
        cfg.faults = fault_mix();
        cfg.quiet_after = cfg.faults.fault_until + 80.0;
        cfg.deadline = cfg.quiet_after + 340.0;
    }
    let start = Instant::now();
    let rep = ProtoSim::new(cfg, &pts, &pts, seed).run();
    let elapsed_ns = start.elapsed().as_nanos();
    assert_eq!(rep.orphans, 0, "n={n} deg={degree}: protocol did not heal");
    Row {
        n,
        degree,
        faulty,
        proto_radius: rep.radius,
        central_radius: tree.radius(),
        star_bound: rep.star_bound,
        stretch: rep.stretch,
        convergence_time: rep.convergence_time,
        messages: rep.net.sent,
        msgs_per_host: rep.net.sent as f64 / n as f64,
        orphans: rep.orphans,
        elapsed_ns,
    }
}

fn markdown(rows: &[Row]) -> String {
    let mut s = String::from(
        "| n | degree | faults | proto radius | central radius | factor | \
         stretch | convergence | messages | msgs/host |\n\
         |---|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        s.push_str(&format!(
            "| {} | {} | {} | {:.3} | {:.3} | {:.2} | {:.2} | {:.1} | {} | {:.1} |\n",
            r.n,
            r.degree,
            if r.faulty { "mixed" } else { "none" },
            r.proto_radius,
            r.central_radius,
            r.proto_radius / r.central_radius,
            r.stretch,
            r.convergence_time,
            r.messages,
            r.msgs_per_host,
        ));
    }
    s
}

fn csv(rows: &[Row]) -> String {
    let mut s = String::from(
        "n,degree,faulty,proto_radius,central_radius,factor,stretch,\
         star_bound,convergence_time,messages,msgs_per_host,elapsed_ns\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.4},{:.4},{:.6},{:.3},{},{:.2},{}\n",
            r.n,
            r.degree,
            r.faulty,
            r.proto_radius,
            r.central_radius,
            r.proto_radius / r.central_radius,
            r.stretch,
            r.star_bound,
            r.convergence_time,
            r.messages,
            r.msgs_per_host,
            r.elapsed_ns,
        ));
    }
    s
}

fn bench_json(rows: &[Row], quick: bool) -> String {
    let mut s = format!(
        "{{\n  \"schema\": \"omt-bench/v1\",\n  \"group\": \"proto\",\n  \
         \"quick\": {quick},\n  \"benches\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"id\": \"{}/{}-deg{}\", \"elements\": {}, \"mean_ns\": {:.1}, \
             \"proto_radius\": {:.6}, \"central_radius\": {:.6}, \"factor\": {:.4}, \
             \"stretch\": {:.4}, \"star_bound\": {:.6}, \"convergence_time\": {:.3}, \
             \"messages\": {}, \"msgs_per_host\": {:.2}, \"orphans\": {}}}{sep}\n",
            if r.faulty { "proto-faulty" } else { "proto" },
            r.n,
            r.degree,
            r.n,
            r.elapsed_ns as f64,
            r.proto_radius,
            r.central_radius,
            r.proto_radius / r.central_radius,
            r.stretch,
            r.star_bound,
            r.convergence_time,
            r.messages,
            r.msgs_per_host,
            r.orphans,
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args = ExpArgs::from_env();
    let sizes = match &args.sizes {
        Some(s) => s.clone(),
        None if args.quick => vec![1_000, 10_000],
        None => vec![100_000, 1_000_000],
    };
    let mut rows = Vec::new();
    for &n in &sizes {
        for degree in [2u32, 4, 6] {
            eprintln!("proto: n={n} degree={degree} faultless...");
            rows.push(run_case(n, degree, args.seed(), false));
        }
        if !args.quick {
            eprintln!("proto: n={n} degree=6 fault mix...");
            rows.push(run_case(n, 6, args.seed(), true));
        }
    }
    println!("{}", markdown(&rows));
    if let Some(dir) = &args.out {
        for (name, contents) in [
            ("BENCH_proto.json", bench_json(&rows, args.quick)),
            ("proto.md", markdown(&rows)),
            ("proto.csv", csv(&rows)),
        ] {
            let p = write_result(dir, name, &contents).expect("write result");
            eprintln!("wrote {}", p.display());
        }
    }
}
