//! The minimum-diameter variant (paper's conclusion): tree diameter
//! against the point-set-diameter lower bound across sizes, with the
//! center-rooted polar grid.

use omt_core::MinDiameterBuilder;
use omt_experiments::cli::ExpArgs;
use omt_experiments::report::{series_csv, series_markdown, write_result};
use omt_experiments::stats::Accumulator;
use omt_experiments::workload::disk_trial;

fn main() {
    let args = ExpArgs::from_env();
    let sizes = args
        .sizes
        .clone()
        .unwrap_or_else(|| vec![100, 1_000, 10_000, 100_000]);
    let mut rows = Vec::new();
    for &n in &sizes {
        let trials = args.trials.unwrap_or(20);
        eprintln!("running n = {n} ({trials} trials)...");
        let mut ratio6 = Accumulator::new();
        let mut ratio2 = Accumulator::new();
        for trial in 0..trials {
            let pts = disk_trial(args.seed(), n, trial);
            let (_, r6) = MinDiameterBuilder::new().build_2d(&pts).expect("valid");
            ratio6.push(r6.diameter / r6.lower_bound);
            let (_, r2) = MinDiameterBuilder::new()
                .max_out_degree(2)
                .build_2d(&pts)
                .expect("valid");
            ratio2.push(r2.diameter / r2.lower_bound);
        }
        rows.push((n as f64, vec![ratio6.mean(), ratio2.mean()]));
    }
    let names = ["diameter/LB (deg 6)", "diameter/LB (deg 2)"];
    println!("{}", series_markdown("nodes", &names, &rows));
    println!(
        "(both ratios approach 1: the diameter variant is asymptotically optimal in the disk)"
    );
    if let Some(dir) = &args.out {
        let p = write_result(dir, "min_diameter.csv", &series_csv("nodes", &names, &rows))
            .expect("write CSV");
        eprintln!("wrote {}", p.display());
    }
}
