//! The embedding-distortion experiment (the paper's stated future work):
//! Waxman underlay → measured delays → GNP/Vivaldi embedding → polar-grid
//! tree → evaluation on true delays.

use omt_experiments::cli::ExpArgs;
use omt_experiments::embedding::{embedding_markdown, run_embedding, EmbeddingConfig};
use omt_experiments::report::write_result;

fn main() {
    let args = ExpArgs::from_env();
    let hosts = args.sizes.as_ref().map_or(120, |s| s[0]);
    let config = EmbeddingConfig {
        routers: (hosts * 3).max(100),
        hosts,
        degree: 6,
    };
    eprintln!(
        "embedding experiment: {} routers, {} hosts, degree {}",
        config.routers, config.hosts, config.degree
    );
    let rows = run_embedding(args.seed(), &config);
    let md = embedding_markdown(&rows);
    println!("{md}");
    if let Some(dir) = &args.out {
        let p = write_result(dir, "embedding.md", &md).expect("write report");
        eprintln!("wrote {}", p.display());
    }
}
