//! Regenerates **Figure 7**: algorithm running time against `n` (grows
//! near-linearly). The inset of the paper (100..10,000 nodes) is the
//! `--quick` sweep.

use omt_experiments::cli::ExpArgs;
use omt_experiments::report::{series_csv, series_markdown, write_result};
use omt_experiments::runner::run_table1_row;

fn main() {
    let args = ExpArgs::from_env();
    let mut rows = Vec::new();
    for n in args.sizes() {
        let trials = args.trials_for(n);
        eprintln!("running n = {n} ({trials} trials)...");
        let r = run_table1_row(args.seed(), n, trials);
        rows.push((n as f64, vec![r.deg6.cpu_sec, r.deg2.cpu_sec]));
    }
    let names = ["cpu sec (deg 6)", "cpu sec (deg 2)"];
    println!("{}", series_markdown("nodes", &names, &rows));
    // Linearity check: seconds per million nodes across the sweep.
    println!("seconds per 1M nodes (should stay roughly flat):");
    for (n, ys) in &rows {
        println!("  n={:>9}: {:.3}", n, ys[0] / n * 1e6);
    }
    if let Some(dir) = &args.out {
        let p =
            write_result(dir, "fig7.csv", &series_csv("nodes", &names, &rows)).expect("write CSV");
        eprintln!("wrote {}", p.display());
    }
}
