//! Regenerates **Figure 6**: the average number of grid rings `k` against
//! `n` (near-linear on a log-x axis, as equation (5) predicts).

use omt_experiments::cli::ExpArgs;
use omt_experiments::report::{series_csv, series_markdown, write_result};
use omt_experiments::runner::run_table1_row;

fn main() {
    let args = ExpArgs::from_env();
    let mut rows = Vec::new();
    for n in args.sizes() {
        let trials = args.trials_for(n);
        eprintln!("running n = {n} ({trials} trials)...");
        let r = run_table1_row(args.seed(), n, trials);
        let eq5_floor = 0.5 * (n as f64).log2();
        rows.push((n as f64, vec![r.rings, eq5_floor]));
    }
    let names = ["rings (measured)", "eq.(5) floor ½·log2 n"];
    println!("{}", series_markdown("nodes", &names, &rows));
    if let Some(dir) = &args.out {
        let p =
            write_result(dir, "fig6.csv", &series_csv("nodes", &names, &rows)).expect("write CSV");
        eprintln!("wrote {}", p.display());
    }
}
