//! Dynamic membership under churn: the decentralized-maintenance extension.
//! Reports the worst delay of the churned overlay against a fresh static
//! rebuild over the same membership, as churn progresses, plus the fraction
//! of survivors a random 1% host crash would strand in the churned tree.
//!
//! With `--shards N` (N a power of two > 1) the events run through the
//! sharded batch engine instead of the per-event path: joins are
//! speculated across polar-sector shards in parallel and merged
//! deterministically, and the crash column is computed per shard and
//! aggregated (`failure_reports_by_group`), which is how a sharded
//! deployment would actually collect it.

use omt_core::{ChurnEvent, DynamicOverlay, HostId, PolarGridBuilder, ShardedOverlay};
use omt_experiments::cli::ExpArgs;
use omt_experiments::report::{series_csv, series_markdown, write_result};
use omt_experiments::workload::trial_rng;
use omt_geom::{Point2, Region};
use omt_rng::rngs::SmallRng;
use omt_rng::RngExt;
use omt_sim::{failure_reports_by_group, simulate_with_failures, FailureReport};
use omt_tree::MulticastTree;

/// The 1%-crash strand-rate column. The crash rng derives from (seed,
/// target, 1 + step), independent of the membership stream's rng, so this
/// column cannot perturb the event trace. In sharded mode the report is
/// computed per shard and aggregated.
fn stranded_column(
    snapshot: &MulticastTree<2>,
    sharded: Option<&ShardedOverlay>,
    seed: u64,
    target: usize,
    step: usize,
) -> f64 {
    let mut crash_rng = trial_rng(seed, target, 1 + step);
    let crashes = (snapshot.len() / 100).max(1);
    let failed: Vec<usize> = (0..crashes)
        .map(|_| crash_rng.random_range(0..snapshot.len()))
        .collect();
    match sharded {
        None => simulate_with_failures(snapshot, &failed).stranded_fraction(),
        Some(ov) => {
            let parts = failure_reports_by_group(
                snapshot,
                &failed,
                |i| ov.shard_of_position(&snapshot.points()[i]) as usize,
                ov.shards() as usize,
            );
            FailureReport::aggregate(&parts).stranded_fraction()
        }
    }
}

fn metrics_row(
    snapshot: &MulticastTree<2>,
    churned: f64,
    sharded: Option<&ShardedOverlay>,
    seed: u64,
    target: usize,
    step: usize,
) -> Vec<f64> {
    let fresh = PolarGridBuilder::new()
        .build(Point2::ORIGIN, snapshot.points())
        .expect("valid points")
        .radius();
    let stranded = stranded_column(snapshot, sharded, seed, target, step);
    vec![churned, fresh, churned / fresh, stranded]
}

/// The original per-event path (`--shards 1`, the default).
fn run_unsharded(args: &ExpArgs, target: usize, steps: usize) -> Vec<(f64, Vec<f64>)> {
    let mut rng = trial_rng(args.seed(), target, 0);
    let disk = omt_geom::Disk::unit();
    let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6).expect("degree 6 ok");
    let mut live = Vec::new();
    let mut rows = Vec::new();
    for step in 0..steps {
        if live.len() < target / 2 || (live.len() < target * 2 && rng.random::<f64>() < 0.55) {
            live.push(overlay.join(disk.sample(&mut rng)));
        } else {
            let i = rng.random_range(0..live.len());
            overlay.leave(live.swap_remove(i)).expect("live id");
        }
        if step % (steps / 10).max(1) == 0 && overlay.len() > 10 {
            let snapshot = overlay.snapshot().expect("consistent overlay");
            let row = metrics_row(&snapshot, overlay.radius(), None, args.seed(), target, step);
            rows.push((step as f64, row));
        }
    }
    rows
}

/// Generates one batch of events with the same join/leave policy as the
/// per-event path; leave victims are drawn (without replacement) from the
/// pre-batch live set, since in-batch joiners' ids are only known after
/// the batch applies.
fn next_batch(
    rng: &mut SmallRng,
    live: &mut Vec<HostId>,
    target: usize,
    count: usize,
) -> Vec<ChurnEvent> {
    let mut events = Vec::with_capacity(count);
    let mut live_now = live.len();
    for _ in 0..count {
        let join = live.is_empty()
            || live_now < target / 2
            || (live_now < target * 2 && rng.random::<f64>() < 0.55);
        if join {
            events.push(ChurnEvent::Join(omt_geom::Disk::unit().sample(rng)));
            live_now += 1;
        } else {
            let i = rng.random_range(0..live.len());
            events.push(ChurnEvent::Leave(live.swap_remove(i)));
            live_now -= 1;
        }
    }
    events
}

/// The sharded batch path (`--shards N`, N > 1).
fn run_sharded(args: &ExpArgs, target: usize, steps: usize, shards: u32) -> Vec<(f64, Vec<f64>)> {
    let mut rng = trial_rng(args.seed(), target, 0);
    let mut overlay = ShardedOverlay::new(Point2::ORIGIN, 6, shards).expect("valid shard count");
    let mut live: Vec<HostId> = Vec::new();
    let mut rows = Vec::new();
    let batch = 256usize;
    let report_every = (steps / 10).max(1);
    let mut next_report = 0usize;
    let mut step = 0usize;
    let mut fast = 0u64;
    let mut joins = 0u64;
    let mut cross = 0u64;
    while step < steps {
        let events = next_batch(&mut rng, &mut live, target, batch.min(steps - step));
        let ids = overlay.apply_batch(&events).expect("live victims");
        live.extend(ids.into_iter().flatten());
        step += events.len();
        let st = overlay.last_batch_stats();
        fast += st.fast_path;
        joins += st.joins;
        cross += st.cross_shard_writes;
        if step >= next_report && overlay.len() > 10 {
            next_report = step + report_every;
            let snapshot = overlay.snapshot().expect("consistent overlay");
            let row = metrics_row(
                &snapshot,
                overlay.radius(),
                Some(&overlay),
                args.seed(),
                target,
                step,
            );
            rows.push((step as f64, row));
        }
    }
    eprintln!(
        "sharded path: {shards} shards, {joins} joins, \
         {:.1}% fast-path, {cross} cross-shard writes",
        100.0 * fast as f64 / joins.max(1) as f64
    );
    rows
}

fn main() {
    let args = ExpArgs::from_env();
    let target = args.sizes.as_ref().map_or(2_000, |s| s[0]);
    let steps = args.trials.unwrap_or(10) * target;
    let shards = args.shards();
    eprintln!(
        "churn experiment: target size {target}, {steps} membership events, {shards} shard(s)"
    );
    let rows = if shards > 1 {
        run_sharded(&args, target, steps, shards)
    } else {
        run_unsharded(&args, target, steps)
    };
    let names = [
        "churned radius",
        "fresh rebuild radius",
        "ratio",
        "crash stranded fraction",
    ];
    println!("{}", series_markdown("events", &names, &rows));
    if let Some(dir) = &args.out {
        let p = write_result(dir, "churn.csv", &series_csv("events", &names, &rows))
            .expect("write CSV");
        eprintln!("wrote {}", p.display());
    }
}
