//! Dynamic membership under churn: the decentralized-maintenance extension.
//! Reports the worst delay of the churned overlay against a fresh static
//! rebuild over the same membership, as churn progresses, plus the fraction
//! of survivors a random 1% host crash would strand in the churned tree.

use omt_core::{DynamicOverlay, PolarGridBuilder};
use omt_experiments::cli::ExpArgs;
use omt_experiments::report::{series_csv, series_markdown, write_result};
use omt_experiments::workload::trial_rng;
use omt_geom::{Point2, Region};
use omt_rng::RngExt;
use omt_sim::simulate_with_failures;

fn main() {
    let args = ExpArgs::from_env();
    let target = args.sizes.as_ref().map_or(2_000, |s| s[0]);
    let steps = args.trials.unwrap_or(10) * target;
    eprintln!("churn experiment: target size {target}, {steps} membership events");
    let mut rng = trial_rng(args.seed(), target, 0);
    let disk = omt_geom::Disk::unit();
    let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6).expect("degree 6 ok");
    let mut live = Vec::new();
    let mut rows = Vec::new();
    for step in 0..steps {
        if live.len() < target / 2 || (live.len() < target * 2 && rng.random::<f64>() < 0.55) {
            live.push(overlay.join(disk.sample(&mut rng)));
        } else {
            let i = rng.random_range(0..live.len());
            overlay.leave(live.swap_remove(i)).expect("live id");
        }
        if step % (steps / 10).max(1) == 0 && overlay.len() > 10 {
            let churned = overlay.radius();
            let snapshot = overlay.snapshot().expect("consistent overlay");
            let fresh = PolarGridBuilder::new()
                .build(Point2::ORIGIN, snapshot.points())
                .expect("valid points")
                .radius();
            // Resilience of the churned tree: strand rate after a random
            // 1% host crash. The crash rng derives from (seed, target,
            // 1 + step), independent of the membership stream's rng, so
            // adding this column cannot perturb the event trace.
            let mut crash_rng = trial_rng(args.seed(), target, 1 + step);
            let crashes = (snapshot.len() / 100).max(1);
            let failed: Vec<usize> = (0..crashes)
                .map(|_| crash_rng.random_range(0..snapshot.len()))
                .collect();
            let stranded = simulate_with_failures(&snapshot, &failed).stranded_fraction();
            rows.push((step as f64, vec![churned, fresh, churned / fresh, stranded]));
        }
    }
    let names = [
        "churned radius",
        "fresh rebuild radius",
        "ratio",
        "crash stranded fraction",
    ];
    println!("{}", series_markdown("events", &names, &rows));
    if let Some(dir) = &args.out {
        let p = write_result(dir, "churn.csv", &series_csv("events", &names, &rows))
            .expect("write CSV");
        eprintln!("wrote {}", p.display());
    }
}
