//! Regenerates **Figure 8**: average maximum delay in the three-dimensional
//! unit sphere, out-degree 10 and out-degree 2, converging to the lower
//! bound 1 (more slowly than 2-D, as the paper notes).

use omt_experiments::cli::ExpArgs;
use omt_experiments::report::{fig8_csv, fig8_markdown, metrics_markdown, write_result};
use omt_experiments::runner::run_fig8_row;

fn main() {
    let args = ExpArgs::from_env();
    let mut rows = Vec::new();
    for n in args.sizes() {
        let trials = args.trials_for(n);
        eprintln!("running n = {n} ({trials} trials)...");
        let r = run_fig8_row(args.seed(), n, trials);
        println!(
            "n={:>9}  rings={:>5.2}  delay10={:.3} (dev {:.2})  delay2={:.3} (dev {:.2})",
            r.n, r.rings, r.delay10, r.dev10, r.delay2, r.dev2
        );
        rows.push(r);
    }
    println!("\n{}", fig8_markdown(&rows));
    if let Some(dir) = &args.out {
        let p = write_result(dir, "fig8.csv", &fig8_csv(&rows)).expect("write CSV");
        eprintln!("wrote {}", p.display());
    }
    // With OMT_TRACE recording on, append the metric snapshot to the
    // report (and to the trace file when OMT_TRACE names a path).
    if omt_obs::enabled() {
        let reg = omt_obs::take_local();
        println!("{}", metrics_markdown(&reg));
        omt_obs::merge_into_local(reg);
        let _ = omt_obs::flush("fig8");
    }
}
