//! Regenerates **Table I** of the paper: Rings, Core, Delay, Dev, Bound and
//! CPU seconds for the degree-6 and degree-2 polar-grid algorithms over
//! uniform unit-disk instances.
//!
//! ```text
//! cargo run --release -p omt-experiments --bin table1            # full paper sweep
//! cargo run --release -p omt-experiments --bin table1 -- --quick # up to 50k nodes
//! cargo run --release -p omt-experiments --bin table1 -- --trials 200 --out results/
//! cargo run --release -p omt-experiments --bin table1 -- --store # arena/SoA path
//! ```
//!
//! `--store` routes construction through the arena/SoA million-scale
//! path; all quality columns are bit-identical, only "CPU Sec" changes.

use omt_experiments::cli::ExpArgs;
use omt_experiments::report::{metrics_markdown, table1_csv, table1_markdown, write_result};
use omt_experiments::runner::{run_table1_row, run_table1_row_store};

fn main() {
    let args = ExpArgs::from_env();
    let mut rows = Vec::new();
    eprintln!(
        "# Table I — {} sizes, seed {}{}",
        args.sizes().len(),
        args.seed(),
        if args.store { ", arena/SoA path" } else { "" }
    );
    for n in args.sizes() {
        let trials = args.trials_for(n);
        eprintln!("running n = {n} ({trials} trials)...");
        let row = if args.store {
            run_table1_row_store(args.seed(), n, trials)
        } else {
            run_table1_row(args.seed(), n, trials)
        };
        println!(
            "n={:>9}  rings={:>5.2}  deg6: core={:.2} delay={:.3} dev={:.2} bound={:.2} cpu={:.4}s \
             | deg2: core={:.2} delay={:.3} dev={:.2} bound={:.2} cpu={:.4}s",
            row.n,
            row.rings,
            row.deg6.core,
            row.deg6.delay,
            row.deg6.dev,
            row.deg6.bound,
            row.deg6.cpu_sec,
            row.deg2.core,
            row.deg2.delay,
            row.deg2.dev,
            row.deg2.bound,
            row.deg2.cpu_sec,
        );
        rows.push(row);
    }
    println!("\n{}", table1_markdown(&rows));
    if let Some(dir) = &args.out {
        let path = write_result(dir, "table1.csv", &table1_csv(&rows)).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
    // With OMT_TRACE recording on, append the metric snapshot to the
    // report (and to the trace file when OMT_TRACE names a path).
    if omt_obs::enabled() {
        let reg = omt_obs::take_local();
        println!("{}", metrics_markdown(&reg));
        omt_obs::merge_into_local(reg);
        let _ = omt_obs::flush("table1");
    }
}
