//! Ablation experiments over the algorithm's design choices:
//! representative selection, ring-count offsets, and grid-vs-pure-bisection.
//! Uses one size (default 10,000; override with `--sizes N`).

use omt_experiments::ablation::{
    ablation_markdown, bisection_ablation, rep_strategy_ablation, ring_offset_ablation,
};
use omt_experiments::cli::ExpArgs;
use omt_experiments::report::write_result;

fn main() {
    let args = ExpArgs::from_env();
    let n = args.sizes.as_ref().map_or(10_000, |s| s[0]);
    let trials = args.trials.unwrap_or(30);
    eprintln!(
        "ablations at n = {n}, {trials} trials, seed {}",
        args.seed()
    );
    let mut all = String::new();
    let reps = rep_strategy_ablation(args.seed(), n, trials);
    all.push_str(&ablation_markdown("Representative selection", &reps));
    all.push('\n');
    let rings = ring_offset_ablation(args.seed(), n, trials);
    all.push_str(&ablation_markdown("Ring count (k) offset", &rings));
    all.push('\n');
    let bis = bisection_ablation(args.seed(), n, trials);
    all.push_str(&ablation_markdown("Grid vs. pure bisection", &bis));
    println!("{all}");
    if let Some(dir) = &args.out {
        let p = write_result(dir, "ablation.md", &all).expect("write report");
        eprintln!("wrote {}", p.display());
    }
}
