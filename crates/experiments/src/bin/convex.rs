//! General convex regions with arbitrary source placement (Section IV-C),
//! plus a non-convex annulus control.

use omt_experiments::cli::ExpArgs;
use omt_experiments::convex::{convex_markdown, run_convex};
use omt_experiments::report::write_result;

fn main() {
    let args = ExpArgs::from_env();
    let n = args.sizes.as_ref().map_or(10_000, |s| s[0]);
    let trials = args.trials.unwrap_or(20);
    eprintln!("convex-region sweep at n = {n}, {trials} trials");
    let rows = run_convex(args.seed(), n, trials);
    let md = convex_markdown(&rows);
    println!("{md}");
    if let Some(dir) = &args.out {
        let p = write_result(dir, "convex.md", &md).expect("write report");
        eprintln!("wrote {}", p.display());
    }
}
