//! Regenerates **Figure 4**: average maximum delay compared to the
//! analytic bound (equation 7) and the core delay, degree 6, log-x in `n`.

use omt_experiments::cli::ExpArgs;
use omt_experiments::report::{series_csv, series_markdown, write_result};
use omt_experiments::runner::run_table1_row;

fn main() {
    let args = ExpArgs::from_env();
    let mut rows = Vec::new();
    for n in args.sizes() {
        let trials = args.trials_for(n);
        eprintln!("running n = {n} ({trials} trials)...");
        let r = run_table1_row(args.seed(), n, trials);
        rows.push((n as f64, vec![r.deg6.delay, r.deg6.bound, r.deg6.core]));
    }
    let names = ["delay (deg 6)", "bound eq.(7)", "core delay"];
    println!("{}", series_markdown("nodes", &names, &rows));
    println!("(plot with log-scaled x axis; the paper's Figure 4)");
    if let Some(dir) = &args.out {
        let p =
            write_result(dir, "fig4.csv", &series_csv("nodes", &names, &rows)).expect("write CSV");
        eprintln!("wrote {}", p.display());
    }
}
