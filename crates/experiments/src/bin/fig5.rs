//! Regenerates **Figure 5**: comparison of the average maximum delay for
//! out-degree 2 and out-degree 6 trees (both converge to 1; the degree-2
//! overhead is roughly twice the degree-6 overhead).

use omt_experiments::cli::ExpArgs;
use omt_experiments::report::{series_csv, series_markdown, write_result};
use omt_experiments::runner::run_table1_row;

fn main() {
    let args = ExpArgs::from_env();
    let mut rows = Vec::new();
    let mut overhead_ratios = Vec::new();
    for n in args.sizes() {
        let trials = args.trials_for(n);
        eprintln!("running n = {n} ({trials} trials)...");
        let r = run_table1_row(args.seed(), n, trials);
        rows.push((n as f64, vec![r.deg6.delay, r.deg2.delay]));
        if r.deg6.delay > r.lower_bound {
            overhead_ratios.push((r.deg2.delay - r.lower_bound) / (r.deg6.delay - r.lower_bound));
        }
    }
    let names = ["delay (deg 6)", "delay (deg 2)"];
    println!("{}", series_markdown("nodes", &names, &rows));
    let avg: f64 = overhead_ratios.iter().sum::<f64>() / overhead_ratios.len().max(1) as f64;
    println!("average overhead ratio deg2/deg6: {avg:.2} (the paper reports ~2)");
    if let Some(dir) = &args.out {
        let p =
            write_result(dir, "fig5.csv", &series_csv("nodes", &names, &rows)).expect("write CSV");
        eprintln!("wrote {}", p.display());
    }
}
