//! The bandwidth story behind the degree constraint: dissemination
//! makespan under per-copy serialization cost, comparing the unconstrained
//! star (what you would do without fan-out limits) against the paper's
//! degree-6 and degree-2 trees.
//!
//! With zero serialization the star is optimal (one direct hop each). As
//! the per-copy cost grows, the star's source serializes n copies and
//! loses badly to bounded-fanout trees — the crossover is the whole reason
//! degree-constrained trees exist.

use omt_baselines::star_tree;
use omt_core::PolarGridBuilder;
use omt_experiments::cli::ExpArgs;
use omt_experiments::report::{series_csv, series_markdown, write_result};
use omt_experiments::workload::disk_trial;
use omt_geom::Point2;
use omt_sim::{simulate, SimConfig};

fn main() {
    let args = ExpArgs::from_env();
    let n = args.sizes.as_ref().map_or(2_000, |s| s[0]);
    eprintln!("makespan sweep at n = {n}");
    let pts = disk_trial(args.seed(), n, 0);
    let star = star_tree(Point2::ORIGIN, &pts).expect("valid workload");
    let deg6 = PolarGridBuilder::new()
        .build(Point2::ORIGIN, &pts)
        .expect("valid");
    let deg2 = PolarGridBuilder::new()
        .max_out_degree(2)
        .build(Point2::ORIGIN, &pts)
        .expect("valid");
    let mut rows = Vec::new();
    for exp in -6..=-1 {
        let s = 10f64.powi(exp);
        let cfg = SimConfig {
            serialization_delay: s,
            ..SimConfig::default()
        };
        rows.push((
            s,
            vec![
                simulate(&star, &cfg).makespan,
                simulate(&deg6, &cfg).makespan,
                simulate(&deg2, &cfg).makespan,
            ],
        ));
    }
    let names = ["star (unbounded)", "polar-grid deg6", "polar-grid deg2"];
    println!("{}", series_markdown("serialization delay", &names, &rows));
    println!("(the star wins only while serialization is negligible; the crossover");
    println!(" is why overlay multicast needs degree-constrained trees at all)");
    if let Some(dir) = &args.out {
        let p = write_result(
            dir,
            "makespan.csv",
            &series_csv("serialization_delay", &names, &rows),
        )
        .expect("write CSV");
        eprintln!("wrote {}", p.display());
    }
}
