//! Head-to-head comparison of the paper's algorithm against the prior-art
//! baselines it cites — the experiment the paper argues by construction
//! ("for all the proposed heuristics, the scalability issue remains open").

use std::time::Instant;

use omt_baselines::{
    optimal_radius_lower_bound, random_tree, BandwidthLatency, GreedyBuilder, GreedyObjective,
};
use omt_core::{Bisection, PolarGridBuilder};
use omt_geom::Point2;

use crate::stats::Accumulator;
use crate::workload::{disk_trial, trial_rng};

/// Aggregated result of one algorithm at one size.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineRow {
    /// Algorithm label.
    pub algorithm: String,
    /// Problem size.
    pub n: usize,
    /// Average longest delay.
    pub delay: f64,
    /// Standard deviation of the longest delay.
    pub dev: f64,
    /// Average delay divided by the universal lower bound.
    pub ratio: f64,
    /// Average construction seconds.
    pub cpu_sec: f64,
}

/// The algorithms compared (all at the same out-degree budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's polar-grid algorithm.
    PolarGrid,
    /// The paper's standalone bisection (Section II).
    Bisection,
    /// The compact-tree heuristic (Shi & Turner).
    CompactTree,
    /// Degree-constrained Prim.
    GreedyPrim,
    /// The bandwidth-latency heuristic (Chu et al.).
    BandwidthLatency,
    /// A uniformly random feasible tree.
    Random,
}

impl Algorithm {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::PolarGrid => "polar-grid (paper)",
            Self::Bisection => "bisection (paper §II)",
            Self::CompactTree => "compact-tree (CPT)",
            Self::GreedyPrim => "greedy Prim",
            Self::BandwidthLatency => "bandwidth-latency",
            Self::Random => "random",
        }
    }

    /// All comparison algorithms.
    pub const ALL: [Algorithm; 6] = [
        Self::PolarGrid,
        Self::Bisection,
        Self::CompactTree,
        Self::GreedyPrim,
        Self::BandwidthLatency,
        Self::Random,
    ];

    /// Whether the algorithm is quadratic (skipped at huge sizes).
    pub fn is_quadratic(&self) -> bool {
        matches!(
            self,
            Self::CompactTree | Self::GreedyPrim | Self::BandwidthLatency
        )
    }
}

/// Runs one (algorithm, size) cell of the comparison.
pub fn run_baseline_cell(
    algorithm: Algorithm,
    seed: u64,
    n: usize,
    trials: usize,
    degree: u32,
) -> BaselineRow {
    assert!(trials > 0, "need at least one trial");
    let mut delay = Accumulator::new();
    let mut ratio = Accumulator::new();
    let mut cpu = Accumulator::new();
    for trial in 0..trials {
        let pts = disk_trial(seed, n, trial);
        let lb = optimal_radius_lower_bound(Point2::ORIGIN, &pts);
        let t0 = Instant::now();
        let radius = match algorithm {
            Algorithm::PolarGrid => PolarGridBuilder::new()
                .max_out_degree(degree)
                .build(Point2::ORIGIN, &pts)
                .expect("valid workload")
                .radius(),
            Algorithm::Bisection => Bisection::new(degree)
                .expect("degree >= 2")
                .build(Point2::ORIGIN, &pts)
                .expect("valid workload")
                .radius(),
            Algorithm::CompactTree => GreedyBuilder::new(GreedyObjective::MinDelay)
                .max_out_degree(degree)
                .build(Point2::ORIGIN, &pts)
                .expect("valid workload")
                .radius(),
            Algorithm::GreedyPrim => GreedyBuilder::new(GreedyObjective::MinEdge)
                .max_out_degree(degree)
                .build(Point2::ORIGIN, &pts)
                .expect("valid workload")
                .radius(),
            Algorithm::BandwidthLatency => BandwidthLatency::uniform(degree)
                .build(Point2::ORIGIN, &pts)
                .expect("valid workload")
                .radius(),
            Algorithm::Random => {
                let mut rng = trial_rng(seed ^ 0xBAD5EED, n, trial);
                random_tree(Point2::ORIGIN, &pts, degree, &mut rng)
                    .expect("valid workload")
                    .radius()
            }
        };
        cpu.push(t0.elapsed().as_secs_f64());
        delay.push(radius);
        if lb > 0.0 {
            ratio.push(radius / lb);
        }
    }
    BaselineRow {
        algorithm: algorithm.name().to_string(),
        n,
        delay: delay.mean(),
        dev: delay.stddev(),
        ratio: ratio.mean(),
        cpu_sec: cpu.mean(),
    }
}

/// Formats comparison rows as a markdown table.
pub fn baseline_markdown(rows: &[BaselineRow]) -> String {
    let mut out = String::from(
        "| Algorithm | n | Delay | Dev | Delay/LB | CPU s |\n|---|---:|---:|---:|---:|---:|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {:.3} | {:.3} | {:.3} | {:.5} |\n",
            r.algorithm, r.n, r.delay, r.dev, r.ratio, r.cpu_sec
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_produce_sound_rows() {
        for alg in Algorithm::ALL {
            let row = run_baseline_cell(alg, 1, 300, 3, 6);
            assert!(
                row.delay >= 1.0 * 0.9,
                "{}: delay {}",
                row.algorithm,
                row.delay
            );
            assert!(
                row.ratio >= 1.0 - 1e-9,
                "{}: ratio {}",
                row.algorithm,
                row.ratio
            );
            assert!(row.cpu_sec >= 0.0);
        }
    }

    #[test]
    fn random_is_the_worst() {
        let degree = 2;
        let rows: Vec<BaselineRow> = Algorithm::ALL
            .iter()
            .map(|&a| run_baseline_cell(a, 2, 400, 3, degree))
            .collect();
        let random = rows.last().expect("random is last").delay;
        for r in &rows[..rows.len() - 1] {
            assert!(
                r.delay < random,
                "{} ({}) not better than random ({})",
                r.algorithm,
                r.delay,
                random
            );
        }
    }

    #[test]
    fn cpt_wins_small_polar_grid_wins_big() {
        // At small n the quadratic CPT heuristic is very strong; the
        // asymptotically optimal grid must at least close the gap by 20k.
        let small_grid = run_baseline_cell(Algorithm::PolarGrid, 3, 200, 3, 6);
        let small_cpt = run_baseline_cell(Algorithm::CompactTree, 3, 200, 3, 6);
        assert!(small_cpt.delay < small_grid.delay);
        let big_grid = run_baseline_cell(Algorithm::PolarGrid, 3, 20_000, 2, 6);
        let big_cpt = run_baseline_cell(Algorithm::CompactTree, 3, 20_000, 2, 6);
        let small_gap = small_grid.delay / small_cpt.delay;
        let big_gap = big_grid.delay / big_cpt.delay;
        assert!(
            big_gap < small_gap,
            "gap did not close: {small_gap} -> {big_gap}"
        );
        // And the grid is drastically faster at this size.
        assert!(big_grid.cpu_sec < big_cpt.cpu_sec / 5.0);
    }

    #[test]
    fn markdown_format() {
        let row = run_baseline_cell(Algorithm::PolarGrid, 1, 100, 2, 6);
        let md = baseline_markdown(&[row]);
        assert!(md.contains("polar-grid (paper)"));
    }
}
