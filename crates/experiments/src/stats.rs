//! Small statistics helpers for the experiment harness.

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 for fewer than 2 observations).
    /// The paper's "Dev" column is a population deviation over 200 trials.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Self::new();
        for x in iter {
            acc.push(x);
        }
        acc
    }
}

impl Extend<f64> for Accumulator {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_mean_and_deviation() {
        let acc: Accumulator = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.stddev(), 0.0);
        let one: Accumulator = [3.5].into_iter().collect();
        assert_eq!(one.mean(), 3.5);
        assert_eq!(one.stddev(), 0.0);
    }

    #[test]
    fn extend_matches_collect() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let collected: Accumulator = data.into_iter().collect();
        let mut extended = Accumulator::new();
        extended.extend(data);
        assert_eq!(collected, extended);
    }

    #[test]
    fn constant_sequence_has_zero_deviation() {
        let acc: Accumulator = std::iter::repeat_n(7.0, 100).collect();
        assert!((acc.mean() - 7.0).abs() < 1e-12);
        assert!(acc.stddev() < 1e-12);
    }
}
