//! Experiment harness reproducing the evaluation of *Overlay Multicast
//! Trees of Minimal Delay*.
//!
//! Each table and figure of the paper has a module and a runnable binary:
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table I | [`runner`] | `cargo run --release -p omt-experiments --bin table1` |
//! | Figure 4 (delay vs. bounds) | [`runner`] | `--bin fig4` |
//! | Figure 5 (degree 2 vs. 6) | [`runner`] | `--bin fig5` |
//! | Figure 6 (rings vs. n) | [`runner`] | `--bin fig6` |
//! | Figure 7 (running time) | [`runner`] | `--bin fig7` |
//! | Figure 8 (3-D unit sphere) | [`runner`] | `--bin fig8` |
//! | Ablations (ours) | [`ablation`] | `--bin ablation` |
//! | Baseline comparison (ours) | [`baseline_cmp`] | `--bin baseline_cmp` |
//! | Convex regions (ours) | [`convex`] | `--bin convex` |
//! | Embedding distortion (paper's future work) | [`embedding`] | `--bin embedding` |
//! | Failure resilience (ours) | [`resilience`] | `--bin resilience` |
//!
//! All binaries accept `--sizes`, `--trials`, `--seed`, `--out DIR` (CSV
//! output) and `--quick`; see [`cli`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod baseline_cmp;
pub mod cli;
pub mod convex;
pub mod embedding;
pub mod report;
pub mod resilience;
pub mod runner;
pub mod stats;
pub mod workload;
