//! A tiny shared argument parser for the experiment binaries (no external
//! CLI dependency needed for five flags).
//!
//! Supported flags, all optional:
//!
//! * `--sizes 100,1000,10000` — problem sizes to sweep;
//! * `--trials 200` — trials per size (default: the paper's 200 up to
//!   100k nodes, scaled down above — see
//!   [`default_trials`]).
//! * `--seed 2004` — experiment seed;
//! * `--out results/` — also write CSV files into this directory;
//! * `--quick` — use the short size sweep (up to 50k nodes).
//! * `--store` — build through the arena/SoA million-scale path
//!   (`build_store_with_report`); quality columns are bit-identical to
//!   the default path, only "CPU Sec" (and memory) change.
//! * `--shards 4` — experiments that support it (churn) drive the
//!   sharded batch engine instead of the per-event path; results are
//!   bit-identical, only throughput changes. Must be a power of two.

use std::path::PathBuf;

use crate::workload::{default_trials, PAPER_SIZES, QUICK_SIZES};

/// Parsed experiment arguments.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExpArgs {
    /// Explicit size sweep, if given.
    pub sizes: Option<Vec<usize>>,
    /// Trials per size, overriding the default policy.
    pub trials: Option<usize>,
    /// Experiment seed (default 2004, the paper's year).
    pub seed: Option<u64>,
    /// Directory for CSV output.
    pub out: Option<PathBuf>,
    /// Use the quick size sweep.
    pub quick: bool,
    /// Build through the arena/SoA store path where the experiment
    /// supports it (Table I).
    pub store: bool,
    /// Shard count for the batched churn engine (default 1 = unsharded).
    pub shards: Option<u32>,
}

impl ExpArgs {
    /// Parses the given arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or malformed
    /// values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("flag {name} expects a value"))
            };
            match flag.as_str() {
                "--sizes" => {
                    let v = value("--sizes")?;
                    let sizes: Result<Vec<usize>, _> =
                        v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                    out.sizes = Some(sizes.map_err(|e| format!("bad --sizes value {v:?}: {e}"))?);
                }
                "--trials" => {
                    let v = value("--trials")?;
                    out.trials = Some(
                        v.parse()
                            .map_err(|e| format!("bad --trials value {v:?}: {e}"))?,
                    );
                }
                "--seed" => {
                    let v = value("--seed")?;
                    out.seed = Some(
                        v.parse()
                            .map_err(|e| format!("bad --seed value {v:?}: {e}"))?,
                    );
                }
                "--out" => out.out = Some(PathBuf::from(value("--out")?)),
                "--quick" => out.quick = true,
                "--store" => out.store = true,
                "--shards" => {
                    let v = value("--shards")?;
                    let shards: u32 = v
                        .parse()
                        .map_err(|e| format!("bad --shards value {v:?}: {e}"))?;
                    if !shards.is_power_of_two() || shards > 64 {
                        return Err(format!(
                            "bad --shards value {shards}: must be a power of two in 1..=64"
                        ));
                    }
                    out.shards = Some(shards);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: [--sizes 100,1000] [--trials N] [--seed N] [--out DIR] [--quick] [--store] [--shards N]"
                );
                std::process::exit(2);
            }
        }
    }

    /// The size sweep: explicit `--sizes`, else quick or paper sizes.
    pub fn sizes(&self) -> Vec<usize> {
        match &self.sizes {
            Some(s) => s.clone(),
            None if self.quick => QUICK_SIZES.to_vec(),
            None => PAPER_SIZES.to_vec(),
        }
    }

    /// Trials for a given size: explicit `--trials`, else the default
    /// policy.
    pub fn trials_for(&self, n: usize) -> usize {
        self.trials.unwrap_or_else(|| default_trials(n))
    }

    /// The experiment seed.
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(2004)
    }

    /// The shard count (1 = the unsharded per-event path).
    pub fn shards(&self) -> u32 {
        self.shards.unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<ExpArgs, String> {
        ExpArgs::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_all_flags() {
        let a = parse("--sizes 10,20 --trials 5 --seed 9 --out res --quick --store --shards 8")
            .unwrap();
        assert_eq!(a.sizes(), vec![10, 20]);
        assert_eq!(a.trials_for(1_000_000), 5);
        assert_eq!(a.seed(), 9);
        assert_eq!(a.out, Some(PathBuf::from("res")));
        assert!(a.quick);
        assert!(a.store);
        assert_eq!(a.shards(), 8);
        assert!(!parse("").unwrap().store);
    }

    #[test]
    fn shards_default_and_validation() {
        assert_eq!(parse("").unwrap().shards(), 1);
        assert_eq!(parse("--shards 4").unwrap().shards(), 4);
        assert!(parse("--shards 3").is_err());
        assert!(parse("--shards 0").is_err());
        assert!(parse("--shards 128").is_err());
        assert!(parse("--shards").is_err());
    }

    #[test]
    fn defaults() {
        let a = parse("").unwrap();
        assert_eq!(a.sizes(), PAPER_SIZES.to_vec());
        assert_eq!(a.trials_for(100), 200);
        assert_eq!(a.trials_for(5_000_000), 5);
        assert_eq!(a.seed(), 2004);
        let q = parse("--quick").unwrap();
        assert_eq!(q.sizes(), QUICK_SIZES.to_vec());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("--sizes ten").is_err());
        assert!(parse("--trials").is_err());
        assert!(parse("--frobnicate 3").is_err());
        assert!(parse("--seed -1").is_err());
    }
}
