//! Plain-text reporters: markdown tables to stdout, CSV files to a results
//! directory. No serialization dependency — the formats are trivial.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::runner::{Fig8Row, Table1Row};

/// Formats Table I as a markdown table in the paper's column order.
pub fn table1_markdown(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "| Nodes | Rings | Core₆ | Delay₆ | Dev₆ | Bound₆ | CPU₆ s | Core₂ | Delay₂ | Dev₂ | Bound₂ | CPU₂ s |\n",
    );
    out.push_str(
        "|------:|------:|------:|-------:|-----:|-------:|-------:|------:|-------:|-----:|-------:|-------:|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.3} | {:.2} | {:.2} | {:.4} | {:.2} | {:.3} | {:.2} | {:.2} | {:.4} |\n",
            r.n,
            r.rings,
            r.deg6.core,
            r.deg6.delay,
            r.deg6.dev,
            r.deg6.bound,
            r.deg6.cpu_sec,
            r.deg2.core,
            r.deg2.delay,
            r.deg2.dev,
            r.deg2.bound,
            r.deg2.cpu_sec,
        ));
    }
    out
}

/// Formats Table I as CSV with a header row.
pub fn table1_csv(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "nodes,rings,lower_bound,core6,delay6,dev6,bound6,cpu6,core2,delay2,dev2,bound2,cpu2\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.n,
            r.rings,
            r.lower_bound,
            r.deg6.core,
            r.deg6.delay,
            r.deg6.dev,
            r.deg6.bound,
            r.deg6.cpu_sec,
            r.deg2.core,
            r.deg2.delay,
            r.deg2.dev,
            r.deg2.bound,
            r.deg2.cpu_sec,
        ));
    }
    out
}

/// Formats the Figure-8 rows as a markdown table.
pub fn fig8_markdown(rows: &[Fig8Row]) -> String {
    let mut out =
        String::from("| Nodes | Rings | Delay₁₀ | Dev₁₀ | Delay₂ | Dev₂ | CPU₁₀ s | CPU₂ s |\n");
    out.push_str("|------:|------:|--------:|------:|-------:|-----:|--------:|-------:|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.2} | {:.3} | {:.2} | {:.3} | {:.2} | {:.4} | {:.4} |\n",
            r.n, r.rings, r.delay10, r.dev10, r.delay2, r.dev2, r.cpu_sec10, r.cpu_sec2,
        ));
    }
    out
}

/// Formats the Figure-8 rows as CSV.
pub fn fig8_csv(rows: &[Fig8Row]) -> String {
    let mut out = String::from("nodes,rings,delay10,dev10,delay2,dev2,cpu10,cpu2\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.n, r.rings, r.delay10, r.dev10, r.delay2, r.dev2, r.cpu_sec10, r.cpu_sec2,
        ));
    }
    out
}

/// A generic numeric series table: first column plus named series, used by
/// the figure binaries (delay vs. bound, rings vs. n, …).
pub fn series_markdown(x_name: &str, names: &[&str], rows: &[(f64, Vec<f64>)]) -> String {
    let mut out = format!("| {x_name} |");
    for n in names {
        out.push_str(&format!(" {n} |"));
    }
    out.push('\n');
    out.push_str("|---:|");
    for _ in names {
        out.push_str("---:|");
    }
    out.push('\n');
    for (x, ys) in rows {
        out.push_str(&format!("| {x} |"));
        for y in ys {
            out.push_str(&format!(" {y:.4} |"));
        }
        out.push('\n');
    }
    out
}

/// CSV counterpart of [`series_markdown`].
pub fn series_csv(x_name: &str, names: &[&str], rows: &[(f64, Vec<f64>)]) -> String {
    let mut out = String::from(x_name);
    for n in names {
        out.push(',');
        out.push_str(n);
    }
    out.push('\n');
    for (x, ys) in rows {
        out.push_str(&format!("{x}"));
        for y in ys {
            out.push_str(&format!(",{y}"));
        }
        out.push('\n');
    }
    out
}

/// Renders an observability registry as a markdown section: one table of
/// span timings, one of counters, one of histogram summaries (empty
/// string when the registry is empty). The experiment binaries append
/// this to their reports when `OMT_TRACE` recording is on.
pub fn metrics_markdown(reg: &omt_obs::Registry) -> String {
    if reg.is_empty() {
        return String::new();
    }
    let mut out = String::from("## Metrics\n");
    if reg.spans().next().is_some() {
        out.push_str("\n| Span | Count | Total ms | Mean µs | Min µs | Max µs |\n");
        out.push_str("|:-----|------:|---------:|--------:|-------:|-------:|\n");
        for (name, s) in reg.spans() {
            let mean_us = if s.count == 0 {
                0.0
            } else {
                s.total_ns as f64 / s.count as f64 / 1e3
            };
            out.push_str(&format!(
                "| {name} | {} | {:.3} | {:.3} | {:.3} | {:.3} |\n",
                s.count,
                s.total_ns as f64 / 1e6,
                mean_us,
                s.min_ns as f64 / 1e3,
                s.max_ns as f64 / 1e3,
            ));
        }
    }
    if reg.counters().next().is_some() {
        out.push_str("\n| Counter | Value |\n|:--------|------:|\n");
        for (name, v) in reg.counters() {
            out.push_str(&format!("| {name} | {v} |\n"));
        }
    }
    if reg.hists().next().is_some() {
        out.push_str("\n| Histogram | Count | Mean | Max ≤ |\n");
        out.push_str("|:----------|------:|-----:|------:|\n");
        for (name, h) in reg.hists() {
            out.push_str(&format!(
                "| {name} | {} | {:.2} | {} |\n",
                h.count,
                h.mean(),
                h.max_bucket_edge(),
            ));
        }
    }
    out
}

/// Writes `contents` to `dir/name`, creating the directory if needed, and
/// returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_result(dir: &Path, name: &str, contents: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::DegreeStats;

    fn sample_row() -> Table1Row {
        Table1Row {
            n: 100,
            rings: 3.61,
            lower_bound: 0.99,
            deg6: DegreeStats {
                core: 1.53,
                delay: 1.852,
                dev: 0.20,
                bound: 7.18,
                cpu_sec: 0.002,
            },
            deg2: DegreeStats {
                core: 2.21,
                delay: 2.634,
                dev: 0.31,
                bound: 10.74,
                cpu_sec: 0.0015,
            },
        }
    }

    #[test]
    fn markdown_contains_paper_values() {
        let md = table1_markdown(&[sample_row()]);
        assert!(md.contains("| 100 | 3.61 | 1.53 | 1.852 | 0.20 | 7.18 |"));
        assert!(md.contains("2.634"));
    }

    #[test]
    fn csv_round_numbers() {
        let csv = table1_csv(&[sample_row()]);
        assert!(csv.starts_with("nodes,"));
        assert!(csv.contains("100,3.61,0.99,1.53,1.852,0.2,7.18"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn series_tables() {
        let rows = vec![(100.0, vec![1.0, 2.0]), (1000.0, vec![0.5, 1.5])];
        let md = series_markdown("n", &["a", "b"], &rows);
        assert!(md.contains("| n | a | b |"));
        assert!(md.contains("| 1000 | 0.5000 | 1.5000 |"));
        let csv = series_csv("n", &["a", "b"], &rows);
        assert!(csv.starts_with("n,a,b\n"));
        assert!(csv.contains("1000,0.5,1.5"));
    }

    #[test]
    fn fig8_formatting() {
        let rows = vec![Fig8Row {
            n: 1000,
            rings: 5.0,
            delay10: 1.5,
            dev10: 0.1,
            delay2: 2.0,
            dev2: 0.2,
            cpu_sec10: 0.01,
            cpu_sec2: 0.02,
        }];
        assert!(fig8_markdown(&rows).contains("| 1000 | 5.00 | 1.500 |"));
        assert!(fig8_csv(&rows).contains("1000,5,1.5,0.1,2,0.2"));
    }

    #[test]
    fn metrics_markdown_renders_all_sections() {
        let mut reg = omt_obs::Registry::default();
        assert_eq!(metrics_markdown(&reg), "");
        reg.record_span("phase/a", 1_500_000);
        reg.add_counter("events", 42);
        reg.record_observation("sizes", 8);
        let md = metrics_markdown(&reg);
        assert!(md.contains("## Metrics"));
        assert!(md.contains("| phase/a | 1 | 1.500 |"));
        assert!(md.contains("| events | 42 |"));
        assert!(md.contains("| sizes | 1 | 8.00 |"));
    }

    #[test]
    fn write_result_creates_dirs() {
        let dir = std::env::temp_dir().join("omt_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_result(&dir.join("nested"), "t.csv", "a,b\n").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "a,b\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
