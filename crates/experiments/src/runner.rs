//! The measurement core shared by Table I and Figures 4–7 (2-D) and
//! Figure 8 (3-D).

use std::time::Instant;

use omt_core::{PolarGridBuilder, SphereGridBuilder};
use omt_geom::{Point2, Point3};

use crate::stats::Accumulator;
use crate::workload::{ball_trial, disk_trial, disk_trial_store, par_trials};

/// Aggregates for one out-degree setting of Table I.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Average longest representative-to-representative portion ("Core").
    pub core: f64,
    /// Average longest delay ("Delay").
    pub delay: f64,
    /// Standard deviation of the longest delay ("Dev").
    pub dev: f64,
    /// Average analytic bound of equation (7) at `j = 0` ("Bound").
    pub bound: f64,
    /// Average construction time in seconds ("CPU Sec").
    pub cpu_sec: f64,
}

/// One row of Table I: a problem size with both degree settings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table1Row {
    /// The number of nodes `n`.
    pub n: usize,
    /// Average number of grid rings ("Rings").
    pub rings: f64,
    /// Average trivial lower bound (max direct distance) — not printed by
    /// the paper but useful context (approaches 1).
    pub lower_bound: f64,
    /// The out-degree-6 statistics.
    pub deg6: DegreeStats,
    /// The out-degree-2 statistics.
    pub deg2: DegreeStats,
}

/// Runs one Table-I row: `trials` independent unit-disk instances of size
/// `n`, each built with both the degree-6 and degree-2 algorithms.
pub fn run_table1_row(seed: u64, n: usize, trials: usize) -> Table1Row {
    table1_row_impl(seed, n, trials, false)
}

/// The same Table-I row built through the arena/SoA million-scale path
/// (`build_store_with_report`). Trees and reports are bit-identical to
/// [`run_table1_row`], so every quality column matches exactly; only
/// "CPU Sec" (and peak memory) reflect the different construction path.
pub fn run_table1_row_store(seed: u64, n: usize, trials: usize) -> Table1Row {
    table1_row_impl(seed, n, trials, true)
}

fn table1_row_impl(seed: u64, n: usize, trials: usize, store: bool) -> Table1Row {
    assert!(trials > 0, "need at least one trial");
    let _row_span = omt_obs::obs_span!("experiments/table1_row");
    omt_obs::obs_observe!("experiments/trials", trials as u64);
    let mut rings = Accumulator::new();
    let mut lower = Accumulator::new();
    let mut acc6 = DegreeAcc::default();
    let mut acc2 = DegreeAcc::default();
    // Trials fan out across the `omt-par` pool (builders pinned to one
    // thread each); folding in trial order keeps every aggregate
    // bit-identical at any thread count.
    let b6 = PolarGridBuilder::new().max_out_degree(6).threads(1);
    let b2 = PolarGridBuilder::new().max_out_degree(2).threads(1);
    let results = par_trials(trials, |trial| {
        if store {
            let store = disk_trial_store(seed, n, trial);
            let t0 = Instant::now();
            let (_, r6) = b6.build_store_with_report(&store).expect("valid workload");
            let cpu6 = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let (_, r2) = b2.build_store_with_report(&store).expect("valid workload");
            let cpu2 = t0.elapsed().as_secs_f64();
            return (r6, cpu6, r2, cpu2);
        }
        let points = disk_trial(seed, n, trial);
        let t0 = Instant::now();
        let (_, r6) = b6
            .build_with_report(Point2::ORIGIN, &points)
            .expect("valid workload");
        let cpu6 = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let (_, r2) = b2
            .build_with_report(Point2::ORIGIN, &points)
            .expect("valid workload");
        let cpu2 = t0.elapsed().as_secs_f64();
        (r6, cpu6, r2, cpu2)
    });
    for (r6, cpu6, r2, cpu2) in results {
        // Both runs share the grid parameters (same points, same rule).
        debug_assert_eq!(r6.rings, r2.rings);
        rings.push(f64::from(r6.rings));
        lower.push(r6.lower_bound);
        acc6.push(r6.core_delay, r6.delay, r6.bound, cpu6);
        acc2.push(r2.core_delay, r2.delay, r2.bound, cpu2);
    }
    Table1Row {
        n,
        rings: rings.mean(),
        lower_bound: lower.mean(),
        deg6: acc6.finish(),
        deg2: acc2.finish(),
    }
}

/// One row of the Figure-8 experiment (3-D unit ball).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig8Row {
    /// The number of nodes `n`.
    pub n: usize,
    /// Average number of grid rings.
    pub rings: f64,
    /// Out-degree-10 average longest delay and deviation.
    pub delay10: f64,
    /// Deviation for the degree-10 delay.
    pub dev10: f64,
    /// Out-degree-2 average longest delay and deviation.
    pub delay2: f64,
    /// Deviation for the degree-2 delay.
    pub dev2: f64,
    /// Average construction seconds (degree 10).
    pub cpu_sec10: f64,
    /// Average construction seconds (degree 2).
    pub cpu_sec2: f64,
}

/// Runs one Figure-8 row: `trials` unit-ball instances of size `n` with
/// the degree-10 and degree-2 spherical algorithms.
pub fn run_fig8_row(seed: u64, n: usize, trials: usize) -> Fig8Row {
    assert!(trials > 0, "need at least one trial");
    let _row_span = omt_obs::obs_span!("experiments/fig8_row");
    omt_obs::obs_observe!("experiments/trials", trials as u64);
    let mut rings = Accumulator::new();
    let mut d10 = Accumulator::new();
    let mut d2 = Accumulator::new();
    let mut c10 = Accumulator::new();
    let mut c2 = Accumulator::new();
    let b10 = SphereGridBuilder::new().max_out_degree(10).threads(1);
    let b2 = SphereGridBuilder::new().max_out_degree(2).threads(1);
    let results = par_trials(trials, |trial| {
        let points = ball_trial(seed, n, trial);
        let t0 = Instant::now();
        let (_, r10) = b10
            .build_with_report(Point3::ORIGIN, &points)
            .expect("valid workload");
        let cpu10 = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let (_, r2) = b2
            .build_with_report(Point3::ORIGIN, &points)
            .expect("valid workload");
        let cpu2 = t0.elapsed().as_secs_f64();
        (r10, cpu10, r2, cpu2)
    });
    for (r10, cpu10, r2, cpu2) in results {
        c10.push(cpu10);
        c2.push(cpu2);
        rings.push(f64::from(r10.rings));
        d10.push(r10.delay);
        d2.push(r2.delay);
    }
    Fig8Row {
        n,
        rings: rings.mean(),
        delay10: d10.mean(),
        dev10: d10.stddev(),
        delay2: d2.mean(),
        dev2: d2.stddev(),
        cpu_sec10: c10.mean(),
        cpu_sec2: c2.mean(),
    }
}

#[derive(Default)]
struct DegreeAcc {
    core: Accumulator,
    delay: Accumulator,
    bound: Accumulator,
    cpu: Accumulator,
}

impl DegreeAcc {
    fn push(&mut self, core: f64, delay: f64, bound: f64, cpu: f64) {
        self.core.push(core);
        self.delay.push(delay);
        self.bound.push(bound);
        self.cpu.push(cpu);
    }

    fn finish(&self) -> DegreeStats {
        DegreeStats {
            core: self.core.mean(),
            delay: self.delay.mean(),
            dev: self.delay.stddev(),
            bound: self.bound.mean(),
            cpu_sec: self.cpu.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_matches_paper_shape_at_n_100() {
        // Paper row (n = 100): Rings 3.61, deg-6 Delay 1.852, Bound 7.18;
        // deg-2 Delay 2.634, Bound 10.74. We assert the same neighborhood
        // with modest trial counts (exact numbers vary with the RNG).
        let row = run_table1_row(42, 100, 60);
        assert!((row.rings - 3.6).abs() < 0.5, "rings {}", row.rings);
        assert!(
            (row.deg6.delay - 1.85).abs() < 0.25,
            "delay6 {}",
            row.deg6.delay
        );
        assert!(
            (row.deg2.delay - 2.63).abs() < 0.45,
            "delay2 {}",
            row.deg2.delay
        );
        assert!(
            (row.deg6.bound - 7.18).abs() < 0.8,
            "bound6 {}",
            row.deg6.bound
        );
        assert!(
            (row.deg2.bound - 10.74).abs() < 1.2,
            "bound2 {}",
            row.deg2.bound
        );
        // Structural relations of the table.
        assert!(row.deg2.delay > row.deg6.delay);
        assert!(row.deg2.bound > row.deg6.bound);
        assert!(row.deg6.core < row.deg6.delay);
        assert!(row.deg6.delay < row.deg6.bound);
        assert!(row.lower_bound <= 1.0);
    }

    #[test]
    fn store_row_matches_legacy_row_exactly_except_cpu() {
        let legacy = run_table1_row(2004, 1500, 8);
        let store = run_table1_row_store(2004, 1500, 8);
        assert_eq!(legacy.n, store.n);
        assert_eq!(legacy.rings.to_bits(), store.rings.to_bits());
        assert_eq!(legacy.lower_bound.to_bits(), store.lower_bound.to_bits());
        for (l, s) in [(legacy.deg6, store.deg6), (legacy.deg2, store.deg2)] {
            assert_eq!(l.core.to_bits(), s.core.to_bits());
            assert_eq!(l.delay.to_bits(), s.delay.to_bits());
            assert_eq!(l.dev.to_bits(), s.dev.to_bits());
            assert_eq!(l.bound.to_bits(), s.bound.to_bits());
        }
    }

    #[test]
    fn delay_and_dev_shrink_with_n() {
        let small = run_table1_row(7, 100, 30);
        let large = run_table1_row(7, 5_000, 10);
        assert!(large.deg6.delay < small.deg6.delay);
        assert!(large.deg6.dev < small.deg6.dev);
        assert!(large.rings > small.rings);
        assert!(large.deg6.bound < small.deg6.bound);
    }

    #[test]
    fn fig8_row_structure() {
        let row = run_fig8_row(3, 1000, 10);
        assert!(row.delay2 > row.delay10);
        assert!(row.delay10 > 1.0);
        assert!(row.rings >= 1.0);
        assert!(row.dev10 >= 0.0 && row.dev2 >= 0.0);
    }
}
