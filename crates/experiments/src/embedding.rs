//! The end-to-end embedding experiment the paper leaves as future work:
//! measure a synthetic underlay, embed hosts into Euclidean space (GNP or
//! Vivaldi), build the multicast tree on the coordinates, then evaluate the
//! tree on the **true** delays.

use omt_baselines::{GreedyBuilder, GreedyObjective};
use omt_core::{NdGridBuilder, PolarGridBuilder, SphereGridBuilder};
use omt_geom::{Point, Point2, Point3};
use omt_net::{
    distortion_report, gnp_embed, stress, vivaldi_embed, DelayMatrix, GnpConfig, VivaldiConfig,
    WaxmanConfig,
};
use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;

/// One embedding pipeline's result.
#[derive(Clone, Debug, PartialEq)]
pub struct EmbeddingRow {
    /// Pipeline label.
    pub method: String,
    /// Embedding stress against the true delays (0 = perfect; blank for
    /// coordinate-free baselines).
    pub stress: Option<f64>,
    /// Tree radius in embedded space (what the algorithm believes).
    pub embedded_radius: Option<f64>,
    /// Tree radius on true delays (what a deployment observes).
    pub true_radius: f64,
    /// `true_radius` over the universal true lower bound.
    pub true_ratio: f64,
}

/// Configuration of the embedding experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EmbeddingConfig {
    /// Number of underlay routers.
    pub routers: usize,
    /// Number of multicast hosts (first host is the source).
    pub hosts: usize,
    /// Out-degree budget for every tree.
    pub degree: u32,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        Self {
            routers: 300,
            hosts: 120,
            degree: 6,
        }
    }
}

/// Runs the experiment once with the given seed; returns one row per
/// pipeline:
///
/// * polar grid on GNP coordinates in 2-D, 3-D, and 5-D;
/// * polar grid on Vivaldi coordinates in 3-D;
/// * compact tree directly on the true delay matrix (the coordinate-free
///   quadratic reference — embeddings compete against this) and on the
///   true router positions;
/// * an oracle polar grid on the true router positions (how much of the
///   loss is the embedding's fault).
pub fn run_embedding(seed: u64, config: &EmbeddingConfig) -> Vec<EmbeddingRow> {
    assert!(config.hosts >= 2, "need a source and at least one receiver");
    let mut rng = SmallRng::seed_from_u64(seed);
    let underlay = WaxmanConfig {
        routers: config.routers,
        ..WaxmanConfig::default()
    }
    .sample(&mut rng);
    // Hosts = the first `hosts` routers (positions are uniform anyway).
    let hosts: Vec<usize> = (0..config.hosts).collect();
    let truth = DelayMatrix::from_graph(&underlay, &hosts);
    let receivers: Vec<usize> = (1..config.hosts).collect();
    let true_lb = receivers
        .iter()
        .map(|&h| truth.get(0, h))
        .fold(0.0, f64::max);

    let mut rows = Vec::new();

    // --- GNP pipelines at three dimensions.
    rows.push(gnp_pipeline::<2>(
        &truth,
        &receivers,
        config,
        &mut rng,
        "gnp-2d + polar-grid",
    ));
    rows.push(gnp_pipeline::<3>(
        &truth,
        &receivers,
        config,
        &mut rng,
        "gnp-3d + sphere-grid",
    ));
    rows.push(gnp_pipeline::<5>(
        &truth,
        &receivers,
        config,
        &mut rng,
        "gnp-5d + nd-grid",
    ));

    // --- Vivaldi in 3-D.
    {
        let coords: Vec<Point3> = vivaldi_embed(&truth, &VivaldiConfig::default(), &mut rng);
        let est = DelayMatrix::from_fn(truth.len(), |i, j| coords[i].distance(&coords[j]));
        let s = stress(&truth, &est);
        let source = coords[0];
        let pts: Vec<Point3> = receivers.iter().map(|&h| coords[h]).collect();
        let tree = SphereGridBuilder::new()
            .max_out_degree(config.degree.max(2))
            .build(source, &pts)
            .expect("valid embedding");
        let rep = distortion_report(&tree, &truth, 0, &receivers);
        rows.push(EmbeddingRow {
            method: "vivaldi-3d + sphere-grid".into(),
            stress: Some(s),
            embedded_radius: Some(rep.embedded_radius),
            true_radius: rep.true_radius,
            true_ratio: rep.true_ratio,
        });
    }

    // --- The true coordinate-free reference: CPT built directly on the
    // measured delay matrix. Embedding pipelines pay their whole error
    // budget against this row.
    {
        let t = omt_net::matrix_compact_tree(&truth, 0, config.degree);
        rows.push(EmbeddingRow {
            method: "cpt on true delay matrix".into(),
            stress: None,
            embedded_radius: None,
            true_radius: t.radius(),
            true_ratio: if true_lb > 0.0 {
                t.radius() / true_lb
            } else {
                1.0
            },
        });
    }

    // --- CPT on the true router positions (sidesteps embedding error in
    // *coordinates* but still pays the position/delay mismatch).
    {
        let source = underlay.position(0);
        let pts: Vec<Point2> = receivers.iter().map(|&h| underlay.position(h)).collect();
        let tree = GreedyBuilder::new(GreedyObjective::MinDelay)
            .max_out_degree(config.degree)
            .build(source, &pts)
            .expect("valid positions");
        let rep = distortion_report(&tree, &truth, 0, &receivers);
        rows.push(EmbeddingRow {
            method: "cpt on router positions".into(),
            stress: None,
            embedded_radius: Some(rep.embedded_radius),
            true_radius: rep.true_radius,
            true_ratio: rep.true_ratio,
        });
    }

    // --- Oracle: polar grid on the true router positions.
    {
        let source = underlay.position(0);
        let pts: Vec<Point2> = receivers.iter().map(|&h| underlay.position(h)).collect();
        let tree = PolarGridBuilder::new()
            .max_out_degree(config.degree)
            .build(source, &pts)
            .expect("valid positions");
        let rep = distortion_report(&tree, &truth, 0, &receivers);
        rows.push(EmbeddingRow {
            method: "polar-grid on router positions".into(),
            stress: None,
            embedded_radius: Some(rep.embedded_radius),
            true_radius: rep.true_radius,
            true_ratio: rep.true_ratio,
        });
    }

    debug_assert!(true_lb > 0.0);
    rows
}

fn gnp_pipeline<const D: usize>(
    truth: &DelayMatrix,
    receivers: &[usize],
    config: &EmbeddingConfig,
    rng: &mut SmallRng,
    label: &str,
) -> EmbeddingRow {
    let emb = gnp_embed::<D>(truth, &GnpConfig::default(), rng);
    let est = DelayMatrix::from_fn(truth.len(), |i, j| {
        emb.coordinates[i].distance(&emb.coordinates[j])
    });
    let s = stress(truth, &est);
    let source = emb.coordinates[0];
    let pts: Vec<Point<D>> = receivers.iter().map(|&h| emb.coordinates[h]).collect();
    // Dispatch to the dimension-appropriate builder.
    let (embedded_radius, rep) = match D {
        2 => {
            let src = Point2::new([source[0], source[1]]);
            let p2: Vec<Point2> = pts.iter().map(|p| Point2::new([p[0], p[1]])).collect();
            let tree = PolarGridBuilder::new()
                .max_out_degree(config.degree)
                .build(src, &p2)
                .expect("valid embedding");
            (tree.radius(), distortion_report(&tree, truth, 0, receivers))
        }
        3 => {
            let src = Point3::new([source[0], source[1], source[2]]);
            let p3: Vec<Point3> = pts
                .iter()
                .map(|p| Point3::new([p[0], p[1], p[2]]))
                .collect();
            let tree = SphereGridBuilder::new()
                .max_out_degree(config.degree.max(2))
                .build(src, &p3)
                .expect("valid embedding");
            (tree.radius(), distortion_report(&tree, truth, 0, receivers))
        }
        _ => {
            let tree = NdGridBuilder::new()
                .max_out_degree(config.degree.max(2))
                .build(source, &pts)
                .expect("valid embedding");
            (tree.radius(), distortion_report(&tree, truth, 0, receivers))
        }
    };
    EmbeddingRow {
        method: label.to_string(),
        stress: Some(s),
        embedded_radius: Some(embedded_radius),
        true_radius: rep.true_radius,
        true_ratio: rep.true_ratio,
    }
}

/// Formats the rows as a markdown table.
pub fn embedding_markdown(rows: &[EmbeddingRow]) -> String {
    let mut out = String::from(
        "| Pipeline | Stress | Embedded radius | True radius | True/LB |\n|---|---:|---:|---:|---:|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {:.3} | {:.3} |\n",
            r.method,
            r.stress.map_or("—".into(), |s| format!("{s:.3}")),
            r.embedded_radius.map_or("—".into(), |x| format!("{x:.3}")),
            r.true_radius,
            r.true_ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_produces_sound_rows() {
        let rows = run_embedding(
            1,
            &EmbeddingConfig {
                routers: 120,
                hosts: 50,
                degree: 6,
            },
        );
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.true_radius > 0.0, "{}: zero radius", r.method);
            assert!(
                r.true_ratio >= 1.0 - 1e-9,
                "{}: ratio {} below 1",
                r.method,
                r.true_ratio
            );
            assert!(
                r.true_ratio < 30.0,
                "{}: ratio {} absurd",
                r.method,
                r.true_ratio
            );
            if let Some(s) = r.stress {
                assert!((0.0..2.0).contains(&s), "{}: stress {s}", r.method);
            }
        }
    }

    #[test]
    fn higher_dimensional_gnp_embeds_better() {
        let rows = run_embedding(
            2,
            &EmbeddingConfig {
                routers: 150,
                hosts: 60,
                degree: 6,
            },
        );
        let s2 = rows[0].stress.expect("gnp-2d has stress");
        let s5 = rows[2].stress.expect("gnp-5d has stress");
        assert!(
            s5 < s2 + 0.05,
            "5-D stress {s5} should not exceed 2-D stress {s2}"
        );
    }

    #[test]
    fn markdown_has_all_pipelines() {
        let rows = run_embedding(
            3,
            &EmbeddingConfig {
                routers: 100,
                hosts: 40,
                degree: 6,
            },
        );
        let md = embedding_markdown(&rows);
        assert!(md.contains("gnp-2d"));
        assert!(md.contains("vivaldi-3d"));
        assert!(md.contains("polar-grid on router positions"));
    }
}
