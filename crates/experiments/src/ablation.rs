//! Ablations over the design choices DESIGN.md calls out: representative
//! selection, ring-count offsets, and the bisection-degree trade-off.

use omt_core::{Bisection, PolarGridBuilder, RepStrategy};
use omt_geom::Point2;

use crate::stats::Accumulator;
use crate::workload::{disk_trial, par_trials};

/// One ablation variant's aggregated result.
#[derive(Clone, Debug, PartialEq)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Average longest delay.
    pub delay: f64,
    /// Standard deviation of the longest delay.
    pub dev: f64,
}

/// Runs the representative-strategy ablation: the paper's min-radius rule
/// against max-radius and arbitrary picks, at both degree settings.
pub fn rep_strategy_ablation(seed: u64, n: usize, trials: usize) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for (deg, deg_name) in [(6u32, "deg6"), (2, "deg2")] {
        for (strategy, name) in [
            (RepStrategy::InnerArcMid, "inner-arc-mid (paper, default)"),
            (RepStrategy::MinRadius, "min-radius"),
            (RepStrategy::MaxRadius, "max-radius"),
            (RepStrategy::First, "first-point"),
        ] {
            let builder = PolarGridBuilder::new()
                .max_out_degree(deg)
                .representative_strategy(strategy)
                .threads(1);
            let mut acc = Accumulator::new();
            for delay in par_trials(trials, |trial| {
                let pts = disk_trial(seed, n, trial);
                let (_, report) = builder
                    .build_with_report(Point2::ORIGIN, &pts)
                    .expect("valid workload");
                report.delay
            }) {
                acc.push(delay);
            }
            rows.push(AblationRow {
                variant: format!("{deg_name}/{name}"),
                delay: acc.mean(),
                dev: acc.stddev(),
            });
        }
    }
    rows
}

/// Runs the ring-count ablation: the automatic maximal `k` against `k-1`
/// and `k-2` (coarser grids shift work into the bisection).
pub fn ring_offset_ablation(seed: u64, n: usize, trials: usize) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for offset in 0u32..3 {
        let mut acc = Accumulator::new();
        for delay in par_trials(trials, |trial| {
            let pts = disk_trial(seed, n, trial);
            let auto = PolarGridBuilder::new()
                .threads(1)
                .build_with_report(Point2::ORIGIN, &pts)
                .expect("valid workload")
                .1
                .rings;
            let k = auto.saturating_sub(offset);
            let (_, report) = PolarGridBuilder::new()
                .rings(k)
                .threads(1)
                .build_with_report(Point2::ORIGIN, &pts)
                .expect("smaller k is always feasible");
            report.delay
        }) {
            acc.push(delay);
        }
        rows.push(AblationRow {
            variant: format!("rings = auto - {offset}"),
            delay: acc.mean(),
            dev: acc.stddev(),
        });
    }
    rows
}

/// A named tree-radius evaluator over one workload (`Sync` so trials can
/// fan out across the `omt-par` pool).
type Variant = (String, Box<dyn Fn(&[Point2]) -> f64 + Sync>);

/// Runs the standalone-bisection ablation: pure bisection (no grid) at
/// degrees 4 and 2, against the full polar-grid algorithm.
pub fn bisection_ablation(seed: u64, n: usize, trials: usize) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    let variants: Vec<Variant> = vec![
        (
            "polar-grid deg6".into(),
            Box::new(|pts: &[Point2]| {
                PolarGridBuilder::new()
                    .threads(1)
                    .build(Point2::ORIGIN, pts)
                    .expect("valid")
                    .radius()
            }),
        ),
        (
            "bisection-only deg4".into(),
            Box::new(|pts: &[Point2]| {
                Bisection::new(4)
                    .expect("degree ok")
                    .build(Point2::ORIGIN, pts)
                    .expect("valid")
                    .radius()
            }),
        ),
        (
            "bisection-only deg2".into(),
            Box::new(|pts: &[Point2]| {
                Bisection::new(2)
                    .expect("degree ok")
                    .build(Point2::ORIGIN, pts)
                    .expect("valid")
                    .radius()
            }),
        ),
    ];
    for (name, f) in variants {
        let mut acc = Accumulator::new();
        for radius in par_trials(trials, |trial| {
            let pts = disk_trial(seed, n, trial);
            f(&pts)
        }) {
            acc.push(radius);
        }
        rows.push(AblationRow {
            variant: name,
            delay: acc.mean(),
            dev: acc.stddev(),
        });
    }
    rows
}

/// Formats ablation rows as a markdown table.
pub fn ablation_markdown(title: &str, rows: &[AblationRow]) -> String {
    let mut out = format!("### {title}\n\n| Variant | Delay | Dev |\n|---|---:|---:|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.3} | {:.3} |\n",
            r.variant, r.delay, r.dev
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rule_wins_rep_ablation() {
        let rows = rep_strategy_ablation(1, 2000, 8);
        assert_eq!(rows.len(), 8);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.variant == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .delay
        };
        // The paper's rule should beat the adversarial rule clearly at both
        // degrees (tiny slack for noise).
        assert!(get("deg6/inner-arc-mid (paper, default)") <= get("deg6/max-radius") * 1.02);
        assert!(get("deg2/inner-arc-mid (paper, default)") <= get("deg2/max-radius") * 1.02);
        // And the literal reading beats plain min-radius on average.
        assert!(get("deg6/inner-arc-mid (paper, default)") <= get("deg6/min-radius") * 1.02);
    }

    #[test]
    fn maximal_rings_not_worse_than_much_coarser() {
        let rows = ring_offset_ablation(2, 2000, 6);
        assert_eq!(rows.len(), 3);
        // auto vs auto-2: the bound shrinks with k, and so should (or at
        // least not clearly worsen) the delay.
        assert!(rows[0].delay <= rows[2].delay * 1.1, "{rows:?}");
    }

    #[test]
    fn grid_beats_pure_bisection() {
        let rows = bisection_ablation(3, 2000, 6);
        let grid = rows[0].delay;
        let b4 = rows[1].delay;
        let b2 = rows[2].delay;
        assert!(grid < b4, "grid {grid} vs bisection4 {b4}");
        assert!(b4 < b2 * 1.05, "bisection4 {b4} vs bisection2 {b2}");
    }

    #[test]
    fn markdown_contains_rows() {
        let rows = vec![AblationRow {
            variant: "x".into(),
            delay: 1.0,
            dev: 0.1,
        }];
        let md = ablation_markdown("T", &rows);
        assert!(md.contains("### T"));
        assert!(md.contains("| x | 1.000 | 0.100 |"));
    }
}
