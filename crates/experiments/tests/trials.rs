//! Workload policy tests: the `default_trials` size thresholds and the
//! independence of the per-(seed, n, trial) RNG streams that the parallel
//! trial fan-out depends on (order-independent randomness is what makes
//! `par_trials` aggregates thread-count invariant).

use std::collections::HashSet;

use omt_experiments::workload::{default_trials, par_trials, trial_rng};
use omt_rng::{prop_assert, props, Rng};

#[test]
fn default_trials_boundary_sizes() {
    // 200 trials up to and including 100_000 nodes.
    assert_eq!(default_trials(1), 200);
    assert_eq!(default_trials(99_999), 200);
    assert_eq!(default_trials(100_000), 200);
    // 20 trials from there up to and including 1_000_000.
    assert_eq!(default_trials(100_001), 20);
    assert_eq!(default_trials(1_000_000), 20);
    // 5 trials beyond.
    assert_eq!(default_trials(1_000_001), 5);
    assert_eq!(default_trials(usize::MAX), 5);
}

#[test]
fn trial_rng_streams_are_pairwise_distinct_for_a_thousand_trials() {
    // Fingerprint each stream by its first two outputs; 1000 streams must
    // produce 1000 distinct fingerprints (for several seeds and sizes).
    for seed in [0u64, 1, 2004, u64::MAX] {
        for n in [100usize, 100_000] {
            let mut seen = HashSet::new();
            for trial in 0..1000 {
                let mut rng = trial_rng(seed, n, trial);
                let fp = (rng.next_u64(), rng.next_u64());
                assert!(
                    seen.insert(fp),
                    "colliding stream at seed={seed} n={n} trial={trial}"
                );
            }
        }
    }
}

props! {
    #[cases(64)]
    fn trial_rng_streams_distinct_across_seed_and_size(
        seed in 0u64..u64::MAX,
        n in 1usize..5_000_000
    ) {
        // Same (seed, n) with different trials, and neighboring seeds /
        // sizes with the same trial, must all land on distinct streams.
        let mut a = trial_rng(seed, n, 0);
        let mut b = trial_rng(seed, n, 1);
        let mut c = trial_rng(seed.wrapping_add(1), n, 0);
        let mut d = trial_rng(seed, n + 1, 0);
        let xs = [a.next_u64(), b.next_u64(), c.next_u64(), d.next_u64()];
        let distinct: HashSet<u64> = xs.iter().copied().collect();
        prop_assert!(distinct.len() == 4, "stream collision: {xs:?}");
    }
}

#[test]
fn par_trials_returns_results_in_trial_order() {
    let squares = par_trials(257, |trial| trial * trial);
    assert_eq!(squares.len(), 257);
    for (i, s) in squares.iter().enumerate() {
        assert_eq!(*s, i * i);
    }
}
