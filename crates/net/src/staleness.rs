//! Stale-coordinate drift: the gap between where a host *is* and where it
//! *says* it is.
//!
//! A deployed overlay never works with fresh coordinates — embeddings are
//! measured, cached, and gossiped, so a joining host advertises a position
//! that may have drifted from its current one. [`CoordDrift`] models this
//! as a seeded perturbation applied to a fraction of hosts: the protocol
//! under test routes on the *advertised* points while delays are charged
//! on the *true* points, which is exactly the mismatch that makes cell
//! assignments stale. Deterministic by seed so fault campaigns replay
//! bit-identically.

use omt_geom::Point;
use omt_rng::rngs::SmallRng;
use omt_rng::{RngExt, SeedableRng};

/// A stale-coordinate model: each selected host's advertised coordinate is
/// its true coordinate plus a uniform per-axis offset in `[-drift, drift]`.
///
/// # Examples
///
/// ```
/// use omt_geom::Point2;
/// use omt_net::CoordDrift;
///
/// let truth = vec![Point2::new([0.5, 0.0]), Point2::new([0.0, -0.3])];
/// let model = CoordDrift { drift: 0.01, stale_fraction: 1.0 };
/// let advertised = model.apply(&truth, 7);
/// assert_eq!(advertised, model.apply(&truth, 7)); // same seed, same drift
/// for (a, t) in advertised.iter().zip(&truth) {
///     assert!(a.distance(t) <= 0.01 * 2f64.sqrt());
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoordDrift {
    /// Maximum per-axis offset of an advertised coordinate.
    pub drift: f64,
    /// Fraction of hosts (drawn per host) whose coordinate is stale.
    pub stale_fraction: f64,
}

impl CoordDrift {
    /// The identity model: every advertised coordinate is fresh.
    pub const fn none() -> Self {
        Self {
            drift: 0.0,
            stale_fraction: 0.0,
        }
    }

    /// Whether this model never perturbs anything.
    pub fn is_none(&self) -> bool {
        self.drift == 0.0 || self.stale_fraction == 0.0
    }

    /// The advertised coordinates for `truth` under this model, seeded.
    ///
    /// # Panics
    ///
    /// Panics if `drift` is negative or not finite, or `stale_fraction`
    /// is outside `[0, 1]`.
    pub fn apply<const D: usize>(&self, truth: &[Point<D>], seed: u64) -> Vec<Point<D>> {
        assert!(
            self.drift >= 0.0 && self.drift.is_finite(),
            "bad drift {}",
            self.drift
        );
        assert!(
            (0.0..=1.0).contains(&self.stale_fraction),
            "bad stale fraction {}",
            self.stale_fraction
        );
        if self.is_none() {
            return truth.to_vec();
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5741_4c45_u64);
        truth
            .iter()
            .map(|p| {
                if !rng.random_bool(self.stale_fraction) {
                    return *p;
                }
                let mut coords = [0.0; D];
                for (c, t) in coords.iter_mut().zip(p.as_slice()) {
                    *c = t + rng.random_range(-self.drift..=self.drift);
                }
                Point::new(coords)
            })
            .collect()
    }

    /// Largest advertised-vs-true displacement over a point set, for
    /// reporting how stale a campaign actually was.
    pub fn max_displacement<const D: usize>(truth: &[Point<D>], advertised: &[Point<D>]) -> f64 {
        truth
            .iter()
            .zip(advertised)
            .map(|(t, a)| t.distance(a))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::Point2;

    fn truth() -> Vec<Point2> {
        (0..200)
            .map(|i| {
                let a = i as f64 * 0.41;
                Point2::new([a.cos() * 0.8, a.sin() * 0.8])
            })
            .collect()
    }

    #[test]
    fn none_is_identity() {
        let t = truth();
        assert_eq!(CoordDrift::none().apply(&t, 3), t);
        assert!(CoordDrift::none().is_none());
        assert!(CoordDrift {
            drift: 0.5,
            stale_fraction: 0.0
        }
        .is_none());
    }

    #[test]
    fn deterministic_per_seed_and_bounded() {
        let t = truth();
        let m = CoordDrift {
            drift: 0.05,
            stale_fraction: 1.0,
        };
        let a = m.apply(&t, 42);
        assert_eq!(a, m.apply(&t, 42));
        assert_ne!(a, m.apply(&t, 43));
        let max = CoordDrift::max_displacement(&t, &a);
        assert!(max > 0.0 && max <= 0.05 * 2f64.sqrt() + 1e-12);
    }

    #[test]
    fn fraction_selects_roughly_that_many() {
        let t = truth();
        let m = CoordDrift {
            drift: 0.1,
            stale_fraction: 0.5,
        };
        let a = m.apply(&t, 9);
        let moved = t.iter().zip(&a).filter(|(x, y)| x != y).count();
        assert!(
            (60..=140).contains(&moved),
            "expected ~100 of 200 stale, got {moved}"
        );
    }

    #[test]
    #[should_panic(expected = "bad drift")]
    fn rejects_negative_drift() {
        let _ = CoordDrift {
            drift: -1.0,
            stale_fraction: 1.0,
        }
        .apply::<2>(&[], 0);
    }
}
