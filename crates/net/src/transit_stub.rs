//! Transit-stub topologies (GT-ITM style): a hierarchical Internet model
//! with a transit backbone and stub domains hanging off it. Compared to
//! flat Waxman graphs, transit-stub underlays have stronger *triangle
//! inequality violations between positions and delays* (stub-to-stub paths
//! detour through the backbone), which is exactly the stress the embedding
//! experiments need.

use omt_rng::{Rng, RngExt};

use omt_geom::Point2;

use crate::graph::{Graph, WaxmanConfig};

/// Parameters of the transit-stub model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransitStubConfig {
    /// Number of transit (backbone) routers.
    pub transit_routers: usize,
    /// Number of stub domains.
    pub stub_domains: usize,
    /// Routers per stub domain.
    pub routers_per_stub: usize,
    /// Side length of the whole square region.
    pub side: f64,
    /// Radius of each stub domain's cluster around its attachment point.
    pub stub_radius: f64,
    /// Delay per unit distance.
    pub delay_per_unit: f64,
    /// Fixed per-link delay.
    pub base_delay: f64,
    /// Waxman α within the transit core.
    pub transit_alpha: f64,
    /// Waxman α within each stub domain.
    pub stub_alpha: f64,
}

impl Default for TransitStubConfig {
    fn default() -> Self {
        Self {
            transit_routers: 16,
            stub_domains: 12,
            routers_per_stub: 12,
            side: 1000.0,
            stub_radius: 40.0,
            delay_per_unit: 0.005,
            base_delay: 0.1,
            transit_alpha: 0.6,
            stub_alpha: 0.5,
        }
    }
}

/// A generated transit-stub topology: the graph plus the node-role index.
#[derive(Clone, Debug)]
pub struct TransitStub {
    /// The underlay graph (transit routers first, then stub routers domain
    /// by domain).
    pub graph: Graph,
    /// Number of transit routers (node ids `0..transit`).
    pub transit: usize,
    /// For each stub domain, the range of its node ids.
    pub stub_ranges: Vec<std::ops::Range<usize>>,
}

impl TransitStub {
    /// All stub router ids (the natural host candidates).
    pub fn stub_routers(&self) -> Vec<usize> {
        self.stub_ranges.iter().flat_map(|r| r.clone()).collect()
    }

    /// The stub domain a node belongs to, or `None` for transit routers.
    pub fn domain_of(&self, node: usize) -> Option<usize> {
        self.stub_ranges.iter().position(|r| r.contains(&node))
    }
}

impl TransitStubConfig {
    /// Samples a connected transit-stub topology.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or a length parameter is non-positive.
    pub fn sample(&self, rng: &mut (impl Rng + ?Sized)) -> TransitStub {
        assert!(
            self.transit_routers > 0 && self.stub_domains > 0 && self.routers_per_stub > 0,
            "counts must be positive"
        );
        assert!(
            self.side > 0.0 && self.stub_radius > 0.0 && self.delay_per_unit > 0.0,
            "length parameters must be positive"
        );
        let total = self.transit_routers + self.stub_domains * self.routers_per_stub;
        // Positions: transit routers spread over the whole region; each
        // stub clusters around a point near a transit router.
        let mut positions: Vec<Point2> = (0..self.transit_routers)
            .map(|_| {
                Point2::new([
                    rng.random_range(0.0..self.side),
                    rng.random_range(0.0..self.side),
                ])
            })
            .collect();
        let mut stub_ranges = Vec::with_capacity(self.stub_domains);
        let mut attachment: Vec<usize> = Vec::with_capacity(self.stub_domains);
        for _ in 0..self.stub_domains {
            let anchor = rng.random_range(0..self.transit_routers);
            attachment.push(anchor);
            let center = positions[anchor]
                + Point2::new([
                    rng.random_range(-3.0 * self.stub_radius..3.0 * self.stub_radius),
                    rng.random_range(-3.0 * self.stub_radius..3.0 * self.stub_radius),
                ]);
            let start = positions.len();
            for _ in 0..self.routers_per_stub {
                positions.push(
                    center
                        + Point2::new([
                            rng.random_range(-self.stub_radius..self.stub_radius),
                            rng.random_range(-self.stub_radius..self.stub_radius),
                        ]),
                );
            }
            stub_ranges.push(start..positions.len());
        }
        debug_assert_eq!(positions.len(), total);
        let mut graph = Graph::new(positions);
        let delay = |g: &Graph, u: usize, v: usize| {
            self.base_delay + g.position(u).distance(&g.position(v)) * self.delay_per_unit
        };
        // Transit core: dense Waxman among transit routers + a ring for
        // guaranteed connectivity.
        let l = self.side * 2f64.sqrt();
        for u in 0..self.transit_routers {
            for v in (u + 1)..self.transit_routers {
                let d = graph.position(u).distance(&graph.position(v));
                let p = self.transit_alpha * (-d / (0.4 * l)).exp();
                if rng.random::<f64>() < p {
                    let w = delay(&graph, u, v);
                    graph.add_edge(u, v, w);
                }
            }
        }
        for u in 0..self.transit_routers {
            let v = (u + 1) % self.transit_routers;
            if self.transit_routers > 1 && !graph.has_edge(u, v) {
                let w = delay(&graph, u, v);
                graph.add_edge(u, v, w);
            }
        }
        // Stub domains: local Waxman + a spanning chain + one uplink to the
        // anchor transit router.
        for (dom, range) in stub_ranges.iter().enumerate() {
            let nodes: Vec<usize> = range.clone().collect();
            let ls = self.stub_radius * 2.0 * 2f64.sqrt();
            for (i, &u) in nodes.iter().enumerate() {
                for &v in &nodes[i + 1..] {
                    let d = graph.position(u).distance(&graph.position(v));
                    let p = self.stub_alpha * (-d / (0.6 * ls)).exp();
                    if rng.random::<f64>() < p {
                        let w = delay(&graph, u, v);
                        graph.add_edge(u, v, w);
                    }
                }
            }
            for w in nodes.windows(2) {
                if !graph.has_edge(w[0], w[1]) {
                    let d = delay(&graph, w[0], w[1]);
                    graph.add_edge(w[0], w[1], d);
                }
            }
            // Uplink: stub gateway (first router) to the anchor.
            let gateway = nodes[0];
            let anchor = attachment[dom];
            if !graph.has_edge(gateway, anchor) {
                let d = delay(&graph, gateway, anchor);
                graph.add_edge(gateway, anchor, d);
            }
        }
        let ts = TransitStub {
            graph,
            transit: self.transit_routers,
            stub_ranges,
        };
        debug_assert!(ts.graph.is_connected());
        ts
    }

    /// A plain Waxman configuration with matching delay parameters, for
    /// apples-to-apples comparisons.
    pub fn matching_waxman(&self) -> WaxmanConfig {
        WaxmanConfig {
            routers: self.transit_routers + self.stub_domains * self.routers_per_stub,
            side: self.side,
            delay_per_unit: self.delay_per_unit,
            base_delay: self.base_delay,
            ..WaxmanConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayMatrix;
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    #[test]
    fn generated_topology_is_connected_and_sized() {
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = TransitStubConfig::default();
        let ts = cfg.sample(&mut rng);
        assert_eq!(
            ts.graph.len(),
            cfg.transit_routers + cfg.stub_domains * cfg.routers_per_stub
        );
        assert!(ts.graph.is_connected());
        assert_eq!(ts.stub_ranges.len(), cfg.stub_domains);
        assert_eq!(
            ts.stub_routers().len(),
            cfg.stub_domains * cfg.routers_per_stub
        );
    }

    #[test]
    fn domain_lookup() {
        let mut rng = SmallRng::seed_from_u64(2);
        let ts = TransitStubConfig::default().sample(&mut rng);
        for t in 0..ts.transit {
            assert_eq!(ts.domain_of(t), None);
        }
        for (d, range) in ts.stub_ranges.iter().enumerate() {
            for n in range.clone() {
                assert_eq!(ts.domain_of(n), Some(d));
            }
        }
    }

    #[test]
    fn intra_stub_delays_are_small_compared_to_cross_stub() {
        let mut rng = SmallRng::seed_from_u64(3);
        let ts = TransitStubConfig::default().sample(&mut rng);
        let hosts = ts.stub_routers();
        let m = DelayMatrix::from_graph(&ts.graph, &hosts);
        // Average intra-domain vs. cross-domain delay.
        let mut intra = (0.0, 0usize);
        let mut cross = (0.0, 0usize);
        for i in 0..hosts.len() {
            for j in (i + 1)..hosts.len() {
                let same = ts.domain_of(hosts[i]) == ts.domain_of(hosts[j]);
                let d = m.get(i, j);
                if same {
                    intra = (intra.0 + d, intra.1 + 1);
                } else {
                    cross = (cross.0 + d, cross.1 + 1);
                }
            }
        }
        let intra_avg = intra.0 / intra.1 as f64;
        let cross_avg = cross.0 / cross.1 as f64;
        assert!(
            cross_avg > 3.0 * intra_avg,
            "no hierarchy: intra {intra_avg} vs cross {cross_avg}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TransitStubConfig::default().sample(&mut SmallRng::seed_from_u64(7));
        let b = TransitStubConfig::default().sample(&mut SmallRng::seed_from_u64(7));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn single_everything_edge_case() {
        let mut rng = SmallRng::seed_from_u64(4);
        let ts = TransitStubConfig {
            transit_routers: 1,
            stub_domains: 1,
            routers_per_stub: 1,
            ..TransitStubConfig::default()
        }
        .sample(&mut rng);
        assert_eq!(ts.graph.len(), 2);
        assert!(ts.graph.is_connected());
    }

    #[test]
    fn matching_waxman_has_same_size() {
        let cfg = TransitStubConfig::default();
        let w = cfg.matching_waxman();
        assert_eq!(
            w.routers,
            cfg.transit_routers + cfg.stub_domains * cfg.routers_per_stub
        );
    }
}
