//! Evaluating trees built on *embedded* coordinates against *true* network
//! delays — the experiment the paper's conclusion defers to future work
//! ("there is usually a discrepancy between the Euclidean distances and the
//! actual transmission delays; it is interesting to see how well the
//! algorithm performs in combination with the mapping").

use omt_tree::{MulticastTree, ParentRef};

use crate::delay::DelayMatrix;

/// Per-node true delays of an overlay tree: the sum of **measured** unicast
/// delays along each tree path, rather than embedded Euclidean distances.
///
/// `host_of_node[i]` is the delay-matrix index of tree node `i`, and
/// `source_host` the matrix index of the source.
///
/// # Panics
///
/// Panics if `host_of_node` doesn't match the tree size or an index is out
/// of range for the matrix.
pub fn true_delays<const D: usize>(
    tree: &MulticastTree<D>,
    delays: &DelayMatrix,
    source_host: usize,
    host_of_node: &[usize],
) -> Vec<f64> {
    assert_eq!(host_of_node.len(), tree.len(), "host mapping size mismatch");
    assert!(source_host < delays.len(), "source host out of range");
    let mut out = vec![f64::NAN; tree.len()];
    // BFS guarantees parents are resolved first.
    for i in tree.iter_bfs() {
        let h = host_of_node[i];
        assert!(h < delays.len(), "host index {h} out of range");
        let (parent_delay, parent_host) = match tree.parent(i) {
            ParentRef::Source => (0.0, source_host),
            ParentRef::Node(p) => (out[p], host_of_node[p]),
        };
        out[i] = parent_delay + delays.get(parent_host, h);
    }
    out
}

/// The true radius of the tree: the largest entry of [`true_delays`].
pub fn true_radius<const D: usize>(
    tree: &MulticastTree<D>,
    delays: &DelayMatrix,
    source_host: usize,
    host_of_node: &[usize],
) -> f64 {
    true_delays(tree, delays, source_host, host_of_node)
        .into_iter()
        .fold(0.0, f64::max)
}

/// Summary of how an embedding-built tree performs on true delays.
#[derive(Clone, Debug, PartialEq)]
pub struct DistortionReport {
    /// Radius measured in embedded (Euclidean) space.
    pub embedded_radius: f64,
    /// Radius measured with true network delays.
    pub true_radius: f64,
    /// The universal lower bound in true delay: the largest direct
    /// source-to-host delay.
    pub true_lower_bound: f64,
    /// `true_radius / true_lower_bound` — what a deployment would observe.
    pub true_ratio: f64,
}

/// Evaluates a tree built on embedded coordinates against the measured
/// delay matrix.
///
/// # Panics
///
/// Same conditions as [`true_delays`].
pub fn distortion_report<const D: usize>(
    tree: &MulticastTree<D>,
    delays: &DelayMatrix,
    source_host: usize,
    host_of_node: &[usize],
) -> DistortionReport {
    let true_radius = true_radius(tree, delays, source_host, host_of_node);
    let true_lower_bound = host_of_node
        .iter()
        .map(|&h| delays.get(source_host, h))
        .fold(0.0, f64::max);
    DistortionReport {
        embedded_radius: tree.radius(),
        true_radius,
        true_lower_bound,
        true_ratio: if true_lower_bound > 0.0 {
            true_radius / true_lower_bound
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::Point2;
    use omt_tree::TreeBuilder;

    /// source(host 0) -> node0(host 1) -> node1(host 2)
    fn chain_tree() -> MulticastTree<2> {
        let pts = vec![Point2::new([1.0, 0.0]), Point2::new([2.0, 0.0])];
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts);
        b.attach_to_source(0).unwrap();
        b.attach(1, 0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn true_delays_follow_matrix_not_geometry() {
        let tree = chain_tree();
        // True delays disagree with the embedding: hop 0->1 costs 10.
        let m = DelayMatrix::from_fn(3, |i, j| match (i, j) {
            (0, 1) => 1.0,
            (1, 2) => 10.0,
            (0, 2) => 2.0,
            _ => unreachable!(),
        });
        let d = true_delays(&tree, &m, 0, &[1, 2]);
        assert_eq!(d, vec![1.0, 11.0]);
        assert_eq!(true_radius(&tree, &m, 0, &[1, 2]), 11.0);
        let report = distortion_report(&tree, &m, 0, &[1, 2]);
        assert_eq!(report.embedded_radius, 2.0);
        assert_eq!(report.true_radius, 11.0);
        assert_eq!(report.true_lower_bound, 2.0);
        assert!((report.true_ratio - 5.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_embedding_means_no_distortion() {
        let tree = chain_tree();
        let pts = [
            Point2::ORIGIN,
            Point2::new([1.0, 0.0]),
            Point2::new([2.0, 0.0]),
        ];
        let m = DelayMatrix::from_fn(3, |i, j| pts[i].distance(&pts[j]));
        let report = distortion_report(&tree, &m, 0, &[1, 2]);
        assert!((report.embedded_radius - report.true_radius).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "host mapping size mismatch")]
    fn mapping_size_checked() {
        let tree = chain_tree();
        let m = DelayMatrix::from_fn(3, |_, _| 1.0);
        let _ = true_delays(&tree, &m, 0, &[1]);
    }
}
