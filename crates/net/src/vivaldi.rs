//! Vivaldi-style decentralized spring embedding.
//!
//! Every host holds a tentative coordinate and repeatedly "samples" the
//! measured delay to a random peer, moving along the error spring with an
//! adaptive step. Unlike GNP this needs no landmarks and models what a
//! deployed peer-to-peer overlay could actually run — included as the
//! decentralized counterpart the paper's conclusion asks for ("in practice,
//! there is interest in a decentralized version").

use omt_rng::{Rng, RngExt};

use omt_geom::Point;

use crate::delay::DelayMatrix;

/// Configuration for the Vivaldi embedding.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VivaldiConfig {
    /// Total number of (host, peer) adjustment samples.
    pub samples: usize,
    /// Constant controlling the adaptive step (the Vivaldi paper's `c_c`).
    pub cc: f64,
    /// Constant controlling error averaging (the Vivaldi paper's `c_e`).
    pub ce: f64,
}

impl Default for VivaldiConfig {
    fn default() -> Self {
        Self {
            samples: 60_000,
            cc: 0.25,
            ce: 0.25,
        }
    }
}

/// Embeds `n` hosts into `D` dimensions by simulating Vivaldi rounds over
/// the delay matrix. Returns one coordinate per host.
///
/// # Panics
///
/// Panics if `config.samples == 0` with `n ≥ 2`.
pub fn vivaldi_embed<const D: usize>(
    delays: &DelayMatrix,
    config: &VivaldiConfig,
    rng: &mut (impl Rng + ?Sized),
) -> Vec<Point<D>> {
    let n = delays.len();
    if n == 0 {
        return vec![];
    }
    if n == 1 {
        return vec![Point::ORIGIN];
    }
    assert!(config.samples > 0, "need at least one sample");
    let scale = delays.max().max(1e-9);
    let mut coords: Vec<Point<D>> = (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for x in &mut c {
                *x = rng.random_range(-0.5..0.5) * scale;
            }
            Point::new(c)
        })
        .collect();
    // Per-host confidence-weighted error estimates, starting pessimistic.
    let mut local_error = vec![1.0f64; n];
    for _ in 0..config.samples {
        let i = rng.random_range(0..n);
        let mut j = rng.random_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        let measured = delays.get(i, j);
        let diff = coords[i] - coords[j];
        let est = diff.norm();
        let sample_err = if measured > 0.0 {
            (est - measured).abs() / measured
        } else {
            est
        };
        // Confidence weight: how much node i trusts itself vs the peer.
        let w = local_error[i] / (local_error[i] + local_error[j]).max(1e-12);
        local_error[i] = sample_err * config.ce * w + local_error[i] * (1.0 - config.ce * w);
        let step = config.cc * w;
        // Unit vector from j to i; random direction when coincident.
        let dir = match diff.normalized() {
            Some(u) => u,
            None => {
                let mut c = [0.0; D];
                for x in &mut c {
                    *x = rng.random_range(-1.0..1.0);
                }
                Point::new(c).normalized().unwrap_or_else(|| {
                    let mut unit = [0.0; D];
                    unit[0] = 1.0;
                    Point::new(unit)
                })
            }
        };
        coords[i] = coords[i] + dir * (step * (measured - est));
    }
    coords
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::stress;
    use omt_geom::{Disk, Point2, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    #[test]
    fn embeds_euclidean_metric_reasonably() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pts = Disk::unit().sample_n(&mut rng, 50);
        let truth = DelayMatrix::from_fn(50, |i, j| pts[i].distance(&pts[j]));
        let coords: Vec<Point2> = vivaldi_embed(&truth, &VivaldiConfig::default(), &mut rng);
        let est = DelayMatrix::from_fn(50, |i, j| coords[i].distance(&coords[j]));
        let s = stress(&truth, &est);
        // Vivaldi is noisier than GNP; accept a loose but meaningful fit.
        assert!(s < 0.25, "stress {s}");
    }

    #[test]
    fn more_samples_do_not_hurt() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pts = Disk::unit().sample_n(&mut rng, 30);
        let truth = DelayMatrix::from_fn(30, |i, j| pts[i].distance(&pts[j]));
        let short: Vec<Point2> = vivaldi_embed(
            &truth,
            &VivaldiConfig {
                samples: 500,
                ..VivaldiConfig::default()
            },
            &mut SmallRng::seed_from_u64(7),
        );
        let long: Vec<Point2> = vivaldi_embed(
            &truth,
            &VivaldiConfig {
                samples: 100_000,
                ..VivaldiConfig::default()
            },
            &mut SmallRng::seed_from_u64(7),
        );
        let s_short = stress(
            &truth,
            &DelayMatrix::from_fn(30, |i, j| short[i].distance(&short[j])),
        );
        let s_long = stress(
            &truth,
            &DelayMatrix::from_fn(30, |i, j| long[i].distance(&long[j])),
        );
        assert!(s_long < s_short, "{s_long} vs {s_short}");
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let empty: Vec<Point2> = vivaldi_embed(
            &DelayMatrix::from_fn(0, |_, _| 0.0),
            &VivaldiConfig::default(),
            &mut rng,
        );
        assert!(empty.is_empty());
        let single: Vec<Point2> = vivaldi_embed(
            &DelayMatrix::from_fn(1, |_, _| 0.0),
            &VivaldiConfig::default(),
            &mut rng,
        );
        assert_eq!(single.len(), 1);
        // All-zero delays: coordinates collapse without NaNs.
        let zeros: Vec<Point2> = vivaldi_embed(
            &DelayMatrix::from_fn(5, |_, _| 0.0),
            &VivaldiConfig {
                samples: 2000,
                ..VivaldiConfig::default()
            },
            &mut rng,
        );
        assert!(zeros.iter().all(|p| p.is_finite()));
    }
}
