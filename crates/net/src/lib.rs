//! Synthetic network substrate for the overlay multicast experiments.
//!
//! The paper assumes hosts are mapped to Euclidean points by a system like
//! GNP (its reference \[12\]) and builds trees on the coordinates. This crate
//! provides that whole pipeline so the "future work" experiment — how do
//! the trees perform on *true* delays after a lossy embedding — is
//! runnable:
//!
//! * [`WaxmanConfig`] / [`Graph`] — Internet-like random underlays with
//!   propagation delays and shortest-path routing.
//! * [`ErdosRenyiConfig`] — distance-blind Erdős–Rényi `G(n, p)`
//!   underlays, the stress case for coordinate embeddings.
//! * [`TransitStubConfig`] — hierarchical GT-ITM-style topologies whose
//!   stub-detour paths stress the embeddings harder than flat Waxman
//!   graphs.
//! * [`DelayMatrix`] — measured end-to-end delays between chosen hosts,
//!   plus embedding-quality metrics ([`stress`],
//!   [`median_relative_error`]).
//! * [`gnp_embed`] — GNP-style landmark embedding into any dimension.
//! * [`vivaldi_embed`] — decentralized spring embedding.
//! * [`true_delays`] / [`distortion_report`] — evaluate an overlay tree
//!   built on embedded coordinates against the measured delays.
//! * [`matrix_compact_tree`] — the coordinate-free quadratic reference:
//!   greedy minimum-delay trees built directly on the measured matrix.
//!
//! # Examples
//!
//! ```
//! use omt_net::{DelayMatrix, GnpConfig, WaxmanConfig, gnp_embed};
//! use omt_rng::rngs::SmallRng;
//! use omt_rng::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let underlay = WaxmanConfig { routers: 80, ..WaxmanConfig::default() }.sample(&mut rng);
//! let hosts: Vec<usize> = (0..30).collect();
//! let delays = DelayMatrix::from_graph(&underlay, &hosts);
//! let embedding = gnp_embed::<3>(&delays, &GnpConfig::default(), &mut rng);
//! assert_eq!(embedding.coordinates.len(), 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod distortion;
mod er;
mod gnp;
mod graph;
mod matrix_tree;
mod staleness;
mod transit_stub;
mod vivaldi;

pub use delay::{median_relative_error, stress, DelayMatrix};
pub use distortion::{distortion_report, true_delays, true_radius, DistortionReport};
pub use er::ErdosRenyiConfig;
pub use gnp::{gnp_embed, GnpConfig, GnpEmbedding};
pub use graph::{Graph, WaxmanConfig};
pub use matrix_tree::{matrix_compact_tree, MatrixTree};
pub use staleness::CoordDrift;
pub use transit_stub::{TransitStub, TransitStubConfig};
pub use vivaldi::{vivaldi_embed, VivaldiConfig};
