//! GNP-style landmark embedding (Ng & Zhang, reference [12] of the paper):
//! a small set of landmarks is embedded first by minimizing pairwise stress
//! against measured landmark-to-landmark delays; every other host is then
//! placed independently against the landmarks only. This is the mapping the
//! paper assumes has "already been done" before tree construction.
//!
//! The optimizer is plain gradient descent with step backtracking — crude
//! but deterministic and dependency-free, and entirely adequate for the
//! distortion experiments (the real GNP used Simplex downhill).

use omt_rng::{Rng, RngExt};

use omt_geom::Point;

use crate::delay::DelayMatrix;

/// Configuration for the GNP embedding.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GnpConfig {
    /// Number of landmarks (the GNP paper recommends ≥ D + 1; 15 is their
    /// headline setting).
    pub landmarks: usize,
    /// Gradient-descent iterations per optimization.
    pub iterations: usize,
    /// Number of random restarts (best result kept).
    pub restarts: usize,
}

impl Default for GnpConfig {
    fn default() -> Self {
        Self {
            landmarks: 15,
            iterations: 400,
            restarts: 3,
        }
    }
}

/// The result of a GNP embedding: one coordinate per host.
#[derive(Clone, Debug, PartialEq)]
pub struct GnpEmbedding<const D: usize> {
    /// Host coordinates, in input order.
    pub coordinates: Vec<Point<D>>,
    /// Indices of the hosts that served as landmarks.
    pub landmarks: Vec<usize>,
}

/// Embeds `n` hosts into `D` dimensions from their delay matrix.
///
/// Landmarks are chosen by greedy max–min distance (first landmark = host
/// 0), then embedded jointly; remaining hosts are placed one at a time
/// against the landmark coordinates.
///
/// # Panics
///
/// Panics if `config.landmarks < 2` (with `n ≥ 2`) or `iterations == 0`.
pub fn gnp_embed<const D: usize>(
    delays: &DelayMatrix,
    config: &GnpConfig,
    rng: &mut (impl Rng + ?Sized),
) -> GnpEmbedding<D> {
    let n = delays.len();
    if n == 0 {
        return GnpEmbedding {
            coordinates: vec![],
            landmarks: vec![],
        };
    }
    if n == 1 {
        return GnpEmbedding {
            coordinates: vec![Point::ORIGIN],
            landmarks: vec![0],
        };
    }
    assert!(config.landmarks >= 2, "need at least two landmarks");
    assert!(config.iterations > 0, "need at least one iteration");
    let l = config.landmarks.min(n);
    // Greedy max-min landmark selection.
    let mut landmarks = vec![0usize];
    while landmarks.len() < l {
        let next = (0..n)
            .filter(|i| !landmarks.contains(i))
            .max_by(|&a, &b| {
                let da = landmarks
                    .iter()
                    .map(|&m| delays.get(a, m))
                    .fold(f64::INFINITY, f64::min);
                let db = landmarks
                    .iter()
                    .map(|&m| delays.get(b, m))
                    .fold(f64::INFINITY, f64::min);
                da.total_cmp(&db)
            })
            .expect("candidates remain");
        landmarks.push(next);
    }
    // Scale for random initialization.
    let scale = delays.max().max(1e-9);

    // Joint landmark optimization with restarts.
    let mut best_coords: Option<(f64, Vec<Point<D>>)> = None;
    for _ in 0..config.restarts.max(1) {
        let mut coords: Vec<Point<D>> = (0..l)
            .map(|_| {
                let mut c = [0.0; D];
                for x in &mut c {
                    *x = rng.random_range(-0.5..0.5) * scale;
                }
                Point::new(c)
            })
            .collect();
        let mut step = 0.1 * scale;
        let mut err = landmark_error(&coords, &landmarks, delays);
        for _ in 0..config.iterations {
            let grads = landmark_gradients(&coords, &landmarks, delays);
            let proposal: Vec<Point<D>> = coords
                .iter()
                .zip(&grads)
                .map(|(c, g)| *c - *g * step)
                .collect();
            let new_err = landmark_error(&proposal, &landmarks, delays);
            if new_err < err {
                coords = proposal;
                err = new_err;
                step *= 1.1;
            } else {
                step *= 0.5;
                if step < 1e-12 * scale {
                    break;
                }
            }
        }
        if best_coords.as_ref().is_none_or(|(e, _)| err < *e) {
            best_coords = Some((err, coords));
        }
    }
    let landmark_coords = best_coords.expect("at least one restart").1;

    // Place every host (landmarks keep their joint coordinates).
    let mut coordinates = vec![Point::ORIGIN; n];
    for (pos, &lm) in landmarks.iter().enumerate() {
        coordinates[lm] = landmark_coords[pos];
    }
    for (h, coord) in coordinates.iter_mut().enumerate() {
        if landmarks.contains(&h) {
            continue;
        }
        *coord = place_host(h, &landmarks, &landmark_coords, delays, config, rng, scale);
    }
    GnpEmbedding {
        coordinates,
        landmarks,
    }
}

/// Sum of squared pairwise errors over landmark pairs.
fn landmark_error<const D: usize>(
    coords: &[Point<D>],
    landmarks: &[usize],
    delays: &DelayMatrix,
) -> f64 {
    let l = coords.len();
    let mut err = 0.0;
    for i in 0..l {
        for j in (i + 1)..l {
            let est = coords[i].distance(&coords[j]);
            let t = delays.get(landmarks[i], landmarks[j]);
            err += (est - t) * (est - t);
        }
    }
    err
}

fn landmark_gradients<const D: usize>(
    coords: &[Point<D>],
    landmarks: &[usize],
    delays: &DelayMatrix,
) -> Vec<Point<D>> {
    let l = coords.len();
    let mut grads = vec![Point::ORIGIN; l];
    for i in 0..l {
        for j in (i + 1)..l {
            let diff = coords[i] - coords[j];
            let est = diff.norm();
            if est == 0.0 {
                continue;
            }
            let t = delays.get(landmarks[i], landmarks[j]);
            let coef = 2.0 * (est - t) / est;
            grads[i] = grads[i] + diff * coef;
            grads[j] = grads[j] - diff * coef;
        }
    }
    grads
}

/// Places one host against the fixed landmark coordinates by gradient
/// descent on the sum of squared errors, best of two starts (origin-ish
/// random and the nearest landmark).
#[allow(clippy::too_many_arguments)]
fn place_host<const D: usize>(
    host: usize,
    landmarks: &[usize],
    landmark_coords: &[Point<D>],
    delays: &DelayMatrix,
    config: &GnpConfig,
    rng: &mut (impl Rng + ?Sized),
    scale: f64,
) -> Point<D> {
    let error = |x: &Point<D>| -> f64 {
        landmarks
            .iter()
            .zip(landmark_coords)
            .map(|(&lm, lc)| {
                let est = x.distance(lc);
                let t = delays.get(host, lm);
                (est - t) * (est - t)
            })
            .sum()
    };
    let gradient = |x: &Point<D>| -> Point<D> {
        let mut g = Point::ORIGIN;
        for (&lm, lc) in landmarks.iter().zip(landmark_coords) {
            let diff = *x - *lc;
            let est = diff.norm();
            if est == 0.0 {
                continue;
            }
            let t = delays.get(host, lm);
            g = g + diff * (2.0 * (est - t) / est);
        }
        g
    };
    // Start near the closest landmark, jittered.
    let nearest = landmarks
        .iter()
        .enumerate()
        .min_by(|a, b| delays.get(host, *a.1).total_cmp(&delays.get(host, *b.1)))
        .map(|(pos, _)| pos)
        .expect("landmarks nonempty");
    let mut best: Option<(f64, Point<D>)> = None;
    for start in 0..2 {
        let mut x = if start == 0 {
            let mut jitter = [0.0; D];
            for v in &mut jitter {
                *v = rng.random_range(-0.05..0.05) * scale;
            }
            landmark_coords[nearest] + Point::new(jitter)
        } else {
            let mut c = [0.0; D];
            for v in &mut c {
                *v = rng.random_range(-0.5..0.5) * scale;
            }
            Point::new(c)
        };
        let mut step = 0.1 * scale;
        let mut err = error(&x);
        for _ in 0..config.iterations {
            let proposal = x - gradient(&x) * step;
            let new_err = error(&proposal);
            if new_err < err {
                x = proposal;
                err = new_err;
                step *= 1.1;
            } else {
                step *= 0.5;
                if step < 1e-12 * scale {
                    break;
                }
            }
        }
        if best.as_ref().is_none_or(|(e, _)| err < *e) {
            best = Some((err, x));
        }
    }
    best.expect("two starts ran").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{median_relative_error, stress};
    use omt_geom::{Disk, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    /// Delays that ARE Euclidean distances must embed almost perfectly.
    #[test]
    fn recovers_euclidean_metrics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pts = Disk::unit().sample_n(&mut rng, 40);
        let truth = DelayMatrix::from_fn(40, |i, j| pts[i].distance(&pts[j]));
        let emb: GnpEmbedding<2> = gnp_embed(
            &truth,
            &GnpConfig {
                landmarks: 8,
                iterations: 600,
                restarts: 4,
            },
            &mut rng,
        );
        let est = DelayMatrix::from_fn(40, |i, j| emb.coordinates[i].distance(&emb.coordinates[j]));
        let s = stress(&truth, &est);
        assert!(s < 0.05, "stress {s}");
        assert!(median_relative_error(&truth, &est) < 0.05);
    }

    #[test]
    fn landmark_count_and_membership() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pts = Disk::unit().sample_n(&mut rng, 30);
        let truth = DelayMatrix::from_fn(30, |i, j| pts[i].distance(&pts[j]));
        let emb: GnpEmbedding<3> = gnp_embed(&truth, &GnpConfig::default(), &mut rng);
        assert_eq!(emb.landmarks.len(), 15);
        assert_eq!(emb.coordinates.len(), 30);
        // Landmarks are distinct.
        let mut lm = emb.landmarks.clone();
        lm.sort_unstable();
        lm.dedup();
        assert_eq!(lm.len(), 15);
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let empty: GnpEmbedding<2> = gnp_embed(
            &DelayMatrix::from_fn(0, |_, _| 0.0),
            &GnpConfig::default(),
            &mut rng,
        );
        assert!(empty.coordinates.is_empty());
        let single: GnpEmbedding<2> = gnp_embed(
            &DelayMatrix::from_fn(1, |_, _| 0.0),
            &GnpConfig::default(),
            &mut rng,
        );
        assert_eq!(single.coordinates.len(), 1);
    }

    #[test]
    fn higher_dimension_fits_no_worse() {
        // A 5-D embedding of a 2-D metric has at least as much freedom.
        let mut rng = SmallRng::seed_from_u64(4);
        let pts = Disk::unit().sample_n(&mut rng, 25);
        let truth = DelayMatrix::from_fn(25, |i, j| pts[i].distance(&pts[j]));
        let cfg = GnpConfig {
            landmarks: 10,
            iterations: 500,
            restarts: 3,
        };
        let e2: GnpEmbedding<2> = gnp_embed(&truth, &cfg, &mut SmallRng::seed_from_u64(9));
        let e5: GnpEmbedding<5> = gnp_embed(&truth, &cfg, &mut SmallRng::seed_from_u64(9));
        let s2 = stress(
            &truth,
            &DelayMatrix::from_fn(25, |i, j| e2.coordinates[i].distance(&e2.coordinates[j])),
        );
        let s5 = stress(
            &truth,
            &DelayMatrix::from_fn(25, |i, j| e5.coordinates[i].distance(&e5.coordinates[j])),
        );
        assert!(s5 < s2 + 0.05, "5-D stress {s5} vs 2-D {s2}");
    }
}
