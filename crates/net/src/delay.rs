//! End-to-end delay matrices and embedding-quality metrics.

use crate::graph::Graph;

/// A symmetric matrix of end-to-end unicast delays between `n` hosts.
///
/// This is the ground truth the embeddings approximate and the distortion
/// experiments measure against.
#[derive(Clone, Debug, PartialEq)]
pub struct DelayMatrix {
    n: usize,
    /// Row-major `n × n`; symmetric with zero diagonal.
    data: Vec<f64>,
}

impl DelayMatrix {
    /// Builds the matrix of shortest-path delays between the given hosts
    /// (node indices of `graph`), one Dijkstra per host.
    ///
    /// # Panics
    ///
    /// Panics if any host index is out of range or any host pair is
    /// disconnected.
    pub fn from_graph(graph: &Graph, hosts: &[usize]) -> Self {
        let n = hosts.len();
        let mut data = vec![0.0; n * n];
        for (i, &h) in hosts.iter().enumerate() {
            assert!(h < graph.len(), "host index {h} out of range");
            let d = graph.dijkstra(h);
            for (j, &g) in hosts.iter().enumerate() {
                assert!(
                    d[g].is_finite(),
                    "hosts {h} and {g} are disconnected in the underlay"
                );
                data[i * n + j] = d[g];
            }
        }
        // Symmetrize defensively (floating Dijkstra is already symmetric on
        // undirected graphs, but keep the invariant airtight).
        let mut m = Self { n, data };
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (m.get(i, j) + m.get(j, i));
                m.set(i, j, avg);
            }
            m.data[i * n + i] = 0.0;
        }
        m
    }

    /// Builds a matrix directly from a closure (for tests and synthetic
    /// metrics). The closure is evaluated for `i < j` and mirrored.
    ///
    /// # Panics
    ///
    /// Panics if the closure returns a negative or non-finite value.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self {
            n,
            data: vec![0.0; n * n],
        };
        for i in 0..n {
            for j in (i + 1)..n {
                let d = f(i, j);
                assert!(d >= 0.0 && d.is_finite(), "bad delay {d} for ({i},{j})");
                m.set(i, j, d);
            }
        }
        m
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Delay between hosts `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    fn set(&mut self, i: usize, j: usize, d: f64) {
        self.data[i * self.n + j] = d;
        self.data[j * self.n + i] = d;
    }

    /// The largest delay in the matrix.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Mean off-diagonal delay (0 for `n < 2`).
    pub fn mean(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let sum: f64 = self.data.iter().sum();
        sum / (self.n * (self.n - 1)) as f64
    }
}

/// Normalized stress of an embedding: `sqrt(Σ (est - true)² / Σ true²)`
/// over all host pairs `i < j`. Zero means a perfect embedding.
///
/// # Panics
///
/// Panics if `estimate` disagrees with `truth` in size.
pub fn stress(truth: &DelayMatrix, estimate: &DelayMatrix) -> f64 {
    assert_eq!(truth.len(), estimate.len(), "matrix sizes differ");
    let n = truth.len();
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let t = truth.get(i, j);
            let e = estimate.get(i, j);
            num += (e - t) * (e - t);
            den += t * t;
        }
    }
    if den == 0.0 {
        0.0
    } else {
        (num / den).sqrt()
    }
}

/// Median relative error `|est - true| / true` over pairs with positive
/// true delay. The headline metric of the GNP paper.
pub fn median_relative_error(truth: &DelayMatrix, estimate: &DelayMatrix) -> f64 {
    assert_eq!(truth.len(), estimate.len(), "matrix sizes differ");
    let n = truth.len();
    let mut errs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let t = truth.get(i, j);
            if t > 0.0 {
                errs.push((estimate.get(i, j) - t).abs() / t);
            }
        }
    }
    if errs.is_empty() {
        return 0.0;
    }
    errs.sort_by(f64::total_cmp);
    errs[errs.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WaxmanConfig;
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    #[test]
    fn from_graph_is_symmetric_metric() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = WaxmanConfig {
            routers: 60,
            ..WaxmanConfig::default()
        }
        .sample(&mut rng);
        let hosts: Vec<usize> = (0..20).collect();
        let m = DelayMatrix::from_graph(&g, &hosts);
        assert_eq!(m.len(), 20);
        for i in 0..20 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..20 {
                assert_eq!(m.get(i, j), m.get(j, i));
                // Triangle inequality (shortest paths form a metric).
                for k in 0..20 {
                    assert!(m.get(i, j) <= m.get(i, k) + m.get(k, j) + 1e-9);
                }
            }
        }
        assert!(m.max() > 0.0);
        assert!(m.mean() > 0.0 && m.mean() <= m.max());
    }

    #[test]
    fn from_fn_mirrors() {
        let m = DelayMatrix::from_fn(3, |i, j| (i + j) as f64);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn stress_zero_for_identical() {
        let m = DelayMatrix::from_fn(5, |i, j| (i * 7 + j) as f64);
        assert_eq!(stress(&m, &m), 0.0);
        assert_eq!(median_relative_error(&m, &m), 0.0);
    }

    #[test]
    fn stress_detects_scaling() {
        let t = DelayMatrix::from_fn(6, |i, j| 1.0 + (i + j) as f64);
        let e = DelayMatrix::from_fn(6, |i, j| 2.0 * (1.0 + (i + j) as f64));
        // Doubling every entry gives stress exactly 1.
        assert!((stress(&t, &e) - 1.0).abs() < 1e-12);
        assert!((median_relative_error(&t, &e) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let m = DelayMatrix::from_fn(0, |_, _| 0.0);
        assert!(m.is_empty());
        assert_eq!(m.mean(), 0.0);
        let m1 = DelayMatrix::from_fn(1, |_, _| 0.0);
        assert_eq!(m1.mean(), 0.0);
        assert_eq!(stress(&m1, &m1), 0.0);
    }
}
