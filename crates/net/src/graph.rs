//! Weighted undirected graphs and synthetic Internet-like topologies.
//!
//! The paper assumes hosts have already been mapped into Euclidean space
//! from measured delays (GNP, reference [12]). To exercise that pipeline we
//! need an underlay to measure: the classic Waxman random graph — routers
//! scattered in a plane, link probability decaying with distance — with
//! propagation delays proportional to link length.

use omt_rng::{Rng, RngExt};

use omt_geom::Point2;

/// A weighted undirected graph with router positions.
#[derive(Clone, Debug, PartialEq)]
pub struct Graph {
    positions: Vec<Point2>,
    /// Adjacency: for each node, `(neighbor, delay)` pairs.
    adjacency: Vec<Vec<(u32, f64)>>,
    edges: usize,
}

impl Graph {
    /// Creates an empty graph with `n` nodes at the given positions.
    pub fn new(positions: Vec<Point2>) -> Self {
        let n = positions.len();
        Self {
            positions,
            adjacency: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Position of node `i`.
    pub fn position(&self, i: usize) -> Point2 {
        self.positions[i]
    }

    /// Neighbors of node `i` with link delays.
    pub fn neighbors(&self, i: usize) -> &[(u32, f64)] {
        &self.adjacency[i]
    }

    /// Adds an undirected edge. Parallel edges are permitted but useless;
    /// callers avoid them.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, `u == v`, or the delay is not
    /// positive and finite.
    pub fn add_edge(&mut self, u: usize, v: usize, delay: f64) {
        assert!(
            u < self.len() && v < self.len(),
            "edge endpoint out of range"
        );
        assert!(u != v, "self loops are not allowed");
        assert!(delay > 0.0 && delay.is_finite(), "bad delay {delay}");
        self.adjacency[u].push((v as u32, delay));
        self.adjacency[v].push((u as u32, delay));
        self.edges += 1;
    }

    /// Whether the edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adjacency[u].iter().any(|&(w, _)| w as usize == v)
    }

    /// Single-source shortest path delays (Dijkstra). Unreachable nodes get
    /// `f64::INFINITY`.
    pub fn dijkstra(&self, source: usize) -> Vec<f64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Key(f64);
        impl Eq for Key {}
        impl PartialOrd for Key {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Key {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        let n = self.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = BinaryHeap::new();
        dist[source] = 0.0;
        heap.push(Reverse((Key(0.0), source as u32)));
        while let Some(Reverse((Key(d), u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(v, w) in &self.adjacency[u as usize] {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((Key(nd), v)));
                }
            }
        }
        dist
    }

    /// Whether the graph is connected (trivially true for `n ≤ 1`).
    pub fn is_connected(&self) -> bool {
        if self.len() <= 1 {
            return true;
        }
        let d = self.dijkstra(0);
        d.iter().all(|x| x.is_finite())
    }
}

/// Parameters of the Waxman random-graph model.
///
/// Link probability between routers `u, v` at distance `d` is
/// `alpha · exp(-d / (beta · L))` with `L` the maximum possible distance.
/// After sampling, the graph is stitched connected by linking each isolated
/// component to its nearest neighbor component (a standard repair).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaxmanConfig {
    /// Number of routers.
    pub routers: usize,
    /// Link density parameter (typical 0.1–0.3).
    pub alpha: f64,
    /// Link locality parameter (typical 0.1–0.2; larger = longer links).
    pub beta: f64,
    /// Side length of the square the routers live in (e.g. km).
    pub side: f64,
    /// Delay per unit distance (e.g. ms/km for fiber ≈ 0.005).
    pub delay_per_unit: f64,
    /// Fixed per-link processing delay added to every edge.
    pub base_delay: f64,
}

impl Default for WaxmanConfig {
    fn default() -> Self {
        Self {
            routers: 200,
            alpha: 0.15,
            beta: 0.15,
            side: 1000.0,
            delay_per_unit: 0.005,
            base_delay: 0.1,
        }
    }
}

impl WaxmanConfig {
    /// Samples a connected Waxman graph.
    ///
    /// # Panics
    ///
    /// Panics if `routers == 0` or parameters are non-positive.
    pub fn sample(&self, rng: &mut (impl Rng + ?Sized)) -> Graph {
        assert!(self.routers > 0, "need at least one router");
        assert!(
            self.alpha > 0.0 && self.beta > 0.0 && self.side > 0.0 && self.delay_per_unit > 0.0,
            "Waxman parameters must be positive"
        );
        let n = self.routers;
        let positions: Vec<Point2> = (0..n)
            .map(|_| {
                Point2::new([
                    rng.random_range(0.0..self.side),
                    rng.random_range(0.0..self.side),
                ])
            })
            .collect();
        let l = self.side * 2f64.sqrt();
        let mut g = Graph::new(positions);
        for u in 0..n {
            for v in (u + 1)..n {
                let d = g.positions[u].distance(&g.positions[v]);
                let p = self.alpha * (-d / (self.beta * l)).exp();
                if rng.random::<f64>() < p {
                    g.add_edge(u, v, self.link_delay(d));
                }
            }
        }
        stitch_connected(&mut g, |d| self.link_delay(d));
        g
    }

    fn link_delay(&self, distance: f64) -> f64 {
        self.base_delay + distance * self.delay_per_unit
    }
}

/// Links each non-root component to the main component through the
/// geometrically closest node pair, pricing repair edges with
/// `link_delay` (a standard connectivity repair shared by all the
/// geometric random-graph generators in this crate).
pub(crate) fn stitch_connected(g: &mut Graph, link_delay: impl Fn(f64) -> f64) {
    let n = g.len();
    if n == 0 {
        return;
    }
    // Union-find over current edges.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for u in 0..n {
        for &(v, _) in g.neighbors(u).to_vec().iter() {
            let (ru, rv) = (find(&mut parent, u as u32), find(&mut parent, v));
            if ru != rv {
                parent[ru as usize] = rv;
            }
        }
    }
    loop {
        // Gather components; stop when one remains.
        let root0 = find(&mut parent, 0);
        let stray: Vec<u32> = (0..n as u32)
            .filter(|&x| find(&mut parent, x) != root0)
            .collect();
        if stray.is_empty() {
            break;
        }
        // Closest pair between the main component and any stray node.
        let mut best: Option<(f64, usize, usize)> = None;
        for &s in &stray {
            for m in 0..n {
                if find(&mut parent, m as u32) != root0 {
                    continue;
                }
                let d = g.positions[s as usize].distance(&g.positions[m]);
                if best.as_ref().is_none_or(|(bd, _, _)| d < *bd) {
                    best = Some((d, s as usize, m));
                }
            }
        }
        let (d, s, m) = best.expect("main component is nonempty");
        g.add_edge(s, m, link_delay(d).max(f64::MIN_POSITIVE));
        let (rs, rm) = (find(&mut parent, s as u32), find(&mut parent, m as u32));
        parent[rs as usize] = rm;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    #[test]
    fn waxman_is_connected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for routers in [1usize, 2, 10, 150] {
            let g = WaxmanConfig {
                routers,
                ..WaxmanConfig::default()
            }
            .sample(&mut rng);
            assert_eq!(g.len(), routers);
            assert!(g.is_connected(), "{routers} routers disconnected");
        }
    }

    #[test]
    fn sparse_waxman_still_connected_via_stitching() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = WaxmanConfig {
            routers: 100,
            alpha: 0.01, // almost no organic links
            beta: 0.05,
            ..WaxmanConfig::default()
        }
        .sample(&mut rng);
        assert!(g.is_connected());
        assert!(g.edge_count() >= 99); // at least a spanning structure
    }

    #[test]
    fn dijkstra_hand_checked() {
        // Triangle with a shortcut.
        let mut g = Graph::new(vec![
            Point2::new([0.0, 0.0]),
            Point2::new([1.0, 0.0]),
            Point2::new([2.0, 0.0]),
        ]);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 5.0);
        let d = g.dijkstra(0);
        assert_eq!(d, vec![0.0, 1.0, 2.0]);
        let d = g.dijkstra(2);
        assert_eq!(d, vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let g = Graph::new(vec![Point2::ORIGIN, Point2::new([1.0, 0.0])]);
        let d = g.dijkstra(0);
        assert_eq!(d[0], 0.0);
        assert!(d[1].is_infinite());
        assert!(!g.is_connected());
    }

    #[test]
    fn delays_grow_with_distance() {
        let cfg = WaxmanConfig::default();
        assert!(cfg.link_delay(100.0) > cfg.link_delay(10.0));
        assert!(cfg.link_delay(0.0) >= cfg.base_delay);
    }

    #[test]
    fn triangle_inequality_violations_exist_in_underlays() {
        // Shortest-path metrics are metrics, but the *positions* don't
        // determine them: two geometrically close routers can be far apart
        // in delay. This asymmetry is exactly why embedding is lossy.
        let mut rng = SmallRng::seed_from_u64(5);
        let g = WaxmanConfig {
            routers: 60,
            alpha: 0.08,
            ..WaxmanConfig::default()
        }
        .sample(&mut rng);
        let mut found = false;
        let d0 = g.dijkstra(0);
        for (v, &delay) in d0.iter().enumerate().skip(1) {
            let geo = g.position(0).distance(&g.position(v));
            let cfg = WaxmanConfig::default();
            if delay > 3.0 * cfg.link_delay(geo) {
                found = true;
                break;
            }
        }
        // Not guaranteed, but overwhelmingly likely at this sparsity.
        assert!(found, "expected at least one delay-inflated pair");
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loop_rejected() {
        let mut g = Graph::new(vec![Point2::ORIGIN]);
        g.add_edge(0, 0, 1.0);
    }

    #[test]
    fn has_edge_and_counts() {
        let mut g = Graph::new(vec![Point2::ORIGIN, Point2::new([1.0, 0.0])]);
        assert!(!g.has_edge(0, 1));
        g.add_edge(0, 1, 0.5);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[(1, 0.5)]);
    }
}
