//! Degree-constrained minimum-delay trees built **directly on a delay
//! matrix** — no coordinates, no embedding.
//!
//! This is the strongest coordinate-free reference for the embedding
//! experiments: the compact-tree greedy run on *true* measured delays. Any
//! embedding pipeline pays two costs against it — embedding error and the
//! tree algorithm's sensitivity to that error. It is quadratic, so it also
//! represents what the paper's scalable algorithm is buying its linearity
//! against.

use crate::delay::DelayMatrix;

/// A spanning tree over matrix-indexed hosts (no geometry).
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixTree {
    /// Matrix index of the source host.
    source: usize,
    /// Receivers in matrix indices.
    receivers: Vec<usize>,
    /// `parent[i]`: index into `receivers` (or `None` = the source) for
    /// receiver `i`.
    parent: Vec<Option<usize>>,
    /// Source-to-receiver delay along the tree, per receiver.
    delay: Vec<f64>,
}

impl MatrixTree {
    /// Number of receivers.
    pub fn len(&self) -> usize {
        self.receivers.len()
    }

    /// True if there are no receivers.
    pub fn is_empty(&self) -> bool {
        self.receivers.is_empty()
    }

    /// The source's matrix index.
    pub fn source(&self) -> usize {
        self.source
    }

    /// Receiver `i`'s matrix index.
    pub fn receiver(&self, i: usize) -> usize {
        self.receivers[i]
    }

    /// Parent of receiver `i` (`None` = the source).
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Tree delay from the source to receiver `i`.
    pub fn delay(&self, i: usize) -> f64 {
        self.delay[i]
    }

    /// The tree radius: the largest source-to-receiver delay.
    pub fn radius(&self) -> f64 {
        self.delay.iter().copied().fold(0.0, f64::max)
    }

    /// Out-degree of each receiver plus, in the last slot, the source.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.len() + 1];
        for p in &self.parent {
            match p {
                None => deg[self.len()] += 1,
                Some(q) => deg[*q] += 1,
            }
        }
        deg
    }
}

/// Builds a compact tree (greedy minimum-delay attachment) over the hosts
/// of a delay matrix, with `source` as the root and every other host a
/// receiver, under a uniform out-degree bound. `O(n²)`.
///
/// # Panics
///
/// Panics if `source` is out of range or `max_out_degree == 0` with more
/// than zero receivers.
///
/// # Examples
///
/// ```
/// use omt_net::{matrix_compact_tree, DelayMatrix};
///
/// // Hosts 0,1,2 on a line: 0-1 = 1, 1-2 = 1, 0-2 = 2.
/// let m = DelayMatrix::from_fn(3, |i, j| (i.abs_diff(j)) as f64);
/// let tree = matrix_compact_tree(&m, 0, 1);
/// // Degree 1 forces the chain 0 -> 1 -> 2.
/// assert_eq!(tree.radius(), 2.0);
/// ```
pub fn matrix_compact_tree(delays: &DelayMatrix, source: usize, max_out_degree: u32) -> MatrixTree {
    let n_hosts = delays.len();
    assert!(source < n_hosts, "source {source} out of range");
    let receivers: Vec<usize> = (0..n_hosts).filter(|&h| h != source).collect();
    let n = receivers.len();
    assert!(
        max_out_degree > 0 || n == 0,
        "a positive degree budget is required"
    );
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut delay = vec![f64::INFINITY; n];
    let mut attached = vec![false; n];
    let mut degree_used = vec![0u32; n + 1]; // last slot = source
                                             // best[i] = (delay via best parent, parent slot) for unattached i.
    let mut best: Vec<(f64, Option<usize>)> = receivers
        .iter()
        .map(|&h| (delays.get(source, h), None))
        .collect();
    for _ in 0..n {
        // Pick the unattached receiver with the smallest feasible delay.
        let mut pick: Option<(f64, usize)> = None;
        for i in 0..n {
            if attached[i] {
                continue;
            }
            // Refresh if the cached parent saturated.
            let slot = best[i].1.map_or(n, |p| p);
            if degree_used[slot] >= max_out_degree {
                best[i] = recompute_best(
                    delays,
                    source,
                    &receivers,
                    &attached,
                    &delay,
                    &degree_used,
                    max_out_degree,
                    i,
                );
            }
            if pick.is_none() || best[i].0 < pick.expect("checked").0 {
                pick = Some((best[i].0, i));
            }
        }
        let (d, i) = pick.expect("n attaches for n receivers");
        attached[i] = true;
        delay[i] = d;
        parent[i] = best[i].1;
        degree_used[best[i].1.map_or(n, |p| p)] += 1;
        // Offer the new relay to the rest.
        for j in 0..n {
            if !attached[j] {
                let via = d + delays.get(receivers[i], receivers[j]);
                if via < best[j].0 {
                    best[j] = (via, Some(i));
                }
            }
        }
    }
    MatrixTree {
        source,
        receivers,
        parent,
        delay,
    }
}

#[allow(clippy::too_many_arguments)]
fn recompute_best(
    delays: &DelayMatrix,
    source: usize,
    receivers: &[usize],
    attached: &[bool],
    delay: &[f64],
    degree_used: &[u32],
    max_out_degree: u32,
    i: usize,
) -> (f64, Option<usize>) {
    let n = receivers.len();
    let mut best = (f64::INFINITY, None);
    if degree_used[n] < max_out_degree {
        best = (delays.get(source, receivers[i]), None);
    }
    for (p, &ap) in attached.iter().enumerate() {
        if ap && degree_used[p] < max_out_degree {
            let via = delay[p] + delays.get(receivers[p], receivers[i]);
            if via < best.0 {
                best = (via, Some(p));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WaxmanConfig;
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    #[test]
    fn unbounded_degree_is_shortest_path_star() {
        // With a metric matrix and a huge budget, attaching through a relay
        // never beats the direct edge.
        let mut rng = SmallRng::seed_from_u64(1);
        let g = WaxmanConfig {
            routers: 50,
            ..WaxmanConfig::default()
        }
        .sample(&mut rng);
        let hosts: Vec<usize> = (0..20).collect();
        let m = DelayMatrix::from_graph(&g, &hosts);
        let t = matrix_compact_tree(&m, 0, 100);
        for i in 0..t.len() {
            // A relay exactly on the shortest path can tie the direct edge
            // (and win by a floating-point ulp), so assert the delay, not
            // the parent.
            assert!(
                (t.delay(i) - m.get(0, t.receiver(i))).abs() < 1e-9,
                "receiver {i}: {} vs direct {}",
                t.delay(i),
                m.get(0, t.receiver(i))
            );
        }
    }

    #[test]
    fn degree_bound_respected_and_radius_lower_bounded() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = WaxmanConfig {
            routers: 80,
            ..WaxmanConfig::default()
        }
        .sample(&mut rng);
        let hosts: Vec<usize> = (0..40).collect();
        let m = DelayMatrix::from_graph(&g, &hosts);
        for deg in [1u32, 2, 4] {
            let t = matrix_compact_tree(&m, 3, deg);
            assert_eq!(t.len(), 39);
            let degs = t.out_degrees();
            assert!(degs.iter().all(|&d| d <= deg), "degree {deg}: {degs:?}");
            // Radius at least the farthest direct delay.
            let lb = (0..40)
                .filter(|&h| h != 3)
                .map(|h| m.get(3, h))
                .fold(0.0, f64::max);
            assert!(t.radius() >= lb - 1e-12);
        }
    }

    #[test]
    fn delays_are_consistent_with_parents() {
        let m = DelayMatrix::from_fn(5, |i, j| (i.abs_diff(j)) as f64 * 1.5);
        let t = matrix_compact_tree(&m, 2, 2);
        for i in 0..t.len() {
            let expected = match t.parent(i) {
                None => m.get(t.source(), t.receiver(i)),
                Some(p) => t.delay(p) + m.get(t.receiver(p), t.receiver(i)),
            };
            assert!((t.delay(i) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn chain_under_degree_one() {
        let m = DelayMatrix::from_fn(4, |i, j| (i.abs_diff(j)) as f64);
        let t = matrix_compact_tree(&m, 0, 1);
        let degs = t.out_degrees();
        assert!(degs.iter().all(|&d| d <= 1));
        assert_eq!(t.radius(), 3.0); // 0 -> 1 -> 2 -> 3
    }

    #[test]
    fn degenerate_inputs() {
        let m = DelayMatrix::from_fn(1, |_, _| 0.0);
        let t = matrix_compact_tree(&m, 0, 1);
        assert!(t.is_empty());
        assert_eq!(t.radius(), 0.0);
    }

    #[test]
    fn radius_is_sane_on_euclidean_matrices() {
        // When the matrix IS Euclidean, the matrix CPT's radius must sit
        // between the star lower bound and a loose multiple of it (the
        // greedy is near-optimal on benign uniform instances).
        use omt_geom::{Disk, Point2, Region};
        let mut rng = SmallRng::seed_from_u64(3);
        let pts = Disk::unit().sample_n(&mut rng, 30);
        let mut all = vec![Point2::ORIGIN];
        all.extend(pts.iter().copied());
        let m = DelayMatrix::from_fn(31, |i, j| all[i].distance(&all[j]));
        let t = matrix_compact_tree(&m, 0, 3);
        let lb = pts.iter().map(|p| p.norm()).fold(0.0, f64::max);
        assert!(t.radius() >= lb - 1e-12);
        assert!(t.radius() <= 1.5 * lb, "radius {} vs lb {lb}", t.radius());
    }
}
