//! Erdős–Rényi `G(n, p)` underlays.
//!
//! The classical random graph: every router pair is linked independently
//! with probability `p`, regardless of distance. Routers still carry
//! geometric positions so links get propagation delays and the
//! connectivity repair can pick closest pairs, but — unlike
//! [`WaxmanConfig`](crate::WaxmanConfig) — the *topology* is completely
//! distance-blind. That makes `G(n, p)` the stress case for
//! coordinate embeddings: measured delays correlate only weakly with any
//! Euclidean placement.
//!
//! Not to be confused with [`gnp_embed`](crate::gnp_embed), the GNP
//! *landmark embedding* of Ng and Zhang — an unfortunate acronym
//! collision inherited from the literature.

use omt_geom::Point2;
use omt_rng::{Rng, RngExt};

use crate::graph::{stitch_connected, Graph};

/// Parameters of the Erdős–Rényi `G(n, p)` random-graph model.
///
/// Each of the `n·(n-1)/2` router pairs is linked independently with
/// probability `p`. After sampling, the graph is stitched connected by
/// linking each isolated component to its nearest neighbor component
/// (the same repair [`WaxmanConfig`](crate::WaxmanConfig) uses).
///
/// # Examples
///
/// ```
/// use omt_net::ErdosRenyiConfig;
/// use omt_rng::rngs::SmallRng;
/// use omt_rng::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let g = ErdosRenyiConfig { routers: 60, p: 0.08, ..ErdosRenyiConfig::default() }
///     .sample(&mut rng);
/// assert_eq!(g.len(), 60);
/// assert!(g.is_connected());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErdosRenyiConfig {
    /// Number of routers.
    pub routers: usize,
    /// Independent link probability for every router pair.
    pub p: f64,
    /// Side length of the square the routers live in (e.g. km); only
    /// affects delays, never the topology.
    pub side: f64,
    /// Delay per unit distance (e.g. ms/km for fiber ≈ 0.005).
    pub delay_per_unit: f64,
    /// Fixed per-link processing delay added to every edge.
    pub base_delay: f64,
}

impl Default for ErdosRenyiConfig {
    fn default() -> Self {
        Self {
            routers: 200,
            // Comfortably above the ln(n)/n connectivity threshold at the
            // default size, so stitching rarely has to intervene.
            p: 0.05,
            side: 1000.0,
            delay_per_unit: 0.005,
            base_delay: 0.1,
        }
    }
}

impl ErdosRenyiConfig {
    /// Samples a connected `G(n, p)` graph.
    ///
    /// # Panics
    ///
    /// Panics if `routers == 0`, `p` is outside `[0, 1]`, or a delay
    /// parameter is non-positive.
    pub fn sample(&self, rng: &mut (impl Rng + ?Sized)) -> Graph {
        assert!(self.routers > 0, "need at least one router");
        assert!(
            (0.0..=1.0).contains(&self.p),
            "p must be a probability, got {}",
            self.p
        );
        assert!(
            self.side > 0.0 && self.delay_per_unit > 0.0,
            "delay parameters must be positive"
        );
        let n = self.routers;
        let positions: Vec<Point2> = (0..n)
            .map(|_| {
                Point2::new([
                    rng.random_range(0.0..self.side),
                    rng.random_range(0.0..self.side),
                ])
            })
            .collect();
        let mut g = Graph::new(positions);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random::<f64>() < self.p {
                    let d = g.position(u).distance(&g.position(v));
                    g.add_edge(u, v, self.base_delay + d * self.delay_per_unit);
                }
            }
        }
        stitch_connected(&mut g, |d| self.base_delay + d * self.delay_per_unit);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    #[test]
    fn gnp_is_connected_across_densities() {
        let mut rng = SmallRng::seed_from_u64(11);
        for p in [0.0, 0.01, 0.05, 0.3, 1.0] {
            let g = ErdosRenyiConfig {
                routers: 80,
                p,
                ..ErdosRenyiConfig::default()
            }
            .sample(&mut rng);
            assert_eq!(g.len(), 80);
            assert!(g.is_connected(), "p = {p} disconnected");
        }
    }

    #[test]
    fn complete_graph_at_p_one() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = ErdosRenyiConfig {
            routers: 20,
            p: 1.0,
            ..ErdosRenyiConfig::default()
        }
        .sample(&mut rng);
        assert_eq!(g.edge_count(), 20 * 19 / 2);
    }

    #[test]
    fn empty_graph_is_stitched_into_a_tree() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = ErdosRenyiConfig {
            routers: 30,
            p: 0.0,
            ..ErdosRenyiConfig::default()
        }
        .sample(&mut rng);
        // Stitching adds exactly a spanning tree when nothing is organic.
        assert_eq!(g.edge_count(), 29);
        assert!(g.is_connected());
    }

    #[test]
    fn single_router_works() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = ErdosRenyiConfig {
            routers: 1,
            p: 0.5,
            ..ErdosRenyiConfig::default()
        }
        .sample(&mut rng);
        assert_eq!(g.len(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
    }
}
