//! Generator-level tests: golden edge counts pinning the seeded RNG
//! streams of the topology generators, and convergence of the Vivaldi
//! embedding.

use omt_net::{
    median_relative_error, vivaldi_embed, DelayMatrix, ErdosRenyiConfig, TransitStubConfig,
    VivaldiConfig, WaxmanConfig,
};
use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;

/// `G(n, p)` samples are connected and their edge counts are pinned per
/// seed: any change to the generator's consumption of the RNG stream (or
/// to the stitching repair) shows up here as a golden mismatch.
#[test]
fn gnp_connected_with_golden_edge_counts() {
    let golden: [(u64, usize); 4] = [(0, 307), (1, 271), (2, 302), (3, 295)];
    for (seed, expected) in golden {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = ErdosRenyiConfig {
            routers: 120,
            p: 0.04,
            ..ErdosRenyiConfig::default()
        }
        .sample(&mut rng);
        assert!(g.is_connected(), "seed {seed} disconnected");
        assert_eq!(g.edge_count(), expected, "seed {seed}");
    }
}

/// Transit-stub samples are connected, have the exact configured node
/// count, and their edge counts are pinned per seed.
#[test]
fn transit_stub_connected_with_golden_edge_counts() {
    let golden: [(u64, usize); 4] = [(0, 372), (1, 380), (2, 388), (3, 358)];
    let cfg = TransitStubConfig::default();
    for (seed, expected) in golden {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ts = cfg.sample(&mut rng);
        assert_eq!(
            ts.graph.len(),
            cfg.transit_routers + cfg.stub_domains * cfg.routers_per_stub
        );
        assert!(ts.graph.is_connected(), "seed {seed} disconnected");
        assert_eq!(ts.graph.edge_count(), expected, "seed {seed}");
    }
}

/// Vivaldi's embedding error is monotone in expectation: averaging the
/// median relative error over seeds, more adjustment samples never make
/// the embedding worse (up to a small stochastic slack), and the final
/// checkpoint is substantially better than the first.
#[test]
fn vivaldi_error_is_monotone_in_expectation() {
    let mut rng = SmallRng::seed_from_u64(42);
    let g = WaxmanConfig {
        routers: 60,
        ..WaxmanConfig::default()
    }
    .sample(&mut rng);
    let hosts: Vec<usize> = (0..30).collect();
    let truth = DelayMatrix::from_graph(&g, &hosts);

    let checkpoints = [250usize, 1_000, 4_000, 16_000];
    let seeds = 8u64;
    let mut avg = [0.0f64; 4];
    for seed in 0..seeds {
        for (c, &samples) in checkpoints.iter().enumerate() {
            // Same seed at every checkpoint: the longer runs replay the
            // shorter runs' sample streams and then keep refining.
            let mut rng = SmallRng::seed_from_u64(seed);
            let coords = vivaldi_embed::<2>(
                &truth,
                &VivaldiConfig {
                    samples,
                    ..VivaldiConfig::default()
                },
                &mut rng,
            );
            let est = DelayMatrix::from_fn(hosts.len(), |i, j| (coords[i] - coords[j]).norm());
            avg[c] += median_relative_error(&truth, &est) / seeds as f64;
        }
    }
    println!("vivaldi avg errors: {avg:?}");
    for c in 1..checkpoints.len() {
        assert!(
            avg[c] <= avg[c - 1] * 1.05,
            "error rose between checkpoints {} and {}: {} -> {}",
            checkpoints[c - 1],
            checkpoints[c],
            avg[c - 1],
            avg[c]
        );
    }
    assert!(
        avg[3] < 0.8 * avg[0],
        "no substantial convergence: {} -> {}",
        avg[0],
        avg[3]
    );
}
