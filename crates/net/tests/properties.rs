//! Property-based tests of the network substrate.

use omt_net::{median_relative_error, stress, DelayMatrix, WaxmanConfig};
use omt_rng::rngs::SmallRng;
use omt_rng::{prop_assert, prop_assert_eq, props, RngExt, SeedableRng};

props! {
    #[cases(32)]
    fn waxman_graphs_are_connected_metrics(
        routers in 1usize..80,
        seed in 0u64..1000,
        alpha in 0.02f64..0.5,
        beta in 0.05f64..0.4,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = WaxmanConfig {
            routers,
            alpha,
            beta,
            ..WaxmanConfig::default()
        }
        .sample(&mut rng);
        prop_assert!(g.is_connected());
        // Shortest-path delays form a metric on a host sample.
        let hosts: Vec<usize> = (0..routers.min(12)).collect();
        let m = DelayMatrix::from_graph(&g, &hosts);
        for i in 0..hosts.len() {
            prop_assert_eq!(m.get(i, i), 0.0);
            for j in 0..hosts.len() {
                prop_assert_eq!(m.get(i, j), m.get(j, i));
                for k in 0..hosts.len() {
                    prop_assert!(m.get(i, j) <= m.get(i, k) + m.get(k, j) + 1e-9);
                }
            }
        }
    }

    #[cases(32)]
    fn stress_is_zero_iff_identical_and_scale_covariant(
        n in 2usize..12,
        seed in 0u64..1000,
        scale in 1.1f64..5.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let vals: Vec<f64> = (0..n * n).map(|_| rng.random_range(0.1..10.0)).collect();
        let t = DelayMatrix::from_fn(n, |i, j| vals[i * n + j]);
        prop_assert_eq!(stress(&t, &t), 0.0);
        prop_assert_eq!(median_relative_error(&t, &t), 0.0);
        let e = DelayMatrix::from_fn(n, |i, j| vals[i * n + j] * scale);
        // Uniform scaling by s gives stress exactly (s - 1).
        prop_assert!((stress(&t, &e) - (scale - 1.0)).abs() < 1e-9);
        prop_assert!((median_relative_error(&t, &e) - (scale - 1.0)).abs() < 1e-9);
    }

    #[cases(32)]
    fn delay_matrix_stats(n in 2usize..15, seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let vals: Vec<f64> = (0..n * n).map(|_| rng.random_range(0.0..10.0)).collect();
        let m = DelayMatrix::from_fn(n, |i, j| vals[i * n + j]);
        prop_assert!(m.mean() <= m.max() + 1e-12);
        prop_assert!(m.mean() >= 0.0);
    }
}
