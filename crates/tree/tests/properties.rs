//! Property-based tests of the tree substrate: random valid construction
//! sequences always yield trees that satisfy every invariant, and the
//! builder rejects every class of invalid operation.

use omt_geom::Point2;
use omt_rng::rngs::SmallRng;
use omt_rng::{prop_assert, prop_assert_eq, props, RngExt, SeedableRng};
use omt_tree::{ParentRef, TreeBuilder, TreeError};

/// Builds a random valid tree over `n` points with the given degree bound,
/// returning it together with the parent choices made.
fn random_valid_tree(
    n: usize,
    max_deg: u32,
    seed: u64,
) -> (omt_tree::MulticastTree<2>, Vec<Option<usize>>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let points: Vec<Point2> = (0..n)
        .map(|_| Point2::new([rng.random_range(-5.0..5.0), rng.random_range(-5.0..5.0)]))
        .collect();
    let mut b = TreeBuilder::new(Point2::ORIGIN, points).max_out_degree(max_deg);
    let mut parents: Vec<Option<usize>> = vec![None; n];
    let mut attached: Vec<usize> = Vec::new();
    let mut used: Vec<u32> = vec![0; n];
    let mut used_source = 0u32;
    #[allow(clippy::needless_range_loop)] // `i` is the node id being attached
    for i in 0..n {
        // Candidates: source (if budget) plus attached nodes with budget.
        let mut cands: Vec<Option<usize>> = Vec::new();
        if used_source < max_deg {
            cands.push(None);
        }
        for &a in &attached {
            if used[a] < max_deg {
                cands.push(Some(a));
            }
        }
        // With max_deg >= 1 a candidate always exists (chain fallback).
        let choice = cands[rng.random_range(0..cands.len())];
        match choice {
            None => {
                b.attach_to_source(i).unwrap();
                used_source += 1;
            }
            Some(p) => {
                b.attach(i, p).unwrap();
                used[p] += 1;
            }
        }
        parents[i] = choice;
        attached.push(i);
    }
    (b.finish().unwrap(), parents)
}

props! {
    fn random_construction_always_validates(
        n in 0usize..120,
        max_deg in 1u32..8,
        seed in 0u64..10_000,
    ) {
        let (tree, parents) = random_valid_tree(n, max_deg, seed);
        tree.validate(Some(max_deg)).unwrap();
        prop_assert_eq!(tree.len(), n);
        // Parent records round-trip.
        for (i, p) in parents.iter().enumerate() {
            match p {
                None => prop_assert_eq!(tree.parent(i), ParentRef::Source),
                Some(q) => prop_assert_eq!(tree.parent(i), ParentRef::Node(*q)),
            }
        }
    }

    fn children_lists_are_inverse_of_parents(n in 1usize..100, seed in 0u64..1000) {
        let (tree, _) = random_valid_tree(n, 3, seed);
        for i in 0..n {
            match tree.parent(i) {
                ParentRef::Source => {
                    prop_assert!(tree.source_children().contains(&(i as u32)));
                }
                ParentRef::Node(p) => {
                    prop_assert!(tree.children(p).contains(&(i as u32)));
                }
            }
        }
        let total_children: usize = (0..n).map(|i| tree.children(i).len()).sum();
        prop_assert_eq!(total_children + tree.source_children().len(), n);
    }

    fn radius_equals_max_depth_and_bfs_is_monotone_in_hops(
        n in 1usize..100,
        seed in 0u64..1000,
    ) {
        let (tree, _) = random_valid_tree(n, 2, seed);
        let max_depth = (0..n).map(|i| tree.depth(i)).fold(0.0f64, f64::max);
        prop_assert!((tree.radius() - max_depth).abs() < 1e-12);
        let hops: Vec<u32> = tree.iter_bfs().map(|i| tree.hops(i)).collect();
        for w in hops.windows(2) {
            prop_assert!(w[0] <= w[1], "BFS hop order violated");
        }
    }

    fn metrics_are_internally_consistent(n in 1usize..80, seed in 0u64..1000) {
        let (tree, _) = random_valid_tree(n, 4, seed);
        let m = tree.metrics();
        prop_assert_eq!(m.len, n);
        prop_assert!(m.radius <= m.diameter + 1e-12);
        prop_assert!(m.diameter <= 2.0 * m.radius + 1e-12);
        prop_assert!(m.mean_depth <= m.radius + 1e-12);
        prop_assert!(f64::from(m.max_hops) >= m.mean_hops);
        prop_assert!(m.max_stretch >= 1.0 - 1e-9 || m.max_stretch == 0.0);
        let hist = tree.hop_histogram();
        prop_assert_eq!(hist.iter().sum::<usize>(), n);
        let fan = tree.fanout_histogram();
        prop_assert_eq!(fan.iter().sum::<usize>(), n + 1); // + source
    }

    fn distances_from_are_a_tree_metric(n in 2usize..40, seed in 0u64..300) {
        let (tree, _) = random_valid_tree(n, 3, seed);
        let d0 = tree.distances_from(0);
        // Symmetry via a second sweep.
        let d1 = tree.distances_from(1);
        prop_assert!((d0[1] - d1[0]).abs() < 1e-9);
        // Distance to the source slot equals depth.
        prop_assert!((d0[n] - tree.depth(0)).abs() < 1e-9);
    }
}

#[test]
fn builder_error_paths() {
    let pts = vec![Point2::new([1.0, 0.0]), Point2::new([2.0, 0.0])];
    let mut b = TreeBuilder::new(Point2::ORIGIN, pts).max_out_degree(1);
    assert_eq!(
        b.attach(0, 1),
        Err(TreeError::ParentNotAttached { parent: 1 })
    );
    b.attach_to_source(0).unwrap();
    assert_eq!(
        b.attach_to_source(1),
        Err(TreeError::DegreeExceeded {
            parent: None,
            max_out_degree: 1
        })
    );
    b.attach(1, 0).unwrap();
    let t = b.finish().unwrap();
    t.validate(Some(1)).unwrap();
}
