//! Closed-form checks of [`omt_tree::TreeMetrics`] on degenerate and
//! hand-constructed trees whose every statistic can be computed on paper:
//! the root-only (receiver-free) tree, a path (chain) tree, and a
//! saturated out-degree-2 binary tree with all receivers co-located so
//! that in-tree edges are weightless.

use omt_geom::Point2;
use omt_tree::TreeBuilder;

#[test]
fn root_only_tree_has_all_zero_metrics() {
    let tree = TreeBuilder::<2>::new(Point2::ORIGIN, Vec::new())
        .finish()
        .expect("empty tree is complete");
    assert!(tree.is_empty());
    let m = tree.metrics();
    assert_eq!(m.len, 0);
    assert_eq!(m.radius, 0.0);
    assert_eq!(m.diameter, 0.0);
    assert_eq!(m.total_edge_weight, 0.0);
    assert_eq!(m.mean_depth, 0.0);
    assert_eq!(m.max_hops, 0);
    assert_eq!(m.mean_hops, 0.0);
    assert_eq!(m.max_out_degree, 0);
    assert_eq!(m.max_stretch, 0.0);
    assert_eq!(m.mean_stretch, 0.0);
    // Entry 0 (the source's own hop count bucket) is always present.
    assert_eq!(tree.hop_histogram(), vec![0]);
}

#[test]
fn path_tree_metrics_match_closed_forms() {
    // Source at the origin, receivers on the x-axis at 1, 2, ..., k, each
    // attached to its predecessor: a chain with unit edges.
    const K: usize = 8;
    let points: Vec<Point2> = (1..=K).map(|i| Point2::new([i as f64, 0.0])).collect();
    let mut b = TreeBuilder::new(Point2::ORIGIN, points).max_out_degree(2);
    b.attach_to_source(0).unwrap();
    for i in 1..K {
        b.attach(i, i - 1).unwrap();
    }
    let tree = b.finish().unwrap();
    let m = tree.metrics();
    let k = K as f64;
    assert_eq!(m.len, K);
    // Node i sits at depth i; the deepest is k.
    assert_eq!(m.radius, k);
    // The chain's farthest pair is the source and the far end.
    assert_eq!(m.diameter, k);
    // K unit edges.
    assert_eq!(m.total_edge_weight, k);
    // mean depth = (1 + 2 + ... + k)/k = (k + 1)/2, and hops == depth here.
    assert_eq!(m.mean_depth, (k + 1.0) / 2.0);
    assert_eq!(m.max_hops, K as u32);
    assert_eq!(m.mean_hops, (k + 1.0) / 2.0);
    // A chain never branches.
    assert_eq!(m.max_out_degree, 1);
    // Tree paths run straight along the axis: zero detour.
    assert_eq!(m.max_stretch, 1.0);
    assert_eq!(m.mean_stretch, 1.0);
    // Exactly one receiver at every hop count 1..=k.
    let mut expected_hist = vec![0usize; K + 1];
    for h in 1..=K {
        expected_hist[h] = 1;
    }
    assert_eq!(tree.hop_histogram(), expected_hist);
}

#[test]
fn saturated_binary_tree_metrics_match_closed_forms() {
    // A complete out-degree-2 tree over 7 co-located receivers at (1, 0):
    //
    //   source -> 0 -> {1, 2}, 1 -> {3, 4}, 2 -> {5, 6}
    //
    // Only the source->0 edge has weight (1); all in-tree edges connect
    // coincident points and weigh 0, so every statistic is exact.
    let points = vec![Point2::new([1.0, 0.0]); 7];
    let mut b = TreeBuilder::new(Point2::ORIGIN, points).max_out_degree(2);
    b.attach_to_source(0).unwrap();
    b.attach(1, 0).unwrap();
    b.attach(2, 0).unwrap();
    b.attach(3, 1).unwrap();
    b.attach(4, 1).unwrap();
    b.attach(5, 2).unwrap();
    b.attach(6, 2).unwrap();
    // The tree is saturated: nodes 0..=2 are at the degree bound, so any
    // further attachment to them must fail.
    assert!(b.remaining_degree(0) == Some(0));
    let tree = b.finish().unwrap();
    let m = tree.metrics();
    assert_eq!(m.len, 7);
    // Everyone sits exactly distance 1 from the source.
    assert_eq!(m.radius, 1.0);
    assert_eq!(m.mean_depth, 1.0);
    // Node-to-node tree paths that avoid the source are free; the
    // diameter endpoints are the source and any receiver.
    assert_eq!(m.diameter, 1.0);
    assert_eq!(m.total_edge_weight, 1.0);
    // Hops: 1 for node 0, 2 for nodes 1-2, 3 for nodes 3-6.
    assert_eq!(m.max_hops, 3);
    assert_eq!(m.mean_hops, (1.0 + 2.0 * 2.0 + 3.0 * 4.0) / 7.0);
    assert_eq!(m.max_out_degree, 2);
    assert_eq!(m.max_stretch, 1.0);
    assert_eq!(m.mean_stretch, 1.0);
    assert_eq!(tree.hop_histogram(), vec![0, 1, 2, 4]);
    // 4 leaves, the source at out-degree 1, and three full inner nodes.
    assert_eq!(tree.fanout_histogram(), vec![4, 1, 3]);
    tree.validate(Some(2)).expect("structurally sound");
}
