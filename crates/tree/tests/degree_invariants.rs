//! Structural tree invariants checked from first principles — spanning,
//! acyclic, degree-respecting — for out-degree bounds 2, 4, and 6,
//! including the n = 0 and n = 1 edge cases. Unlike `MulticastTree::
//! validate`, these checks recompute everything from the parent/children
//! arrays, so a bug in the cached metrics cannot mask a structural bug.

use omt_geom::Point2;
use omt_tree::{MulticastTree, ParentRef, TreeBuilder};

/// Deterministic point cloud on a spiral: distinct radii and angles, no
/// randomness needed.
fn spiral_points(n: usize) -> Vec<Point2> {
    (0..n)
        .map(|i| {
            let t = 0.5 + i as f64 * 0.37;
            Point2::new([t.cos() * t * 0.1, t.sin() * t * 0.1])
        })
        .collect()
}

/// Greedy breadth-first construction: attach each node to the earliest
/// parent (source first, then node 0, 1, ...) with remaining degree
/// budget. Fills every parent to the bound before moving on, so the
/// degree limit is actually exercised.
fn build_saturated(n: usize, max_deg: u32) -> MulticastTree<2> {
    let mut b = TreeBuilder::new(Point2::ORIGIN, spiral_points(n)).max_out_degree(max_deg);
    let mut used_source = 0;
    let mut used = vec![0u32; n];
    for i in 0..n {
        if used_source < max_deg {
            b.attach_to_source(i).unwrap();
            used_source += 1;
        } else {
            let parent = (0..i).find(|&p| used[p] < max_deg).expect("parent budget");
            b.attach(i, parent).unwrap();
            used[parent] += 1;
        }
    }
    b.finish().unwrap()
}

/// The tree spans all `n` nodes: walking parent pointers from every node
/// reaches the source, and the union of children lists covers each node
/// exactly once.
fn assert_spanning(tree: &MulticastTree<2>) {
    let n = tree.len();
    let mut child_of = vec![0usize; n];
    for c in tree.source_children() {
        child_of[*c as usize] += 1;
    }
    for i in 0..n {
        for c in tree.children(i) {
            child_of[*c as usize] += 1;
        }
    }
    assert!(
        child_of.iter().all(|&k| k == 1),
        "child lists must cover every node exactly once: {child_of:?}"
    );
}

/// No cycles: following parent pointers from any node must reach the
/// source within `n` hops.
fn assert_acyclic(tree: &MulticastTree<2>) {
    let n = tree.len();
    for start in 0..n {
        let mut node = start;
        let mut hops = 0;
        loop {
            match tree.parent(node) {
                ParentRef::Source => break,
                ParentRef::Node(p) => {
                    node = p;
                    hops += 1;
                    assert!(hops <= n, "cycle through node {start}");
                }
            }
        }
    }
}

/// Every node (and the source) stays within the out-degree bound.
fn assert_degree_bound(tree: &MulticastTree<2>, max_deg: u32) {
    assert!(
        tree.source_out_degree() <= max_deg,
        "source degree {} > {max_deg}",
        tree.source_out_degree()
    );
    for i in 0..tree.len() {
        assert!(
            tree.out_degree(i) <= max_deg,
            "node {i} degree {} > {max_deg}",
            tree.out_degree(i)
        );
    }
}

#[test]
fn saturated_trees_uphold_all_invariants() {
    for max_deg in [2u32, 4, 6] {
        // Sizes straddling the points where parents saturate.
        for n in [0usize, 1, 2, 3, 7, 20, 63, 150] {
            let tree = build_saturated(n, max_deg);
            assert_eq!(tree.len(), n);
            assert_spanning(&tree);
            assert_acyclic(&tree);
            assert_degree_bound(&tree, max_deg);
            // The from-first-principles checks must agree with validate().
            tree.validate(Some(max_deg)).unwrap();
        }
    }
}

#[test]
fn empty_tree_has_no_nodes_and_zero_radius() {
    let tree = build_saturated(0, 2);
    assert_eq!(tree.len(), 0);
    assert!(tree.is_empty());
    assert!(tree.source_children().is_empty());
    assert_eq!(tree.radius(), 0.0);
    assert_eq!(tree.iter_bfs().count(), 0);
}

#[test]
fn singleton_tree_hangs_off_the_source() {
    for max_deg in [2u32, 4, 6] {
        let tree = build_saturated(1, max_deg);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.parent(0), ParentRef::Source);
        assert_eq!(tree.source_children(), &[0]);
        assert!(tree.children(0).is_empty());
        assert!((tree.radius() - tree.point(0).distance(&tree.source())).abs() < 1e-15);
    }
}

#[test]
fn degree_two_chain_is_forced_once_source_saturates() {
    // With bound 2, nodes 0 and 1 take the source slots; everyone else
    // must descend. The greedy fill packs parents in order: node 0 gets
    // children 2 and 3, node 1 gets 4 and 5, and so on.
    let tree = build_saturated(6, 2);
    assert_eq!(tree.source_children(), &[0, 1]);
    assert_eq!(tree.children(0), &[2, 3]);
    assert_eq!(tree.children(1), &[4, 5]);
    assert_degree_bound(&tree, 2);
}
