//! Incremental, degree-enforcing tree construction.

use omt_geom::Point;

use crate::error::TreeError;
use crate::tree::{MulticastTree, SOURCE_PARENT};

/// Builds a [`MulticastTree`] top-down, enforcing the out-degree budget and
/// acyclicity at every step.
///
/// Attachment must be *top-down*: a node can only become a parent after it
/// has itself been attached. This is how all the algorithms in this
/// workspace naturally operate, and it makes cycles unrepresentable.
///
/// # Examples
///
/// ```
/// use omt_geom::Point2;
/// use omt_tree::TreeBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pts = vec![Point2::new([1.0, 0.0]), Point2::new([1.0, 1.0])];
/// let mut b = TreeBuilder::new(Point2::ORIGIN, pts).max_out_degree(2);
/// b.attach_to_source(0)?;
/// b.attach(1, 0)?;
/// let tree = b.finish()?;
/// assert_eq!(tree.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TreeBuilder<const D: usize> {
    source: Point<D>,
    points: Vec<Point<D>>,
    parent: Vec<u32>,
    depth: Vec<f64>,
    hops: Vec<u32>,
    attached: Vec<bool>,
    out_degree: Vec<u32>,
    source_out_degree: u32,
    max_out_degree: Option<u32>,
    attached_count: usize,
}

impl<const D: usize> TreeBuilder<D> {
    /// Creates a builder for a tree over `points` rooted at `source`.
    pub fn new(source: Point<D>, points: Vec<Point<D>>) -> Self {
        let n = points.len();
        Self {
            source,
            points,
            parent: vec![SOURCE_PARENT; n],
            depth: vec![0.0; n],
            hops: vec![0; n],
            attached: vec![false; n],
            out_degree: vec![0; n],
            source_out_degree: 0,
            max_out_degree: None,
            attached_count: 0,
        }
    }

    /// Sets the maximum out-degree enforced on every node including the
    /// source. Unset means unbounded.
    #[must_use]
    pub fn max_out_degree(mut self, bound: u32) -> Self {
        self.max_out_degree = Some(bound);
        self
    }

    /// Number of receiver nodes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if there are no receiver nodes.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// How many nodes have been attached so far.
    pub fn attached_count(&self) -> usize {
        self.attached_count
    }

    /// Whether node `i` has been attached.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_attached(&self, i: usize) -> bool {
        self.attached[i]
    }

    /// Position of receiver `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn point(&self, i: usize) -> Point<D> {
        self.points[i]
    }

    /// The source position.
    pub fn source(&self) -> Point<D> {
        self.source
    }

    /// Current delay from the source to node `i`, if attached.
    pub fn depth_of(&self, i: usize) -> Option<f64> {
        self.attached
            .get(i)
            .copied()
            .unwrap_or(false)
            .then(|| self.depth[i])
    }

    /// Remaining out-degree budget of node `i` (`None` if unbounded).
    pub fn remaining_degree(&self, i: usize) -> Option<u32> {
        self.max_out_degree
            .map(|b| b.saturating_sub(self.out_degree[i]))
    }

    /// Remaining out-degree budget of the source (`None` if unbounded).
    pub fn remaining_source_degree(&self) -> Option<u32> {
        self.max_out_degree
            .map(|b| b.saturating_sub(self.source_out_degree))
    }

    fn check_index(&self, i: usize) -> Result<(), TreeError> {
        if i >= self.points.len() {
            Err(TreeError::NodeOutOfRange {
                index: i,
                len: self.points.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Attaches node `child` directly to the source.
    ///
    /// # Errors
    ///
    /// Fails if the index is out of range, the child is already attached, or
    /// the source's degree budget is exhausted.
    pub fn attach_to_source(&mut self, child: usize) -> Result<(), TreeError> {
        self.check_index(child)?;
        if self.attached[child] {
            return Err(TreeError::AlreadyAttached { index: child });
        }
        if let Some(bound) = self.max_out_degree {
            if self.source_out_degree >= bound {
                return Err(TreeError::DegreeExceeded {
                    parent: None,
                    max_out_degree: bound,
                });
            }
        }
        self.source_out_degree += 1;
        self.parent[child] = SOURCE_PARENT;
        self.depth[child] = self.source.distance(&self.points[child]);
        self.hops[child] = 1;
        self.attached[child] = true;
        self.attached_count += 1;
        Ok(())
    }

    /// Attaches node `child` under node `parent`.
    ///
    /// # Errors
    ///
    /// Fails if either index is out of range, the child is already attached,
    /// the parent is *not* attached yet (construction must be top-down),
    /// `child == parent`, or the parent's degree budget is exhausted.
    pub fn attach(&mut self, child: usize, parent: usize) -> Result<(), TreeError> {
        self.check_index(child)?;
        self.check_index(parent)?;
        if child == parent {
            return Err(TreeError::SelfLoop { index: child });
        }
        if self.attached[child] {
            return Err(TreeError::AlreadyAttached { index: child });
        }
        if !self.attached[parent] {
            return Err(TreeError::ParentNotAttached { parent });
        }
        if let Some(bound) = self.max_out_degree {
            if self.out_degree[parent] >= bound {
                return Err(TreeError::DegreeExceeded {
                    parent: Some(parent),
                    max_out_degree: bound,
                });
            }
        }
        self.out_degree[parent] += 1;
        self.parent[child] = parent as u32;
        self.depth[child] = self.depth[parent] + self.points[parent].distance(&self.points[child]);
        self.hops[child] = self.hops[parent] + 1;
        self.attached[child] = true;
        self.attached_count += 1;
        Ok(())
    }

    /// Finalizes the tree.
    ///
    /// # Errors
    ///
    /// Fails with [`TreeError::NotSpanning`] if any node is unattached.
    pub fn finish(self) -> Result<MulticastTree<D>, TreeError> {
        let n = self.points.len();
        if self.attached_count != n {
            let first = self
                .attached
                .iter()
                .position(|&a| !a)
                .expect("some node is unattached");
            return Err(TreeError::NotSpanning {
                unattached: n - self.attached_count,
                first,
            });
        }
        // Build the CSR children adjacency with a counting pass. Slot 0 is
        // the source, slot i+1 is node i.
        let mut child_offsets = vec![0u32; n + 2];
        child_offsets[1] = self.source_out_degree;
        child_offsets[2..n + 2].copy_from_slice(&self.out_degree);
        for i in 1..child_offsets.len() {
            child_offsets[i] += child_offsets[i - 1];
        }
        // Start cursor of each slot = offset of its range start.
        let mut cursor: Vec<u32> = child_offsets[..n + 1].to_vec();
        let mut child_list = vec![0u32; n];
        for child in 0..n {
            let p = self.parent[child];
            let slot = if p == SOURCE_PARENT {
                0
            } else {
                p as usize + 1
            };
            child_list[cursor[slot] as usize] = child as u32;
            cursor[slot] += 1;
        }
        Ok(MulticastTree {
            source: self.source,
            points: self.points,
            parent: self.parent,
            depth: self.depth,
            hops: self.hops,
            child_offsets,
            child_list,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::Point2;

    fn pts(n: usize) -> Vec<Point2> {
        (0..n).map(|i| Point2::new([i as f64 + 1.0, 0.0])).collect()
    }

    #[test]
    fn top_down_enforced() {
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts(3));
        assert_eq!(
            b.attach(1, 0),
            Err(TreeError::ParentNotAttached { parent: 0 })
        );
        b.attach_to_source(0).unwrap();
        b.attach(1, 0).unwrap();
        assert_eq!(b.attached_count(), 2);
    }

    #[test]
    fn degree_budget_enforced() {
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts(4)).max_out_degree(1);
        b.attach_to_source(0).unwrap();
        assert_eq!(
            b.attach_to_source(1),
            Err(TreeError::DegreeExceeded {
                parent: None,
                max_out_degree: 1
            })
        );
        b.attach(1, 0).unwrap();
        assert_eq!(
            b.attach(2, 0),
            Err(TreeError::DegreeExceeded {
                parent: Some(0),
                max_out_degree: 1
            })
        );
        b.attach(2, 1).unwrap();
        b.attach(3, 2).unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.max_out_degree(), 1);
        t.validate(Some(1)).unwrap();
    }

    #[test]
    fn double_attach_rejected() {
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts(2));
        b.attach_to_source(0).unwrap();
        assert_eq!(
            b.attach_to_source(0),
            Err(TreeError::AlreadyAttached { index: 0 })
        );
        b.attach_to_source(1).unwrap();
        assert_eq!(b.attach(1, 0), Err(TreeError::AlreadyAttached { index: 1 }));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts(1));
        assert_eq!(b.attach(0, 0), Err(TreeError::SelfLoop { index: 0 }));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts(1));
        assert_eq!(
            b.attach_to_source(5),
            Err(TreeError::NodeOutOfRange { index: 5, len: 1 })
        );
        b.attach_to_source(0).unwrap();
        assert_eq!(
            b.attach(9, 0),
            Err(TreeError::NodeOutOfRange { index: 9, len: 1 })
        );
    }

    #[test]
    fn unfinished_tree_rejected() {
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts(2));
        b.attach_to_source(1).unwrap();
        assert_eq!(
            b.finish(),
            Err(TreeError::NotSpanning {
                unattached: 1,
                first: 0
            })
        );
    }

    #[test]
    fn depths_accumulate() {
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts(3));
        b.attach_to_source(0).unwrap(); // at (1, 0), depth 1
        b.attach(1, 0).unwrap(); // at (2, 0), depth 2
        b.attach(2, 1).unwrap(); // at (3, 0), depth 3
        assert_eq!(b.depth_of(2), Some(3.0));
        assert_eq!(b.depth_of(1), Some(2.0));
        let t = b.finish().unwrap();
        assert_eq!(t.depth(2), 3.0);
        assert_eq!(t.hops(2), 3);
        t.validate(None).unwrap();
    }

    #[test]
    fn remaining_budgets() {
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts(2)).max_out_degree(2);
        assert_eq!(b.remaining_source_degree(), Some(2));
        b.attach_to_source(0).unwrap();
        assert_eq!(b.remaining_source_degree(), Some(1));
        assert_eq!(b.remaining_degree(0), Some(2));
        b.attach(1, 0).unwrap();
        assert_eq!(b.remaining_degree(0), Some(1));
        let unbounded = TreeBuilder::new(Point2::ORIGIN, pts(1));
        assert_eq!(unbounded.remaining_source_degree(), None);
    }

    #[test]
    fn csr_layout_matches_parents() {
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts(5));
        b.attach_to_source(2).unwrap();
        b.attach_to_source(4).unwrap();
        b.attach(0, 2).unwrap();
        b.attach(1, 2).unwrap();
        b.attach(3, 4).unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.source_children(), &[2, 4]);
        assert_eq!(t.children(2), &[0, 1]);
        assert_eq!(t.children(4), &[3]);
        assert_eq!(t.children(0), &[] as &[u32]);
        t.validate(Some(2)).unwrap();
    }
}
