//! SVG rendering of 2-D multicast trees — documentation and debugging aid.
//!
//! The renderer scales the tree's bounding box into the requested canvas,
//! draws edges as lines (stroke opacity by hop count, so the core stands
//! out), receivers as dots, and the source as a ring. Pure string
//! generation, no dependencies.

use std::fmt::Write as _;

use crate::tree::MulticastTree;

/// Options for [`MulticastTree::to_svg`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SvgOptions {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Radius of receiver dots in pixels.
    pub node_radius: f64,
    /// Whether deeper edges fade (visualizes the core vs. the fringe).
    pub fade_by_depth: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width: 800,
            height: 800,
            node_radius: 1.5,
            fade_by_depth: true,
        }
    }
}

impl MulticastTree<2> {
    /// Renders the tree as an SVG document string.
    ///
    /// ```
    /// use omt_geom::Point2;
    /// use omt_tree::TreeBuilder;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = TreeBuilder::new(Point2::ORIGIN, vec![Point2::new([1.0, 0.0])]);
    /// b.attach_to_source(0)?;
    /// let svg = b.finish()?.to_svg(&Default::default());
    /// assert!(svg.starts_with("<svg"));
    /// assert!(svg.contains("<line"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_svg(&self, options: &SvgOptions) -> String {
        let (w, h) = (f64::from(options.width), f64::from(options.height));
        // Bounding box over receivers and the source, padded 5%.
        let mut min = self.source().coords();
        let mut max = self.source().coords();
        for i in 0..self.len() {
            let c = self.point(i).coords();
            for a in 0..2 {
                min[a] = min[a].min(c[a]);
                max[a] = max[a].max(c[a]);
            }
        }
        let span_x = (max[0] - min[0]).max(1e-12);
        let span_y = (max[1] - min[1]).max(1e-12);
        let pad = 0.05;
        let sx = w * (1.0 - 2.0 * pad) / span_x;
        let sy = h * (1.0 - 2.0 * pad) / span_y;
        let scale = sx.min(sy);
        let tx = |x: f64| (x - min[0]) * scale + w * pad;
        // SVG y axis points down; flip.
        let ty = |y: f64| h - ((y - min[1]) * scale + h * pad);

        let max_hops = self.max_hops().max(1);
        let mut out = String::new();
        let _ = write!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
             viewBox=\"0 0 {} {}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n",
            options.width, options.height, options.width, options.height
        );
        for i in 0..self.len() {
            let p = self.point(i);
            let q = self.parent_point(i);
            let opacity = if options.fade_by_depth {
                (1.0 - 0.7 * f64::from(self.hops(i) - 1) / f64::from(max_hops)).max(0.2)
            } else {
                0.8
            };
            let _ = writeln!(
                out,
                "<line x1=\"{:.2}\" y1=\"{:.2}\" x2=\"{:.2}\" y2=\"{:.2}\" \
                 stroke=\"#2563eb\" stroke-width=\"0.8\" stroke-opacity=\"{opacity:.2}\"/>",
                tx(q.x()),
                ty(q.y()),
                tx(p.x()),
                ty(p.y()),
            );
        }
        for i in 0..self.len() {
            let p = self.point(i);
            let _ = writeln!(
                out,
                "<circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"{}\" fill=\"#111827\"/>",
                tx(p.x()),
                ty(p.y()),
                options.node_radius
            );
        }
        let s = self.source();
        let _ = writeln!(
            out,
            "<circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"{}\" fill=\"none\" \
             stroke=\"#dc2626\" stroke-width=\"2\"/>",
            tx(s.x()),
            ty(s.y()),
            options.node_radius * 4.0
        );
        out.push_str("</svg>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;
    use omt_geom::Point2;

    fn sample() -> MulticastTree<2> {
        let pts = vec![
            Point2::new([1.0, 0.0]),
            Point2::new([2.0, 0.5]),
            Point2::new([-1.0, -1.0]),
        ];
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts);
        b.attach_to_source(0).unwrap();
        b.attach(1, 0).unwrap();
        b.attach_to_source(2).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn svg_structure() {
        let svg = sample().to_svg(&SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<line").count(), 3);
        // 3 receiver dots + 1 source ring.
        assert_eq!(svg.matches("<circle").count(), 4);
    }

    #[test]
    fn coordinates_fit_canvas() {
        let svg = sample().to_svg(&SvgOptions {
            width: 100,
            height: 100,
            ..SvgOptions::default()
        });
        for token in svg.split_whitespace() {
            for attr in ["x1=", "y1=", "x2=", "y2=", "cx=", "cy="] {
                if let Some(v) = token.strip_prefix(attr) {
                    let v: f64 = v
                        .trim_matches(|c| c == '"' || c == '/' || c == '>')
                        .parse()
                        .unwrap();
                    assert!((-1.0..=101.0).contains(&v), "{token} out of canvas");
                }
            }
        }
    }

    #[test]
    fn degenerate_trees_render() {
        let empty = TreeBuilder::<2>::new(Point2::ORIGIN, vec![])
            .finish()
            .unwrap();
        let svg = empty.to_svg(&SvgOptions::default());
        assert!(svg.contains("</svg>"));
        // All points identical: no NaNs from the degenerate bounding box.
        let pts = vec![Point2::new([1.0, 1.0]); 3];
        let mut b = TreeBuilder::new(Point2::new([1.0, 1.0]), pts);
        for i in 0..3 {
            b.attach_to_source(i).unwrap();
        }
        let svg = b.finish().unwrap().to_svg(&SvgOptions::default());
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn fade_can_be_disabled() {
        let svg = sample().to_svg(&SvgOptions {
            fade_by_depth: false,
            ..SvgOptions::default()
        });
        assert!(svg.contains("stroke-opacity=\"0.80\""));
    }
}
