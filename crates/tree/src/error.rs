//! Error types for tree construction and validation.

use core::fmt;

/// Errors raised while building a multicast tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// A node index was out of range for the builder's point set.
    NodeOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of receiver nodes.
        len: usize,
    },
    /// The node is already attached to a parent.
    AlreadyAttached {
        /// The node that was attached twice.
        index: usize,
    },
    /// The designated parent has not been attached yet (construction must be
    /// top-down so the tree is acyclic by construction).
    ParentNotAttached {
        /// The unattached parent.
        parent: usize,
    },
    /// Attaching would exceed the parent's out-degree budget.
    DegreeExceeded {
        /// The parent whose budget is exhausted (`None` = the source).
        parent: Option<usize>,
        /// The configured maximum out-degree.
        max_out_degree: u32,
    },
    /// A node attached to itself.
    SelfLoop {
        /// The offending node.
        index: usize,
    },
    /// `finish` was called while some nodes were still unattached.
    NotSpanning {
        /// How many nodes have no parent.
        unattached: usize,
        /// The first unattached node index, for debugging.
        first: usize,
    },
    /// The requested node count exceeds the arena's `u32` id space.
    ///
    /// [`TreeArena`](crate::TreeArena) stores every link — parents, sibling
    /// pointers, CSR offsets — as [`crate::NodeId`] (`u32`), with
    /// `u32::MAX` reserved as the no-node/source sentinel. Inputs beyond
    /// that are rejected up front with this typed error instead of
    /// wrapping ids.
    CapacityExceeded {
        /// The requested number of nodes.
        nodes: usize,
        /// The largest supported node count.
        max: usize,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NodeOutOfRange { index, len } => {
                write!(f, "node index {index} out of range for {len} nodes")
            }
            Self::AlreadyAttached { index } => {
                write!(f, "node {index} is already attached to a parent")
            }
            Self::ParentNotAttached { parent } => {
                write!(f, "parent {parent} is not attached yet; build top-down")
            }
            Self::DegreeExceeded {
                parent,
                max_out_degree,
            } => match parent {
                Some(p) => write!(f, "out-degree of node {p} would exceed {max_out_degree}"),
                None => write!(f, "out-degree of the source would exceed {max_out_degree}"),
            },
            Self::SelfLoop { index } => write!(f, "node {index} cannot be its own parent"),
            Self::NotSpanning { unattached, first } => write!(
                f,
                "tree is not spanning: {unattached} unattached nodes (first: {first})"
            ),
            Self::CapacityExceeded { nodes, max } => write!(
                f,
                "{nodes} nodes exceed the arena's u32 id space (max {max})"
            ),
        }
    }
}

impl std::error::Error for TreeError {}

/// Errors found by [`crate::MulticastTree::validate`] — a from-scratch
/// re-verification intended for tests and debugging.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// A parent index points outside the node range.
    DanglingParent {
        /// The child with the bad parent pointer.
        child: usize,
        /// The out-of-range parent value.
        parent: usize,
    },
    /// Following parent pointers from `start` does not reach the source
    /// within `n` steps, indicating a cycle.
    Cycle {
        /// A node on or below the cycle.
        start: usize,
    },
    /// A node's out-degree exceeds the stated bound.
    DegreeViolation {
        /// The offending node (`None` = the source).
        node: Option<usize>,
        /// Its actual out-degree.
        degree: u32,
        /// The bound that was checked.
        bound: u32,
    },
    /// A cached depth disagrees with a freshly computed one.
    DepthMismatch {
        /// The node with the inconsistent depth.
        node: usize,
        /// The cached value.
        cached: f64,
        /// The recomputed value.
        computed: f64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DanglingParent { child, parent } => {
                write!(f, "node {child} has dangling parent index {parent}")
            }
            Self::Cycle { start } => write!(f, "cycle detected through node {start}"),
            Self::DegreeViolation {
                node,
                degree,
                bound,
            } => match node {
                Some(n) => write!(f, "node {n} has out-degree {degree} > bound {bound}"),
                None => write!(f, "source has out-degree {degree} > bound {bound}"),
            },
            Self::DepthMismatch {
                node,
                cached,
                computed,
            } => write!(
                f,
                "node {node} cached depth {cached} != recomputed {computed}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let msgs = [
            TreeError::NodeOutOfRange { index: 7, len: 3 }.to_string(),
            TreeError::AlreadyAttached { index: 1 }.to_string(),
            TreeError::ParentNotAttached { parent: 2 }.to_string(),
            TreeError::DegreeExceeded {
                parent: Some(4),
                max_out_degree: 6,
            }
            .to_string(),
            TreeError::DegreeExceeded {
                parent: None,
                max_out_degree: 2,
            }
            .to_string(),
            TreeError::SelfLoop { index: 5 }.to_string(),
            TreeError::NotSpanning {
                unattached: 3,
                first: 0,
            }
            .to_string(),
            TreeError::CapacityExceeded {
                nodes: 1 << 40,
                max: u32::MAX as usize - 1,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
        assert!(TreeError::NodeOutOfRange { index: 7, len: 3 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn validation_error_display() {
        let e = ValidationError::DegreeViolation {
            node: None,
            degree: 9,
            bound: 6,
        };
        assert!(e.to_string().contains("source"));
        let e = ValidationError::Cycle { start: 3 };
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TreeError>();
        assert_err::<ValidationError>();
    }
}
