//! Aggregate tree quality metrics.

use crate::tree::MulticastTree;

/// A summary of the quality measures the paper (and the wider overlay
/// multicast literature) reports for a tree.
///
/// Obtain one with [`MulticastTree::metrics`].
#[derive(Clone, Debug, PartialEq)]
pub struct TreeMetrics {
    /// Number of receivers.
    pub len: usize,
    /// Largest source-to-receiver delay ("Delay" in Table I; the paper's
    /// objective).
    pub radius: f64,
    /// Largest delay between any two nodes along tree edges (the
    /// minimum-diameter variant's objective).
    pub diameter: f64,
    /// Sum of all edge lengths (total unicast traffic per packet).
    pub total_edge_weight: f64,
    /// Mean source-to-receiver delay.
    pub mean_depth: f64,
    /// Largest hop count.
    pub max_hops: u32,
    /// Mean hop count.
    pub mean_hops: f64,
    /// Largest out-degree (including the source).
    pub max_out_degree: u32,
    /// Worst multiplicative stretch: `tree delay / direct Euclidean
    /// distance`, over receivers at positive distance from the source.
    pub max_stretch: f64,
    /// Mean multiplicative stretch.
    pub mean_stretch: f64,
}

impl<const D: usize> MulticastTree<D> {
    /// Computes the full [`TreeMetrics`] summary in two O(n) passes.
    ///
    /// ```
    /// use omt_geom::Point2;
    /// use omt_tree::TreeBuilder;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = TreeBuilder::new(Point2::ORIGIN, vec![Point2::new([1.0, 0.0])]);
    /// b.attach_to_source(0)?;
    /// let m = b.finish()?.metrics();
    /// assert_eq!(m.radius, 1.0);
    /// assert_eq!(m.max_stretch, 1.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn metrics(&self) -> TreeMetrics {
        let n = self.len();
        if n == 0 {
            return TreeMetrics {
                len: 0,
                radius: 0.0,
                diameter: 0.0,
                total_edge_weight: 0.0,
                mean_depth: 0.0,
                max_hops: 0,
                mean_hops: 0.0,
                max_out_degree: 0,
                max_stretch: 0.0,
                mean_stretch: 0.0,
            };
        }
        let mut depth_sum = 0.0;
        let mut hop_sum = 0u64;
        let mut weight_sum = 0.0;
        let mut max_stretch = 0.0_f64;
        let mut stretch_sum = 0.0;
        let mut stretch_count = 0usize;
        for i in 0..n {
            depth_sum += self.depth(i);
            hop_sum += u64::from(self.hops(i));
            weight_sum += self.edge_weight(i);
            let direct = self.source().distance(&self.point(i));
            if direct > 0.0 {
                let s = self.depth(i) / direct;
                max_stretch = max_stretch.max(s);
                stretch_sum += s;
                stretch_count += 1;
            }
        }
        TreeMetrics {
            len: n,
            radius: self.radius(),
            diameter: self.diameter(),
            total_edge_weight: weight_sum,
            mean_depth: depth_sum / n as f64,
            max_hops: self.max_hops(),
            mean_hops: hop_sum as f64 / n as f64,
            max_out_degree: self.max_out_degree(),
            max_stretch,
            mean_stretch: if stretch_count == 0 {
                0.0
            } else {
                stretch_sum / stretch_count as f64
            },
        }
    }

    /// Histogram of hop counts: entry `h` is the number of receivers exactly
    /// `h` hops from the source (entry 0 is always 0 for nonempty trees).
    pub fn hop_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_hops() as usize + 1];
        for i in 0..self.len() {
            hist[self.hops(i) as usize] += 1;
        }
        hist
    }

    /// Histogram of out-degrees over receivers **and** the source: entry `d`
    /// is the number of nodes with out-degree exactly `d`.
    pub fn fanout_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_out_degree() as usize + 1];
        hist[self.source_out_degree() as usize] += 1;
        for i in 0..self.len() {
            hist[self.out_degree(i) as usize] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use crate::TreeBuilder;
    use omt_geom::Point2;

    fn chain(n: usize) -> crate::MulticastTree<2> {
        let pts: Vec<Point2> = (1..=n).map(|i| Point2::new([i as f64, 0.0])).collect();
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts);
        if n > 0 {
            b.attach_to_source(0).unwrap();
            for i in 1..n {
                b.attach(i, i - 1).unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn chain_metrics() {
        let m = chain(4).metrics();
        assert_eq!(m.len, 4);
        assert_eq!(m.radius, 4.0);
        assert_eq!(m.diameter, 4.0);
        assert_eq!(m.total_edge_weight, 4.0);
        assert_eq!(m.max_hops, 4);
        assert!((m.mean_depth - 2.5).abs() < 1e-12);
        assert!((m.mean_hops - 2.5).abs() < 1e-12);
        assert_eq!(m.max_out_degree, 1);
        // Collinear chain: every delay equals the direct distance.
        assert!((m.max_stretch - 1.0).abs() < 1e-12);
        assert!((m.mean_stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stretch_detects_detours() {
        // Node 1 sits next to the source but is attached through node 0.
        let pts = vec![Point2::new([1.0, 0.0]), Point2::new([0.1, 0.0])];
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts);
        b.attach_to_source(0).unwrap();
        b.attach(1, 0).unwrap();
        let m = b.finish().unwrap().metrics();
        // Delay to node 1 = 1.0 + 0.9 = 1.9 over direct 0.1 -> stretch 19.
        assert!((m.max_stretch - 19.0).abs() < 1e-9);
    }

    #[test]
    fn histograms() {
        let t = chain(3);
        assert_eq!(t.hop_histogram(), vec![0, 1, 1, 1]);
        // Source and two interior nodes have out-degree 1; the leaf has 0.
        assert_eq!(t.fanout_histogram(), vec![1, 3]);
    }

    #[test]
    fn empty_metrics() {
        let t = TreeBuilder::<2>::new(Point2::ORIGIN, vec![])
            .finish()
            .unwrap();
        let m = t.metrics();
        assert_eq!(m.len, 0);
        assert_eq!(m.radius, 0.0);
        assert_eq!(t.hop_histogram(), vec![0]);
        assert_eq!(t.fanout_histogram(), vec![1]);
    }

    #[test]
    fn node_at_source_position_has_no_stretch_entry() {
        let pts = vec![Point2::ORIGIN, Point2::new([1.0, 0.0])];
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts);
        b.attach_to_source(0).unwrap();
        b.attach_to_source(1).unwrap();
        let m = b.finish().unwrap().metrics();
        assert_eq!(m.max_stretch, 1.0);
        assert_eq!(m.mean_stretch, 1.0);
    }
}
