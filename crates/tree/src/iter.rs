//! Tree traversal iterators.

use std::collections::VecDeque;

use crate::tree::MulticastTree;

/// Breadth-first traversal over receiver indices, starting from the
/// source's children. Produced by
/// [`MulticastTree::iter_bfs`](crate::MulticastTree::iter_bfs).
#[derive(Clone, Debug)]
pub struct Bfs<'a, const D: usize> {
    tree: &'a MulticastTree<D>,
    queue: VecDeque<u32>,
}

impl<'a, const D: usize> Bfs<'a, D> {
    pub(crate) fn new(tree: &'a MulticastTree<D>) -> Self {
        Self {
            tree,
            queue: tree.source_children().iter().copied().collect(),
        }
    }
}

impl<const D: usize> Iterator for Bfs<'_, D> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let u = self.queue.pop_front()?;
        self.queue.extend(self.tree.children(u as usize));
        Some(u as usize)
    }
}

/// Depth-first (pre-order) traversal over receiver indices. Produced by
/// [`MulticastTree::iter_dfs`](crate::MulticastTree::iter_dfs).
#[derive(Clone, Debug)]
pub struct Dfs<'a, const D: usize> {
    tree: &'a MulticastTree<D>,
    stack: Vec<u32>,
}

impl<'a, const D: usize> Dfs<'a, D> {
    pub(crate) fn new(tree: &'a MulticastTree<D>) -> Self {
        let mut stack: Vec<u32> = tree.source_children().to_vec();
        stack.reverse();
        Self { tree, stack }
    }
}

impl<const D: usize> Iterator for Dfs<'_, D> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let u = self.stack.pop()?;
        let children = self.tree.children(u as usize);
        self.stack.extend(children.iter().rev());
        Some(u as usize)
    }
}

/// Walks from a node up to (but not including) the source. Produced by
/// [`MulticastTree::path_to_source`](crate::MulticastTree::path_to_source).
#[derive(Clone, Debug)]
pub struct PathToSource<'a, const D: usize> {
    tree: &'a MulticastTree<D>,
    next: Option<usize>,
}

impl<'a, const D: usize> PathToSource<'a, D> {
    pub(crate) fn new(tree: &'a MulticastTree<D>, start: usize) -> Self {
        Self {
            tree,
            next: Some(start),
        }
    }
}

impl<const D: usize> Iterator for PathToSource<'_, D> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let u = self.next?;
        self.next = match self.tree.parent(u) {
            crate::ParentRef::Source => None,
            crate::ParentRef::Node(p) => Some(p),
        };
        Some(u)
    }
}

#[cfg(test)]
mod tests {
    use crate::TreeBuilder;
    use omt_geom::Point2;

    /// Chain 0 -> 1 under the source plus a sibling 2:
    ///
    /// ```text
    ///   source -> 0 -> 1
    ///          -> 2
    /// ```
    fn tree() -> crate::MulticastTree<2> {
        let pts = vec![
            Point2::new([1.0, 0.0]),
            Point2::new([2.0, 0.0]),
            Point2::new([0.0, 1.0]),
        ];
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts);
        b.attach_to_source(0).unwrap();
        b.attach_to_source(2).unwrap();
        b.attach(1, 0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn bfs_visits_level_by_level() {
        let t = tree();
        let order: Vec<usize> = t.iter_bfs().collect();
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn dfs_preorder() {
        let t = tree();
        let order: Vec<usize> = t.iter_dfs().collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn traversals_visit_every_node_once() {
        let t = tree();
        let mut bfs: Vec<usize> = t.iter_bfs().collect();
        let mut dfs: Vec<usize> = t.iter_dfs().collect();
        bfs.sort_unstable();
        dfs.sort_unstable();
        assert_eq!(bfs, vec![0, 1, 2]);
        assert_eq!(dfs, vec![0, 1, 2]);
    }

    #[test]
    fn path_to_source() {
        let t = tree();
        let path: Vec<usize> = t.path_to_source(1).collect();
        assert_eq!(path, vec![1, 0]);
        let path: Vec<usize> = t.path_to_source(2).collect();
        assert_eq!(path, vec![2]);
    }

    #[test]
    fn empty_tree_traversals() {
        let t = TreeBuilder::<2>::new(Point2::ORIGIN, vec![])
            .finish()
            .unwrap();
        assert_eq!(t.iter_bfs().count(), 0);
        assert_eq!(t.iter_dfs().count(), 0);
    }
}
