//! Arena-style tree construction over borrowed coordinate arrays.
//!
//! [`TreeArena`] is the million-scale twin of [`crate::TreeBuilder`]: instead of
//! owning a `Vec<Point<D>>`, it borrows one flat `f64` slice per coordinate
//! axis (the structure-of-arrays layout of `omt_geom::PointStore2` /
//! `PointStore3`) and preallocates every per-node array —
//! `parent`/`depth`/`hops`/`out_degree` plus an intrusive
//! `first_child`/`next_sibling` sibling list — in one shot from `n`. No
//! allocation happens per attachment, and the only full `Vec<Point<D>>` copy
//! is materialized once, at [`TreeArena::into_tree`] time, when the finished
//! [`MulticastTree`] needs to own its geometry.
//!
//! Every link array holds [`NodeId`] (`u32`) values, so the arena carries
//! five 4-byte words plus one 8-byte depth word per node; inputs beyond the
//! `u32` id space are rejected up front by [`check_node_capacity`].
//!
//! # Shared-reference parallel fill
//!
//! The per-node arrays are stored as atomics (`AtomicU32`, plus `AtomicU64`
//! holding `f64` bits for depths) and every access uses `Relaxed` ordering.
//! This is not for synchronization — cross-thread visibility comes entirely
//! from the spawn/join edges of `std::thread::scope` in `omt-par` — but to
//! let disjoint regions of one arena be filled concurrently through `&self`
//! in 100% safe Rust ([`TreeArena::attach_parallel`],
//! [`TreeArena::attach_to_source_parallel`]). On mainstream hardware a
//! relaxed atomic load/store compiles to the same plain move as a
//! non-atomic access, so the sequential path pays nothing. Callers of the
//! parallel methods own the partitioning argument: concurrent attachments
//! must target disjoint child sets and never share a parent row. Getting
//! that wrong produces nondeterministic links — caught by the parity and
//! validation suites — but never undefined behavior, because no `unsafe`
//! is involved (`omt-tree` is `#![forbid(unsafe_code)]`).
//!
//! The attachment semantics — validation order, error variants, degree
//! accounting, and the floating-point expressions for delays — are mirrored
//! from [`crate::TreeBuilder`] operation-for-operation, so a sequence of
//! attachments performed against a `TreeArena` produces a tree bit-identical
//! to the same sequence against a `TreeBuilder` over the same coordinates.
//! The parity suite in `omt-core` (`tests/arena_parity.rs`) holds both paths
//! to that contract end-to-end, across thread counts.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};

use omt_geom::Point;

use crate::error::TreeError;
use crate::tree::{MulticastTree, NodeId, SOURCE_PARENT};

/// Sentinel for "no node" in the intrusive sibling list.
const NO_NODE: NodeId = NodeId::MAX;

/// Largest node count a [`TreeArena`] supports: `u32::MAX - 1`.
///
/// Ids live in [`NodeId`] (`u32`) with `NodeId::MAX` reserved as the
/// no-node/source sentinel, and cumulative CSR offsets reach `n`, so `n`
/// itself must stay strictly below the sentinel.
pub const MAX_NODES: usize = (u32::MAX - 1) as usize;

/// Checks that `n` nodes fit the arena's `u32` id space.
///
/// Grid builders call this before allocating anything so oversized inputs
/// surface as a typed error instead of wrapped ids.
///
/// # Errors
///
/// Returns [`TreeError::CapacityExceeded`] if `n > MAX_NODES`.
pub fn check_node_capacity(n: usize) -> Result<(), TreeError> {
    if n > MAX_NODES {
        Err(TreeError::CapacityExceeded {
            nodes: n,
            max: MAX_NODES,
        })
    } else {
        Ok(())
    }
}

fn clone_atomic_u32(v: &[AtomicU32]) -> Vec<AtomicU32> {
    v.iter().map(|a| AtomicU32::new(a.load(Relaxed))).collect()
}

/// Preallocated, allocation-free-per-attachment tree builder over borrowed
/// structure-of-arrays coordinates.
///
/// `coords[d][i]` is the `d`-th Cartesian coordinate of receiver `i`; all
/// `D` slices must have equal length. Unlike [`crate::TreeBuilder`] there is no
/// per-node `Point` storage: points are reassembled on demand from the
/// borrowed columns.
///
/// In addition to the parent-array bookkeeping shared with `TreeBuilder`,
/// the arena maintains an intrusive first-child/next-sibling list updated
/// in O(1) per attachment (children are prepended, so the list enumerates
/// a node's children newest-first). The final CSR child layout produced by
/// [`TreeArena::into_tree`] is derived from the parent array alone, exactly
/// like [`crate::TreeBuilder::finish`], so the sibling list never influences the
/// finished tree.
///
/// Disjoint regions of one arena can be filled concurrently through shared
/// references — see the [module docs](crate::arena) for the contract and
/// [`TreeArena::attach_parallel`] for the entry point.
///
/// # Examples
///
/// ```
/// use omt_tree::TreeArena;
/// use omt_geom::Point2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let xs = [1.0, 1.0];
/// let ys = [0.0, 1.0];
/// let mut arena = TreeArena::new(Point2::ORIGIN, [&xs, &ys]).max_out_degree(2);
/// arena.attach_to_source(0)?;
/// arena.attach(1, 0)?;
/// assert_eq!(arena.children_newest_first(Some(0)).collect::<Vec<_>>(), [1]);
/// let tree = arena.into_tree()?;
/// assert_eq!(tree.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TreeArena<'a, const D: usize> {
    source: Point<D>,
    coords: [&'a [f64]; D],
    parent: Vec<AtomicU32>,
    /// Source-to-node delays as `f64` bit patterns (`AtomicU64` so the
    /// parallel fill can write them through `&self`).
    depth_bits: Vec<AtomicU64>,
    hops: Vec<AtomicU32>,
    out_degree: Vec<AtomicU32>,
    first_child: Vec<AtomicU32>,
    next_sibling: Vec<AtomicU32>,
    source_first_child: AtomicU32,
    source_out_degree: AtomicU32,
    max_out_degree: Option<u32>,
    attached_count: usize,
}

impl<const D: usize> Clone for TreeArena<'_, D> {
    fn clone(&self) -> Self {
        Self {
            source: self.source,
            coords: self.coords,
            parent: clone_atomic_u32(&self.parent),
            depth_bits: self
                .depth_bits
                .iter()
                .map(|a| AtomicU64::new(a.load(Relaxed)))
                .collect(),
            hops: clone_atomic_u32(&self.hops),
            out_degree: clone_atomic_u32(&self.out_degree),
            first_child: clone_atomic_u32(&self.first_child),
            next_sibling: clone_atomic_u32(&self.next_sibling),
            source_first_child: AtomicU32::new(self.source_first_child.load(Relaxed)),
            source_out_degree: AtomicU32::new(self.source_out_degree.load(Relaxed)),
            max_out_degree: self.max_out_degree,
            attached_count: self.attached_count,
        }
    }
}

impl<'a, const D: usize> TreeArena<'a, D> {
    /// Creates an arena for a tree over the borrowed coordinate columns,
    /// rooted at `source`. All per-node arrays are allocated here, sized
    /// exactly for `n = coords[0].len()`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate slices have unequal lengths, or if `n`
    /// exceeds [`MAX_NODES`] (builders that accept untrusted sizes should
    /// call [`check_node_capacity`] first and surface the typed error).
    #[must_use]
    pub fn new(source: Point<D>, coords: [&'a [f64]; D]) -> Self {
        let n = coords[0].len();
        assert!(
            coords.iter().all(|c| c.len() == n),
            "coordinate columns must have equal lengths"
        );
        assert!(
            check_node_capacity(n).is_ok(),
            "node count {n} exceeds the arena's u32 id space (max {MAX_NODES})"
        );
        Self {
            source,
            coords,
            parent: (0..n).map(|_| AtomicU32::new(SOURCE_PARENT)).collect(),
            depth_bits: (0..n).map(|_| AtomicU64::new(0)).collect(),
            hops: (0..n).map(|_| AtomicU32::new(0)).collect(),
            out_degree: (0..n).map(|_| AtomicU32::new(0)).collect(),
            first_child: (0..n).map(|_| AtomicU32::new(NO_NODE)).collect(),
            next_sibling: (0..n).map(|_| AtomicU32::new(NO_NODE)).collect(),
            source_first_child: AtomicU32::new(NO_NODE),
            source_out_degree: AtomicU32::new(0),
            max_out_degree: None,
            attached_count: 0,
        }
    }

    /// Sets the maximum out-degree enforced on every node including the
    /// source. Unset means unbounded.
    #[must_use]
    pub fn max_out_degree(mut self, bound: u32) -> Self {
        self.max_out_degree = Some(bound);
        self
    }

    /// Number of receiver nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if there are no receiver nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// How many nodes have been attached so far.
    ///
    /// The parallel attachment methods do not update this counter (it would
    /// be the one contended word in an otherwise coordination-free fill);
    /// after a parallel phase the driver folds in the statically known
    /// attachment count via [`TreeArena::add_attached`].
    #[must_use]
    pub fn attached_count(&self) -> usize {
        self.attached_count
    }

    /// Records `n` attachments performed through the parallel methods.
    ///
    /// The spanning check in [`TreeArena::into_tree`] trusts this total, so
    /// callers must pass exactly the number of successful
    /// [`TreeArena::attach_parallel`] / [`TreeArena::attach_to_source_parallel`]
    /// calls since the last update.
    pub fn add_attached(&mut self, n: usize) {
        self.attached_count += n;
    }

    /// Whether node `i` has been attached.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn is_attached(&self, i: usize) -> bool {
        // hops == 0 exactly for unattached nodes: every attachment sets
        // hops >= 1, so no separate `attached` array is carried.
        self.hops[i].load(Relaxed) > 0
    }

    /// Position of receiver `i`, reassembled from the coordinate columns.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn point(&self, i: usize) -> Point<D> {
        Point::new(core::array::from_fn(|d| self.coords[d][i]))
    }

    /// The source position.
    #[must_use]
    pub fn source(&self) -> Point<D> {
        self.source
    }

    /// Current delay from the source to node `i`, if attached.
    #[must_use]
    pub fn depth_of(&self, i: usize) -> Option<f64> {
        (self.hops.get(i).map_or(0, |h| h.load(Relaxed)) > 0)
            .then(|| f64::from_bits(self.depth_bits[i].load(Relaxed)))
    }

    /// Iterates over the children of `parent` (`None` = the source) in
    /// reverse attachment order, via the intrusive sibling list.
    ///
    /// Children are prepended on attach, so the most recently attached
    /// child comes first. This is the O(1)-maintenance view used while the
    /// tree is still under construction; the finished tree's CSR layout
    /// ([`MulticastTree::children`]) lists children in index order instead.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is `Some(i)` with `i` out of range.
    pub fn children_newest_first(&self, parent: Option<usize>) -> impl Iterator<Item = usize> + '_ {
        let head = match parent {
            None => self.source_first_child.load(Relaxed),
            Some(p) => self.first_child[p].load(Relaxed),
        };
        let mut cursor = head;
        core::iter::from_fn(move || {
            if cursor == NO_NODE {
                return None;
            }
            let node = cursor as usize;
            cursor = self.next_sibling[node].load(Relaxed);
            Some(node)
        })
    }

    fn check_index(&self, i: usize) -> Result<(), TreeError> {
        if i >= self.parent.len() {
            Err(TreeError::NodeOutOfRange {
                index: i,
                len: self.parent.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Attaches node `child` directly to the source.
    ///
    /// # Errors
    ///
    /// Fails if the index is out of range, the child is already attached, or
    /// the source's degree budget is exhausted — the same conditions, checked
    /// in the same order, as [`TreeBuilder::attach_to_source`].
    ///
    /// [`TreeBuilder::attach_to_source`]: crate::TreeBuilder::attach_to_source
    pub fn attach_to_source(&mut self, child: usize) -> Result<(), TreeError> {
        self.attach_to_source_parallel(child)?;
        self.attached_count += 1;
        Ok(())
    }

    /// Attaches node `child` under node `parent`.
    ///
    /// # Errors
    ///
    /// Fails if either index is out of range, `child == parent`, the child
    /// is already attached, the parent is not attached yet, or the parent's
    /// degree budget is exhausted — the same conditions, checked in the same
    /// order, as [`TreeBuilder::attach`].
    ///
    /// [`TreeBuilder::attach`]: crate::TreeBuilder::attach
    pub fn attach(&mut self, child: usize, parent: usize) -> Result<(), TreeError> {
        self.attach_parallel(child, parent)?;
        self.attached_count += 1;
        Ok(())
    }

    /// Attaches node `child` directly to the source through a shared
    /// reference, for use inside a parallel fill.
    ///
    /// Identical to [`TreeArena::attach_to_source`] — same validation order,
    /// same stores, same floating-point expressions — except that
    /// [`TreeArena::attached_count`] is not updated (see
    /// [`TreeArena::add_attached`]). Concurrent callers must partition the
    /// work so that at most one thread attaches children to the source; the
    /// grid builders satisfy this by giving the whole ring-0 cell to a
    /// single job.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TreeArena::attach_to_source`].
    pub fn attach_to_source_parallel(&self, child: usize) -> Result<(), TreeError> {
        self.check_index(child)?;
        if self.is_attached(child) {
            return Err(TreeError::AlreadyAttached { index: child });
        }
        if let Some(bound) = self.max_out_degree {
            if self.source_out_degree.load(Relaxed) >= bound {
                return Err(TreeError::DegreeExceeded {
                    parent: None,
                    max_out_degree: bound,
                });
            }
        }
        self.source_out_degree
            .store(self.source_out_degree.load(Relaxed) + 1, Relaxed);
        self.parent[child].store(SOURCE_PARENT, Relaxed);
        let d = self.source.distance(&self.point(child));
        self.depth_bits[child].store(d.to_bits(), Relaxed);
        self.hops[child].store(1, Relaxed);
        self.next_sibling[child].store(self.source_first_child.load(Relaxed), Relaxed);
        self.source_first_child.store(child as u32, Relaxed);
        Ok(())
    }

    /// Attaches node `child` under node `parent` through a shared
    /// reference, for use inside a parallel fill.
    ///
    /// Identical to [`TreeArena::attach`] — same validation order, same
    /// stores, same floating-point expressions — except that
    /// [`TreeArena::attached_count`] is not updated (see
    /// [`TreeArena::add_attached`]). Concurrent callers own the
    /// disjointness argument: no two threads may attach the same child, and
    /// no two threads may concurrently attach children under the same
    /// parent (each attachment reads and writes the parent's degree and
    /// sibling head). The grid builders satisfy both by construction —
    /// every cell job's write set is its own counting-sort window plus that
    /// window's already-attached representative, and windows are disjoint.
    /// A violated contract yields nondeterministic links (caught by the
    /// parity suites), never undefined behavior.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TreeArena::attach`].
    pub fn attach_parallel(&self, child: usize, parent: usize) -> Result<(), TreeError> {
        self.check_index(child)?;
        self.check_index(parent)?;
        if child == parent {
            return Err(TreeError::SelfLoop { index: child });
        }
        if self.is_attached(child) {
            return Err(TreeError::AlreadyAttached { index: child });
        }
        if !self.is_attached(parent) {
            return Err(TreeError::ParentNotAttached { parent });
        }
        if let Some(bound) = self.max_out_degree {
            if self.out_degree[parent].load(Relaxed) >= bound {
                return Err(TreeError::DegreeExceeded {
                    parent: Some(parent),
                    max_out_degree: bound,
                });
            }
        }
        self.out_degree[parent].store(self.out_degree[parent].load(Relaxed) + 1, Relaxed);
        self.parent[child].store(parent as u32, Relaxed);
        let d = f64::from_bits(self.depth_bits[parent].load(Relaxed))
            + self.point(parent).distance(&self.point(child));
        self.depth_bits[child].store(d.to_bits(), Relaxed);
        self.hops[child].store(self.hops[parent].load(Relaxed) + 1, Relaxed);
        self.next_sibling[child].store(self.first_child[parent].load(Relaxed), Relaxed);
        self.first_child[parent].store(child as u32, Relaxed);
        Ok(())
    }

    /// Finalizes the tree, materializing the owned point vector and the CSR
    /// child layout.
    ///
    /// Peak memory at finish time is the binding constraint at n in the
    /// millions, so the conversion is sequenced to keep transients minimal:
    /// the construction-only sibling list is freed first, the degree counts
    /// are folded into the CSR offsets and freed, each remaining atomic
    /// array is converted to its plain twin one at a time, and the child
    /// scatter uses the offset array itself as its cursor (restored with a
    /// one-slot shift) instead of a cloned cursor array.
    ///
    /// # Errors
    ///
    /// Fails with [`TreeError::NotSpanning`] if any node is unattached.
    pub fn into_tree(self) -> Result<MulticastTree<D>, TreeError> {
        let Self {
            source,
            coords,
            parent,
            depth_bits,
            hops,
            out_degree,
            first_child,
            next_sibling,
            source_out_degree,
            attached_count,
            ..
        } = self;
        let n = parent.len();
        if attached_count != n {
            let first = hops
                .iter()
                .position(|h| h.load(Relaxed) == 0)
                .expect("some node is unattached");
            return Err(TreeError::NotSpanning {
                unattached: n - attached_count,
                first,
            });
        }
        drop(first_child);
        drop(next_sibling);
        // Build the CSR children adjacency with a counting pass. Slot 0 is
        // the source, slot i+1 is node i.
        let mut child_offsets = vec![0u32; n + 2];
        child_offsets[1] = source_out_degree.load(Relaxed);
        for (slot, deg) in child_offsets[2..].iter_mut().zip(&out_degree) {
            *slot = deg.load(Relaxed);
        }
        drop(out_degree);
        for i in 1..child_offsets.len() {
            child_offsets[i] += child_offsets[i - 1];
        }
        let parent_plain: Vec<u32> = parent.iter().map(|a| a.load(Relaxed)).collect();
        drop(parent);
        let depth: Vec<f64> = depth_bits
            .iter()
            .map(|a| f64::from_bits(a.load(Relaxed)))
            .collect();
        drop(depth_bits);
        let hops_plain: Vec<u32> = hops.iter().map(|a| a.load(Relaxed)).collect();
        drop(hops);
        // The one full point copy of the arena path: the finished tree owns
        // its geometry.
        let points: Vec<Point<D>> = (0..n)
            .map(|i| Point::new(core::array::from_fn(|d| coords[d][i])))
            .collect();
        // Scatter children using child_offsets[0..=n] as in-place cursors.
        let mut child_list = vec![0u32; n];
        for child in 0..n {
            let p = parent_plain[child];
            let slot = if p == SOURCE_PARENT {
                0
            } else {
                p as usize + 1
            };
            child_list[child_offsets[slot] as usize] = child as u32;
            child_offsets[slot] += 1;
        }
        // After the scatter, cursor[slot] == original offsets[slot + 1] for
        // every slot in 0..=n, so shifting right by one restores the offset
        // array exactly, without a cloned cursor.
        child_offsets.copy_within(0..n + 1, 1);
        child_offsets[0] = 0;
        Ok(MulticastTree {
            source,
            points,
            parent: parent_plain,
            depth,
            hops: hops_plain,
            child_offsets,
            child_list,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;
    use omt_geom::Point2;

    fn columns(n: usize) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i as f64 * 0.5) - 1.0).collect();
        (xs, ys)
    }

    fn points(xs: &[f64], ys: &[f64]) -> Vec<Point2> {
        xs.iter()
            .zip(ys)
            .map(|(&x, &y)| Point2::new([x, y]))
            .collect()
    }

    #[test]
    fn mirrors_builder_bit_for_bit() {
        let (xs, ys) = columns(8);
        let mut arena = TreeArena::new(Point2::ORIGIN, [&xs, &ys]).max_out_degree(3);
        let mut builder = TreeBuilder::new(Point2::ORIGIN, points(&xs, &ys)).max_out_degree(3);
        // A mixed attachment schedule: sources, chains, fans.
        let schedule: &[(usize, Option<usize>)] = &[
            (3, None),
            (0, Some(3)),
            (5, Some(3)),
            (1, Some(0)),
            (2, None),
            (4, Some(2)),
            (6, Some(4)),
            (7, Some(3)),
        ];
        for &(child, parent) in schedule {
            match parent {
                None => {
                    arena.attach_to_source(child).unwrap();
                    builder.attach_to_source(child).unwrap();
                }
                Some(p) => {
                    arena.attach(child, p).unwrap();
                    builder.attach(child, p).unwrap();
                }
            }
            assert_eq!(
                arena.depth_of(child).map(f64::to_bits),
                builder.depth_of(child).map(f64::to_bits)
            );
        }
        let a = arena.into_tree().unwrap();
        let b = builder.finish().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_parity_with_builder() {
        let (xs, ys) = columns(3);
        let mut arena = TreeArena::new(Point2::ORIGIN, [&xs, &ys]).max_out_degree(1);
        let mut builder = TreeBuilder::new(Point2::ORIGIN, points(&xs, &ys)).max_out_degree(1);
        assert_eq!(arena.attach(0, 0), builder.attach(0, 0)); // self-loop
        assert_eq!(arena.attach(1, 0), builder.attach(1, 0)); // parent not attached
        assert_eq!(arena.attach_to_source(9), builder.attach_to_source(9)); // range
        arena.attach_to_source(0).unwrap();
        builder.attach_to_source(0).unwrap();
        assert_eq!(arena.attach_to_source(1), builder.attach_to_source(1)); // source full
        assert_eq!(arena.attach(0, 1), builder.attach(0, 1)); // already attached
        arena.attach(1, 0).unwrap();
        builder.attach(1, 0).unwrap();
        assert_eq!(arena.attach(2, 0), builder.attach(2, 0)); // parent full
        assert_eq!(
            arena.clone().into_tree().unwrap_err(),
            builder.clone().finish().unwrap_err()
        ); // not spanning
    }

    #[test]
    fn sibling_list_enumerates_newest_first() {
        let (xs, ys) = columns(5);
        let mut arena = TreeArena::new(Point2::ORIGIN, [&xs, &ys]);
        arena.attach_to_source(2).unwrap();
        arena.attach_to_source(4).unwrap();
        arena.attach(0, 2).unwrap();
        arena.attach(1, 2).unwrap();
        arena.attach(3, 2).unwrap();
        assert_eq!(
            arena.children_newest_first(None).collect::<Vec<_>>(),
            [4, 2]
        );
        assert_eq!(
            arena.children_newest_first(Some(2)).collect::<Vec<_>>(),
            [3, 1, 0]
        );
        assert_eq!(
            arena.children_newest_first(Some(0)).count(),
            0,
            "leaf has no children"
        );
        // The finished CSR layout is index-ordered, independent of the
        // sibling list's reverse order.
        let tree = arena.into_tree().unwrap();
        assert_eq!(tree.source_children(), &[2, 4]);
        assert_eq!(tree.children(2), &[0, 1, 3]);
    }

    #[test]
    fn no_per_attachment_allocation_in_node_arrays() {
        let (xs, ys) = columns(32);
        let mut arena = TreeArena::new(Point2::ORIGIN, [&xs, &ys]);
        let parent_ptr = arena.parent.as_ptr();
        let sibling_ptr = arena.next_sibling.as_ptr();
        arena.attach_to_source(0).unwrap();
        for i in 1..32 {
            arena.attach(i, i - 1).unwrap();
        }
        assert_eq!(arena.parent.as_ptr(), parent_ptr);
        assert_eq!(arena.next_sibling.as_ptr(), sibling_ptr);
        assert_eq!(arena.attached_count(), 32);
    }

    /// The parallel attachment methods, run from actual threads over
    /// disjoint child windows, produce a tree bit-identical to the same
    /// attachments performed sequentially.
    #[test]
    fn parallel_fill_matches_sequential_bit_for_bit() {
        let (xs, ys) = columns(64);
        // Sequential reference: 4 source children, each the parent of a
        // window of 15 descendants attached as a chain-of-fans.
        let windows: Vec<(usize, Vec<usize>)> = (0..4)
            .map(|w| (w, ((4 + w * 15)..(4 + (w + 1) * 15)).collect()))
            .collect();
        let build_sequential = || {
            let mut arena = TreeArena::new(Point2::ORIGIN, [&xs, &ys]).max_out_degree(8);
            for w in 0..4 {
                arena.attach_to_source(w).unwrap();
            }
            for (w, members) in &windows {
                for (j, &m) in members.iter().enumerate() {
                    let parent = if j == 0 { *w } else { members[(j - 1) / 2] };
                    arena.attach(m, parent).unwrap();
                }
            }
            arena.into_tree().unwrap()
        };
        let sequential = build_sequential();

        let mut arena = TreeArena::new(Point2::ORIGIN, [&xs, &ys]).max_out_degree(8);
        for w in 0..4 {
            arena.attach_to_source(w).unwrap();
        }
        std::thread::scope(|scope| {
            for (w, members) in &windows {
                let arena = &arena;
                scope.spawn(move || {
                    for (j, &m) in members.iter().enumerate() {
                        let parent = if j == 0 { *w } else { members[(j - 1) / 2] };
                        arena.attach_parallel(m, parent).unwrap();
                    }
                });
            }
        });
        arena.add_attached(60);
        assert_eq!(arena.attached_count(), 64);
        let parallel = arena.into_tree().unwrap();
        assert_eq!(parallel, sequential);
        for i in 0..64 {
            assert_eq!(parallel.depth(i).to_bits(), sequential.depth(i).to_bits());
        }
    }

    #[test]
    fn capacity_guard_rejects_oversized_inputs() {
        assert_eq!(check_node_capacity(0), Ok(()));
        assert_eq!(check_node_capacity(MAX_NODES), Ok(()));
        // One past the cap, and the sentinel value itself, are both typed
        // errors — never a wrapped id.
        for n in [MAX_NODES + 1, u32::MAX as usize, u32::MAX as usize + 7] {
            assert_eq!(
                check_node_capacity(n),
                Err(TreeError::CapacityExceeded {
                    nodes: n,
                    max: MAX_NODES
                })
            );
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn unequal_columns_rejected() {
        let xs = [1.0, 2.0];
        let ys = [1.0];
        let _ = TreeArena::new(Point2::ORIGIN, [&xs[..], &ys[..]]);
    }

    #[test]
    fn empty_arena_finishes_to_empty_tree() {
        let arena: TreeArena<'_, 2> = TreeArena::new(Point2::ORIGIN, [&[], &[]]);
        let tree = arena.into_tree().unwrap();
        assert_eq!(tree.len(), 0);
    }
}
