//! Arena-style tree construction over borrowed coordinate arrays.
//!
//! [`TreeArena`] is the million-scale twin of [`crate::TreeBuilder`]: instead of
//! owning a `Vec<Point<D>>`, it borrows one flat `f64` slice per coordinate
//! axis (the structure-of-arrays layout of `omt_geom::PointStore2` /
//! `PointStore3`) and preallocates every per-node array —
//! `parent`/`depth`/`hops`/`out_degree` plus an intrusive
//! `first_child`/`next_sibling` sibling list — in one shot from `n`. No
//! allocation happens per attachment, and the only full `Vec<Point<D>>` copy
//! is materialized once, at [`TreeArena::into_tree`] time, when the finished
//! [`MulticastTree`] needs to own its geometry.
//!
//! The attachment semantics — validation order, error variants, degree
//! accounting, and the floating-point expressions for delays — are mirrored
//! from [`crate::TreeBuilder`] operation-for-operation, so a sequence of
//! attachments performed against a `TreeArena` produces a tree bit-identical
//! to the same sequence against a `TreeBuilder` over the same coordinates.
//! The parity suite in `omt-core` (`tests/arena_parity.rs`) holds both paths
//! to that contract end-to-end.

use omt_geom::Point;

use crate::error::TreeError;
use crate::tree::{MulticastTree, SOURCE_PARENT};

/// Sentinel for "no node" in the intrusive sibling list.
const NO_NODE: u32 = u32::MAX;

/// Preallocated, allocation-free-per-attachment tree builder over borrowed
/// structure-of-arrays coordinates.
///
/// `coords[d][i]` is the `d`-th Cartesian coordinate of receiver `i`; all
/// `D` slices must have equal length. Unlike [`crate::TreeBuilder`] there is no
/// per-node `Point` storage: points are reassembled on demand from the
/// borrowed columns.
///
/// In addition to the parent-array bookkeeping shared with `TreeBuilder`,
/// the arena maintains an intrusive first-child/next-sibling list updated
/// in O(1) per attachment (children are prepended, so the list enumerates
/// a node's children newest-first). The final CSR child layout produced by
/// [`TreeArena::into_tree`] is derived from the parent array alone, exactly
/// like [`crate::TreeBuilder::finish`], so the sibling list never influences the
/// finished tree.
///
/// # Examples
///
/// ```
/// use omt_tree::TreeArena;
/// use omt_geom::Point2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let xs = [1.0, 1.0];
/// let ys = [0.0, 1.0];
/// let mut arena = TreeArena::new(Point2::ORIGIN, [&xs, &ys]).max_out_degree(2);
/// arena.attach_to_source(0)?;
/// arena.attach(1, 0)?;
/// assert_eq!(arena.children_newest_first(Some(0)).collect::<Vec<_>>(), [1]);
/// let tree = arena.into_tree()?;
/// assert_eq!(tree.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TreeArena<'a, const D: usize> {
    source: Point<D>,
    coords: [&'a [f64]; D],
    parent: Vec<u32>,
    depth: Vec<f64>,
    hops: Vec<u32>,
    out_degree: Vec<u32>,
    first_child: Vec<u32>,
    next_sibling: Vec<u32>,
    source_first_child: u32,
    source_out_degree: u32,
    max_out_degree: Option<u32>,
    attached_count: usize,
}

impl<'a, const D: usize> TreeArena<'a, D> {
    /// Creates an arena for a tree over the borrowed coordinate columns,
    /// rooted at `source`. All per-node arrays are allocated here, sized
    /// exactly for `n = coords[0].len()`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate slices have unequal lengths.
    #[must_use]
    pub fn new(source: Point<D>, coords: [&'a [f64]; D]) -> Self {
        let n = coords[0].len();
        assert!(
            coords.iter().all(|c| c.len() == n),
            "coordinate columns must have equal lengths"
        );
        Self {
            source,
            coords,
            parent: vec![SOURCE_PARENT; n],
            depth: vec![0.0; n],
            hops: vec![0; n],
            out_degree: vec![0; n],
            first_child: vec![NO_NODE; n],
            next_sibling: vec![NO_NODE; n],
            source_first_child: NO_NODE,
            source_out_degree: 0,
            max_out_degree: None,
            attached_count: 0,
        }
    }

    /// Sets the maximum out-degree enforced on every node including the
    /// source. Unset means unbounded.
    #[must_use]
    pub fn max_out_degree(mut self, bound: u32) -> Self {
        self.max_out_degree = Some(bound);
        self
    }

    /// Number of receiver nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if there are no receiver nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// How many nodes have been attached so far.
    #[must_use]
    pub fn attached_count(&self) -> usize {
        self.attached_count
    }

    /// Whether node `i` has been attached.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn is_attached(&self, i: usize) -> bool {
        // hops == 0 exactly for unattached nodes: every attachment sets
        // hops >= 1, so no separate `attached` array is carried.
        self.hops[i] > 0
    }

    /// Position of receiver `i`, reassembled from the coordinate columns.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn point(&self, i: usize) -> Point<D> {
        Point::new(core::array::from_fn(|d| self.coords[d][i]))
    }

    /// The source position.
    #[must_use]
    pub fn source(&self) -> Point<D> {
        self.source
    }

    /// Current delay from the source to node `i`, if attached.
    #[must_use]
    pub fn depth_of(&self, i: usize) -> Option<f64> {
        (self.hops.get(i).copied().unwrap_or(0) > 0).then(|| self.depth[i])
    }

    /// Iterates over the children of `parent` (`None` = the source) in
    /// reverse attachment order, via the intrusive sibling list.
    ///
    /// Children are prepended on attach, so the most recently attached
    /// child comes first. This is the O(1)-maintenance view used while the
    /// tree is still under construction; the finished tree's CSR layout
    /// ([`MulticastTree::children`]) lists children in index order instead.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is `Some(i)` with `i` out of range.
    pub fn children_newest_first(&self, parent: Option<usize>) -> impl Iterator<Item = usize> + '_ {
        let head = match parent {
            None => self.source_first_child,
            Some(p) => self.first_child[p],
        };
        let mut cursor = head;
        core::iter::from_fn(move || {
            if cursor == NO_NODE {
                return None;
            }
            let node = cursor as usize;
            cursor = self.next_sibling[node];
            Some(node)
        })
    }

    fn check_index(&self, i: usize) -> Result<(), TreeError> {
        if i >= self.parent.len() {
            Err(TreeError::NodeOutOfRange {
                index: i,
                len: self.parent.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Attaches node `child` directly to the source.
    ///
    /// # Errors
    ///
    /// Fails if the index is out of range, the child is already attached, or
    /// the source's degree budget is exhausted — the same conditions, checked
    /// in the same order, as [`TreeBuilder::attach_to_source`].
    ///
    /// [`TreeBuilder::attach_to_source`]: crate::TreeBuilder::attach_to_source
    pub fn attach_to_source(&mut self, child: usize) -> Result<(), TreeError> {
        self.check_index(child)?;
        if self.is_attached(child) {
            return Err(TreeError::AlreadyAttached { index: child });
        }
        if let Some(bound) = self.max_out_degree {
            if self.source_out_degree >= bound {
                return Err(TreeError::DegreeExceeded {
                    parent: None,
                    max_out_degree: bound,
                });
            }
        }
        self.source_out_degree += 1;
        self.parent[child] = SOURCE_PARENT;
        self.depth[child] = self.source.distance(&self.point(child));
        self.hops[child] = 1;
        self.attached_count += 1;
        self.next_sibling[child] = self.source_first_child;
        self.source_first_child = child as u32;
        Ok(())
    }

    /// Attaches node `child` under node `parent`.
    ///
    /// # Errors
    ///
    /// Fails if either index is out of range, `child == parent`, the child
    /// is already attached, the parent is not attached yet, or the parent's
    /// degree budget is exhausted — the same conditions, checked in the same
    /// order, as [`TreeBuilder::attach`].
    ///
    /// [`TreeBuilder::attach`]: crate::TreeBuilder::attach
    pub fn attach(&mut self, child: usize, parent: usize) -> Result<(), TreeError> {
        self.check_index(child)?;
        self.check_index(parent)?;
        if child == parent {
            return Err(TreeError::SelfLoop { index: child });
        }
        if self.is_attached(child) {
            return Err(TreeError::AlreadyAttached { index: child });
        }
        if !self.is_attached(parent) {
            return Err(TreeError::ParentNotAttached { parent });
        }
        if let Some(bound) = self.max_out_degree {
            if self.out_degree[parent] >= bound {
                return Err(TreeError::DegreeExceeded {
                    parent: Some(parent),
                    max_out_degree: bound,
                });
            }
        }
        self.out_degree[parent] += 1;
        self.parent[child] = parent as u32;
        self.depth[child] = self.depth[parent] + self.point(parent).distance(&self.point(child));
        self.hops[child] = self.hops[parent] + 1;
        self.attached_count += 1;
        self.next_sibling[child] = self.first_child[parent];
        self.first_child[parent] = child as u32;
        Ok(())
    }

    /// Finalizes the tree, materializing the owned point vector and the CSR
    /// child layout.
    ///
    /// # Errors
    ///
    /// Fails with [`TreeError::NotSpanning`] if any node is unattached.
    pub fn into_tree(self) -> Result<MulticastTree<D>, TreeError> {
        let n = self.parent.len();
        if self.attached_count != n {
            let first = self
                .hops
                .iter()
                .position(|&h| h == 0)
                .expect("some node is unattached");
            return Err(TreeError::NotSpanning {
                unattached: n - self.attached_count,
                first,
            });
        }
        // The one full point copy of the arena path: the finished tree owns
        // its geometry.
        let points: Vec<Point<D>> = (0..n).map(|i| self.point(i)).collect();
        // Build the CSR children adjacency with a counting pass. Slot 0 is
        // the source, slot i+1 is node i.
        let mut child_offsets = vec![0u32; n + 2];
        child_offsets[1] = self.source_out_degree;
        child_offsets[2..n + 2].copy_from_slice(&self.out_degree);
        for i in 1..child_offsets.len() {
            child_offsets[i] += child_offsets[i - 1];
        }
        // Start cursor of each slot = offset of its range start.
        let mut cursor: Vec<u32> = child_offsets[..n + 1].to_vec();
        let mut child_list = vec![0u32; n];
        for child in 0..n {
            let p = self.parent[child];
            let slot = if p == SOURCE_PARENT {
                0
            } else {
                p as usize + 1
            };
            child_list[cursor[slot] as usize] = child as u32;
            cursor[slot] += 1;
        }
        Ok(MulticastTree {
            source: self.source,
            points,
            parent: self.parent,
            depth: self.depth,
            hops: self.hops,
            child_offsets,
            child_list,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;
    use omt_geom::Point2;

    fn columns(n: usize) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i as f64 * 0.5) - 1.0).collect();
        (xs, ys)
    }

    fn points(xs: &[f64], ys: &[f64]) -> Vec<Point2> {
        xs.iter()
            .zip(ys)
            .map(|(&x, &y)| Point2::new([x, y]))
            .collect()
    }

    #[test]
    fn mirrors_builder_bit_for_bit() {
        let (xs, ys) = columns(8);
        let mut arena = TreeArena::new(Point2::ORIGIN, [&xs, &ys]).max_out_degree(3);
        let mut builder = TreeBuilder::new(Point2::ORIGIN, points(&xs, &ys)).max_out_degree(3);
        // A mixed attachment schedule: sources, chains, fans.
        let schedule: &[(usize, Option<usize>)] = &[
            (3, None),
            (0, Some(3)),
            (5, Some(3)),
            (1, Some(0)),
            (2, None),
            (4, Some(2)),
            (6, Some(4)),
            (7, Some(3)),
        ];
        for &(child, parent) in schedule {
            match parent {
                None => {
                    arena.attach_to_source(child).unwrap();
                    builder.attach_to_source(child).unwrap();
                }
                Some(p) => {
                    arena.attach(child, p).unwrap();
                    builder.attach(child, p).unwrap();
                }
            }
            assert_eq!(
                arena.depth_of(child).map(f64::to_bits),
                builder.depth_of(child).map(f64::to_bits)
            );
        }
        let a = arena.into_tree().unwrap();
        let b = builder.finish().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_parity_with_builder() {
        let (xs, ys) = columns(3);
        let mut arena = TreeArena::new(Point2::ORIGIN, [&xs, &ys]).max_out_degree(1);
        let mut builder = TreeBuilder::new(Point2::ORIGIN, points(&xs, &ys)).max_out_degree(1);
        assert_eq!(arena.attach(0, 0), builder.attach(0, 0)); // self-loop
        assert_eq!(arena.attach(1, 0), builder.attach(1, 0)); // parent not attached
        assert_eq!(arena.attach_to_source(9), builder.attach_to_source(9)); // range
        arena.attach_to_source(0).unwrap();
        builder.attach_to_source(0).unwrap();
        assert_eq!(arena.attach_to_source(1), builder.attach_to_source(1)); // source full
        assert_eq!(arena.attach(0, 1), builder.attach(0, 1)); // already attached
        arena.attach(1, 0).unwrap();
        builder.attach(1, 0).unwrap();
        assert_eq!(arena.attach(2, 0), builder.attach(2, 0)); // parent full
        assert_eq!(
            arena.clone().into_tree().unwrap_err(),
            builder.clone().finish().unwrap_err()
        ); // not spanning
    }

    #[test]
    fn sibling_list_enumerates_newest_first() {
        let (xs, ys) = columns(5);
        let mut arena = TreeArena::new(Point2::ORIGIN, [&xs, &ys]);
        arena.attach_to_source(2).unwrap();
        arena.attach_to_source(4).unwrap();
        arena.attach(0, 2).unwrap();
        arena.attach(1, 2).unwrap();
        arena.attach(3, 2).unwrap();
        assert_eq!(
            arena.children_newest_first(None).collect::<Vec<_>>(),
            [4, 2]
        );
        assert_eq!(
            arena.children_newest_first(Some(2)).collect::<Vec<_>>(),
            [3, 1, 0]
        );
        assert_eq!(
            arena.children_newest_first(Some(0)).count(),
            0,
            "leaf has no children"
        );
        // The finished CSR layout is index-ordered, independent of the
        // sibling list's reverse order.
        let tree = arena.into_tree().unwrap();
        assert_eq!(tree.source_children(), &[2, 4]);
        assert_eq!(tree.children(2), &[0, 1, 3]);
    }

    #[test]
    fn no_per_attachment_allocation_in_node_arrays() {
        let (xs, ys) = columns(32);
        let mut arena = TreeArena::new(Point2::ORIGIN, [&xs, &ys]);
        let parent_ptr = arena.parent.as_ptr();
        let sibling_ptr = arena.next_sibling.as_ptr();
        arena.attach_to_source(0).unwrap();
        for i in 1..32 {
            arena.attach(i, i - 1).unwrap();
        }
        assert_eq!(arena.parent.as_ptr(), parent_ptr);
        assert_eq!(arena.next_sibling.as_ptr(), sibling_ptr);
        assert_eq!(arena.attached_count(), 32);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn unequal_columns_rejected() {
        let xs = [1.0, 2.0];
        let ys = [1.0];
        let _ = TreeArena::new(Point2::ORIGIN, [&xs[..], &ys[..]]);
    }

    #[test]
    fn empty_arena_finishes_to_empty_tree() {
        let arena: TreeArena<'_, 2> = TreeArena::new(Point2::ORIGIN, [&[], &[]]);
        let tree = arena.into_tree().unwrap();
        assert_eq!(tree.len(), 0);
    }
}
