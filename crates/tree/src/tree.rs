//! The multicast tree type.

use omt_geom::Point;

use crate::error::ValidationError;
use crate::iter::{Bfs, Dfs, PathToSource};

/// Compact node identifier: the element type of every link array in this
/// crate — parents, sibling pointers, CSR offsets and child lists.
///
/// Node ids are `u32` rather than `usize`: a tree over `n` receivers stores
/// five to six link words per node, so halving the id width halves the
/// dominant memory term at million-scale and doubles the links that fit a
/// cache line. The value `NodeId::MAX` is reserved as the no-node/source
/// sentinel, capping supported inputs at `u32::MAX - 1` nodes — enforced
/// up front by [`check_node_capacity`](crate::check_node_capacity) with a
/// typed [`TreeError::CapacityExceeded`](crate::TreeError) rather than a
/// silent wrap.
pub type NodeId = u32;

/// Sentinel parent index meaning "the source".
pub(crate) const SOURCE_PARENT: NodeId = NodeId::MAX;

/// The parent of a node: either the multicast source or another receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParentRef {
    /// The node is a direct child of the multicast source.
    Source,
    /// The node's parent is the receiver with this index.
    Node(usize),
}

/// A rooted, degree-constrained overlay multicast tree over `n` receivers
/// in `D`-dimensional Euclidean space.
///
/// Receivers are indexed `0..n`; the source is a separate distinguished
/// node. Edge weights are the Euclidean distances between the endpoint
/// positions — the paper's model of unicast delay after embedding.
///
/// Instances are immutable; construct them with
/// [`TreeBuilder`](crate::TreeBuilder), which enforces top-down construction
/// (acyclicity) and the out-degree budget.
///
/// # Examples
///
/// ```
/// use omt_geom::Point2;
/// use omt_tree::{ParentRef, TreeBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pts = vec![Point2::new([1.0, 0.0]), Point2::new([2.0, 0.0])];
/// let mut b = TreeBuilder::new(Point2::ORIGIN, pts).max_out_degree(1);
/// b.attach_to_source(0)?;
/// b.attach(1, 0)?;
/// let tree = b.finish()?;
/// assert_eq!(tree.parent(1), ParentRef::Node(0));
/// assert_eq!(tree.radius(), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MulticastTree<const D: usize> {
    pub(crate) source: Point<D>,
    pub(crate) points: Vec<Point<D>>,
    /// Parent of each receiver (`SOURCE_PARENT` = the source).
    pub(crate) parent: Vec<u32>,
    /// Delay (path length) from the source to each receiver.
    pub(crate) depth: Vec<f64>,
    /// Hop count from the source to each receiver.
    pub(crate) hops: Vec<u32>,
    /// Children adjacency in CSR form: children of the source first, then of
    /// node 0, 1, ... `child_offsets` has `n + 2` entries.
    pub(crate) child_offsets: Vec<u32>,
    pub(crate) child_list: Vec<u32>,
}

impl<const D: usize> MulticastTree<D> {
    /// Number of receivers (excluding the source).
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the tree has no receivers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Position of the multicast source.
    #[inline]
    pub fn source(&self) -> Point<D> {
        self.source
    }

    /// Position of receiver `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn point(&self, i: usize) -> Point<D> {
        self.points[i]
    }

    /// All receiver positions, indexed by node id.
    #[inline]
    pub fn points(&self) -> &[Point<D>] {
        &self.points
    }

    /// Parent of receiver `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn parent(&self, i: usize) -> ParentRef {
        let p = self.parent[i];
        if p == SOURCE_PARENT {
            ParentRef::Source
        } else {
            ParentRef::Node(p as usize)
        }
    }

    /// Position of the parent of receiver `i`.
    #[inline]
    pub fn parent_point(&self, i: usize) -> Point<D> {
        match self.parent(i) {
            ParentRef::Source => self.source,
            ParentRef::Node(p) => self.points[p],
        }
    }

    /// Length of the edge from `i`'s parent to `i` (the unicast delay of the
    /// last overlay hop).
    #[inline]
    pub fn edge_weight(&self, i: usize) -> f64 {
        self.points[i].distance(&self.parent_point(i))
    }

    /// Delay (sum of edge lengths) from the source to receiver `i`.
    #[inline]
    pub fn depth(&self, i: usize) -> f64 {
        self.depth[i]
    }

    /// Hop count from the source to receiver `i`.
    #[inline]
    pub fn hops(&self, i: usize) -> u32 {
        self.hops[i]
    }

    /// The tree radius: the largest source-to-receiver delay. This is the
    /// objective the paper minimizes ("Delay" in Table I).
    ///
    /// Returns `0.0` for an empty tree.
    pub fn radius(&self) -> f64 {
        self.depth.iter().copied().fold(0.0, f64::max)
    }

    /// The receiver achieving [`MulticastTree::radius`], or `None` if empty.
    pub fn deepest_node(&self) -> Option<usize> {
        (0..self.len()).max_by(|&a, &b| {
            self.depth[a]
                .partial_cmp(&self.depth[b])
                .expect("depths are finite")
        })
    }

    /// Maximum hop count over all receivers.
    pub fn max_hops(&self) -> u32 {
        self.hops.iter().copied().max().unwrap_or(0)
    }

    /// Children of receiver `i`.
    #[inline]
    pub fn children(&self, i: usize) -> &[u32] {
        let lo = self.child_offsets[i + 1] as usize;
        let hi = self.child_offsets[i + 2] as usize;
        &self.child_list[lo..hi]
    }

    /// Children of the source.
    #[inline]
    pub fn source_children(&self) -> &[u32] {
        let hi = self.child_offsets[1] as usize;
        &self.child_list[..hi]
    }

    /// Out-degree of receiver `i`.
    #[inline]
    pub fn out_degree(&self, i: usize) -> u32 {
        self.child_offsets[i + 2] - self.child_offsets[i + 1]
    }

    /// Out-degree of the source.
    #[inline]
    pub fn source_out_degree(&self) -> u32 {
        self.child_offsets[1]
    }

    /// The largest out-degree in the tree, including the source.
    pub fn max_out_degree(&self) -> u32 {
        let node_max = (0..self.len())
            .map(|i| self.out_degree(i))
            .max()
            .unwrap_or(0);
        node_max.max(self.source_out_degree())
    }

    /// Sum of all edge weights (total unicast traffic per multicast packet).
    pub fn total_edge_weight(&self) -> f64 {
        (0..self.len()).map(|i| self.edge_weight(i)).sum()
    }

    /// Iterator over node indices in breadth-first order from the source.
    pub fn iter_bfs(&self) -> Bfs<'_, D> {
        Bfs::new(self)
    }

    /// Iterator over node indices in depth-first (pre-order) order.
    pub fn iter_dfs(&self) -> Dfs<'_, D> {
        Dfs::new(self)
    }

    /// Iterator over the nodes on the path from receiver `i` up to (but not
    /// including) the source, starting at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn path_to_source(&self, i: usize) -> PathToSource<'_, D> {
        assert!(i < self.len(), "node {i} out of range");
        PathToSource::new(self, i)
    }

    /// The tree diameter: the largest delay between **any** pair of nodes
    /// along tree edges (the objective of the minimum-diameter variant the
    /// paper discusses in its conclusion). Computed with the classic
    /// two-sweep algorithm in O(n).
    ///
    /// Returns `0.0` for an empty tree.
    pub fn diameter(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        // Sweep 1: distances from the source; the farthest node is one
        // endpoint of a diameter (true for tree metrics).
        let a = self.deepest_node().expect("nonempty");
        // Sweep 2: distances from `a` over the undirected tree.
        let dist = self.distances_from(a);
        dist.iter().copied().fold(0.0, f64::max)
    }

    /// Delays from node `start` to every node, travelling along tree edges
    /// in either direction. Index `len()` holds the distance to the source.
    pub fn distances_from(&self, start: usize) -> Vec<f64> {
        let n = self.len();
        let mut dist = vec![f64::INFINITY; n + 1];
        dist[start] = 0.0;
        // Iterative DFS over the undirected tree.
        let mut stack = vec![start as u32];
        while let Some(u) = stack.pop() {
            let (u_idx, u_pos, du) = if u == SOURCE_PARENT {
                (n, self.source, dist[n])
            } else {
                (u as usize, self.points[u as usize], dist[u as usize])
            };
            // Neighbors: children plus parent.
            let children = if u == SOURCE_PARENT {
                self.source_children()
            } else {
                self.children(u as usize)
            };
            for &c in children {
                let cd = du + u_pos.distance(&self.points[c as usize]);
                if cd < dist[c as usize] {
                    dist[c as usize] = cd;
                    stack.push(c);
                }
            }
            if u != SOURCE_PARENT {
                let p = self.parent[u_idx];
                let (p_slot, p_pos) = if p == SOURCE_PARENT {
                    (n, self.source)
                } else {
                    (p as usize, self.points[p as usize])
                };
                let pd = du + u_pos.distance(&p_pos);
                if pd < dist[p_slot] {
                    dist[p_slot] = pd;
                    stack.push(p);
                }
            }
        }
        dist
    }

    /// Re-verifies every structural invariant from scratch: parent indices
    /// in range, acyclicity, cached depths/hops, and (optionally) an
    /// out-degree bound.
    ///
    /// Trees built through [`TreeBuilder`](crate::TreeBuilder) satisfy these
    /// by construction; this method exists for tests, fuzzing, and debugging
    /// of algorithm implementations.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self, max_out_degree: Option<u32>) -> Result<(), ValidationError> {
        let n = self.len();
        // Parent indices.
        for (child, &p) in self.parent.iter().enumerate() {
            if p != SOURCE_PARENT && p as usize >= n {
                return Err(ValidationError::DanglingParent {
                    child,
                    parent: p as usize,
                });
            }
        }
        // Acyclicity + depth/hop consistency, via memoized walk.
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = in progress, 2 = done
        for start in 0..n {
            if state[start] == 2 {
                continue;
            }
            // Walk up until a resolved node or the source.
            let mut chain = Vec::new();
            let mut u = start;
            loop {
                if state[u] == 1 {
                    return Err(ValidationError::Cycle { start: u });
                }
                if state[u] == 2 {
                    break;
                }
                state[u] = 1;
                chain.push(u);
                match self.parent(u) {
                    ParentRef::Source => break,
                    ParentRef::Node(p) => u = p,
                }
            }
            for &v in chain.iter().rev() {
                let (pd, ph, ppos) = match self.parent(v) {
                    ParentRef::Source => (0.0, 0, self.source),
                    ParentRef::Node(p) => (self.depth[p], self.hops[p], self.points[p]),
                };
                let computed = pd + ppos.distance(&self.points[v]);
                if (computed - self.depth[v]).abs() > 1e-9 * (1.0 + computed.abs()) {
                    return Err(ValidationError::DepthMismatch {
                        node: v,
                        cached: self.depth[v],
                        computed,
                    });
                }
                if ph + 1 != self.hops[v] {
                    return Err(ValidationError::DepthMismatch {
                        node: v,
                        cached: f64::from(self.hops[v]),
                        computed: f64::from(ph + 1),
                    });
                }
                state[v] = 2;
            }
        }
        // Degree bound.
        if let Some(bound) = max_out_degree {
            if self.source_out_degree() > bound {
                return Err(ValidationError::DegreeViolation {
                    node: None,
                    degree: self.source_out_degree(),
                    bound,
                });
            }
            for i in 0..n {
                if self.out_degree(i) > bound {
                    return Err(ValidationError::DegreeViolation {
                        node: Some(i),
                        degree: self.out_degree(i),
                        bound,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;
    use omt_geom::Point2;

    /// A small hand-built tree:
    ///
    /// ```text
    ///        source (0,0)
    ///        /          \
    ///    0 (1,0)       1 (0,1)
    ///      |
    ///    2 (1,1)
    /// ```
    fn sample_tree() -> MulticastTree<2> {
        let pts = vec![
            Point2::new([1.0, 0.0]),
            Point2::new([0.0, 1.0]),
            Point2::new([1.0, 1.0]),
        ];
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts);
        b.attach_to_source(0).unwrap();
        b.attach_to_source(1).unwrap();
        b.attach(2, 0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn basic_accessors() {
        let t = sample_tree();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.parent(0), ParentRef::Source);
        assert_eq!(t.parent(2), ParentRef::Node(0));
        assert_eq!(t.edge_weight(2), 1.0);
        assert_eq!(t.depth(2), 2.0);
        assert_eq!(t.hops(2), 2);
        assert_eq!(t.radius(), 2.0);
        assert_eq!(t.deepest_node(), Some(2));
        assert_eq!(t.max_hops(), 2);
    }

    #[test]
    fn children_and_degrees() {
        let t = sample_tree();
        assert_eq!(t.source_children(), &[0, 1]);
        assert_eq!(t.children(0), &[2]);
        assert_eq!(t.children(1), &[] as &[u32]);
        assert_eq!(t.source_out_degree(), 2);
        assert_eq!(t.out_degree(0), 1);
        assert_eq!(t.out_degree(2), 0);
        assert_eq!(t.max_out_degree(), 2);
    }

    #[test]
    fn total_edge_weight() {
        let t = sample_tree();
        assert!((t.total_edge_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn diameter_two_sweep() {
        let t = sample_tree();
        // Longest path: node2 -> node0 -> source -> node1 = 1 + 1 + 1 = 3.
        assert!((t.diameter() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn distances_from_node() {
        let t = sample_tree();
        let d = t.distances_from(2);
        assert_eq!(d[2], 0.0);
        assert_eq!(d[0], 1.0);
        assert_eq!(d[3], 2.0); // source slot
        assert_eq!(d[1], 3.0);
    }

    #[test]
    fn validate_accepts_built_tree() {
        let t = sample_tree();
        t.validate(Some(2)).unwrap();
        t.validate(None).unwrap();
        assert!(matches!(
            t.validate(Some(1)),
            Err(ValidationError::DegreeViolation { node: None, .. })
        ));
    }

    #[test]
    fn validate_detects_corruption() {
        let mut t = sample_tree();
        t.depth[2] = 99.0;
        assert!(matches!(
            t.validate(None),
            Err(ValidationError::DepthMismatch { node: 2, .. })
        ));

        let mut t = sample_tree();
        t.parent[0] = 2;
        t.parent[2] = 0;
        assert!(matches!(
            t.validate(None),
            Err(ValidationError::Cycle { .. })
        ));

        let mut t = sample_tree();
        t.parent[0] = 77;
        assert!(matches!(
            t.validate(None),
            Err(ValidationError::DanglingParent {
                child: 0,
                parent: 77
            })
        ));
    }

    #[test]
    fn empty_tree() {
        let t = TreeBuilder::<2>::new(Point2::ORIGIN, vec![])
            .finish()
            .unwrap();
        assert!(t.is_empty());
        assert_eq!(t.radius(), 0.0);
        assert_eq!(t.diameter(), 0.0);
        assert_eq!(t.max_out_degree(), 0);
        assert_eq!(t.deepest_node(), None);
        t.validate(Some(0)).unwrap();
    }

    #[test]
    fn parent_ref_equality() {
        assert_eq!(ParentRef::Source, ParentRef::Source);
        assert_ne!(ParentRef::Source, ParentRef::Node(0));
    }
}
