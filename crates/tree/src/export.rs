//! Plain-text tree exchange formats: GraphViz DOT for visualization and a
//! line-oriented edge-list format with a parser, so trees can be stored
//! and compared across runs without a serialization dependency.

use std::fmt::Write as _;

use omt_geom::Point;

use crate::builder::TreeBuilder;
use crate::error::TreeError;
use crate::tree::{MulticastTree, ParentRef};

impl<const D: usize> MulticastTree<D> {
    /// Renders the tree as a GraphViz DOT digraph. The source is node
    /// `"s"`; receivers are numbered. Edge labels carry delays.
    ///
    /// ```
    /// use omt_geom::Point2;
    /// use omt_tree::TreeBuilder;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = TreeBuilder::new(Point2::ORIGIN, vec![Point2::new([1.0, 0.0])]);
    /// b.attach_to_source(0)?;
    /// let dot = b.finish()?.to_dot();
    /// assert!(dot.contains("s -> n0"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::from(
            "digraph multicast {\n  rankdir=TB;\n  s [shape=doublecircle,label=\"source\"];\n",
        );
        for i in 0..self.len() {
            let _ = writeln!(out, "  n{i} [shape=circle,label=\"{i}\"];");
        }
        for i in 0..self.len() {
            let from = match self.parent(i) {
                ParentRef::Source => "s".to_string(),
                ParentRef::Node(p) => format!("n{p}"),
            };
            let _ = writeln!(
                out,
                "  {from} -> n{i} [label=\"{:.3}\"];",
                self.edge_weight(i)
            );
        }
        out.push_str("}\n");
        out
    }

    /// Serializes the tree to the line-oriented edge-list format parsed by
    /// [`MulticastTree::from_edge_list`]:
    ///
    /// ```text
    /// source <coord> ... <coord>
    /// node <index> <coord> ... <coord> parent (s | <index>)
    /// ```
    pub fn to_edge_list(&self) -> String {
        let mut out = String::from("source");
        for c in self.source().coords() {
            let _ = write!(out, " {c}");
        }
        out.push('\n');
        // Emit in BFS order so the format is parseable strictly top-down.
        for i in self.iter_bfs() {
            let _ = write!(out, "node {i}");
            for c in self.point(i).coords() {
                let _ = write!(out, " {c}");
            }
            match self.parent(i) {
                ParentRef::Source => out.push_str(" parent s\n"),
                ParentRef::Node(p) => {
                    let _ = writeln!(out, " parent {p}");
                }
            }
        }
        out
    }

    /// Parses the format produced by [`MulticastTree::to_edge_list`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line, or a
    /// [`TreeError`] rendered as text if the edges do not form a valid
    /// tree.
    pub fn from_edge_list(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty input")?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("source") {
            return Err("first line must start with 'source'".into());
        }
        let coords: Vec<f64> = parts
            .map(|t| {
                t.parse::<f64>()
                    .map_err(|e| format!("bad source coordinate {t:?}: {e}"))
            })
            .collect::<Result<_, _>>()?;
        if coords.len() != D {
            return Err(format!(
                "source has {} coordinates, expected {D}",
                coords.len()
            ));
        }
        let mut source_arr = [0.0; D];
        source_arr.copy_from_slice(&coords);
        let source = Point::new(source_arr);

        struct Row<const D: usize> {
            index: usize,
            point: Point<D>,
            parent: Option<usize>,
        }
        let mut rows: Vec<Row<D>> = Vec::new();
        for line in lines {
            let mut parts = line.split_whitespace();
            if parts.next() != Some("node") {
                return Err(format!("malformed line {line:?}"));
            }
            let index: usize = parts
                .next()
                .ok_or("missing node index")?
                .parse()
                .map_err(|e| format!("bad node index: {e}"))?;
            let mut arr = [0.0; D];
            for slot in &mut arr {
                let t = parts.next().ok_or("missing coordinate")?;
                *slot = t
                    .parse()
                    .map_err(|e| format!("bad coordinate {t:?}: {e}"))?;
            }
            if parts.next() != Some("parent") {
                return Err(format!("missing 'parent' keyword in {line:?}"));
            }
            let parent_token = parts.next().ok_or("missing parent value")?;
            let parent = if parent_token == "s" {
                None
            } else {
                Some(
                    parent_token
                        .parse::<usize>()
                        .map_err(|e| format!("bad parent {parent_token:?}: {e}"))?,
                )
            };
            rows.push(Row {
                index,
                point: Point::new(arr),
                parent,
            });
        }
        let n = rows.len();
        let mut points = vec![Point::<D>::ORIGIN; n];
        for r in &rows {
            if r.index >= n {
                return Err(format!("node index {} out of range for {n} nodes", r.index));
            }
            if let Some(p) = r.parent {
                if p >= n {
                    return Err(format!("parent index {p} out of range for {n} nodes"));
                }
            }
            points[r.index] = r.point;
        }
        let mut builder = TreeBuilder::new(source, points);
        // Rows are in BFS order (writer guarantees it), so a single pass
        // attaches top-down; a second pass catches any stragglers from
        // hand-edited files.
        let mut pending: Vec<&Row<D>> = rows.iter().collect();
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|r| {
                let result = match r.parent {
                    None => builder.attach_to_source(r.index),
                    Some(p) if builder.is_attached(p) => builder.attach(r.index, p),
                    Some(_) => return true, // parent not ready yet
                };
                match result {
                    Ok(()) => false,
                    Err(TreeError::AlreadyAttached { .. }) => false,
                    Err(_) => true,
                }
            });
            if pending.len() == before {
                return Err("edges do not form a rooted tree (cycle or bad parent)".into());
            }
        }
        builder.finish().map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::Point2;

    fn sample() -> MulticastTree<2> {
        let pts = vec![
            Point2::new([1.0, 0.0]),
            Point2::new([0.0, 1.0]),
            Point2::new([2.0, 0.0]),
        ];
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts);
        b.attach_to_source(0).unwrap();
        b.attach_to_source(1).unwrap();
        b.attach(2, 0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn dot_contains_all_edges() {
        let dot = sample().to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("s -> n0"));
        assert!(dot.contains("s -> n1"));
        assert!(dot.contains("n0 -> n2"));
        assert!(dot.contains("label=\"1.000\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn edge_list_round_trips() {
        let tree = sample();
        let text = tree.to_edge_list();
        let back = MulticastTree::<2>::from_edge_list(&text).unwrap();
        assert_eq!(tree, back);
    }

    #[test]
    fn round_trip_preserves_metrics_on_random_tree() {
        use omt_rng::rngs::SmallRng;
        use omt_rng::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let pts: Vec<Point2> = (0..150)
            .map(|_| Point2::new([rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)]))
            .collect();
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts).max_out_degree(3);
        for i in 0..150 {
            if i == 0 {
                b.attach_to_source(0).unwrap();
            } else {
                // Attach under a random earlier node with spare budget.
                let mut p = rng.random_range(0..i);
                while b.remaining_degree(p) == Some(0) {
                    p = rng.random_range(0..i);
                }
                b.attach(i, p).unwrap();
            }
        }
        let tree = b.finish().unwrap();
        let back = MulticastTree::<2>::from_edge_list(&tree.to_edge_list()).unwrap();
        assert_eq!(tree.metrics(), back.metrics());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(MulticastTree::<2>::from_edge_list("").is_err());
        assert!(MulticastTree::<2>::from_edge_list("bogus 1 2\n").is_err());
        assert!(MulticastTree::<2>::from_edge_list("source 0").is_err()); // wrong dim
        assert!(MulticastTree::<2>::from_edge_list("source 0 0\nnode 0 1 0 parent 5\n").is_err());
        // A two-node cycle.
        let cyclic = "source 0 0\nnode 0 1 0 parent 1\nnode 1 2 0 parent 0\n";
        assert!(MulticastTree::<2>::from_edge_list(cyclic).is_err());
    }

    #[test]
    fn parser_tolerates_shuffled_rows() {
        // Hand-edited files may not be in BFS order; the fixpoint pass
        // handles children listed before parents.
        let text = "source 0 0\nnode 1 2 0 parent 0\nnode 0 1 0 parent s\n";
        let tree = MulticastTree::<2>::from_edge_list(text).unwrap();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.depth(1), 2.0);
    }

    #[test]
    fn empty_tree_round_trip() {
        let tree = TreeBuilder::<2>::new(Point2::new([1.5, -2.0]), vec![])
            .finish()
            .unwrap();
        let back = MulticastTree::<2>::from_edge_list(&tree.to_edge_list()).unwrap();
        assert_eq!(tree, back);
        assert_eq!(back.source(), Point2::new([1.5, -2.0]));
    }
}
