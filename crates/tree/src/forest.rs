//! Validation of raw parent arrays, without materializing a tree.
//!
//! [`MulticastTree::validate`](crate::MulticastTree::validate) re-verifies a
//! finished tree, but maintenance structures (notably
//! `omt_core::DynamicOverlay`) hold their topology as a bare parent mapping
//! and need the same spanning/acyclicity/degree checks *per membership
//! event*, where building a snapshot first would dominate the cost of the
//! check. [`validate_parent_forest`] runs directly on `Option<usize>`
//! parent slots (`None` = attached to the source).

use crate::error::ValidationError;

/// Validates a parent mapping as a spanning forest rooted at the source.
///
/// `parents[i]` is the parent of node `i`, with `None` meaning the node is a
/// direct child of the source. The check verifies:
///
/// * every parent index is in range (no dangling references),
/// * no node is its own ancestor (acyclicity — which, with every node having
///   a parent, makes the structure spanning),
/// * if `max_out_degree` is given, no node exceeds it — **including the
///   source**, whose out-degree is the number of `None` entries.
///
/// Runs in O(n) using a memoized three-color walk.
///
/// # Examples
///
/// ```
/// use omt_tree::validate_parent_forest;
///
/// // source -> 0 -> 1, source -> 2
/// let parents = [None, Some(0), None];
/// validate_parent_forest(&parents, Some(2)).unwrap();
/// assert!(validate_parent_forest(&parents, Some(1)).is_err()); // source has 2 children
/// assert!(validate_parent_forest(&[Some(1), Some(0)], None).is_err()); // 2-cycle
/// ```
///
/// # Errors
///
/// Returns the first violated invariant as a [`ValidationError`].
pub fn validate_parent_forest(
    parents: &[Option<usize>],
    max_out_degree: Option<u32>,
) -> Result<(), ValidationError> {
    let n = parents.len();
    for (child, &p) in parents.iter().enumerate() {
        if let Some(p) = p {
            if p >= n {
                return Err(ValidationError::DanglingParent { child, parent: p });
            }
            if p == child {
                return Err(ValidationError::Cycle { start: child });
            }
        }
    }
    // Acyclicity: walk each unresolved chain up to the source, marking the
    // chain in-progress; meeting an in-progress node means a cycle.
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = in progress, 2 = done
    let mut chain = Vec::new();
    for start in 0..n {
        if state[start] == 2 {
            continue;
        }
        chain.clear();
        let mut u = start;
        loop {
            if state[u] == 1 {
                return Err(ValidationError::Cycle { start: u });
            }
            if state[u] == 2 {
                break;
            }
            state[u] = 1;
            chain.push(u);
            match parents[u] {
                None => break,
                Some(p) => u = p,
            }
        }
        for &v in &chain {
            state[v] = 2;
        }
    }
    // Degree bound, including the source.
    if let Some(bound) = max_out_degree {
        let mut degree = vec![0u32; n];
        let mut source_degree = 0u32;
        for &p in parents {
            match p {
                None => source_degree += 1,
                Some(p) => degree[p] += 1,
            }
        }
        if source_degree > bound {
            return Err(ValidationError::DegreeViolation {
                node: None,
                degree: source_degree,
                bound,
            });
        }
        for (node, &d) in degree.iter().enumerate() {
            if d > bound {
                return Err(ValidationError::DegreeViolation {
                    node: Some(node),
                    degree: d,
                    bound,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_empty_and_single() {
        validate_parent_forest(&[], Some(0)).unwrap();
        validate_parent_forest(&[None], Some(1)).unwrap();
    }

    #[test]
    fn accepts_chains_and_stars() {
        // source -> 0 -> 1 -> 2 -> 3
        let chain: Vec<Option<usize>> = (0..4).map(|i| (i > 0).then(|| i - 1)).collect();
        validate_parent_forest(&chain, Some(1)).unwrap();
        // source -> {0, 1, 2}
        let star = [None, None, None];
        validate_parent_forest(&star, Some(3)).unwrap();
        assert!(matches!(
            validate_parent_forest(&star, Some(2)),
            Err(ValidationError::DegreeViolation { node: None, .. })
        ));
    }

    #[test]
    fn rejects_dangling_parent() {
        assert!(matches!(
            validate_parent_forest(&[None, Some(9)], None),
            Err(ValidationError::DanglingParent {
                child: 1,
                parent: 9
            })
        ));
    }

    #[test]
    fn rejects_self_loop_and_cycles() {
        assert!(matches!(
            validate_parent_forest(&[Some(0)], None),
            Err(ValidationError::Cycle { start: 0 })
        ));
        // 0 -> 1 -> 2 -> 0, plus a tail 3 hanging off the cycle.
        assert!(matches!(
            validate_parent_forest(&[Some(1), Some(2), Some(0), Some(0)], None),
            Err(ValidationError::Cycle { .. })
        ));
    }

    #[test]
    fn rejects_node_degree_violation() {
        // Node 0 has three children under a bound of 2.
        let parents = [None, Some(0), Some(0), Some(0)];
        assert!(matches!(
            validate_parent_forest(&parents, Some(2)),
            Err(ValidationError::DegreeViolation {
                node: Some(0),
                degree: 3,
                bound: 2
            })
        ));
        validate_parent_forest(&parents, Some(3)).unwrap();
        validate_parent_forest(&parents, None).unwrap();
    }

    #[test]
    fn agrees_with_tree_validate() {
        use crate::TreeBuilder;
        use omt_geom::Point2;
        let pts: Vec<Point2> = (0..20)
            .map(|i| {
                let t = i as f64 * 0.61;
                Point2::new([t.cos(), t.sin()])
            })
            .collect();
        let mut b = TreeBuilder::new(Point2::ORIGIN, pts).max_out_degree(3);
        for i in 0..20 {
            if i < 3 {
                b.attach_to_source(i).unwrap();
            } else {
                b.attach(i, (i - 3) / 3).unwrap();
            }
        }
        let tree = b.finish().unwrap();
        tree.validate(Some(3)).unwrap();
        let parents: Vec<Option<usize>> = (0..20)
            .map(|i| match tree.parent(i) {
                crate::ParentRef::Source => None,
                crate::ParentRef::Node(p) => Some(p),
            })
            .collect();
        validate_parent_forest(&parents, Some(3)).unwrap();
        assert!(validate_parent_forest(&parents, Some(2)).is_err());
    }
}
