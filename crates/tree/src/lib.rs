//! Degree-constrained rooted multicast trees.
//!
//! The output object of every algorithm in this workspace: a spanning tree
//! over receiver points rooted at a multicast source, where edge weights are
//! Euclidean distances (the unicast delays of the overlay model in *Overlay
//! Multicast Trees of Minimal Delay*).
//!
//! * [`TreeBuilder`] — incremental top-down construction that makes cycles
//!   unrepresentable and enforces the out-degree budget per attachment.
//! * [`MulticastTree`] — the immutable result: parents, children (CSR),
//!   cached delays and hop counts, traversal iterators.
//! * [`TreeMetrics`] — radius / diameter / stretch / fanout summaries.
//! * [`MulticastTree::validate`] — from-scratch invariant re-verification
//!   for tests and debugging.
//! * [`validate_parent_forest`] — the same spanning/acyclicity/degree checks
//!   on a bare parent array, for maintenance structures that validate per
//!   membership event without materializing a snapshot.
//! * [`MulticastTree::to_dot`] / [`MulticastTree::to_edge_list`] —
//!   GraphViz and plain-text exchange formats (with a parser).
//! * [`MulticastTree::to_svg`] — dependency-free SVG rendering of 2-D
//!   trees.
//!
//! # Examples
//!
//! ```
//! use omt_geom::Point2;
//! use omt_tree::TreeBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let points = vec![
//!     Point2::new([1.0, 0.0]),
//!     Point2::new([0.0, 1.0]),
//!     Point2::new([2.0, 0.0]),
//! ];
//! let mut builder = TreeBuilder::new(Point2::ORIGIN, points).max_out_degree(2);
//! builder.attach_to_source(0)?;
//! builder.attach_to_source(1)?;
//! builder.attach(2, 0)?;
//! let tree = builder.finish()?;
//! assert_eq!(tree.radius(), 2.0);
//! tree.validate(Some(2))?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod builder;
pub mod error;
pub mod export;
mod forest;
pub mod iter;
pub mod metrics;
pub mod svg;
mod tree;

pub use arena::{check_node_capacity, TreeArena, MAX_NODES};
pub use builder::TreeBuilder;
pub use error::{TreeError, ValidationError};
pub use forest::validate_parent_forest;
pub use iter::{Bfs, Dfs, PathToSource};
pub use metrics::TreeMetrics;
pub use svg::SvgOptions;
pub use tree::{MulticastTree, NodeId, ParentRef};
