//! Acceptance test for the observability layer (`--features obs`): the
//! phase spans recorded while building a polar-grid tree must cover the
//! build wall-clock, and the counters/histograms must reflect the work
//! actually done.
//!
//! Run with `cargo test -p omt-core --features obs --test obs_trace`.
#![cfg(feature = "obs")]

use std::time::Instant;

use omt_core::PolarGridBuilder;
use omt_geom::{Disk, Point2, Region};
use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;

/// One test function on purpose: the recording mode is process-global
/// (first decision wins), so all assertions share a single activation.
#[test]
fn phase_spans_cover_the_build_and_metrics_match_the_work() {
    if !omt_obs::enable_memory() {
        // An OMT_TRACE file sink was configured for this process; the
        // in-memory assertions below would not see the data.
        eprintln!("skipping: recording mode already fixed externally");
        return;
    }
    let n = 20_000;
    let mut rng = SmallRng::seed_from_u64(77);
    let pts = Disk::unit().sample_n(&mut rng, n);

    // Drop whatever earlier instrumented code put in this thread's
    // registry so the assertions see exactly one build.
    let _ = omt_obs::take_local();
    let wall = Instant::now();
    let tree = PolarGridBuilder::new().build(Point2::ORIGIN, &pts).unwrap();
    let wall_ns = wall.elapsed().as_nanos() as u64;
    assert_eq!(tree.len(), n);

    let reg = omt_obs::take_local();
    let build = reg.span("polar_grid/build").expect("build span missing");
    assert_eq!(build.count, 1);
    // The build span nests strictly inside the measured wall-clock.
    assert!(
        build.total_ns <= wall_ns,
        "span {} ns exceeds wall {} ns",
        build.total_ns,
        wall_ns
    );
    assert!(
        build.total_ns >= wall_ns / 2,
        "span {} ns implausibly small vs wall {} ns",
        build.total_ns,
        wall_ns
    );

    // The four phases tile the build span: together they must account
    // for at least 90% of it (the remainder is validation glue), and
    // nesting means they can never exceed it.
    let mut phase_sum = 0u64;
    for phase in [
        "polar_grid/partition",
        "polar_grid/core",
        "polar_grid/cells",
        "polar_grid/finish",
    ] {
        let s = reg.span(phase).unwrap_or_else(|| panic!("{phase} missing"));
        assert!(s.count >= 1, "{phase} never entered");
        phase_sum += s.total_ns;
    }
    assert!(
        phase_sum <= build.total_ns,
        "nested phases ({phase_sum} ns) exceed the build span ({} ns)",
        build.total_ns
    );
    assert!(
        phase_sum * 10 >= build.total_ns * 9,
        "phases cover only {phase_sum} of {} ns (< 90%)",
        build.total_ns
    );

    // Counters and histograms reflect the work done.
    assert_eq!(reg.counter("polar_grid/builds"), 1);
    let occupied = reg
        .hist("polar_grid/occupied_cells")
        .expect("occupancy histogram missing");
    assert_eq!(occupied.count, 1);
    assert!(occupied.sum >= 1, "at least one occupied cell");

    // A second build accumulates rather than overwrites.
    let _ = PolarGridBuilder::new().build(Point2::ORIGIN, &pts).unwrap();
    let reg2 = omt_obs::take_local();
    assert_eq!(reg2.counter("polar_grid/builds"), 1);
    assert_eq!(reg2.span("polar_grid/build").map(|s| s.count), Some(1));

    // The arena/SoA store path records the same instrumentation: the
    // build span with the four phases tiling at least 90% of it.
    let mut rng = SmallRng::seed_from_u64(77);
    let store = omt_geom::PointStore2::sample_region(Point2::ORIGIN, &Disk::unit(), &mut rng, n);
    let _ = omt_obs::take_local();
    let tree = PolarGridBuilder::new().build_store(&store).unwrap();
    assert_eq!(tree.len(), n);
    let reg3 = omt_obs::take_local();
    let build = reg3.span("polar_grid/build").expect("store build span");
    assert_eq!(build.count, 1);
    assert_eq!(reg3.counter("polar_grid/builds"), 1);
    let mut phase_sum = 0u64;
    for phase in [
        "polar_grid/partition",
        "polar_grid/core",
        "polar_grid/cells",
        "polar_grid/finish",
    ] {
        let s = reg3
            .span(phase)
            .unwrap_or_else(|| panic!("{phase} missing on store path"));
        assert!(s.count >= 1, "{phase} never entered on store path");
        phase_sum += s.total_ns;
    }
    assert!(phase_sum <= build.total_ns);
    assert!(
        phase_sum * 10 >= build.total_ns * 9,
        "store-path phases cover only {phase_sum} of {} ns (< 90%)",
        build.total_ns
    );
}

#[test]
fn churn_metrics_count_joins_and_leaves() {
    if !omt_obs::enable_memory() {
        eprintln!("skipping: recording mode already fixed externally");
        return;
    }
    let mut rng = SmallRng::seed_from_u64(3);
    let mut overlay = omt_core::DynamicOverlay::new(Point2::ORIGIN, 4).unwrap();
    let _ = omt_obs::take_local();
    let ids: Vec<_> = Disk::unit()
        .sample_n(&mut rng, 50)
        .into_iter()
        .map(|p| overlay.join(p))
        .collect();
    for id in ids.iter().take(20) {
        overlay.leave(*id).unwrap();
    }
    let reg = omt_obs::take_local();
    assert_eq!(reg.counter("dynamic/joins"), 50);
    assert_eq!(reg.counter("dynamic/leaves"), 20);
    assert_eq!(reg.span("dynamic/join").map(|s| s.count), Some(50));
    assert_eq!(reg.span("dynamic/leave").map(|s| s.count), Some(20));
    let chains = reg.hist("dynamic/chain_len").expect("chain_len missing");
    assert!(chains.count >= 50, "every join walks the parent chain");
}
