//! Metamorphic properties of the tree builders: relabeling the input
//! must not change the tree at all, and rigid motions of the input disk
//! must not change its quality (radius) beyond fp rounding.
//!
//! These are the determinism guarantees the observability and parallel
//! layers lean on: if a permutation or a rigid motion could shift the
//! radius, seed-pinned golden streams and cross-thread parity would be
//! meaningless.

use omt_core::{Bisection, PolarGridBuilder};
use omt_geom::Point2;
use omt_rng::proptest::{any, collection, Strategy};
use omt_rng::rngs::SmallRng;
use omt_rng::{prop_assert, prop_assert_eq, props, RngExt, SeedableRng};

/// Generic point clouds in a disk-ish box. Coordinates are "generic" in
/// the geometric sense with probability 1: no two points coincide and no
/// exact distance ties, so representative selection has a unique
/// minimum and relabeling cannot flip a tie.
fn generic_points() -> impl Strategy<Value = Vec<Point2>> {
    collection::vec(
        (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(x, y)| Point2::new([x, y])),
        1..120,
    )
}

/// Deterministic Fisher-Yates shuffle of `0..n` driven by `seed`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Rotation of `p` around the origin by `theta`.
fn rotate(p: &Point2, theta: f64) -> Point2 {
    let (s, c) = theta.sin_cos();
    let [x, y] = p.coords();
    Point2::new([x * c - y * s, x * s + y * c])
}

props! {
    #[cases(48)]
    fn radius_is_invariant_under_permutation(
        points in generic_points(),
        seed in any::<u64>(),
    ) {
        // Relabeling the receivers is a pure renaming: the polar-grid and
        // bisection algorithms only consult geometry (with first-minimum
        // tie-breaks that generic inputs never exercise), so the radius
        // must be bit-identical, not merely close.
        let order = permutation(points.len(), seed);
        let shuffled: Vec<Point2> = order.iter().map(|&i| points[i]).collect();
        for deg in [2u32, 6] {
            let base = PolarGridBuilder::new()
                .max_out_degree(deg)
                .build(Point2::ORIGIN, &points)
                .unwrap();
            let perm = PolarGridBuilder::new()
                .max_out_degree(deg)
                .build(Point2::ORIGIN, &shuffled)
                .unwrap();
            prop_assert_eq!(base.radius(), perm.radius());
        }
        let base = Bisection::new(4).unwrap().build(Point2::ORIGIN, &points).unwrap();
        let perm = Bisection::new(4).unwrap().build(Point2::ORIGIN, &shuffled).unwrap();
        prop_assert_eq!(base.radius(), perm.radius());
    }

    #[cases(48)]
    fn radius_is_invariant_under_translation(
        points in generic_points(),
        tx in -50.0f64..50.0,
        ty in -50.0f64..50.0,
    ) {
        // Translating receivers and source together only perturbs the
        // source-relative coordinates by rounding of (p + t) - t.
        let t = Point2::new([tx, ty]);
        let moved: Vec<Point2> = points.iter().map(|p| *p + t).collect();
        for deg in [2u32, 6] {
            let base = PolarGridBuilder::new()
                .max_out_degree(deg)
                .build(Point2::ORIGIN, &points)
                .unwrap();
            let trans = PolarGridBuilder::new()
                .max_out_degree(deg)
                .build(t, &moved)
                .unwrap();
            let scale = 1.0 + base.radius();
            prop_assert!((base.radius() - trans.radius()).abs() < 1e-6 * scale,
                "deg {}: radius {} vs translated {}", deg, base.radius(), trans.radius());
        }
    }

    #[cases(48)]
    fn radius_is_invariant_under_half_turn(points in generic_points()) {
        // Rotation by pi is coordinate negation — exact in floating
        // point, and it maps every ring of the polar grid onto itself.
        // Only a point sitting within one ulp of an angular cell
        // boundary could flip cells, which generic inputs never are, so
        // the radius agrees to tight tolerance.
        let flipped: Vec<Point2> = points
            .iter()
            .map(|p| {
                let [x, y] = p.coords();
                Point2::new([-x, -y])
            })
            .collect();
        for deg in [2u32, 6] {
            let base = PolarGridBuilder::new()
                .max_out_degree(deg)
                .build(Point2::ORIGIN, &points)
                .unwrap();
            let half_turn = PolarGridBuilder::new()
                .max_out_degree(deg)
                .build(Point2::ORIGIN, &flipped)
                .unwrap();
            let scale = 1.0 + base.radius();
            prop_assert!((base.radius() - half_turn.radius()).abs() < 1e-9 * scale,
                "deg {}: radius {} vs half-turn {}", deg, base.radius(), half_turn.radius());
        }
    }

    #[cases(48)]
    fn rotation_preserves_the_quality_envelope(
        points in generic_points(),
        theta in 0.0f64..6.28318,
    ) {
        // An arbitrary rotation moves points across the fixed angular
        // cell boundaries, so the tree (and its radius) may legitimately
        // change — but the problem is rotation-invariant, so the
        // instance's lower bound must survive exactly (up to rounding of
        // the rotated coordinates) and the rotated tree must still sit
        // inside its own Theorem-2 envelope.
        let rotated: Vec<Point2> = points.iter().map(|p| rotate(p, theta)).collect();
        let (_, base) = PolarGridBuilder::new()
            .build_with_report(Point2::ORIGIN, &points)
            .unwrap();
        let (tree, rot) = PolarGridBuilder::new()
            .build_with_report(Point2::ORIGIN, &rotated)
            .unwrap();
        tree.validate(Some(6)).unwrap();
        let scale = 1.0 + base.lower_bound;
        prop_assert!((base.lower_bound - rot.lower_bound).abs() < 1e-9 * scale,
            "lower bound moved: {} vs {}", base.lower_bound, rot.lower_bound);
        prop_assert!(rot.delay >= rot.lower_bound - 1e-9 * scale);
        prop_assert!(rot.delay <= rot.bound + 1e-9,
            "rotated delay {} above bound {}", rot.delay, rot.bound);
    }
}
