//! Every-event invariant fuzzing for [`DynamicOverlay`].
//!
//! Each workload replays a seeded membership trace (joins : leaves ≈ 2 : 1)
//! and, after **every** event, re-verifies the overlay's internal
//! invariants from scratch (`assert_invariants`: spanning, acyclic,
//! alive-consistency, degree ≤ budget including the source, cache and
//! index exactness) *and* materializes a full snapshot and validates it
//! with the tree crate's independent checker. Rebuild boundaries are
//! crossed naturally many times per trace, so every invariant is exercised
//! both before and after `maybe_rebuild` fires.

use omt_core::{BuildError, DynamicOverlay};
use omt_geom::Point2;
use omt_rng::rngs::SmallRng;
use omt_rng::{RngExt, SeedableRng};
use omt_tree::ParentRef;

/// Replays `events` membership events at the given degree, validating the
/// overlay after every single one. Returns the number of leave events.
fn churn_and_validate(degree: u32, seed: u64, events: usize) -> usize {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut overlay = DynamicOverlay::new(Point2::ORIGIN, degree).unwrap();
    // Live ids in join order (ids are monotone, removal preserves order),
    // mirroring the snapshot's documented host order.
    let mut live = Vec::new();
    let mut leaves = 0;
    for _ in 0..events {
        if live.len() < 8 || rng.random::<f64>() < 2.0 / 3.0 {
            let p = Point2::new([rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)]);
            live.push(overlay.join(p));
        } else {
            let i = rng.random_range(0..live.len());
            let id = live.remove(i);
            overlay.leave(id).unwrap();
            // A departed id must stay invalid forever (ids never recycle).
            assert!(matches!(
                overlay.leave(id),
                Err(BuildError::UnknownHost { .. })
            ));
            leaves += 1;
        }
        overlay.assert_invariants();
        let tree = overlay.snapshot().unwrap();
        tree.validate(Some(degree)).unwrap();
        assert_eq!(tree.len(), live.len());
        assert!(
            (overlay.radius() - tree.radius()).abs() <= 1e-9 * (1.0 + tree.radius()),
            "cached radius {} disagrees with snapshot radius {}",
            overlay.radius(),
            tree.radius()
        );
    }
    assert_eq!(overlay.len(), live.len());
    leaves
}

#[test]
fn every_event_invariants_degree_2() {
    let leaves = churn_and_validate(2, 0xC0FFEE_02, 2000);
    assert!(leaves > 400, "workload produced too few leaves: {leaves}");
}

#[test]
fn every_event_invariants_degree_4() {
    let leaves = churn_and_validate(4, 0xC0FFEE_04, 2000);
    assert!(leaves > 400, "workload produced too few leaves: {leaves}");
}

#[test]
fn every_event_invariants_degree_6() {
    let leaves = churn_and_validate(6, 0xC0FFEE_06, 2000);
    assert!(leaves > 400, "workload produced too few leaves: {leaves}");
}

/// Snapshot host `i` of an overlay whose live ids (join order) are
/// `live`: returns an interior host — attached below another host, with
/// children of its own — if one exists.
fn find_interior(tree: &omt_tree::MulticastTree<2>) -> Option<usize> {
    (0..tree.len())
        .find(|&i| matches!(tree.parent(i), ParentRef::Node(_)) && !tree.children(i).is_empty())
}

/// A workload position inside a narrow angular wedge, leaving the rest of
/// the disk empty so source-filling probes (see [`fill_source`]) work.
fn wedge_point(rng: &mut SmallRng) -> Point2 {
    let theta: f64 = rng.random_range(0.0..1.0);
    let r: f64 = rng.random_range(0.2..1.0);
    Point2::new([r * theta.cos(), r * theta.sin()])
}

/// Drives the source to its full out-degree budget by joining probe hosts
/// in the half-plane opposite the workload wedge: a join whose entire
/// ancestor-cell chain holds no open host attaches directly to the
/// source. Returns true once the source is full.
fn fill_source(
    overlay: &mut DynamicOverlay,
    live: &mut Vec<omt_core::HostId>,
    degree: u32,
) -> bool {
    let mut angle: f64 = 1.6;
    while angle < 6.0 {
        if overlay.snapshot().unwrap().source_out_degree() >= degree {
            return true;
        }
        live.push(overlay.join(Point2::new([0.9 * angle.cos(), 0.9 * angle.sin()])));
        angle += 0.37;
    }
    overlay.snapshot().unwrap().source_out_degree() >= degree
}

/// Regression for the degree-cap hole fixed in this change: the old
/// `find_parent_for_excluding` answered "attach to the source" whenever no
/// open candidate survived the banned-subtree filter, without checking
/// source capacity. Drive the overlay (public API only) into states where
/// the source is at its full out-degree budget, then remove an interior
/// host so its orphans must be re-homed — once right after an explicit
/// rebuild and repeatedly mid-churn, so the scenario is exercised on both
/// sides of a `maybe_rebuild` boundary.
#[test]
fn interior_leave_with_full_source_regression() {
    for degree in [2u32, 4, 6] {
        let mut exercised_fresh = 0;
        let mut exercised_churned = 0;
        for seed in 0..40u64 {
            let mut rng = SmallRng::seed_from_u64(0xFACE_0000 + seed * 31 + u64::from(degree));
            let mut overlay = DynamicOverlay::new(Point2::ORIGIN, degree).unwrap();
            let mut live = Vec::new();
            for _ in 0..150 {
                if live.len() < 8 || rng.random::<f64>() < 0.7 {
                    live.push(overlay.join(wedge_point(&mut rng)));
                } else {
                    let i = rng.random_range(0..live.len());
                    overlay.leave(live.remove(i)).unwrap();
                }
            }
            // Once on a freshly rebuilt overlay (churn counter just reset,
            // so the interior leave lands before the next rebuild
            // boundary) …
            overlay.rebuild();
            overlay.assert_invariants();
            if fill_source(&mut overlay, &mut live, degree)
                && interior_leave_under_full_source(&mut overlay, &mut live, degree)
            {
                exercised_fresh += 1;
            }
            // … and repeatedly mid-churn, with rebuilds triggering on
            // their own schedule between attempts.
            for _ in 0..5 {
                for _ in 0..20 {
                    if live.len() < 8 || rng.random::<f64>() < 0.7 {
                        live.push(overlay.join(wedge_point(&mut rng)));
                    } else {
                        let i = rng.random_range(0..live.len());
                        overlay.leave(live.remove(i)).unwrap();
                    }
                }
                if fill_source(&mut overlay, &mut live, degree)
                    && interior_leave_under_full_source(&mut overlay, &mut live, degree)
                {
                    exercised_churned += 1;
                }
            }
        }
        assert!(
            exercised_fresh >= 5 && exercised_churned >= 10,
            "degree {degree}: regression scenario under-exercised \
             (fresh {exercised_fresh}, churned {exercised_churned})"
        );
    }
}

/// If the source is currently full and an interior host exists, removes
/// that host and validates everything; returns whether the scenario fired.
fn interior_leave_under_full_source(
    overlay: &mut DynamicOverlay,
    live: &mut Vec<omt_core::HostId>,
    degree: u32,
) -> bool {
    let tree = overlay.snapshot().unwrap();
    if tree.source_out_degree() < degree {
        return false;
    }
    let Some(victim) = find_interior(&tree) else {
        return false;
    };
    // Snapshot order is join order, which `live` mirrors.
    let id = live.remove(victim);
    overlay.leave(id).unwrap();
    overlay.assert_invariants();
    let after = overlay.snapshot().unwrap();
    after.validate(Some(degree)).unwrap();
    assert!(
        after.source_out_degree() <= degree,
        "re-homing over-attached the source: {} > {degree}",
        after.source_out_degree()
    );
    true
}
