//! Every-event invariant fuzzing for [`DynamicOverlay`] and its sharded
//! batch engine [`ShardedOverlay`].
//!
//! Each workload replays a seeded membership trace (joins : leaves ≈ 2 : 1)
//! and, after **every** event, re-verifies the overlay's internal
//! invariants from scratch (`assert_invariants`: spanning, acyclic,
//! alive-consistency, degree ≤ budget including the source, cache and
//! index exactness) *and* materializes a full snapshot and validates it
//! with the tree crate's independent checker. Rebuild boundaries are
//! crossed naturally many times per trace, so every invariant is exercised
//! both before and after `maybe_rebuild` fires.
//!
//! The sharded suites additionally prove the headline guarantee of the
//! batch engine: for every shard count, batch boundary choice, and thread
//! count, the final overlay is **bit-identical** to applying the same
//! event stream one at a time to an unsharded [`DynamicOverlay`] —
//! positions, parents, cached delays, and the radius compare by bits —
//! while the cross-shard invariants (sector ownership partitions the
//! membership, global degree caps, drained speculation state, coherent
//! batch counters) are re-checked after every batch.
//!
//! **`OMT_HGRID=1` axis.** Setting `OMT_HGRID=1` makes every overlay in
//! this file construct with the hierarchical capacity-summary index
//! (`omt-geom::hgrid`) enabled, so *all* of the campaigns above — the
//! per-event invariant fuzz, both full-source regressions, and the whole
//! sharded equivalence matrix — also run through the indexed parent
//! search. `assert_invariants` reconciles the incrementally-maintained
//! summary counters against a from-scratch index rebuild on every call,
//! which the per-event and per-batch suites invoke after every event /
//! batch. The dedicated tests at the bottom additionally pin indexed vs.
//! scan bit-identity and the empty-cell short-circuit without needing the
//! environment variable.

use omt_core::{BuildError, ChurnEvent, DynamicOverlay, ShardedOverlay};
use omt_geom::Point2;
use omt_rng::rngs::SmallRng;
use omt_rng::{RngExt, SeedableRng};
use omt_tree::{MulticastTree, ParentRef};

/// Replays `events` membership events at the given degree, validating the
/// overlay after every single one. Returns the number of leave events.
fn churn_and_validate(degree: u32, seed: u64, events: usize) -> usize {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut overlay = DynamicOverlay::new(Point2::ORIGIN, degree).unwrap();
    // Live ids in join order (ids are monotone, removal preserves order),
    // mirroring the snapshot's documented host order.
    let mut live = Vec::new();
    let mut leaves = 0;
    for _ in 0..events {
        if live.len() < 8 || rng.random::<f64>() < 2.0 / 3.0 {
            let p = Point2::new([rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)]);
            live.push(overlay.join(p));
        } else {
            let i = rng.random_range(0..live.len());
            let id = live.remove(i);
            overlay.leave(id).unwrap();
            // A departed id must stay invalid forever (ids never recycle).
            assert!(matches!(
                overlay.leave(id),
                Err(BuildError::UnknownHost { .. })
            ));
            leaves += 1;
        }
        overlay.assert_invariants();
        let tree = overlay.snapshot().unwrap();
        tree.validate(Some(degree)).unwrap();
        assert_eq!(tree.len(), live.len());
        assert!(
            (overlay.radius() - tree.radius()).abs() <= 1e-9 * (1.0 + tree.radius()),
            "cached radius {} disagrees with snapshot radius {}",
            overlay.radius(),
            tree.radius()
        );
    }
    assert_eq!(overlay.len(), live.len());
    leaves
}

#[test]
fn every_event_invariants_degree_2() {
    let leaves = churn_and_validate(2, 0xC0FFEE_02, 2000);
    assert!(leaves > 400, "workload produced too few leaves: {leaves}");
}

#[test]
fn every_event_invariants_degree_4() {
    let leaves = churn_and_validate(4, 0xC0FFEE_04, 2000);
    assert!(leaves > 400, "workload produced too few leaves: {leaves}");
}

#[test]
fn every_event_invariants_degree_6() {
    let leaves = churn_and_validate(6, 0xC0FFEE_06, 2000);
    assert!(leaves > 400, "workload produced too few leaves: {leaves}");
}

/// Snapshot host `i` of an overlay whose live ids (join order) are
/// `live`: returns an interior host — attached below another host, with
/// children of its own — if one exists.
fn find_interior(tree: &omt_tree::MulticastTree<2>) -> Option<usize> {
    (0..tree.len())
        .find(|&i| matches!(tree.parent(i), ParentRef::Node(_)) && !tree.children(i).is_empty())
}

/// A workload position inside a narrow angular wedge, leaving the rest of
/// the disk empty so source-filling probes (see [`fill_source`]) work.
fn wedge_point(rng: &mut SmallRng) -> Point2 {
    let theta: f64 = rng.random_range(0.0..1.0);
    let r: f64 = rng.random_range(0.2..1.0);
    Point2::new([r * theta.cos(), r * theta.sin()])
}

/// Drives the source to its full out-degree budget by joining probe hosts
/// in the half-plane opposite the workload wedge: a join whose entire
/// ancestor-cell chain holds no open host attaches directly to the
/// source. Returns true once the source is full.
fn fill_source(
    overlay: &mut DynamicOverlay,
    live: &mut Vec<omt_core::HostId>,
    degree: u32,
) -> bool {
    let mut angle: f64 = 1.6;
    while angle < 6.0 {
        if overlay.snapshot().unwrap().source_out_degree() >= degree {
            return true;
        }
        live.push(overlay.join(Point2::new([0.9 * angle.cos(), 0.9 * angle.sin()])));
        angle += 0.37;
    }
    overlay.snapshot().unwrap().source_out_degree() >= degree
}

/// Regression for the degree-cap hole fixed in this change: the old
/// `find_parent_for_excluding` answered "attach to the source" whenever no
/// open candidate survived the banned-subtree filter, without checking
/// source capacity. Drive the overlay (public API only) into states where
/// the source is at its full out-degree budget, then remove an interior
/// host so its orphans must be re-homed — once right after an explicit
/// rebuild and repeatedly mid-churn, so the scenario is exercised on both
/// sides of a `maybe_rebuild` boundary.
#[test]
fn interior_leave_with_full_source_regression() {
    for degree in [2u32, 4, 6] {
        let mut exercised_fresh = 0;
        let mut exercised_churned = 0;
        for seed in 0..40u64 {
            let mut rng = SmallRng::seed_from_u64(0xFACE_0000 + seed * 31 + u64::from(degree));
            let mut overlay = DynamicOverlay::new(Point2::ORIGIN, degree).unwrap();
            let mut live = Vec::new();
            for _ in 0..150 {
                if live.len() < 8 || rng.random::<f64>() < 0.7 {
                    live.push(overlay.join(wedge_point(&mut rng)));
                } else {
                    let i = rng.random_range(0..live.len());
                    overlay.leave(live.remove(i)).unwrap();
                }
            }
            // Once on a freshly rebuilt overlay (churn counter just reset,
            // so the interior leave lands before the next rebuild
            // boundary) …
            overlay.rebuild();
            overlay.assert_invariants();
            if fill_source(&mut overlay, &mut live, degree)
                && interior_leave_under_full_source(&mut overlay, &mut live, degree)
            {
                exercised_fresh += 1;
            }
            // … and repeatedly mid-churn, with rebuilds triggering on
            // their own schedule between attempts.
            for _ in 0..5 {
                for _ in 0..20 {
                    if live.len() < 8 || rng.random::<f64>() < 0.7 {
                        live.push(overlay.join(wedge_point(&mut rng)));
                    } else {
                        let i = rng.random_range(0..live.len());
                        overlay.leave(live.remove(i)).unwrap();
                    }
                }
                if fill_source(&mut overlay, &mut live, degree)
                    && interior_leave_under_full_source(&mut overlay, &mut live, degree)
                {
                    exercised_churned += 1;
                }
            }
        }
        assert!(
            exercised_fresh >= 5 && exercised_churned >= 10,
            "degree {degree}: regression scenario under-exercised \
             (fresh {exercised_fresh}, churned {exercised_churned})"
        );
    }
}

/// If the source is currently full and an interior host exists, removes
/// that host and validates everything; returns whether the scenario fired.
fn interior_leave_under_full_source(
    overlay: &mut DynamicOverlay,
    live: &mut Vec<omt_core::HostId>,
    degree: u32,
) -> bool {
    let tree = overlay.snapshot().unwrap();
    if tree.source_out_degree() < degree {
        return false;
    }
    let Some(victim) = find_interior(&tree) else {
        return false;
    };
    // Snapshot order is join order, which `live` mirrors.
    let id = live.remove(victim);
    overlay.leave(id).unwrap();
    overlay.assert_invariants();
    let after = overlay.snapshot().unwrap();
    after.validate(Some(degree)).unwrap();
    assert!(
        after.source_out_degree() <= degree,
        "re-homing over-attached the source: {} > {degree}",
        after.source_out_degree()
    );
    true
}

// ---------------------------------------------------------------------------
// Sharded batch engine: equivalence, batch-boundary invariance, cross-shard
// invariant fuzzing, and the cross-shard orphan re-homing regression.
// ---------------------------------------------------------------------------

/// Generates a churn trace (same policy as [`churn_and_validate`]) by
/// running the unsharded reference overlay, returning the event stream and
/// the reference's final snapshot. Leave targets are valid because host
/// ids are the join count at issue time, identical on every replay.
fn build_trace(seed: u64, degree: u32, events: usize) -> (Vec<ChurnEvent>, MulticastTree<2>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut reference = DynamicOverlay::new(Point2::ORIGIN, degree).unwrap();
    let mut live = Vec::new();
    let mut trace = Vec::with_capacity(events);
    for _ in 0..events {
        if live.len() < 8 || rng.random::<f64>() < 2.0 / 3.0 {
            let p = Point2::new([rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)]);
            trace.push(ChurnEvent::Join(p));
            live.push(reference.join(p));
        } else {
            let i = rng.random_range(0..live.len());
            let id = live.remove(i);
            trace.push(ChurnEvent::Leave(id));
            reference.leave(id).unwrap();
        }
    }
    (trace, reference.snapshot().unwrap())
}

/// Bit-level tree equality: same membership in the same order, same
/// parents, and bitwise-equal delays and radius.
fn assert_trees_identical(got: &MulticastTree<2>, want: &MulticastTree<2>, context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: membership size differs");
    for i in 0..got.len() {
        assert_eq!(
            got.points()[i],
            want.points()[i],
            "{context}: position of host {i} differs"
        );
        assert_eq!(
            got.parent(i),
            want.parent(i),
            "{context}: parent of host {i} differs"
        );
        assert_eq!(
            got.depth(i).to_bits(),
            want.depth(i).to_bits(),
            "{context}: delay of host {i} differs in bits"
        );
    }
    assert_eq!(
        got.radius().to_bits(),
        want.radius().to_bits(),
        "{context}: radius differs in bits"
    );
}

/// The headline acceptance matrix: sharded batch application is
/// bit-identical to the unsharded per-event path across seeds × degrees
/// {2,4,6} × shards {1,2,4,8} × batch sizes {1, 7, 64, full-stream}.
#[test]
fn sharded_batches_are_bit_identical_to_unsharded() {
    for (seed, degree) in [
        (0xA1u64, 2u32),
        (0xA2, 4),
        (0xA3, 6),
        (0xB1, 2),
        (0xB2, 4),
        (0xB3, 6),
    ] {
        let (trace, want) = build_trace(seed, degree, 600);
        for shards in [1u32, 2, 4, 8] {
            for batch in [1usize, 7, 64, trace.len()] {
                let mut ov = ShardedOverlay::new(Point2::ORIGIN, degree, shards).unwrap();
                for (b, chunk) in trace.chunks(batch).enumerate() {
                    ov.apply_batch(chunk).unwrap();
                    // Full invariant re-verification after every batch
                    // (sparsely for single-event batches, where the
                    // dedicated fuzz below covers the per-event case).
                    if batch > 1 || b % 13 == 0 {
                        ov.assert_invariants();
                    }
                }
                ov.assert_invariants();
                let got = ov.snapshot().unwrap();
                assert_trees_identical(
                    &got,
                    &want,
                    &format!("seed {seed:#x} degree {degree} shards {shards} batch {batch}"),
                );
            }
        }
    }
}

/// Satellite property: replaying the same stream with different batch
/// boundaries (1 event per batch vs. the whole stream at once) yields
/// bit-identical overlays — any order-dependence in the merge phase, or
/// any speculation leak across a batch boundary, breaks this.
#[test]
fn batch_boundaries_do_not_change_the_overlay() {
    for (seed, degree, shards) in [
        (0xD1u64, 2u32, 4u32),
        (0xD2, 4, 8),
        (0xD3, 6, 2),
        (0xD4, 4, 1),
    ] {
        let (trace, _) = build_trace(seed, degree, 500);
        let mut one = ShardedOverlay::new(Point2::ORIGIN, degree, shards).unwrap();
        for ev in &trace {
            one.apply_batch(std::slice::from_ref(ev)).unwrap();
        }
        let mut full = ShardedOverlay::new(Point2::ORIGIN, degree, shards).unwrap();
        full.apply_batch(&trace).unwrap();
        one.assert_invariants();
        full.assert_invariants();
        assert_trees_identical(
            &one.snapshot().unwrap(),
            &full.snapshot().unwrap(),
            &format!("seed {seed:#x} degree {degree} shards {shards}: 1-event vs full-stream"),
        );
        // The full-stream run must actually have exercised speculation.
        let st = full.last_batch_stats();
        assert_eq!(st.joins + st.leaves, trace.len() as u64);
        assert_eq!(st.fast_path + st.recomputed, st.joins);
    }
}

/// Cross-shard invariant fuzz: a sharded overlay and an unsharded mirror
/// consume the same stream batch by batch; after **every** batch the
/// sharding invariants are re-verified (ownership partition, degree caps,
/// drained speculation, counter coherence — `ShardedOverlay::
/// assert_invariants` — plus the wrapped overlay's full check) and the
/// merged view is snapshot-validated and compared to the mirror by bits.
#[test]
fn cross_shard_fuzz_every_batch_matches_mirror() {
    for (degree, shards) in [(2u32, 4u32), (4, 8), (6, 4), (3, 2)] {
        let mut rng = SmallRng::seed_from_u64(0xF0_0000 + u64::from(degree * 100 + shards));
        let mut sharded = ShardedOverlay::new(Point2::ORIGIN, degree, shards).unwrap();
        let mut mirror = DynamicOverlay::new(Point2::ORIGIN, degree).unwrap();
        let mut live = Vec::new();
        let mut total_fast = 0u64;
        for _batch in 0..30 {
            let mut events = Vec::new();
            for _ in 0..32 {
                if live.len() < 8 || rng.random::<f64>() < 2.0 / 3.0 {
                    let p = Point2::new([rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)]);
                    events.push(ChurnEvent::Join(p));
                } else {
                    let i = rng.random_range(0..live.len());
                    events.push(ChurnEvent::Leave(live.remove(i)));
                }
                // Track the would-be id stream so leave targets are valid.
                if let ChurnEvent::Join(p) = events.last().unwrap() {
                    live.push(mirror.join(*p));
                } else if let ChurnEvent::Leave(id) = events.last().unwrap() {
                    mirror.leave(*id).unwrap();
                }
            }
            let ids = sharded.apply_batch(&events).unwrap();
            assert_eq!(ids.len(), events.len());
            sharded.assert_invariants();
            let got = sharded.snapshot().unwrap();
            got.validate(Some(degree)).unwrap();
            assert_trees_identical(
                &got,
                &mirror.snapshot().unwrap(),
                &format!("degree {degree} shards {shards} batch {_batch}"),
            );
            let st = sharded.last_batch_stats();
            assert_eq!(st.fast_path + st.recomputed, st.joins);
            assert_eq!(st.joins + st.leaves, events.len() as u64);
            total_fast += st.fast_path;
        }
        assert!(
            total_fast > 0,
            "degree {degree} shards {shards}: speculation never took the fast path"
        );
    }
}

/// Sharded analogue of the full-source regression: engineer leaves near a
/// sector boundary whose local candidates are exhausted, so orphan
/// re-homing must attach across shards — at degrees {2,4,6}, once right
/// after an explicit rebuild and repeatedly mid-churn (both sides of the
/// rebuild boundary) — and prove via the unsharded mirror that the result
/// is still bit-identical, with the cross-shard traffic visible in
/// `BatchStats`.
#[test]
fn cross_shard_orphan_rehoming_regression() {
    for degree in [2u32, 4, 6] {
        let mut exercised_fresh = 0u32;
        let mut exercised_churned = 0u32;
        let mut cross_writes = 0u64;
        let mut cross_leaves = 0u64;
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(0xB0A_0000 + seed * 37 + u64::from(degree));
            let mut sharded = ShardedOverlay::new(Point2::ORIGIN, degree, 8).unwrap();
            let mut mirror = DynamicOverlay::new(Point2::ORIGIN, degree).unwrap();
            let mut live = Vec::new();
            // The wedge workload concentrates hosts in ~2 adjacent ring-3
            // sectors, so interior leaves there orphan hosts whose local
            // candidates saturate quickly at small degrees.
            let churn = |sharded: &mut ShardedOverlay,
                         mirror: &mut DynamicOverlay,
                         live: &mut Vec<omt_core::HostId>,
                         rng: &mut SmallRng,
                         steps: usize| {
                let mut events = Vec::new();
                for _ in 0..steps {
                    if live.len() < 8 || rng.random::<f64>() < 0.7 {
                        let p = wedge_point(rng);
                        events.push(ChurnEvent::Join(p));
                        live.push(mirror.join(p));
                    } else {
                        let i = rng.random_range(0..live.len());
                        let id = live.remove(i);
                        events.push(ChurnEvent::Leave(id));
                        mirror.leave(id).unwrap();
                    }
                }
                sharded.apply_batch(&events).unwrap();
            };
            churn(&mut sharded, &mut mirror, &mut live, &mut rng, 150);
            // Fresh side of the rebuild boundary.
            sharded.rebuild();
            mirror.rebuild();
            sharded.assert_invariants();
            if sharded_interior_leave(&mut sharded, &mut mirror, &mut live, degree) {
                exercised_fresh += 1;
                let st = sharded.last_batch_stats();
                cross_writes += st.cross_shard_writes;
                cross_leaves += st.cross_shard_leaves;
            }
            // Churned side: rebuilds fire on their own schedule.
            for _ in 0..4 {
                churn(&mut sharded, &mut mirror, &mut live, &mut rng, 20);
                if sharded_interior_leave(&mut sharded, &mut mirror, &mut live, degree) {
                    exercised_churned += 1;
                    let st = sharded.last_batch_stats();
                    cross_writes += st.cross_shard_writes;
                    cross_leaves += st.cross_shard_leaves;
                }
            }
        }
        assert!(
            exercised_fresh >= 5 && exercised_churned >= 8,
            "degree {degree}: scenario under-exercised \
             (fresh {exercised_fresh}, churned {exercised_churned})"
        );
        assert!(
            cross_writes > 0,
            "degree {degree}: no cross-shard writes observed \
             (leaves {cross_leaves}, writes {cross_writes})"
        );
    }
}

/// Fills the source via probe joins opposite the wedge (mirrored on both
/// overlays), then removes an interior host through the batch API and
/// verifies invariants, the degree cap, and bit-identity with the mirror.
/// Returns whether the scenario fired.
fn sharded_interior_leave(
    sharded: &mut ShardedOverlay,
    mirror: &mut DynamicOverlay,
    live: &mut Vec<omt_core::HostId>,
    degree: u32,
) -> bool {
    // Drive the source to its full budget so re-homing cannot fall back to
    // it (same probe pattern as the unsharded regression above).
    let mut angle: f64 = 1.6;
    while angle < 6.0 && sharded.snapshot().unwrap().source_out_degree() < degree {
        let p = Point2::new([0.9 * angle.cos(), 0.9 * angle.sin()]);
        let ids = sharded.apply_batch(&[ChurnEvent::Join(p)]).unwrap();
        let mid = mirror.join(p);
        assert_eq!(ids[0], Some(mid));
        live.push(mid);
        angle += 0.37;
    }
    let tree = sharded.snapshot().unwrap();
    if tree.source_out_degree() < degree {
        return false;
    }
    let Some(victim) = find_interior(&tree) else {
        return false;
    };
    let id = live.remove(victim);
    sharded.apply_batch(&[ChurnEvent::Leave(id)]).unwrap();
    mirror.leave(id).unwrap();
    sharded.assert_invariants();
    let after = sharded.snapshot().unwrap();
    after.validate(Some(degree)).unwrap();
    assert!(
        after.source_out_degree() <= degree,
        "re-homing over-attached the source: {} > {degree}",
        after.source_out_degree()
    );
    assert_trees_identical(
        &after,
        &mirror.snapshot().unwrap(),
        "after cross-shard interior leave",
    );
    true
}

// ---------------------------------------------------------------------------
// Hierarchical capacity-summary index: indexed vs. scan bit-identity and the
// empty-cell short-circuit regression (no environment variable needed).
// ---------------------------------------------------------------------------

/// Replays the same churn trace into a scan-only overlay and an indexed
/// one, comparing the parent *choice* for every join before applying it
/// and reconciling the incremental summaries against a from-scratch index
/// rebuild after every event (`assert_invariants` does exactly that when
/// the index is on). Ends with a bit-level snapshot comparison.
#[test]
fn hgrid_indexed_churn_is_bit_identical_to_scan() {
    for (seed, degree) in [(0xE1u64, 2u32), (0xE2, 4), (0xE3, 6)] {
        let (trace, _) = build_trace(seed, degree, 600);
        let mut scan = DynamicOverlay::new(Point2::ORIGIN, degree).unwrap();
        scan.set_hgrid(false);
        let mut indexed = DynamicOverlay::new(Point2::ORIGIN, degree).unwrap();
        indexed.set_hgrid(true);
        assert!(indexed.hgrid_enabled() && !scan.hgrid_enabled());
        for (i, ev) in trace.iter().enumerate() {
            match ev {
                ChurnEvent::Join(p) => {
                    assert_eq!(
                        scan.peek_parent(p),
                        indexed.peek_parent(p),
                        "seed {seed:#x} degree {degree} event {i}: \
                         indexed parent search disagrees with the scan"
                    );
                    assert_eq!(scan.join(*p), indexed.join(*p));
                }
                ChurnEvent::Leave(id) => {
                    scan.leave(*id).unwrap();
                    indexed.leave(*id).unwrap();
                }
            }
            indexed.assert_invariants();
            if i % 25 == 0 {
                assert_trees_identical(
                    &indexed.snapshot().unwrap(),
                    &scan.snapshot().unwrap(),
                    &format!("seed {seed:#x} degree {degree} event {i}"),
                );
            }
        }
        assert_trees_identical(
            &indexed.snapshot().unwrap(),
            &scan.snapshot().unwrap(),
            &format!("seed {seed:#x} degree {degree} final"),
        );
        // The index must have actually saved work for the run to mean
        // anything: fewer open-list consultations than the scan path.
        let (scan_cells, _) = scan.search_probes();
        let (indexed_cells, _) = indexed.search_probes();
        assert!(
            indexed_cells < scan_cells,
            "seed {seed:#x} degree {degree}: index did not reduce scans \
             ({indexed_cells} vs {scan_cells})"
        );
    }
}

/// Regression for the empty-cell scan waste fixed in this change: the
/// open-host index used to be consulted (and its free-list walked) even
/// for cells the capacity index knows are empty. A join whose entire
/// ancestor-cell chain is empty must now touch **zero** open lists when
/// the index is on — and still pick the identical parent (the source).
#[test]
fn empty_cell_join_scans_nothing_under_the_index() {
    let mut scan = DynamicOverlay::new(Point2::ORIGIN, 4).unwrap();
    scan.set_hgrid(false);
    let mut indexed = DynamicOverlay::new(Point2::ORIGIN, 4).unwrap();
    indexed.set_hgrid(true);
    // A tight 3-host cluster near angle 0 at radius ~0.9: after a rebuild
    // the grid's occupied cells all sit in the cluster's wedge, and the
    // source still has open degree budget.
    for i in 0..3 {
        let a = 0.02 * f64::from(i);
        let p = Point2::new([0.9 * a.cos(), 0.9 * a.sin()]);
        scan.join(p);
        indexed.join(p);
    }
    scan.rebuild();
    indexed.rebuild();
    indexed.assert_invariants();
    // A join on the far side of the disk: every cell on its ancestor
    // chain is empty, so the answer is the source either way.
    let q = Point2::new([-0.9, 0.0]);
    scan.reset_search_probes();
    indexed.reset_search_probes();
    let ps = scan.peek_parent(&q);
    let pi = indexed.peek_parent(&q);
    assert_eq!(ps, pi, "index changed the empty-chain answer");
    assert_eq!(ps, None, "expected a fallback to the source");
    let (scan_cells, _) = scan.search_probes();
    assert!(
        scan_cells > 0,
        "scan path consulted no open lists — scenario is degenerate"
    );
    assert_eq!(
        indexed.search_probes(),
        (0, 0),
        "indexed path consulted open lists for cells known to be empty"
    );
    // The actual join stays bit-identical too.
    assert_eq!(scan.join(q), indexed.join(q));
    indexed.assert_invariants();
    assert_trees_identical(
        &indexed.snapshot().unwrap(),
        &scan.snapshot().unwrap(),
        "after the empty-chain join",
    );
}
