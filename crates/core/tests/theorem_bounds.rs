//! The paper's headline guarantees, checked end to end on seeded
//! instances: Theorem 1's constant factors for the bisection algorithm
//! (5 at out-degree 4, 9 at out-degree 2) on ring-segment point sets,
//! and Theorem 2's delay envelope for `Polar_Grid` at n ∈ {1k, 10k}.

use omt_core::{bounds, Bisection, PolarGridBuilder};
use omt_geom::{Disk, Point2, PolarPoint, Region, RingSegment};
use omt_rng::rngs::SmallRng;
use omt_rng::{RngExt, SeedableRng};

/// A seeded instance inside a thin, narrow ring segment — the geometry
/// Section II analyses: `r > 0.6·R` and `sin a > 5a/6`.
struct SegmentInstance {
    source: Point2,
    points: Vec<Point2>,
    /// Max direct source→receiver distance: a lower bound on the delay
    /// of ANY multicast tree over the instance.
    opt_lower: f64,
}

fn segment_instance(seed: u64) -> SegmentInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let r_hi = rng.random_range(0.5f64..3.0);
    let r_lo = r_hi * rng.random_range(0.65f64..0.95);
    let width = rng.random_range(0.05f64..0.8);
    let theta_lo = rng.random_range(0.0f64..core::f64::consts::TAU - width);
    let seg = RingSegment::new(r_lo, r_hi, theta_lo, theta_lo + width);
    // The Section II preconditions for the constant-factor analysis.
    assert!(seg.r_lo() > 0.6 * seg.r_hi(), "segment not thin enough");
    let a = seg.angle_width();
    assert!(a.sin() > 5.0 * a / 6.0, "segment not narrow enough");

    let sample = |rng: &mut SmallRng| {
        let r = rng.random_range(seg.r_lo()..seg.r_hi());
        let t = rng.random_range(theta_lo..theta_lo + width);
        PolarPoint::new(r, t).to_cartesian()
    };
    let source = sample(&mut rng);
    let n = rng.random_range(2usize..200);
    let points: Vec<Point2> = (0..n).map(|_| sample(&mut rng)).collect();
    let opt_lower = points
        .iter()
        .map(|p| source.distance(p))
        .fold(0.0f64, f64::max);
    assert!(opt_lower > 0.0, "degenerate instance");
    SegmentInstance {
        source,
        points,
        opt_lower,
    }
}

/// Theorem 1, out-degree 4: the bisection tree's delay is within a
/// factor 5 of the optimum on every seeded ring-segment instance.
#[test]
fn theorem1_factor5_at_degree4() {
    let builder = Bisection::new(4).unwrap();
    for seed in 0..60u64 {
        let inst = segment_instance(seed);
        let tree = builder.build(inst.source, &inst.points).unwrap();
        tree.validate(Some(4)).unwrap();
        let ratio = tree.radius() / inst.opt_lower;
        assert!(
            ratio <= 5.0 + 1e-9,
            "seed {seed}: factor {ratio} exceeds 5 (radius {}, opt >= {})",
            tree.radius(),
            inst.opt_lower
        );
    }
}

/// Theorem 1, out-degree 2: the binary variant stays within a factor 9.
#[test]
fn theorem1_factor9_at_degree2() {
    let builder = Bisection::new(2).unwrap();
    for seed in 0..60u64 {
        let inst = segment_instance(seed);
        let tree = builder.build(inst.source, &inst.points).unwrap();
        tree.validate(Some(2)).unwrap();
        let ratio = tree.radius() / inst.opt_lower;
        assert!(
            ratio <= 9.0 + 1e-9,
            "seed {seed}: factor {ratio} exceeds 9 (radius {}, opt >= {})",
            tree.radius(),
            inst.opt_lower
        );
    }
}

/// Equations (1) and (2) themselves: on a thin, narrow segment the
/// analytic path bounds are below the Theorem-1 factors times the
/// radial lower bound whenever the radial extent dominates — checked
/// here in the regime the paper uses them (far-pole covering frames,
/// where `R·a` is small against `R - r`).
#[test]
fn equations_1_and_2_respect_the_factors_in_the_covering_regime() {
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..200 {
        // A covering-frame-like segment: radial extent comparable to the
        // arc extent of a faraway pole (r/R ~ 0.95, tiny angle).
        let r_hi = rng.random_range(10.0f64..40.0);
        let r_lo = r_hi * rng.random_range(0.95f64..0.99);
        let width = rng.random_range(1e-4f64..0.02);
        let seg = RingSegment::new(r_lo, r_hi, 1.0, 1.0 + width);
        let q = rng.random_range(r_lo..r_hi);
        // Any tree over a segment-spanning instance pays at least the
        // larger radial gap; the chord across the arc is a second lower
        // bound. Use their max.
        let radial = (r_hi - q).max(q - r_lo);
        let chord = 2.0 * r_lo * (width / 2.0).sin();
        let opt = radial.max(chord);
        assert!(bounds::bisection_bound_deg4(&seg, q) <= 5.0 * opt + 1e-9);
        assert!(bounds::bisection_bound_deg2(&seg, q) <= 9.0 * opt + 1e-9);
    }
}

/// Theorem 2's envelope at the sizes the issue pins: for n ∈ {1k, 10k}
/// the built tree's delay stays under the equation-(7) bound at the
/// selected ring count, and the reported bound matches the closed form.
#[test]
fn theorem2_envelope_at_1k_and_10k() {
    for &n in &[1_000usize, 10_000] {
        for &deg in &[2u32, 6] {
            for seed in 0..3u64 {
                let mut rng = SmallRng::seed_from_u64(seed ^ (n as u64) << 8);
                let pts = Disk::unit().sample_n(&mut rng, n);
                let (tree, report) = PolarGridBuilder::new()
                    .max_out_degree(deg)
                    .build_with_report(Point2::ORIGIN, &pts)
                    .unwrap();
                assert!(
                    tree.radius() <= report.bound + 1e-9,
                    "n={n} deg={deg} seed={seed}: radius {} above bound {}",
                    tree.radius(),
                    report.bound
                );
                let rho = report.lower_bound * (1.0 + 1e-9);
                let closed = bounds::upper_bound_eq7(report.rings, deg, rho);
                assert!(
                    (report.bound - closed).abs() < 1e-9 * closed.max(1.0),
                    "n={n} deg={deg}: reported {} vs closed-form {}",
                    report.bound,
                    closed
                );
                assert!(
                    tree.radius() >= report.lower_bound - 1e-9,
                    "radius below the instance lower bound"
                );
            }
        }
    }
}
