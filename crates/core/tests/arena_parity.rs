//! Differential parity harness for the arena/SoA construction path.
//!
//! `build_store_with_report` is specified to be **bit-identical** to the
//! legacy `build_with_report` on the same input: same radii, same edge
//! lists, same reports. This holds because every stage of the store path
//! is a provably order-preserving twin of its legacy counterpart — the
//! store's polar columns equal the AoS conversion bit for bit, the
//! counting-sort partition is shared, the in-place window partitions
//! replicate the legacy `Vec` manipulations' surviving order, and the
//! arena replays the exact attachment schedule of the `TreeBuilder`.
//! This suite proves the claim empirically over (n × seed × degree ×
//! threads) grids in two and three dimensions, plus the degenerate and
//! error corners.
//!
//! The 1k/10k configurations run everywhere; the 100k configuration of
//! the acceptance matrix is `#[ignore]`d (debug-build cost) and runs in
//! the release-mode CI job.

use omt_core::{BuildError, PolarGridBuilder, RepStrategy, SphereGridBuilder};
use omt_geom::{Ball, Disk, Point2, Point3, PointStore2, PointStore3, Region};
use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;

const SEEDS: [u64; 2] = [2004, 2005];
const DEGREES: [u32; 3] = [2, 4, 6];
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Builds the same sample both ways: an AoS point vector for the legacy
/// path and an SoA store for the arena path, from identical RNG streams.
fn sample_both_2d(n: usize, seed: u64) -> (Vec<Point2>, PointStore2) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let points = Disk::unit().sample_n(&mut rng, n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let store = PointStore2::sample_region(Point2::ORIGIN, &Disk::unit(), &mut rng, n);
    (points, store)
}

fn sample_both_3d(n: usize, seed: u64) -> (Vec<Point3>, PointStore3) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let points = Ball::<3>::unit().sample_n(&mut rng, n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let store = PointStore3::sample_region(Point3::ORIGIN, &Ball::<3>::unit(), &mut rng, n);
    (points, store)
}

fn check_parity_2d(n: usize, seed: u64, deg: u32, threads: usize) {
    let (points, store) = sample_both_2d(n, seed);
    let builder = PolarGridBuilder::new().max_out_degree(deg).threads(threads);
    let (legacy, legacy_report) = builder
        .build_with_report(Point2::ORIGIN, &points)
        .expect("legacy build");
    let (arena, arena_report) = builder
        .build_store_with_report(&store)
        .expect("store build");
    let label = format!("2d n={n} seed={seed} deg={deg} threads={threads}");
    assert_eq!(legacy, arena, "{label}: tree");
    assert_eq!(legacy_report, arena_report, "{label}: report");
    assert_eq!(
        legacy.radius().to_bits(),
        arena.radius().to_bits(),
        "{label}: radius bits"
    );
}

fn check_parity_3d(n: usize, seed: u64, deg: u32, threads: usize) {
    let (points, store) = sample_both_3d(n, seed);
    let builder = SphereGridBuilder::new()
        .max_out_degree(deg)
        .threads(threads);
    let (legacy, legacy_report) = builder
        .build_with_report(Point3::ORIGIN, &points)
        .expect("legacy build");
    let (arena, arena_report) = builder
        .build_store_with_report(&store)
        .expect("store build");
    let label = format!("3d n={n} seed={seed} deg={deg} threads={threads}");
    assert_eq!(legacy, arena, "{label}: tree");
    assert_eq!(legacy_report, arena_report, "{label}: report");
}

#[test]
fn arena_matches_legacy_2d_small() {
    for n in [1_000usize, 10_000] {
        for seed in SEEDS {
            for deg in DEGREES {
                for threads in THREADS {
                    check_parity_2d(n, seed, deg, threads);
                }
            }
        }
    }
}

#[test]
#[ignore = "acceptance matrix at n = 100k; run in release (CI large-n job)"]
fn arena_matches_legacy_2d_100k() {
    for seed in SEEDS {
        for deg in DEGREES {
            for threads in THREADS {
                check_parity_2d(100_000, seed, deg, threads);
            }
        }
    }
}

#[test]
fn arena_matches_legacy_3d() {
    for n in [500usize, 4_000] {
        for seed in SEEDS {
            // Cover both wiring regimes: degree-2 and the paper's
            // degree-10 construction, plus an intermediate budget.
            for deg in [2u32, 6, 10] {
                for threads in THREADS {
                    check_parity_3d(n, seed, deg, threads);
                }
            }
        }
    }
}

#[test]
fn arena_matches_legacy_off_origin_source() {
    let source = Point2::new([0.25, -0.4]);
    let mut rng = SmallRng::seed_from_u64(7);
    let points = Disk::unit().sample_n(&mut rng, 3_000);
    let mut rng = SmallRng::seed_from_u64(7);
    let store = PointStore2::sample_region(source, &Disk::unit(), &mut rng, 3_000);
    for deg in DEGREES {
        let builder = PolarGridBuilder::new().max_out_degree(deg);
        let legacy = builder.build(source, &points).unwrap();
        let arena = builder.build_store(&store).unwrap();
        assert_eq!(legacy, arena, "off-origin deg={deg}");
    }
}

#[test]
fn arena_matches_legacy_rep_strategies() {
    let (points, store) = sample_both_2d(2_000, 2004);
    for strategy in [
        RepStrategy::InnerArcMid,
        RepStrategy::MinRadius,
        RepStrategy::MaxRadius,
        RepStrategy::First,
    ] {
        let builder = PolarGridBuilder::new()
            .max_out_degree(6)
            .representative_strategy(strategy);
        let legacy = builder.build(Point2::ORIGIN, &points).unwrap();
        let arena = builder.build_store(&store).unwrap();
        assert_eq!(legacy, arena, "{strategy:?}");
    }
}

#[test]
fn arena_matches_legacy_rings_override() {
    let (points, store) = sample_both_2d(2_000, 2005);
    let (_, auto) = PolarGridBuilder::new()
        .build_with_report(Point2::ORIGIN, &points)
        .unwrap();
    assert!(auto.rings >= 1);
    for k in [auto.rings - 1, auto.rings] {
        let builder = PolarGridBuilder::new().rings(k);
        let (legacy, lr) = builder.build_with_report(Point2::ORIGIN, &points).unwrap();
        let (arena, ar) = builder.build_store_with_report(&store).unwrap();
        assert_eq!(legacy, arena, "rings={k}");
        assert_eq!(lr, ar, "rings={k}: report");
    }
}

#[test]
fn degenerate_inputs_match() {
    // Empty input.
    let empty = PointStore2::new(Point2::ORIGIN);
    let (tree, report) = PolarGridBuilder::new()
        .build_store_with_report(&empty)
        .unwrap();
    let (legacy, legacy_report) = PolarGridBuilder::new()
        .build_with_report(Point2::ORIGIN, &[])
        .unwrap();
    assert_eq!(tree, legacy);
    assert_eq!(report, legacy_report);

    // All points at the source (lower bound 0 → fan-out path).
    let coincident = vec![Point2::new([1.0, 1.0]); 37];
    let store = PointStore2::from_points(Point2::new([1.0, 1.0]), &coincident);
    for deg in DEGREES {
        let builder = PolarGridBuilder::new().max_out_degree(deg);
        let (legacy, lr) = builder
            .build_with_report(Point2::new([1.0, 1.0]), &coincident)
            .unwrap();
        let (arena, ar) = builder.build_store_with_report(&store).unwrap();
        assert_eq!(legacy, arena, "coincident deg={deg}");
        assert_eq!(lr, ar, "coincident deg={deg}: report");
    }

    // Same in 3-D.
    let coincident3 = vec![Point3::new([0.5, 0.5, 0.5]); 19];
    let store3 = PointStore3::from_points(Point3::new([0.5, 0.5, 0.5]), &coincident3);
    let legacy3 = SphereGridBuilder::new()
        .max_out_degree(2)
        .build(Point3::new([0.5, 0.5, 0.5]), &coincident3)
        .unwrap();
    let arena3 = SphereGridBuilder::new()
        .max_out_degree(2)
        .build_store(&store3)
        .unwrap();
    assert_eq!(legacy3, arena3);
}

/// Seeded golden radii on the store path: pins the exact bit pattern of
/// the tree radius at every thread count so any numeric drift anywhere in
/// the pipeline (sampling, polar conversion, partition, bisection, arena,
/// the parallel direct fill) is caught, not just drift relative to the
/// legacy path. Degrees 2 and 4 share a radius because both use the
/// degree-2 core wiring and the binary bisection reaches the same deepest
/// leaf.
fn check_golden_radii(n: usize, expected: [(u32, u64); 3]) {
    let mut rng = SmallRng::seed_from_u64(2004);
    let store = PointStore2::sample_region(Point2::ORIGIN, &Disk::unit(), &mut rng, n);
    for (deg, bits) in expected {
        for threads in THREADS {
            let tree = PolarGridBuilder::new()
                .max_out_degree(deg)
                .threads(threads)
                .build_store(&store)
                .unwrap();
            assert_eq!(
                tree.radius().to_bits(),
                bits,
                "n {n} deg {deg} threads {threads}: radius drifted to {:?}",
                tree.radius()
            );
        }
    }
}

#[test]
fn golden_radii_10k() {
    check_golden_radii(
        10_000,
        [
            (2, 0x3ff2_bef1_41df_70e8), // 1.1716167996556184
            (4, 0x3ff2_bef1_41df_70e8), // 1.1716167996556184
            (6, 0x3ff1_d3ac_fc37_3175), // 1.1141786434337437
        ],
    );
}

#[test]
#[ignore = "n = 100k; run in release (CI large-n job)"]
fn golden_radii_100k() {
    check_golden_radii(
        100_000,
        [
            (2, 0x3ff1_0cb5_b09a_12ed), // 1.0656029604444328
            (4, 0x3ff1_0cb5_b09a_12ed), // 1.0656029604444328
            (6, 0x3ff0_9589_4b92_e386), // 1.0365078880406329
        ],
    );
}

#[test]
#[ignore = "n = 1M; run in release (CI large-n job)"]
fn golden_radii_1m() {
    check_golden_radii(
        1_000_000,
        [
            (2, 0x3ff0_62aa_5aa0_2465), // 1.0240882434902912
            (4, 0x3ff0_62aa_5aa0_2465), // 1.0240882434902912
            (6, 0x3ff0_2c67_fc12_603a), // 1.0108413549951494
        ],
    );
}

#[test]
fn error_cases_match() {
    let (points, store) = sample_both_2d(100, 1);

    // Degree too small.
    assert!(matches!(
        PolarGridBuilder::new()
            .max_out_degree(1)
            .build_store(&store),
        Err(BuildError::DegreeTooSmall { got: 1, min: 2 })
    ));

    // Non-finite source.
    let bad_source = PointStore2::from_points(Point2::new([f64::NAN, 0.0]), &points);
    assert!(matches!(
        PolarGridBuilder::new().build_store(&bad_source),
        Err(BuildError::NonFiniteSource)
    ));

    // Non-finite point, reported at the same index as the legacy path.
    let mut bad = points.clone();
    bad[41] = Point2::new([0.1, f64::INFINITY]);
    let bad_store = PointStore2::from_points(Point2::ORIGIN, &bad);
    let legacy_err = PolarGridBuilder::new()
        .build(Point2::ORIGIN, &bad)
        .unwrap_err();
    let store_err = PolarGridBuilder::new().build_store(&bad_store).unwrap_err();
    assert!(matches!(
        legacy_err,
        BuildError::NonFinitePoint { index: 41 }
    ));
    assert_eq!(format!("{legacy_err:?}"), format!("{store_err:?}"));

    // Infeasible rings override.
    let (_, auto) = PolarGridBuilder::new()
        .build_with_report(Point2::ORIGIN, &points)
        .unwrap();
    assert!(matches!(
        PolarGridBuilder::new()
            .rings(auto.rings + 9)
            .build_store(&store),
        Err(BuildError::InfeasibleRings { .. })
    ));

    // 3-D error parity.
    let store3 = PointStore3::from_points(Point3::new([0.0, f64::NAN, 0.0]), &[]);
    assert!(matches!(
        SphereGridBuilder::new().build_store(&store3),
        Err(BuildError::NonFiniteSource)
    ));
}
