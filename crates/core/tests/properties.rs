//! Property-based tests of the core algorithms, beyond the uniform-disk
//! workloads: clustered, collinear, duplicated, and adversarial inputs.

use omt_core::{Bisection, PolarGridBuilder, SphereGridBuilder};
use omt_geom::{Point2, Point3};
use omt_rng::proptest::{any, collection, Strategy};
use omt_rng::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, props};

/// Mixed adversarial point clouds: clusters, lines, rings and noise.
fn adversarial_points() -> impl Strategy<Value = Vec<Point2>> {
    let cluster = (any::<u8>(), 1usize..40).prop_map(|(c, m)| {
        let base = Point2::new([f64::from(c % 16) * 0.3 - 2.0, f64::from(c / 16) * 0.3 - 2.0]);
        (0..m)
            .map(|i| base + Point2::new([i as f64 * 1e-4, (i % 3) as f64 * 1e-4]))
            .collect::<Vec<_>>()
    });
    let line = (0.0f64..6.28, 1usize..40).prop_map(|(angle, m)| {
        (1..=m)
            .map(|i| {
                let r = i as f64 * 0.05;
                Point2::new([r * angle.cos(), r * angle.sin()])
            })
            .collect::<Vec<_>>()
    });
    let ring = (0.1f64..3.0, 1usize..40).prop_map(|(radius, m)| {
        (0..m)
            .map(|i| {
                let t = i as f64 / m as f64 * core::f64::consts::TAU;
                Point2::new([radius * t.cos(), radius * t.sin()])
            })
            .collect::<Vec<_>>()
    });
    let noise = collection::vec(
        (-3.0f64..3.0, -3.0f64..3.0).prop_map(|(x, y)| Point2::new([x, y])),
        0..40,
    );
    collection::vec(prop_oneof![cluster, line, ring, noise], 1..4)
        .prop_map(|chunks| chunks.into_iter().flatten().collect())
}

props! {
    #[cases(48)]
    fn polar_grid_survives_adversarial_inputs(points in adversarial_points()) {
        for deg in [2u32, 6] {
            let (tree, report) = PolarGridBuilder::new()
                .max_out_degree(deg)
                .build_with_report(Point2::ORIGIN, &points)
                .unwrap();
            tree.validate(Some(deg)).unwrap();
            prop_assert!(report.delay <= report.bound + 1e-9,
                "deg {deg}: delay {} > bound {}", report.delay, report.bound);
        }
    }

    #[cases(48)]
    fn bisection_survives_adversarial_inputs(points in adversarial_points()) {
        for deg in [2u32, 4] {
            let tree = Bisection::new(deg).unwrap().build(Point2::ORIGIN, &points).unwrap();
            tree.validate(Some(deg)).unwrap();
        }
    }

    #[cases(48)]
    fn scaling_and_translation_equivariance(
        points in collection::vec(
            (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(x, y)| Point2::new([x, y])),
            2..60,
        ),
        scale in 0.1f64..50.0,
        tx in -100.0f64..100.0,
        ty in -100.0f64..100.0,
    ) {
        // The construction is similarity-equivariant: scaling and
        // translating the input scales the radius and preserves topology.
        let base = PolarGridBuilder::new().build(Point2::ORIGIN, &points).unwrap();
        let moved: Vec<Point2> = points
            .iter()
            .map(|p| *p * scale + Point2::new([tx, ty]))
            .collect();
        let other = PolarGridBuilder::new()
            .build(Point2::new([tx, ty]), &moved)
            .unwrap();
        prop_assert!(
            (other.radius() - base.radius() * scale).abs()
                < 1e-6 * (1.0 + base.radius() * scale)
        );
        for i in 0..points.len() {
            prop_assert_eq!(base.parent(i), other.parent(i));
        }
    }

    #[cases(48)]
    fn source_among_the_points(points in adversarial_points(), pick in any::<u64>()) {
        // Using one of the points as the source must work (zero-distance
        // receivers included).
        prop_assume!(!points.is_empty());
        let source = points[(pick % points.len() as u64) as usize];
        let tree = PolarGridBuilder::new().build(source, &points).unwrap();
        tree.validate(Some(6)).unwrap();
    }

    #[cases(48)]
    fn sphere_grid_survives_degenerate_3d(
        m in 1usize..50,
        axis in 0usize..3,
    ) {
        // All points on one coordinate axis — degenerate angular spread.
        let points: Vec<Point3> = (1..=m)
            .map(|i| {
                let mut c = [0.0; 3];
                c[axis] = i as f64 * 0.1;
                Point3::new(c)
            })
            .collect();
        let tree = SphereGridBuilder::new().build(Point3::ORIGIN, &points).unwrap();
        tree.validate(Some(10)).unwrap();
    }

    #[cases(48)]
    fn report_internal_consistency(points in adversarial_points()) {
        let (tree, report) = PolarGridBuilder::new()
            .build_with_report(Point2::ORIGIN, &points)
            .unwrap();
        prop_assert_eq!(report.cells, (1usize << (report.rings + 1)) - 1);
        prop_assert!(report.occupied_cells <= report.cells);
        prop_assert!(report.core_delay <= report.delay + 1e-12);
        prop_assert!((report.delay - tree.radius()).abs() < 1e-12);
    }
}
