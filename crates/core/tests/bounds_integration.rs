//! Integration checks binding the analytic bounds to the builders over a
//! wide grid of configurations — the belt-and-suspenders layer for the
//! formulas EXPERIMENTS.md reports against.

use omt_core::{bounds, PolarGridBuilder, SphereGridBuilder};
use omt_geom::{Ball, Disk, Point2, Point3, Region};
use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;

/// Equation (7) holds for every (n, degree, seed) cell, and the reported
/// bound equals the closed form at the selected k.
#[test]
fn equation7_sweep() {
    for &n in &[3usize, 17, 64, 256, 1024, 4096] {
        for &deg in &[2u32, 3, 6, 9] {
            for seed in 0..3u64 {
                let mut rng = SmallRng::seed_from_u64(seed * 1000 + n as u64);
                let pts = Disk::unit().sample_n(&mut rng, n);
                let (tree, report) = PolarGridBuilder::new()
                    .max_out_degree(deg)
                    .build_with_report(Point2::ORIGIN, &pts)
                    .unwrap();
                assert!(
                    tree.radius() <= report.bound + 1e-9,
                    "n={n} deg={deg} seed={seed}: {} > {}",
                    tree.radius(),
                    report.bound
                );
                let rho = report.lower_bound * (1.0 + 1e-9);
                let closed = bounds::upper_bound_eq7(report.rings, deg, rho);
                assert!(
                    (report.bound - closed).abs() < 1e-9,
                    "reported bound diverges from the closed form"
                );
            }
        }
    }
}

/// The selected ring count never falls below the equation-(5) estimate on
/// uniform disks (whp claim, checked over many seeds).
#[test]
fn equation5_sweep() {
    let mut violations = 0;
    let trials = 40;
    for seed in 0..trials {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = Disk::unit().sample_n(&mut rng, 2048);
        let (_, report) = PolarGridBuilder::new()
            .build_with_report(Point2::ORIGIN, &pts)
            .unwrap();
        if report.rings < bounds::min_rings_estimate(2048) {
            violations += 1;
        }
    }
    // "With high probability": tolerate at most one unlucky draw.
    assert!(violations <= 1, "{violations}/{trials} eq-(5) violations");
}

/// The 3-D analogue bound holds across degrees and sizes.
#[test]
fn sphere_bound_sweep() {
    for &n in &[5usize, 50, 500, 5000] {
        for &deg in &[2u32, 10] {
            let mut rng = SmallRng::seed_from_u64(n as u64 + u64::from(deg));
            let pts = Ball::<3>::unit().sample_n(&mut rng, n);
            let (tree, report) = SphereGridBuilder::new()
                .max_out_degree(deg)
                .build_with_report(Point3::ORIGIN, &pts)
                .unwrap();
            assert!(
                tree.radius() <= report.bound + 1e-9,
                "n={n} deg={deg}: {} > {}",
                tree.radius(),
                report.bound
            );
        }
    }
}

/// Grid cell counts and bound monotonicity: more rings, tighter bound.
#[test]
fn bound_monotone_in_rings() {
    let mut rng = SmallRng::seed_from_u64(9);
    let pts = Disk::unit().sample_n(&mut rng, 4096);
    let (_, auto) = PolarGridBuilder::new()
        .build_with_report(Point2::ORIGIN, &pts)
        .unwrap();
    let mut last = f64::INFINITY;
    for k in 1..=auto.rings {
        let (_, r) = PolarGridBuilder::new()
            .rings(k)
            .build_with_report(Point2::ORIGIN, &pts)
            .unwrap();
        assert_eq!(r.rings, k);
        assert!(r.bound < last, "bound not monotone at k={k}");
        assert_eq!(r.cells as u64, bounds::grid_cell_count(k));
        last = r.bound;
    }
}
