//! Differential sequential-parity harness for the parallel construction
//! path (`omt-par`).
//!
//! The deterministic-parallelism contract of `omt_par::par_map_indexed`
//! is that results are joined in *item-index* order, never completion
//! order, and that the per-cell bisection jobs are pure functions of
//! their inputs. Together these guarantee that `PolarGridBuilder` /
//! `SphereGridBuilder` produce **bit-identical trees** at any thread
//! count. This harness proves it empirically over a grid of
//! (seed × n × out-degree) configurations, comparing every parallel
//! thread count in {2, 4, 8} against the forced-sequential `threads(1)`
//! baseline:
//!
//! * structural equality of the whole tree (`MulticastTree: PartialEq`
//!   covers points, parents, edge weights, depths, hops and the CSR
//!   child lists), and
//! * exact equality of the derived metrics (radius, diameter, hop and
//!   degree statistics) — floats compared via `to_bits`.

use omt_core::{PolarGridBuilder, SphereGridBuilder};
use omt_geom::{Ball, Disk, Point2, Point3, Region};
use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;
use omt_tree::{MulticastTree, TreeMetrics};

const PAR_THREADS: [usize; 3] = [2, 4, 8];

/// Exact (bit-level) equality for metrics; `TreeMetrics: PartialEq`
/// would treat `-0.0 == 0.0`, and parity here means *bit-identical*.
fn assert_metrics_bitwise_equal(label: &str, seq: &TreeMetrics, par: &TreeMetrics) {
    assert_eq!(seq.len, par.len, "{label}: len");
    assert_eq!(seq.max_hops, par.max_hops, "{label}: max_hops");
    assert_eq!(
        seq.max_out_degree, par.max_out_degree,
        "{label}: max_out_degree"
    );
    for (name, a, b) in [
        ("radius", seq.radius, par.radius),
        ("diameter", seq.diameter, par.diameter),
        (
            "total_edge_weight",
            seq.total_edge_weight,
            par.total_edge_weight,
        ),
        ("mean_depth", seq.mean_depth, par.mean_depth),
        ("mean_hops", seq.mean_hops, par.mean_hops),
        ("max_stretch", seq.max_stretch, par.max_stretch),
        ("mean_stretch", seq.mean_stretch, par.mean_stretch),
    ] {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: metric {name} drifted ({a} vs {b})"
        );
    }
}

fn assert_trees_identical<const D: usize>(
    label: &str,
    seq: &MulticastTree<D>,
    par: &MulticastTree<D>,
) {
    // Node-for-node, edge-for-edge: PartialEq on MulticastTree compares
    // points, parent references, edge weights, depths, hops and child
    // lists.
    assert_eq!(seq, par, "{label}: tree structure drifted");
    assert_metrics_bitwise_equal(label, &seq.metrics(), &par.metrics());
}

#[test]
fn polar_grid_parallel_matches_sequential_across_config_grid() {
    // 3 seeds × 4 sizes × 2 degrees = 24 configurations, each checked
    // at 3 parallel thread counts against the sequential baseline.
    let seeds = [2004u64, 2005, 7];
    let sizes = [64usize, 257, 1_000, 4_096];
    let degrees = [2u32, 6];

    let mut configs = 0usize;
    for &seed in &seeds {
        for &n in &sizes {
            let mut rng = SmallRng::seed_from_u64(seed);
            let hosts = Disk::unit().sample_n(&mut rng, n);
            for &deg in &degrees {
                configs += 1;
                let seq = PolarGridBuilder::new()
                    .max_out_degree(deg)
                    .threads(1)
                    .build(Point2::ORIGIN, &hosts)
                    .expect("sequential build");
                for &t in &PAR_THREADS {
                    let par = PolarGridBuilder::new()
                        .max_out_degree(deg)
                        .threads(t)
                        .build(Point2::ORIGIN, &hosts)
                        .expect("parallel build");
                    let label = format!("2d seed={seed} n={n} deg={deg} threads={t}");
                    assert_trees_identical(&label, &seq, &par);
                }
            }
        }
    }
    assert!(configs >= 24, "config grid shrank: {configs} < 24");
}

#[test]
fn sphere_grid_parallel_matches_sequential_across_config_grid() {
    // 2 seeds × 2 sizes × 2 degrees = 8 more configurations in 3-D.
    let seeds = [2004u64, 11];
    let sizes = [128usize, 1_000];
    let degrees = [2u32, 10];

    for &seed in &seeds {
        for &n in &sizes {
            let mut rng = SmallRng::seed_from_u64(seed);
            let hosts = Ball::<3>::unit().sample_n(&mut rng, n);
            for &deg in &degrees {
                let seq = SphereGridBuilder::new()
                    .max_out_degree(deg)
                    .threads(1)
                    .build(Point3::ORIGIN, &hosts)
                    .expect("sequential build");
                for &t in &PAR_THREADS {
                    let par = SphereGridBuilder::new()
                        .max_out_degree(deg)
                        .threads(t)
                        .build(Point3::ORIGIN, &hosts)
                        .expect("parallel build");
                    let label = format!("3d seed={seed} n={n} deg={deg} threads={t}");
                    assert_trees_identical(&label, &seq, &par);
                }
            }
        }
    }
}

#[test]
fn reports_match_between_sequential_and_parallel() {
    // The build report (delay, bounds, grid shape) is part of the
    // deterministic contract too, not just the tree.
    let mut rng = SmallRng::seed_from_u64(2004);
    let hosts = Disk::unit().sample_n(&mut rng, 2_000);
    let (seq_tree, seq_rep) = PolarGridBuilder::new()
        .max_out_degree(6)
        .threads(1)
        .build_with_report(Point2::ORIGIN, &hosts)
        .expect("sequential build");
    for t in PAR_THREADS {
        let (par_tree, par_rep) = PolarGridBuilder::new()
            .max_out_degree(6)
            .threads(t)
            .build_with_report(Point2::ORIGIN, &hosts)
            .expect("parallel build");
        assert_eq!(seq_tree, par_tree, "threads={t}: tree drifted");
        assert_eq!(
            seq_rep.delay.to_bits(),
            par_rep.delay.to_bits(),
            "threads={t}: report delay drifted"
        );
        assert_eq!(
            seq_rep.bound.to_bits(),
            par_rep.bound.to_bits(),
            "threads={t}: report bound drifted"
        );
        assert_eq!(
            seq_rep.lower_bound.to_bits(),
            par_rep.lower_bound.to_bits(),
            "threads={t}: report lower bound drifted"
        );
    }
}

#[test]
fn env_default_thread_count_matches_sequential() {
    // Whatever `OMT_THREADS` / available parallelism resolves to on this
    // machine, the default build must equal the forced-sequential one.
    let mut rng = SmallRng::seed_from_u64(42);
    let hosts = Disk::unit().sample_n(&mut rng, 1_500);
    let seq = PolarGridBuilder::new()
        .max_out_degree(2)
        .threads(1)
        .build(Point2::ORIGIN, &hosts)
        .expect("sequential build");
    let par = PolarGridBuilder::new()
        .max_out_degree(2)
        .build(Point2::ORIGIN, &hosts)
        .expect("default-threads build");
    assert_trees_identical("default-threads deg=2 n=1500", &seq, &par);
}
