//! Ring-count (`k`) selection for polar grids, shared by the 2-D and 3-D
//! algorithms.
//!
//! The paper chooses "the number of rings `k` as large as possible, such
//! that property 3) is satisfied" — every non-outermost cell contains at
//! least one point. We generalize this to arbitrary convex regions by only
//! requiring it of **active** cells (cells whose outward cone contains a
//! point); for the uniform disk the two rules coincide, and the relaxed
//! rule still guarantees the degree bound: a non-empty cell's parent is an
//! ancestor of an active cell, hence active, hence occupied.
//!
//! # Level-independent encoding
//!
//! The grids for successive `k` are nested: the annuli of the `k`-ring grid
//! are a suffix of the annuli of the `(k+1)`-ring grid, and each `k`-cell is
//! the union of two `(k+1)`-cells. We exploit this by assigning every point
//! once, at a finest level `k_max`, to a pair
//!
//! * `ring ∈ [0, k_max]` — 0 is the inner disk, `k_max` the outermost ring;
//! * `path` — the binary *angular path*: bit `b` of the first `m` bits
//!   identifies which half the point falls into at the `b`-th angular
//!   split, so the point's segment on any ring with `2^m` segments is
//!   simply the top `m` bits.
//!
//! The cell of the same point at a coarser level `k = k_max - d` is then
//! pure integer arithmetic — `ring' = max(ring - d, 0)`,
//! `seg' = path >> (k_max - ring')` — so occupancy at every level is
//! derived from one consistent assignment with no floating-point re-binning.

/// Per-point finest-level grid assignments plus the finest level itself.
#[derive(Clone, Debug)]
pub(crate) struct Assignments {
    /// The finest grid level the points were assigned at.
    pub k_max: u32,
    /// Finest ring index per point, in `[0, k_max]`.
    pub ring: Vec<u32>,
    /// Angular bit path per point; only the top `min(ring, m)` bits are
    /// meaningful when reading a segment at a ring with `2^m` segments.
    ///
    /// Stored as `u32`: [`finest_level`] caps `k_max` at 31, so every path
    /// fits — and at million-scale this array is one of the two largest
    /// transient allocations of the build, so halving its width matters.
    pub path: Vec<u32>,
}

impl Assignments {
    /// The (ring, segment) cell of point `p` at grid level `k ≤ k_max`.
    #[inline]
    pub fn cell_at(&self, p: usize, k: u32) -> (u32, u64) {
        let d = self.k_max - k;
        let r = self.ring[p].saturating_sub(d);
        let seg = if r == 0 {
            0
        } else {
            // r >= 1 and k_max <= 31, so the shift is at most 30.
            u64::from(self.path[p] >> (self.k_max - r))
        };
        (r, seg)
    }
}

/// Flat index of cell `(ring, seg)` within a `k`-level grid: the inner disk
/// is 0, ring `i` occupies the range `[2^i - 1, 2^(i+1) - 1)`.
#[inline]
pub(crate) fn cell_index(ring: u32, seg: u64) -> usize {
    ((1u64 << ring) - 1 + seg) as usize
}

/// Number of cells of the `k`-level grid.
#[inline]
pub(crate) fn cell_count(k: u32) -> usize {
    ((1u64 << (k + 1)) - 1) as usize
}

/// Builds the occupancy bitmap of the `k_max`-level grid.
fn finest_occupancy(a: &Assignments) -> Vec<bool> {
    let mut occ = vec![false; cell_count(a.k_max)];
    for p in 0..a.ring.len() {
        let (r, s) = a.cell_at(p, a.k_max);
        occ[cell_index(r, s)] = true;
    }
    occ
}

/// Coarsens a level-`t` occupancy bitmap into level `t - 1`:
/// the new inner disk absorbs the old inner disk and old ring 1; every other
/// new cell is the union of an aligned pair one ring further out.
fn coarsen(occ: &[bool], t: u32) -> Vec<bool> {
    debug_assert_eq!(occ.len(), cell_count(t));
    debug_assert!(t >= 1);
    let mut out = vec![false; cell_count(t - 1)];
    out[0] = occ[0] || occ[1] || occ[2];
    for i in 1..t {
        for j in 0..(1u64 << i) {
            let merged = occ[cell_index(i + 1, 2 * j)] || occ[cell_index(i + 1, 2 * j + 1)];
            out[cell_index(i, j)] = merged;
        }
    }
    out
}

/// Whether every **active** non-outermost cell of a level-`t` grid is
/// occupied. Active = the cell or any cell in its outward cone is occupied.
/// Ring 0 is exempt: the source sits at the pole and acts as its
/// representative.
fn feasible(occ: &[bool], t: u32) -> bool {
    if t <= 1 {
        return true;
    }
    // Compute active flags bottom-up: a cell is active if occupied or
    // either aligned child on the next ring is active.
    let mut active = occ.to_vec();
    for i in (1..t).rev() {
        for j in 0..(1u64 << i) {
            let idx = cell_index(i, j);
            active[idx] = active[idx]
                || active[cell_index(i + 1, 2 * j)]
                || active[cell_index(i + 1, 2 * j + 1)];
        }
    }
    for i in 1..t {
        for j in 0..(1u64 << i) {
            let idx = cell_index(i, j);
            if active[idx] && !occ[idx] {
                return false;
            }
        }
    }
    true
}

/// Selects the largest feasible number of rings `k ≤ k_max`, together with
/// the occupancy bitmap at that level.
///
/// Feasibility is monotone (coarsening a feasible grid stays feasible), so
/// a downward scan with pairwise coarsening finds the maximum in
/// `O(n + 2^k_max)`.
pub(crate) fn select_rings(a: &Assignments) -> (u32, Vec<bool>) {
    let mut occ = finest_occupancy(a);
    let mut t = a.k_max;
    while t > 0 {
        if feasible(&occ, t) {
            return (t, occ);
        }
        occ = coarsen(&occ, t);
        t -= 1;
    }
    (0, occ)
}

/// Buckets points into the cells of a level-`k` grid as a CSR structure:
/// `counts[c]..counts[c + 1]` indexes the members of cell `c` in the
/// returned member list.
pub(crate) fn bucket_cells(a: &Assignments, k: u32) -> (Vec<u32>, Vec<u32>) {
    let n = a.ring.len();
    let cells = cell_count(k);
    let mut counts = vec![0u32; cells + 1];
    let mut point_cell = vec![0u32; n];
    for (p, slot) in point_cell.iter_mut().enumerate() {
        let (r, s) = a.cell_at(p, k);
        let idx = cell_index(r, s);
        *slot = idx as u32;
        counts[idx + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let mut members = vec![0u32; n];
    let mut cursor = counts.clone();
    for (p, &cell) in point_cell.iter().enumerate() {
        let c = cell as usize;
        members[cursor[c] as usize] = p as u32;
        cursor[c] += 1;
    }
    (counts, members)
}

/// The finest level to assign at, given `n` points: the largest `k` that
/// could possibly be feasible (`2^k - 1` non-outermost cells cannot all be
/// occupied with fewer points), capped at 31 so angular paths fit in `u32`.
///
/// The cap is value-identical to the historical `u64`-path cap of 60 for
/// every `n < 2^31` — far beyond the arena's `u32` id space anyway — so the
/// golden radii are unaffected.
pub(crate) fn finest_level(n: usize) -> u32 {
    if n == 0 {
        return 0;
    }
    let k = (usize::BITS - n.leading_zeros()).saturating_sub(1) + 1; // ceil(log2(n)) + 1-ish
    k.min(31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds assignments directly from (ring, path) pairs.
    fn asg(k_max: u32, cells: &[(u32, u64)]) -> Assignments {
        Assignments {
            k_max,
            ring: cells.iter().map(|c| c.0).collect(),
            path: cells
                .iter()
                .map(|c| {
                    // `path` stores the angular bits left-aligned to k_max:
                    // a point on ring r with segment s has path = s << (k_max - r).
                    if c.0 == 0 {
                        0
                    } else {
                        (c.1 << (k_max - c.0)) as u32
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn cell_index_layout() {
        assert_eq!(cell_index(0, 0), 0);
        assert_eq!(cell_index(1, 0), 1);
        assert_eq!(cell_index(1, 1), 2);
        assert_eq!(cell_index(2, 0), 3);
        assert_eq!(cell_index(3, 7), 14);
        assert_eq!(cell_count(3), 15);
    }

    #[test]
    fn cell_at_coarsens_correctly() {
        // k_max = 3; a point on ring 3, segment 6 (binary 110).
        let a = asg(3, &[(3, 6)]);
        assert_eq!(a.cell_at(0, 3), (3, 6));
        // One level coarser: ring 2, segment 3 (top 2 bits of 110).
        assert_eq!(a.cell_at(0, 2), (2, 3));
        assert_eq!(a.cell_at(0, 1), (1, 1));
        // At k = 0 everything is the inner disk.
        assert_eq!(a.cell_at(0, 0), (0, 0));
    }

    #[test]
    fn inner_rings_collapse_to_disk() {
        let a = asg(4, &[(1, 1)]);
        assert_eq!(a.cell_at(0, 4), (1, 1));
        assert_eq!(a.cell_at(0, 3), (0, 0));
    }

    #[test]
    fn full_grid_is_feasible_at_finest() {
        // Occupy every cell of a k=2 grid (rings 1 and 2 fully).
        let mut cells = vec![(0u32, 0u64)];
        for j in 0..2 {
            cells.push((1, j));
        }
        for j in 0..4 {
            cells.push((2, j));
        }
        let a = asg(2, &cells);
        let (k, _) = select_rings(&a);
        assert_eq!(k, 2);
    }

    #[test]
    fn hole_forces_coarsening() {
        // k_max = 2: ring 1 has segments {0} only, but ring 2 segment 3
        // (whose ring-1 ancestor is segment 1) is occupied -> ring-1 hole
        // under an active cone -> must coarsen to k = 1.
        let a = asg(2, &[(1, 0), (2, 3)]);
        let (k, occ) = select_rings(&a);
        assert_eq!(k, 1);
        // At k = 1: the old ring-1 points are in the inner disk; the old
        // ring-2 segment 3 becomes ring-1 segment 1.
        assert!(occ[cell_index(0, 0)]);
        assert!(occ[cell_index(1, 1)]);
    }

    #[test]
    fn inactive_holes_are_allowed() {
        // Ring 1 segment 1 is empty AND nothing lies outward of it: the
        // grid is still feasible at k = 2 because the cell is inactive.
        let a = asg(2, &[(1, 0), (2, 0), (2, 1)]);
        let (k, _) = select_rings(&a);
        assert_eq!(k, 2);
    }

    #[test]
    fn outermost_ring_may_have_holes() {
        // Full ring 1, partially empty ring 2 (outermost): feasible at k=2.
        let a = asg(2, &[(1, 0), (1, 1), (2, 2)]);
        let (k, _) = select_rings(&a);
        assert_eq!(k, 2);
    }

    #[test]
    fn single_point_selects_k1() {
        let a = asg(3, &[(3, 5)]);
        let (k, occ) = select_rings(&a);
        // Rings 1 and 2 are on the point's active chain but empty, so the
        // grid coarsens until only the (exempt) inner disk is interior.
        assert_eq!(k, 1);
        assert!(occ[cell_index(1, 1)]); // 5 >> 2 == 1
    }

    #[test]
    fn empty_input() {
        let a = Assignments {
            k_max: 0,
            ring: vec![],
            path: vec![],
        };
        let (k, occ) = select_rings(&a);
        assert_eq!(k, 0);
        assert_eq!(occ.len(), 1);
        assert!(!occ[0]);
    }

    #[test]
    fn coarsen_merges_pairs() {
        // Level 2 occupancy with ring-2 segments 2 and 3 occupied.
        let mut occ = vec![false; cell_count(2)];
        occ[cell_index(2, 2)] = true;
        occ[cell_index(2, 3)] = true;
        let out = coarsen(&occ, 2);
        assert!(out[cell_index(1, 1)]);
        assert!(!out[cell_index(1, 0)]);
        assert!(!out[0]);
        // Ring-1 and inner-disk occupancy folds into the new inner disk.
        let mut occ = vec![false; cell_count(2)];
        occ[cell_index(1, 1)] = true;
        let out = coarsen(&occ, 2);
        assert!(out[0]);
    }

    #[test]
    fn feasibility_is_monotone_under_coarsening() {
        // Random-ish occupancy patterns: once feasible, stays feasible.
        let patterns: Vec<Vec<(u32, u64)>> = vec![
            vec![(3, 0), (3, 7), (2, 1), (1, 0), (1, 1), (2, 2)],
            vec![(3, 1), (3, 2), (3, 3)],
            vec![(2, 0), (2, 1), (2, 2), (2, 3), (1, 0), (1, 1)],
        ];
        for cells in patterns {
            let a = asg(3, &cells);
            let mut occ = finest_occupancy(&a);
            let mut t = 3;
            let mut seen_feasible = false;
            while t > 0 {
                let f = feasible(&occ, t);
                if seen_feasible {
                    assert!(f, "feasibility must be monotone");
                }
                seen_feasible |= f;
                occ = coarsen(&occ, t);
                t -= 1;
            }
            assert!(seen_feasible || t == 0);
        }
    }

    /// Pseudo-random assignments over the full cell range of a level-`k_max`
    /// grid (hash-based, no RNG dependency).
    fn scrambled_assignments(n: usize, k_max: u32, salt: u64) -> Assignments {
        let mut ring = Vec::with_capacity(n);
        let mut path = Vec::with_capacity(n);
        for p in 0..n as u64 {
            // SplitMix64 finalizer: well-mixed, deterministic.
            let mut z = p.wrapping_add(salt).wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let r = (z % (k_max as u64 + 1)) as u32;
            ring.push(r);
            path.push(if r == 0 {
                0
            } else {
                ((z >> 8) % (1u64 << r) << (k_max - r)) as u32
            });
        }
        Assignments { k_max, ring, path }
    }

    #[test]
    fn bucket_cells_offsets_partition_everything() {
        // The counting-sort invariants the SoA construction path relies on:
        // `counts` is a monotone prefix array starting at 0 and ending at n,
        // so the per-cell windows `[counts[c], counts[c+1])` are sorted,
        // disjoint, and cover the whole member array.
        for (n, k, salt) in [(0usize, 2u32, 1u64), (1, 3, 2), (257, 4, 3), (5000, 6, 4)] {
            let a = scrambled_assignments(n, k + 2, salt);
            let (counts, members) = bucket_cells(&a, k);
            assert_eq!(counts.len(), cell_count(k) + 1);
            assert_eq!(counts[0], 0);
            assert_eq!(*counts.last().unwrap() as usize, n);
            assert!(
                counts.windows(2).all(|w| w[0] <= w[1]),
                "offsets must be non-decreasing"
            );
            let total: usize = (0..cell_count(k))
                .map(|c| (counts[c + 1] - counts[c]) as usize)
                .sum();
            assert_eq!(total, n, "cell occupancies must sum to n");
            assert_eq!(members.len(), n);
        }
    }

    #[test]
    fn bucket_cells_members_form_a_stable_permutation() {
        let n = 4096;
        let k = 5;
        let a = scrambled_assignments(n, k + 1, 99);
        let (counts, members) = bucket_cells(&a, k);
        // A permutation of 0..n...
        let mut seen = vec![false; n];
        for &m in &members {
            assert!(!seen[m as usize], "duplicate member {m}");
            seen[m as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // ...where every member sits in the window of its own cell, and the
        // scatter is stable: within a cell, point indices stay in input
        // order (the property the legacy per-cell `Vec` push order had,
        // which the bisection twins' parity depends on).
        for c in 0..cell_count(k) {
            let window = &members[counts[c] as usize..counts[c + 1] as usize];
            assert!(
                window.windows(2).all(|w| w[0] < w[1]),
                "cell {c}: members not in input order"
            );
            for &p in window {
                let (r, s) = a.cell_at(p as usize, k);
                assert_eq!(cell_index(r, s), c, "member {p} bucketed into wrong cell");
            }
        }
    }

    #[test]
    fn finest_level_grows_with_n() {
        assert_eq!(finest_level(0), 0);
        assert!(finest_level(1) >= 1);
        assert!(finest_level(100) >= 6);
        assert!(finest_level(1 << 20) >= 20);
        assert!(finest_level(usize::MAX / 2) <= 31, "paths must fit u32");
    }
}

#[cfg(test)]
mod brute_force_tests {
    use super::*;

    /// Feasibility by direct definition: at level `t`, every non-outermost
    /// cell whose outward cone contains a point must itself contain one.
    fn feasible_brute(a: &Assignments, t: u32) -> bool {
        if t <= 1 {
            return true;
        }
        let occupied = |ring: u32, seg: u64| -> bool {
            (0..a.ring.len()).any(|p| a.cell_at(p, t) == (ring, seg))
        };
        for ring in 1..t {
            for seg in 0..(1u64 << ring) {
                // Outward cone: all cells (r', s') with r' >= ring whose
                // ancestor chain passes through (ring, seg), plus the cell
                // itself.
                let cone_occupied = (0..a.ring.len()).any(|p| {
                    let (r, s) = a.cell_at(p, t);
                    r >= ring && (s >> (r - ring)) == seg
                });
                if cone_occupied && !occupied(ring, seg) {
                    return false;
                }
            }
        }
        true
    }

    /// Exhaustive check of select_rings against the brute-force definition
    /// over every small assignment pattern.
    #[test]
    fn select_rings_matches_brute_force_exhaustively() {
        let k_max = 3u32;
        // Enumerate all multisets of up to 3 cells out of the 15 cells of a
        // k=3 grid (with repetition patterns covered by pairs).
        let cells: Vec<(u32, u64)> = {
            let mut v = vec![(0u32, 0u64)];
            for ring in 1..=k_max {
                for seg in 0..(1u64 << ring) {
                    v.push((ring, seg));
                }
            }
            v
        };
        let mk = |chosen: &[(u32, u64)]| -> Assignments {
            Assignments {
                k_max,
                ring: chosen.iter().map(|c| c.0).collect(),
                path: chosen
                    .iter()
                    .map(|c| {
                        if c.0 == 0 {
                            0
                        } else {
                            (c.1 << (k_max - c.0)) as u32
                        }
                    })
                    .collect(),
            }
        };
        let mut checked = 0;
        for i in 0..cells.len() {
            for j in i..cells.len() {
                for k in j..cells.len() {
                    let a = mk(&[cells[i], cells[j], cells[k]]);
                    let (selected, _) = select_rings(&a);
                    // Selected level must be feasible...
                    assert!(
                        feasible_brute(&a, selected),
                        "selected {selected} infeasible for {:?}",
                        (cells[i], cells[j], cells[k])
                    );
                    // ...and maximal.
                    for higher in (selected + 1)..=k_max {
                        assert!(
                            !feasible_brute(&a, higher),
                            "higher level {higher} was feasible for {:?}",
                            (cells[i], cells[j], cells[k])
                        );
                    }
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, 15 * 16 * 17 / 6); // C(15+2, 3) patterns
    }
}
