//! Local cell-neighborhood views over the polar grid.
//!
//! A decentralized host cannot see the whole grid: it knows the cell its
//! own virtual coordinates land in, the aligned parent/children cells of
//! the core tree, and the adjacent segments on its own ring. [`CellView`]
//! packages exactly that slice, and [`PolarGrid2::route_from_root`] gives
//! the cell path a message must walk when it is routed strictly downward
//! from the rendezvous — the only routing rule the protocol in
//! `omt-proto` uses. Everything here is derived from `(k, ρ)` alone, so
//! any host that knows the advertised deployment parameters computes the
//! same views with no global state.

use crate::PolarGrid2;

/// A grid cell address: `(ring, segment)`. The inner disk is `(0, 0)`.
pub type CellId = (u32, u64);

/// The slice of the grid a host in one cell is allowed to know: its own
/// cell, the aligned core-tree parent and children, and the same-ring
/// neighbors.
///
/// # Examples
///
/// ```
/// use omt_core::PolarGrid2;
///
/// let grid = PolarGrid2::new(3, 1.0);
/// let v = grid.cell_view((2, 3));
/// assert_eq!(v.parent, Some((1, 1)));
/// assert_eq!(v.children, vec![(3, 6), (3, 7)]);
/// assert_eq!(v.ring_neighbors, vec![(2, 2), (2, 0)]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellView {
    /// The cell this view is centered on.
    pub cell: CellId,
    /// The aligned parent cell on the ring inside, `None` for the disk.
    pub parent: Option<CellId>,
    /// The two aligned children on the ring outside; empty on ring `k`.
    pub children: Vec<CellId>,
    /// Adjacent segments on the same ring, `[prev, next]` with
    /// wrap-around; deduplicated, and empty for the inner disk.
    pub ring_neighbors: Vec<CellId>,
}

impl PolarGrid2 {
    /// Flat heap-style index of a cell: `(2^ring - 1) + seg`. The inner
    /// disk is 0 and indices are dense in `0..cell_count()`, so per-cell
    /// tables can be plain vectors.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn cell_index(&self, cell: CellId) -> usize {
        let (ring, seg) = cell;
        assert!(ring <= self.rings(), "ring {ring} out of range");
        assert!(
            seg < self.segments_on_ring(ring),
            "segment {seg} out of range for ring {ring}"
        );
        (((1u64 << ring) - 1) + seg) as usize
    }

    /// Inverse of [`PolarGrid2::cell_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= cell_count()`.
    pub fn cell_at(&self, index: usize) -> CellId {
        assert!(index < self.cell_count(), "cell index {index} out of range");
        let n = index as u64 + 1; // 1-based heap numbering
        let ring = (u64::BITS - 1 - n.leading_zeros()) as u32;
        (ring, n - (1u64 << ring))
    }

    /// The local neighborhood view of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn cell_view(&self, cell: CellId) -> CellView {
        let (ring, seg) = cell;
        // Range-check via cell_index.
        let _ = self.cell_index(cell);
        let children = self
            .children(ring, seg)
            .map(|c| c.to_vec())
            .unwrap_or_default();
        let ring_neighbors = if ring == 0 {
            Vec::new()
        } else {
            let count = self.segments_on_ring(ring);
            let prev = (seg + count - 1) % count;
            let next = (seg + 1) % count;
            let mut v = vec![(ring, prev)];
            if next != prev {
                v.push((ring, next));
            }
            v
        };
        CellView {
            cell,
            parent: self.parent(ring, seg),
            children,
            ring_neighbors,
        }
    }

    /// The cell path from the core root `(0, 0)` down to `target`,
    /// inclusive on both ends — the route a join request walks when it is
    /// forwarded strictly downward along aligned cells.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn route_from_root(&self, target: CellId) -> Vec<CellId> {
        let _ = self.cell_index(target);
        let mut path = Vec::with_capacity(target.0 as usize + 1);
        let mut cur = Some(target);
        while let Some(c) = cur {
            path.push(c);
            cur = self.parent(c.0, c.1);
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrips_densely() {
        let g = PolarGrid2::new(4, 1.0);
        for idx in 0..g.cell_count() {
            let cell = g.cell_at(idx);
            assert_eq!(g.cell_index(cell), idx);
        }
        assert_eq!(g.cell_index((0, 0)), 0);
        assert_eq!(g.cell_index((1, 0)), 1);
        assert_eq!(g.cell_index((4, 15)), g.cell_count() - 1);
    }

    #[test]
    fn views_match_parent_children() {
        let g = PolarGrid2::new(3, 1.0);
        let root = g.cell_view((0, 0));
        assert_eq!(root.parent, None);
        assert_eq!(root.children, vec![(1, 0), (1, 1)]);
        assert!(root.ring_neighbors.is_empty());
        let leaf = g.cell_view((3, 0));
        assert_eq!(leaf.parent, Some((2, 0)));
        assert!(leaf.children.is_empty());
        assert_eq!(leaf.ring_neighbors, vec![(3, 7), (3, 1)]);
    }

    #[test]
    fn ring_one_neighbors_deduplicate() {
        // Ring 1 has exactly two segments: prev == next, listed once.
        let g = PolarGrid2::new(2, 1.0);
        assert_eq!(g.cell_view((1, 0)).ring_neighbors, vec![(1, 1)]);
        assert_eq!(g.cell_view((1, 1)).ring_neighbors, vec![(1, 0)]);
    }

    #[test]
    fn route_walks_aligned_cells() {
        let g = PolarGrid2::new(3, 1.0);
        assert_eq!(g.route_from_root((0, 0)), vec![(0, 0)]);
        assert_eq!(
            g.route_from_root((3, 5)),
            vec![(0, 0), (1, 1), (2, 2), (3, 5)]
        );
        // Every consecutive pair is a parent/child pair.
        for seg in 0..8u64 {
            let path = g.route_from_root((3, seg));
            assert_eq!(path.len(), 4);
            for w in path.windows(2) {
                let kids = g.children(w[0].0, w[0].1).unwrap();
                assert!(kids.contains(&w[1]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn view_rejects_bad_cell() {
        let _ = PolarGrid2::new(2, 1.0).cell_view((3, 0));
    }
}
