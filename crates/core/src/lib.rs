//! Minimal-delay degree-constrained overlay multicast tree construction.
//!
//! This crate implements the algorithms of *Overlay Multicast Trees of
//! Minimal Delay* (Riabov, Liu, Zhang):
//!
//! * [`Bisection`] / [`Bisection3`] — the constant-factor approximation
//!   of Section II (factor 5 at out-degree 4, factor 9 at out-degree 2,
//!   Theorem 1), in two and three dimensions;
//! * [`PolarGridBuilder`] — Algorithm `Polar_Grid` of Section III, the
//!   asymptotically optimal construction (Theorem 2), including the
//!   out-degree-2 wiring of Section IV-A and arbitrary convex regions /
//!   source placements of Section IV-C;
//! * [`bounds`] — the paper's analytic bounds: equations (1), (2), (5),
//!   (7), and the occupancy Lemmas 1–2;
//! * [`SphereGridBuilder`] — the three-dimensional version of
//!   Section IV-B evaluated in Figure 8 (out-degree 10, or 2);
//! * [`NdGridBuilder`] — the general-dimension variant Section IV-B
//!   sketches, made exact with sine-power quantile splits;
//! * [`MinDiameterBuilder`] — the minimum-diameter variant of the
//!   conclusion, rooting the grid at the smallest-enclosing-ball center;
//! * [`DynamicOverlay`] — join/leave maintenance with amortized rebuilds,
//!   simulating the decentralized version the conclusion calls for;
//! * [`ShardedOverlay`] — batched churn fanned across polar-sector shards
//!   with a deterministic merge, bit-identical to the unsharded path;
//! * [`HeteroGridBuilder`] — per-host fan-out capacities (relays carry the
//!   grid; constrained hosts attach greedily);
//! * [`PolarGrid2`] / [`SphereGrid3`] — the equal-measure grids
//!   themselves, exposed for inspection and tests.
//!
//! # Paper-to-code map
//!
//! | Paper artifact | Implementation | Certified by |
//! |---|---|---|
//! | Bisection algorithm (Section II, Fig. 1) | [`Bisection`], [`Bisection3`] | `exact::theorem1_factors_hold_empirically`, `tests/paper_claims.rs` |
//! | Theorem 1 (factors 5 / 9) | [`bounds::bisection_bound_deg4`] / [`bounds::bisection_bound_deg2`] | path bounds asserted per-tree in `bisect2d` tests |
//! | Polar grid construction (Section III-A, Fig. 2) | [`PolarGrid2`] | equal-area, nesting and locate tests in `grid2` |
//! | Property-3 `k` selection | `kselect` (internal) | exhaustive brute-force comparison in `kselect::brute_force_tests` |
//! | Lemmas 1–2 | [`bounds::empty_bucket_probability_bound`] | analytic tests + empirical occupancy test in `tests/paper_claims.rs` |
//! | Core + in-cell wiring (Sections III-B/C, IV-A) | [`PolarGridBuilder`] | builder-enforced degree budgets; equation-(7) bound asserted on every build in property tests |
//! | Theorem 2 (asymptotic optimality) | [`PolarGridBuilder`] | convergence tests (2-D, 3-D, n-D) |
//! | Section IV-B (3-D / higher dimensions) | [`SphereGridBuilder`], [`NdGridBuilder`] | equal-volume cell tests in `grid3`, quantile-uniformity tests in `ndim` |
//! | Section IV-C (convex regions) | active-cell rule in `kselect` | convex-region suites in `polar_grid` tests and `omt-experiments::convex` |
//! | Conclusion: minimum diameter | [`MinDiameterBuilder`] | diameter-ratio convergence tests |
//! | Conclusion: decentralized version | [`DynamicOverlay`] | churn validity + quality-tracking tests |
//! | Conclusion: decentralized version, partitioned maintenance | [`ShardedOverlay`] | sharded-vs-unsharded bit-equivalence + cross-shard fuzz in `tests/churn_fuzz.rs` |
//!
//! # Examples
//!
//! ```
//! use omt_core::PolarGridBuilder;
//! use omt_geom::{Disk, Point2, Region};
//! use omt_rng::rngs::SmallRng;
//! use omt_rng::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = SmallRng::seed_from_u64(11);
//! let hosts = Disk::unit().sample_n(&mut rng, 10_000);
//! let (tree, report) = PolarGridBuilder::new()
//!     .max_out_degree(6)
//!     .build_with_report(Point2::ORIGIN, &hosts)?;
//! assert!(tree.max_out_degree() <= 6);
//! // Delay sits between the trivial lower bound and equation (7).
//! assert!(report.lower_bound <= report.delay && report.delay <= report.bound);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bisect2d;
mod bisect3d;
pub mod bounds;
mod cellview;
mod dynamic;
mod error;
mod fanout;
mod grid2;
mod grid3;
mod hetero;
mod kselect;
mod min_diameter;
mod ndim;
mod polar_grid;
mod sharded;
mod sink;
mod sphere_grid;

pub use bisect2d::Bisection;
pub use bisect3d::Bisection3;
pub use cellview::{CellId, CellView};
pub use dynamic::{DynamicOverlay, HostId};
pub use error::BuildError;
pub use grid2::PolarGrid2;
pub use grid3::SphereGrid3;
pub use hetero::{HeteroGridBuilder, HeteroReport};
pub use min_diameter::{MinDiameterBuilder, MinDiameterReport};
pub use ndim::{NdGridBuilder, NdGridReport};
pub use polar_grid::{PolarGridBuilder, PolarGridReport, RepStrategy};
pub use sharded::{BatchStats, ChurnEvent, ShardedOverlay};
pub use sphere_grid::SphereGridBuilder;
