//! The bisection algorithm (Section II of the paper): a constant-factor
//! approximation for the degree-constrained minimum-radius spanning tree of
//! points inside a polar ring segment.
//!
//! Two variants are provided, matching the paper:
//!
//! * **out-degree 4** — the segment is split into four sub-segments (radius
//!   and angle each halved); the source connects the representative of each
//!   non-empty sub-segment, chosen as the point whose radius is closest to
//!   the source's radius. Theorem 1: paths are within factor 5 of optimal,
//!   per equation (1): `l_p ≤ max(R-q, q-r) + 2·R·a`.
//! * **out-degree 2** — the source connects only two points (again chosen
//!   by radius proximity), which then take over half the segment each; the
//!   angular term doubles, per equation (2): `l_p ≤ max(R-q, q-r) + 4·R·a`,
//!   and the approximation factor becomes 9.
//!
//! Both are implemented with explicit work stacks (no recursion) so
//! adversarially clustered inputs cannot overflow the call stack, and both
//! are careful to make progress every step — each work item attaches at
//! least one point — so termination is unconditional, even for duplicate
//! points.

use omt_geom::{Point2, PolarPoint, RingSegment};
use omt_tree::{MulticastTree, ParentRef, TreeBuilder, TreeError};

pub(crate) use crate::fanout::fanout_chain;
pub(crate) use crate::sink::attach;

use crate::error::BuildError;
use crate::sink::AttachSink;

/// Removes and returns the index in `idx` whose radius is closest to `q`
/// (the paper's representative rule: "radius closest to the radius of the
/// source node").
fn take_closest_radius(polar: &[PolarPoint], idx: &mut Vec<u32>, q: f64) -> u32 {
    debug_assert!(!idx.is_empty());
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (pos, &p) in idx.iter().enumerate() {
        let d = (polar[p as usize].radius - q).abs();
        if d < best_d {
            best_d = d;
            best = pos;
        }
    }
    idx.swap_remove(best)
}

/// Connects every point in `idx` below `src` with out-degree at most 4 per
/// node, following the 4-way bisection of `seg`.
///
/// `polar` holds the polar coordinates of **all** builder points in the
/// frame the segment lives in; `src_radius` is the local source's radius in
/// that frame.
pub(crate) fn bisect4<S: AttachSink>(
    b: &mut S,
    polar: &[PolarPoint],
    seg: RingSegment,
    src: ParentRef,
    src_radius: f64,
    idx: Vec<u32>,
) -> Result<(), TreeError> {
    // The last tuple field is the recursion depth the frame would have in
    // the recursive formulation; it only feeds the observability layer.
    let mut stack: Vec<(RingSegment, ParentRef, f64, Vec<u32>, u32)> = Vec::new();
    stack.push((seg, src, src_radius, idx, 0));
    while let Some((seg, src, q, idx, depth)) = stack.pop() {
        if idx.is_empty() {
            continue;
        }
        omt_obs::obs_observe!("bisect2d/depth", u64::from(depth));
        omt_obs::obs_count!("bisect2d/splits");
        // Partition the set into the four sub-segments.
        let children = seg.split4();
        let mut parts: [Vec<u32>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for p in idx {
            parts[seg.classify4(&polar[p as usize])].push(p);
        }
        for (c, mut part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let rep = take_closest_radius(polar, &mut part, q);
            attach(b, rep as usize, src)?;
            if !part.is_empty() {
                stack.push((
                    children[c],
                    ParentRef::Node(rep as usize),
                    polar[rep as usize].radius,
                    part,
                    depth + 1,
                ));
            }
        }
    }
    Ok(())
}

/// The axis a binary split halves, cycling radius → angle → radius → …
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Axis {
    Radius,
    Angle,
}

impl Axis {
    fn next(self) -> Self {
        match self {
            Self::Radius => Self::Angle,
            Self::Angle => Self::Radius,
        }
    }
}

/// Connects every point in `idx` below `src` with out-degree at most 2 per
/// node: the source adopts the two points with radius closest to its own,
/// which then take over the two halves of the segment (split along
/// alternating axes — the binary refinement of the paper's 4-way step).
pub(crate) fn bisect2<S: AttachSink>(
    b: &mut S,
    polar: &[PolarPoint],
    seg: RingSegment,
    src: ParentRef,
    src_radius: f64,
    idx: Vec<u32>,
) -> Result<(), TreeError> {
    let mut stack: Vec<(RingSegment, Axis, ParentRef, f64, Vec<u32>, u32)> = Vec::new();
    stack.push((seg, Axis::Radius, src, src_radius, idx, 0));
    while let Some((seg, axis, src, q, mut idx, depth)) = stack.pop() {
        match idx.len() {
            0 => continue,
            1 => {
                attach(b, idx[0] as usize, src)?;
                continue;
            }
            2 => {
                attach(b, idx[0] as usize, src)?;
                attach(b, idx[1] as usize, src)?;
                continue;
            }
            _ => {}
        }
        omt_obs::obs_observe!("bisect2d/depth", u64::from(depth));
        omt_obs::obs_count!("bisect2d/splits");
        let a = take_closest_radius(polar, &mut idx, q);
        let c = take_closest_radius(polar, &mut idx, q);
        attach(b, a as usize, src)?;
        attach(b, c as usize, src)?;
        // Split the segment and hand each half to one carrier.
        let (lo_seg, hi_seg) = match axis {
            Axis::Radius => {
                let parts = seg.split4();
                // split4 yields [inner-lo, inner-hi, outer-lo, outer-hi];
                // recombine into inner/outer halves.
                (
                    RingSegment::new(
                        parts[0].r_lo(),
                        parts[0].r_hi(),
                        seg.arc().lo(),
                        seg.arc().hi(),
                    ),
                    RingSegment::new(
                        parts[2].r_lo(),
                        parts[2].r_hi(),
                        seg.arc().lo(),
                        seg.arc().hi(),
                    ),
                )
            }
            Axis::Angle => seg.split_angle(),
        };
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        let rm = 0.5 * (seg.r_lo() + seg.r_hi());
        let am = seg.arc().mid();
        for p in idx {
            let pp = &polar[p as usize];
            let is_hi = match axis {
                Axis::Radius => pp.radius >= rm,
                Axis::Angle => pp.angle >= am,
            };
            if is_hi {
                hi.push(p);
            } else {
                lo.push(p);
            }
        }
        // Give the lower half to the carrier closer to it in the split
        // coordinate, to avoid pointless criss-crossing.
        let (pa, pc) = (&polar[a as usize], &polar[c as usize]);
        let (carrier_lo, carrier_hi) = match axis {
            Axis::Radius => {
                if pa.radius <= pc.radius {
                    (a, c)
                } else {
                    (c, a)
                }
            }
            Axis::Angle => {
                if pa.angle <= pc.angle {
                    (a, c)
                } else {
                    (c, a)
                }
            }
        };
        stack.push((
            lo_seg,
            axis.next(),
            ParentRef::Node(carrier_lo as usize),
            polar[carrier_lo as usize].radius,
            lo,
            depth + 1,
        ));
        stack.push((
            hi_seg,
            axis.next(),
            ParentRef::Node(carrier_hi as usize),
            polar[carrier_hi as usize].radius,
            hi,
            depth + 1,
        ));
    }
    Ok(())
}

/// A read-only structure-of-arrays view of the polar coordinates consumed
/// by the slice-based bisection twins ([`bisect4_soa`], [`bisect2_soa`]).
///
/// `radius[i]` / `angle[i]` are the source-relative polar components of
/// point `i` — the columns of `omt_geom::PointStore2`. The view is `Copy`
/// so parallel cell workers can capture it by value.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PolarSlices<'a> {
    /// Source-relative radii.
    pub radius: &'a [f64],
    /// Source-relative angles in `[0, 2π)`.
    pub angle: &'a [f64],
}

impl PolarSlices<'_> {
    /// Reassembles point `i` as a [`PolarPoint`] — bit-identical to the
    /// AoS element the legacy path stores, by the `PointStore2` contract.
    #[inline]
    pub fn get(&self, i: u32) -> PolarPoint {
        PolarPoint {
            radius: self.radius[i as usize],
            angle: self.angle[i as usize],
        }
    }

    /// Radius of point `i`.
    #[inline]
    pub fn radius_of(&self, i: u32) -> f64 {
        self.radius[i as usize]
    }
}

/// A 4-way work frame over a range of the shared flat index array.
#[derive(Clone, Debug)]
struct Frame4 {
    seg: RingSegment,
    src: ParentRef,
    q: f64,
    start: u32,
    end: u32,
    depth: u32,
}

/// A binary work frame over a range of the shared flat index array.
#[derive(Clone, Debug)]
struct Frame2 {
    seg: RingSegment,
    axis: Axis,
    src: ParentRef,
    q: f64,
    start: u32,
    end: u32,
    depth: u32,
}

/// Reusable scratch for the slice-based bisection twins: the explicit work
/// stacks plus the staging buffers for stable in-place partitions. One
/// instance is carried across all cell jobs of a build (or one per worker
/// in the parallel path), so the steady state allocates nothing per frame.
#[derive(Debug, Default)]
pub(crate) struct Scratch2 {
    perm: Vec<u32>,
    class: Vec<u8>,
    stack4: Vec<Frame4>,
    stack2: Vec<Frame2>,
}

/// Slice twin of [`take_closest_radius`]: swaps the chosen index to the
/// back of `idx` and returns it. Equivalent to `Vec::swap_remove` on the
/// same prefix — the surviving order of `idx[..len-1]` is identical to the
/// `Vec` the legacy path would hold.
fn take_closest_in_slice(radius: &[f64], idx: &mut [u32], q: f64) -> u32 {
    debug_assert!(!idx.is_empty());
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (pos, &p) in idx.iter().enumerate() {
        let d = (radius[p as usize] - q).abs();
        if d < best_d {
            best_d = d;
            best = pos;
        }
    }
    let last = idx.len() - 1;
    idx.swap(best, last);
    idx[last]
}

/// Slice twin of [`bisect4`]: operates in place on `idx`, a window of the
/// flat member-index array, using `scratch` for the work stack and the
/// stable 4-way partition. Attachment order, representative choices, and
/// obs metrics are identical to [`bisect4`] on the same input — the
/// per-class `Vec` pushes become a counting pass plus a stable scatter.
pub(crate) fn bisect4_soa<S: AttachSink>(
    b: &mut S,
    polar: PolarSlices<'_>,
    seg: RingSegment,
    src: ParentRef,
    src_radius: f64,
    idx: &mut [u32],
    scratch: &mut Scratch2,
) -> Result<(), TreeError> {
    let Scratch2 {
        perm,
        class,
        stack4,
        ..
    } = scratch;
    stack4.clear();
    stack4.push(Frame4 {
        seg,
        src,
        q: src_radius,
        start: 0,
        end: idx.len() as u32,
        depth: 0,
    });
    while let Some(f) = stack4.pop() {
        let (start, end) = (f.start as usize, f.end as usize);
        if start == end {
            continue;
        }
        omt_obs::obs_observe!("bisect2d/depth", u64::from(f.depth));
        omt_obs::obs_count!("bisect2d/splits");
        // Partition the window into the four sub-segments: count + classify
        // in one pass, then scatter stably from a staged copy, preserving
        // exactly the per-class order the legacy Vec pushes produce.
        let children = f.seg.split4();
        class.clear();
        let mut counts = [0u32; 4];
        for &p in &idx[start..end] {
            let c = f.seg.classify4(&polar.get(p));
            class.push(c as u8);
            counts[c] += 1;
        }
        perm.clear();
        perm.extend_from_slice(&idx[start..end]);
        let mut bounds = [0usize; 5];
        bounds[0] = start;
        for c in 0..4 {
            bounds[c + 1] = bounds[c] + counts[c] as usize;
        }
        let mut cursors = [bounds[0], bounds[1], bounds[2], bounds[3]];
        for (j, &p) in perm.iter().enumerate() {
            let c = class[j] as usize;
            idx[cursors[c]] = p;
            cursors[c] += 1;
        }
        for c in 0..4 {
            let (cs, ce) = (bounds[c], bounds[c + 1]);
            if cs == ce {
                continue;
            }
            let rep = take_closest_in_slice(polar.radius, &mut idx[cs..ce], f.q);
            attach(b, rep as usize, f.src)?;
            if ce - cs > 1 {
                stack4.push(Frame4 {
                    seg: children[c],
                    src: ParentRef::Node(rep as usize),
                    q: polar.radius_of(rep),
                    start: cs as u32,
                    end: (ce - 1) as u32,
                    depth: f.depth + 1,
                });
            }
        }
    }
    Ok(())
}

/// Slice twin of [`bisect2`]: in-place binary bisection over a window of
/// the flat member-index array. Same attachment order, carrier choices,
/// and obs metrics as [`bisect2`].
pub(crate) fn bisect2_soa<S: AttachSink>(
    b: &mut S,
    polar: PolarSlices<'_>,
    seg: RingSegment,
    src: ParentRef,
    src_radius: f64,
    idx: &mut [u32],
    scratch: &mut Scratch2,
) -> Result<(), TreeError> {
    let Scratch2 { perm, stack2, .. } = scratch;
    stack2.clear();
    stack2.push(Frame2 {
        seg,
        axis: Axis::Radius,
        src,
        q: src_radius,
        start: 0,
        end: idx.len() as u32,
        depth: 0,
    });
    while let Some(f) = stack2.pop() {
        let (start, end) = (f.start as usize, f.end as usize);
        match end - start {
            0 => continue,
            1 => {
                attach(b, idx[start] as usize, f.src)?;
                continue;
            }
            2 => {
                attach(b, idx[start] as usize, f.src)?;
                attach(b, idx[start + 1] as usize, f.src)?;
                continue;
            }
            _ => {}
        }
        omt_obs::obs_observe!("bisect2d/depth", u64::from(f.depth));
        omt_obs::obs_count!("bisect2d/splits");
        let a = take_closest_in_slice(polar.radius, &mut idx[start..end], f.q);
        let c = take_closest_in_slice(polar.radius, &mut idx[start..end - 1], f.q);
        attach(b, a as usize, f.src)?;
        attach(b, c as usize, f.src)?;
        // Split the segment and hand each half to one carrier.
        let (lo_seg, hi_seg) = match f.axis {
            Axis::Radius => {
                let parts = f.seg.split4();
                // split4 yields [inner-lo, inner-hi, outer-lo, outer-hi];
                // recombine into inner/outer halves.
                (
                    RingSegment::new(
                        parts[0].r_lo(),
                        parts[0].r_hi(),
                        f.seg.arc().lo(),
                        f.seg.arc().hi(),
                    ),
                    RingSegment::new(
                        parts[2].r_lo(),
                        parts[2].r_hi(),
                        f.seg.arc().lo(),
                        f.seg.arc().hi(),
                    ),
                )
            }
            Axis::Angle => f.seg.split_angle(),
        };
        // Stable lo/hi partition of the remaining window (the two carriers
        // are parked past `rest_end` and are no longer members).
        let rest_end = end - 2;
        let rm = 0.5 * (f.seg.r_lo() + f.seg.r_hi());
        let am = f.seg.arc().mid();
        let is_hi = |p: u32| match f.axis {
            Axis::Radius => polar.radius[p as usize] >= rm,
            Axis::Angle => polar.angle[p as usize] >= am,
        };
        perm.clear();
        perm.extend_from_slice(&idx[start..rest_end]);
        let mut w = start;
        for &p in perm.iter() {
            if !is_hi(p) {
                idx[w] = p;
                w += 1;
            }
        }
        let mid = w;
        for &p in perm.iter() {
            if is_hi(p) {
                idx[w] = p;
                w += 1;
            }
        }
        debug_assert_eq!(w, rest_end);
        // Give the lower half to the carrier closer to it in the split
        // coordinate, to avoid pointless criss-crossing.
        let (pa, pc) = (polar.get(a), polar.get(c));
        let (carrier_lo, carrier_hi) = match f.axis {
            Axis::Radius => {
                if pa.radius <= pc.radius {
                    (a, c)
                } else {
                    (c, a)
                }
            }
            Axis::Angle => {
                if pa.angle <= pc.angle {
                    (a, c)
                } else {
                    (c, a)
                }
            }
        };
        stack2.push(Frame2 {
            seg: lo_seg,
            axis: f.axis.next(),
            src: ParentRef::Node(carrier_lo as usize),
            q: polar.radius_of(carrier_lo),
            start: start as u32,
            end: mid as u32,
            depth: f.depth + 1,
        });
        stack2.push(Frame2 {
            seg: hi_seg,
            axis: f.axis.next(),
            src: ParentRef::Node(carrier_hi as usize),
            q: polar.radius_of(carrier_hi),
            start: mid as u32,
            end: rest_end as u32,
            depth: f.depth + 1,
        });
    }
    Ok(())
}

/// A frame for running the bisection algorithm on an arbitrary point set:
/// a far-away pole so that the covering ring segment is thin
/// (`r > 0.6 R`) and narrow (`sin a > 5a/6`), as Section II requires for
/// the constant-factor guarantee.
#[derive(Clone, Debug)]
pub(crate) struct CoveringFrame {
    /// Polar coordinates of every point in the far-pole frame, with angles
    /// shifted to sit near `π` (so the arc never wraps `2π`).
    pub polar: Vec<PolarPoint>,
    /// The source's coordinates in the same frame.
    pub source_polar: PolarPoint,
    /// The minimal covering segment.
    pub segment: RingSegment,
}

impl CoveringFrame {
    /// Builds the covering frame. Returns `None` if all points coincide
    /// with the source (no extent — callers should fall back to a trivial
    /// fan-out tree).
    pub fn new(source: Point2, points: &[Point2]) -> Option<Self> {
        let mut min = source.coords();
        let mut max = source.coords();
        for p in points {
            for i in 0..2 {
                min[i] = min[i].min(p[i]);
                max[i] = max[i].max(p[i]);
            }
        }
        let diag = Point2::new(max).distance(&Point2::new(min));
        if diag == 0.0 {
            return None;
        }
        let center = Point2::new(min).midpoint(&Point2::new(max));
        // Pole at distance 20·diag: r/R ≥ 19.5/20.5 > 0.6 and the full
        // angular width is below 0.06 rad, so sin a > 5a/6 easily holds.
        let pole = center - Point2::new([20.0 * diag, 0.0]);
        let to_polar = |p: &Point2| {
            let v = *p - pole;
            // Raw angle is within ±~0.026 of 0 (the +x direction); shift by
            // π so the covering arc sits far from the 0/2π seam.
            let raw = v.y().atan2(v.x());
            PolarPoint::new(v.norm(), raw + core::f64::consts::PI)
        };
        let polar: Vec<PolarPoint> = points.iter().map(&to_polar).collect();
        let source_polar = to_polar(&source);
        let mut r_lo = source_polar.radius;
        let mut r_hi = source_polar.radius;
        let mut a_lo = source_polar.angle;
        let mut a_hi = source_polar.angle;
        for p in &polar {
            r_lo = r_lo.min(p.radius);
            r_hi = r_hi.max(p.radius);
            a_lo = a_lo.min(p.angle);
            a_hi = a_hi.max(p.angle);
        }
        // Nudge the exclusive upper bounds so extreme points are inside.
        let r_pad = (r_hi - r_lo).max(r_hi * 1e-12) * 1e-9 + f64::MIN_POSITIVE;
        let a_pad = (a_hi - a_lo).max(1e-12) * 1e-9 + f64::MIN_POSITIVE;
        let segment = RingSegment::new(r_lo, r_hi + r_pad, a_lo, a_hi + a_pad);
        Some(Self {
            polar,
            source_polar,
            segment,
        })
    }
}

/// The standalone bisection tree builder (Section II): a constant-factor
/// approximation algorithm for arbitrary point sets in the plane.
///
/// Budgets of 4 and above run the 4-way variant (approximation factor 5);
/// budgets 2 and 3 run the binary variant (factor 9).
///
/// # Examples
///
/// ```
/// use omt_core::Bisection;
/// use omt_geom::Point2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let points: Vec<Point2> = (0..50)
///     .map(|i| Point2::new([(i as f64 * 0.7).cos(), (i as f64 * 0.7).sin() * 0.5]))
///     .collect();
/// let tree = Bisection::new(4)?.build(Point2::ORIGIN, &points)?;
/// assert_eq!(tree.len(), 50);
/// assert!(tree.max_out_degree() <= 4);
/// tree.validate(Some(4))?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bisection {
    max_out_degree: u32,
}

impl Bisection {
    /// Creates a bisection builder with the given out-degree budget.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DegreeTooSmall`] for budgets below 2.
    pub fn new(max_out_degree: u32) -> Result<Self, BuildError> {
        if max_out_degree < 2 {
            return Err(BuildError::DegreeTooSmall {
                got: max_out_degree,
                min: 2,
            });
        }
        Ok(Self { max_out_degree })
    }

    /// The configured out-degree budget.
    pub const fn max_out_degree(&self) -> u32 {
        self.max_out_degree
    }

    /// Builds the spanning tree rooted at `source` over `points`.
    ///
    /// # Errors
    ///
    /// Returns an error if any coordinate is non-finite. Internal tree
    /// errors ([`BuildError::Internal`]) indicate a bug, not bad input.
    pub fn build(&self, source: Point2, points: &[Point2]) -> Result<MulticastTree<2>, BuildError> {
        if !source.is_finite() {
            return Err(BuildError::NonFiniteSource);
        }
        if let Some(bad) = points.iter().position(|p| !p.is_finite()) {
            return Err(BuildError::NonFinitePoint { index: bad });
        }
        let mut builder =
            TreeBuilder::new(source, points.to_vec()).max_out_degree(self.max_out_degree);
        match CoveringFrame::new(source, points) {
            None => {
                // Every point coincides with the source: any
                // degree-respecting tree is optimal (radius 0).
                fanout_chain(&mut builder, self.max_out_degree)?;
            }
            Some(frame) => {
                let idx: Vec<u32> = (0..points.len() as u32).collect();
                if self.max_out_degree >= 4 {
                    bisect4(
                        &mut builder,
                        &frame.polar,
                        frame.segment,
                        ParentRef::Source,
                        frame.source_polar.radius,
                        idx,
                    )?;
                } else {
                    bisect2(
                        &mut builder,
                        &frame.polar,
                        frame.segment,
                        ParentRef::Source,
                        frame.source_polar.radius,
                        idx,
                    )?;
                }
            }
        }
        Ok(builder.finish()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{bisection_bound_deg2, bisection_bound_deg4};
    use omt_geom::{Disk, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    fn disk_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = SmallRng::seed_from_u64(seed);
        Disk::unit().sample_n(&mut rng, n)
    }

    #[test]
    fn degree_below_two_rejected() {
        assert!(matches!(
            Bisection::new(1),
            Err(BuildError::DegreeTooSmall { got: 1, min: 2 })
        ));
        assert!(Bisection::new(2).is_ok());
    }

    #[test]
    fn non_finite_inputs_rejected() {
        let b = Bisection::new(4).unwrap();
        assert_eq!(
            b.build(Point2::new([f64::NAN, 0.0]), &[]),
            Err(BuildError::NonFiniteSource)
        );
        assert_eq!(
            b.build(Point2::ORIGIN, &[Point2::new([0.0, f64::INFINITY])]),
            Err(BuildError::NonFinitePoint { index: 0 })
        );
    }

    #[test]
    fn empty_input_yields_empty_tree() {
        let t = Bisection::new(4)
            .unwrap()
            .build(Point2::ORIGIN, &[])
            .unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn single_point() {
        let t = Bisection::new(2)
            .unwrap()
            .build(Point2::ORIGIN, &[Point2::new([3.0, 4.0])])
            .unwrap();
        assert_eq!(t.radius(), 5.0);
        t.validate(Some(2)).unwrap();
    }

    #[test]
    fn deg4_trees_are_valid_spanning_degree_bounded() {
        for n in [2usize, 5, 17, 100, 1000] {
            let pts = disk_points(n, n as u64);
            let t = Bisection::new(4)
                .unwrap()
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            assert_eq!(t.len(), n);
            t.validate(Some(4)).unwrap();
        }
    }

    #[test]
    fn deg2_trees_are_valid_spanning_degree_bounded() {
        for n in [2usize, 3, 9, 64, 777] {
            let pts = disk_points(n, 100 + n as u64);
            let t = Bisection::new(2)
                .unwrap()
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            assert_eq!(t.len(), n);
            t.validate(Some(2)).unwrap();
        }
    }

    #[test]
    fn duplicate_points_terminate() {
        let pts = vec![Point2::new([0.5, 0.5]); 50];
        for deg in [2, 4] {
            let t = Bisection::new(deg)
                .unwrap()
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            assert_eq!(t.len(), 50);
            t.validate(Some(deg)).unwrap();
        }
    }

    #[test]
    fn all_points_at_source_fall_back_to_fanout() {
        let pts = vec![Point2::new([1.0, 1.0]); 20];
        let t = Bisection::new(3)
            .unwrap()
            .build(Point2::new([1.0, 1.0]), &pts)
            .unwrap();
        assert_eq!(t.len(), 20);
        assert_eq!(t.radius(), 0.0);
        t.validate(Some(3)).unwrap();
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point2> = (1..=40)
            .map(|i| Point2::new([i as f64 * 0.1, 0.0]))
            .collect();
        for deg in [2, 4] {
            let t = Bisection::new(deg)
                .unwrap()
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            t.validate(Some(deg)).unwrap();
            // Optimal radius is 4.0 (the farthest point); factor must hold
            // comfortably on this benign instance.
            assert!(t.radius() < 4.0 * 3.0, "radius {}", t.radius());
        }
    }

    #[test]
    fn covering_frame_geometry() {
        let pts = disk_points(200, 9);
        let frame = CoveringFrame::new(Point2::ORIGIN, &pts).unwrap();
        let seg = frame.segment;
        // Thin: r > 0.6 R.
        assert!(seg.r_lo() > 0.6 * seg.r_hi());
        // Narrow: well below the sin a > 5a/6 threshold.
        assert!(seg.angle_width() < 0.2);
        // Contains every point and the source.
        for p in &frame.polar {
            assert!(seg.contains(p), "{p:?} outside {seg:?}");
        }
        assert!(seg.contains(&frame.source_polar));
    }

    #[test]
    fn paths_respect_equation_bounds() {
        // Equation (1) bounds every root-to-leaf path of the deg-4 variant;
        // the binary deg-2 variant satisfies equation (2). We assert the
        // tree radius (longest path) against the bound in the covering
        // frame, with a small numerical tolerance.
        for seed in 0..5u64 {
            let pts = disk_points(300, 40 + seed);
            let frame = CoveringFrame::new(Point2::ORIGIN, &pts).unwrap();
            let q = frame.source_polar.radius;

            let t4 = Bisection::new(4)
                .unwrap()
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            let bound4 = bisection_bound_deg4(&frame.segment, q);
            assert!(
                t4.radius() <= bound4 * (1.0 + 1e-9),
                "deg4 radius {} > bound {}",
                t4.radius(),
                bound4
            );

            let t2 = Bisection::new(2)
                .unwrap()
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            let bound2 = bisection_bound_deg2(&frame.segment, q);
            assert!(
                t2.radius() <= bound2 * (1.0 + 1e-9),
                "deg2 radius {} > bound {}",
                t2.radius(),
                bound2
            );
        }
    }

    #[test]
    fn constant_factor_versus_lower_bound() {
        // OPT >= max direct distance; Theorem 1 promises factor 5 (deg 4)
        // and 9 (deg 2) against OPT, so in particular against this bound.
        for seed in 0..5u64 {
            let pts = disk_points(500, 700 + seed);
            let opt_lb = pts.iter().map(|p| p.norm()).fold(0.0, f64::max);
            let t4 = Bisection::new(4)
                .unwrap()
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            assert!(
                t4.radius() <= 5.0 * opt_lb * (1.0 + 1e-9),
                "factor 5 violated"
            );
            let t2 = Bisection::new(2)
                .unwrap()
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            assert!(
                t2.radius() <= 9.0 * opt_lb * (1.0 + 1e-9),
                "factor 9 violated"
            );
        }
    }

    #[test]
    fn budget_three_uses_binary_variant() {
        let pts = disk_points(50, 3);
        let t = Bisection::new(3)
            .unwrap()
            .build(Point2::ORIGIN, &pts)
            .unwrap();
        assert!(t.max_out_degree() <= 2);
        t.validate(Some(3)).unwrap();
    }

    #[test]
    fn take_closest_radius_picks_nearest() {
        let polar = vec![
            PolarPoint::new(1.0, 0.0),
            PolarPoint::new(5.0, 0.0),
            PolarPoint::new(2.9, 0.0),
        ];
        let mut idx = vec![0, 1, 2];
        let got = take_closest_radius(&polar, &mut idx, 3.0);
        assert_eq!(got, 2);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn take_closest_slice_twin_preserves_vec_order() {
        // The slice twin must leave the surviving window in exactly the
        // order Vec::swap_remove leaves the Vec, including on ties (first
        // minimum wins in both).
        let radius = vec![3.0, 1.0, 3.0, 2.0, 2.0];
        let polar: Vec<PolarPoint> = radius.iter().map(|&r| PolarPoint::new(r, 0.0)).collect();
        let mut as_vec: Vec<u32> = vec![0, 1, 2, 3, 4];
        let mut as_slice: Vec<u32> = as_vec.clone();
        for q in [2.0, 3.0, 0.0] {
            let from_vec = take_closest_radius(&polar, &mut as_vec, q);
            let len = as_slice.len();
            let from_slice = take_closest_in_slice(&radius, &mut as_slice[..len], q);
            as_slice.truncate(len - 1);
            assert_eq!(from_vec, from_slice);
            assert_eq!(as_vec, as_slice);
        }
    }

    #[test]
    fn soa_twins_emit_identical_edge_lists() {
        use crate::sink::EdgeList;
        let pts = disk_points(400, 77);
        let frame = CoveringFrame::new(Point2::ORIGIN, &pts).unwrap();
        let radius: Vec<f64> = frame.polar.iter().map(|p| p.radius).collect();
        let angle: Vec<f64> = frame.polar.iter().map(|p| p.angle).collect();
        let slices = PolarSlices {
            radius: &radius,
            angle: &angle,
        };
        let idx: Vec<u32> = (0..pts.len() as u32).collect();
        let mut scratch = Scratch2::default();

        let mut legacy4 = EdgeList::default();
        bisect4(
            &mut legacy4,
            &frame.polar,
            frame.segment,
            ParentRef::Source,
            frame.source_polar.radius,
            idx.clone(),
        )
        .unwrap();
        let mut soa4 = EdgeList::default();
        let mut idx4 = idx.clone();
        bisect4_soa(
            &mut soa4,
            slices,
            frame.segment,
            ParentRef::Source,
            frame.source_polar.radius,
            &mut idx4,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(legacy4.0, soa4.0, "deg-4 edge emission diverged");

        let mut legacy2 = EdgeList::default();
        bisect2(
            &mut legacy2,
            &frame.polar,
            frame.segment,
            ParentRef::Source,
            frame.source_polar.radius,
            idx.clone(),
        )
        .unwrap();
        let mut soa2 = EdgeList::default();
        let mut idx2 = idx;
        bisect2_soa(
            &mut soa2,
            slices,
            frame.segment,
            ParentRef::Source,
            frame.source_polar.radius,
            &mut idx2,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(legacy2.0, soa2.0, "deg-2 edge emission diverged");
    }
}
