//! The three-dimensional `Polar_Grid` (Section IV-B, evaluated in
//! Figure 8): spherical shells of equal volume, a binary core tree over
//! cell representatives, and 8-way bisection inside cells — out-degree 10
//! (2 core + 8 bisection links), or the degree-2 wiring.

use omt_geom::{Point3, PointStore3, ShellCell, SphericalPoint};
use omt_tree::{
    check_node_capacity, MulticastTree, NodeId, ParentRef, TreeArena, TreeBuilder, TreeError,
};

use crate::bisect3d::{
    attach3, bisect2_3d, bisect2_3d_soa, bisect8, bisect8_soa, fanout_chain3, Scratch3, SphSlices,
};
use crate::error::BuildError;
use crate::fanout::fanout_sink;
use crate::grid3::SphereGrid3;
use crate::kselect::{
    bucket_cells, cell_count, cell_index, finest_level, select_rings, Assignments,
};
use crate::polar_grid::{PolarGridReport, RepStrategy, SOA_CHUNK};
use crate::sink::{unpack_parent, EdgeList, SharedArena, PACKED_SOURCE};

/// One deferred in-cell bisection (the 3-D twin of the 2-D `CellJob`):
/// pure data, independent across cells, safe to run on any thread.
struct CellJob3 {
    cell: ShellCell,
    parent: ParentRef,
    q: f64,
    idx: Vec<u32>,
}

/// Runs the per-cell bisections: directly against the builder with one
/// thread, or via private per-cell edge lists replayed in cell order with
/// more. Both paths produce the identical edge set and therefore a
/// bit-identical tree (see `crate::sink`).
fn run_cell_jobs3(
    builder: &mut TreeBuilder<3>,
    sph: &[SphericalPoint],
    jobs: Vec<CellJob3>,
    binary: bool,
    threads: usize,
) -> Result<(), TreeError> {
    if threads <= 1 || jobs.len() <= 1 {
        for job in jobs {
            if binary {
                bisect2_3d(builder, sph, job.cell, job.parent, job.q, job.idx)?;
            } else {
                bisect8(builder, sph, job.cell, job.parent, job.q, job.idx)?;
            }
        }
        return Ok(());
    }
    let lists = omt_par::par_map_indexed(&jobs, threads, |_, job| {
        let mut edges = EdgeList::default();
        let result = if binary {
            bisect2_3d(
                &mut edges,
                sph,
                job.cell,
                job.parent,
                job.q,
                job.idx.clone(),
            )
        } else {
            bisect8(
                &mut edges,
                sph,
                job.cell,
                job.parent,
                job.q,
                job.idx.clone(),
            )
        };
        result.map(|()| edges.0)
    });
    for list in lists {
        for (child, parent) in list? {
            attach3(builder, child as usize, parent)?;
        }
    }
    Ok(())
}

/// The SoA twin of [`CellJob3`], packed to 20 bytes (the 3-D analogue of
/// the 2-D `SoaCellJob`): the job names its cell by `(ring, seg)` — the
/// [`ShellCell`] geometry is pure arithmetic, re-derived from the grid at
/// dispatch — its local root by a packed [`NodeId`] (`PACKED_SOURCE` = the
/// source; the bisection offset `q` is always that root's radius, 0 for
/// the source), and its members by a window `[start, end)` of the shared
/// flat member array.
#[derive(Clone, Copy, Debug)]
struct SoaCellJob3 {
    ring: u32,
    seg: u32,
    parent: NodeId,
    start: u32,
    end: u32,
}

/// 3-D twin of `run_cell_jobs_soa` (see `crate::polar_grid`): sequentially
/// each job bisects its window of the flat member array in place; in
/// parallel the disjoint windows are split out with `split_at_mut` and
/// every worker writes directly into the shared arena through the
/// [`SharedArena`] sink — no edge buffers, no replay.
fn run_cell_jobs3_soa(
    arena: &mut TreeArena<'_, 3>,
    sph: SphSlices<'_>,
    grid: &SphereGrid3,
    jobs: Vec<SoaCellJob3>,
    members: &mut [u32],
    binary: bool,
    threads: usize,
) -> Result<(), TreeError> {
    let job_geometry = |job: &SoaCellJob3| -> (ShellCell, ParentRef, f64) {
        let cell = grid.cell(job.ring, u64::from(job.seg));
        let (parent, q) = if job.parent == PACKED_SOURCE {
            (ParentRef::Source, 0.0)
        } else {
            (
                ParentRef::Node(job.parent as usize),
                sph.radius_of(job.parent),
            )
        };
        (cell, parent, q)
    };
    if threads <= 1 || jobs.len() <= 1 {
        let mut scratch = Scratch3::default();
        for job in jobs {
            let (cell, parent, q) = job_geometry(&job);
            let idx = &mut members[job.start as usize..job.end as usize];
            if binary {
                bisect2_3d_soa(arena, sph, cell, parent, q, idx, &mut scratch)?;
            } else {
                bisect8_soa(arena, sph, cell, parent, q, idx, &mut scratch)?;
            }
        }
        return Ok(());
    }
    // Exclusive per-job windows out of the flat member array (ascending and
    // disjoint by construction of the counting-sort partition).
    let mut filled = 0usize;
    let mut work: Vec<(SoaCellJob3, &mut [u32])> = Vec::with_capacity(jobs.len());
    {
        let mut rest: &mut [u32] = members;
        let mut base = 0usize;
        for job in jobs {
            let (start, end) = (job.start as usize, job.end as usize);
            debug_assert!(start >= base && end >= start, "job windows must ascend");
            let tail = rest.split_at_mut(start - base).1;
            let (win, tail) = tail.split_at_mut(end - start);
            base = end;
            rest = tail;
            filled += win.len();
            work.push((job, win));
        }
    }
    let shared: &TreeArena<'_, 3> = arena;
    let results = omt_par::par_map_with_mut(
        &mut work,
        threads,
        Scratch3::default,
        |scratch, _, (job, win)| {
            let (cell, parent, q) = job_geometry(job);
            let win: &mut [u32] = win;
            let mut sink = SharedArena(shared);
            if binary {
                bisect2_3d_soa(&mut sink, sph, cell, parent, q, win, scratch)
            } else {
                bisect8_soa(&mut sink, sph, cell, parent, q, win, scratch)
            }
        },
    );
    for r in results {
        r?;
    }
    arena.add_attached(filled);
    Ok(())
}

/// Builder for the 3-D `Polar_Grid` algorithm over points in a ball.
///
/// Budgets of 10 and above use the degree-10 construction of the paper
/// (2 core links + 8 octant-bisection links per representative); budgets
/// 2–9 use the degree-2 wiring of Section IV-A with a binary in-cell
/// bisection.
///
/// # Examples
///
/// ```
/// use omt_core::SphereGridBuilder;
/// use omt_geom::{Ball, Point3, Region};
/// use omt_rng::rngs::SmallRng;
/// use omt_rng::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = SmallRng::seed_from_u64(5);
/// let hosts = Ball::<3>::unit().sample_n(&mut rng, 3000);
/// let (tree, report) = SphereGridBuilder::new()
///     .build_with_report(Point3::ORIGIN, &hosts)?;
/// tree.validate(Some(10))?;
/// assert!(report.delay >= report.lower_bound);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SphereGridBuilder {
    max_out_degree: u32,
    rings_override: Option<u32>,
    rep_strategy: RepStrategy,
    threads: Option<usize>,
}

impl Default for SphereGridBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SphereGridBuilder {
    /// Creates a builder with the paper's 3-D defaults: out-degree 10,
    /// automatic ring selection, inner-boundary-midpoint representatives.
    pub fn new() -> Self {
        Self {
            max_out_degree: 10,
            rings_override: None,
            rep_strategy: RepStrategy::InnerArcMid,
            threads: None,
        }
    }

    /// Sets the out-degree budget (≥ 10 → degree-10 construction,
    /// 2–9 → degree-2 wiring; < 2 fails at build time).
    #[must_use]
    pub fn max_out_degree(mut self, budget: u32) -> Self {
        self.max_out_degree = budget;
        self
    }

    /// Forces a specific number of rings. Fails at build time if the
    /// override is infeasible.
    #[must_use]
    pub fn rings(mut self, k: u32) -> Self {
        self.rings_override = Some(k);
        self
    }

    /// Overrides the representative selection rule (for ablations).
    #[must_use]
    pub fn representative_strategy(mut self, strategy: RepStrategy) -> Self {
        self.rep_strategy = strategy;
        self
    }

    /// Pins the worker-thread count for the per-cell bisection phase
    /// (`1` = sequential path; unset = `OMT_THREADS` / available
    /// parallelism). Trees are bit-identical for every thread count; see
    /// [`PolarGridBuilder::threads`](crate::PolarGridBuilder::threads).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Builds the multicast tree.
    ///
    /// # Errors
    ///
    /// See [`SphereGridBuilder::build_with_report`].
    pub fn build(&self, source: Point3, points: &[Point3]) -> Result<MulticastTree<3>, BuildError> {
        self.build_with_report(source, points).map(|(t, _)| t)
    }

    /// Builds the multicast tree and returns the diagnostics.
    ///
    /// The report's `bound` field is the 3-D analogue of equation (7):
    /// `ρ + c·D_0 + Σ_{i=1}^{k-1} D_i`, where `D_i` is the largest angular
    /// diameter of a ring-`i` cell and `c` is 2 (degree ≥ 10) or 4
    /// (degree-2 wiring).
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`PolarGridBuilder::build_with_report`](crate::PolarGridBuilder::build_with_report).
    pub fn build_with_report(
        &self,
        source: Point3,
        points: &[Point3],
    ) -> Result<(MulticastTree<3>, PolarGridReport), BuildError> {
        if self.max_out_degree < 2 {
            return Err(BuildError::DegreeTooSmall {
                got: self.max_out_degree,
                min: 2,
            });
        }
        if !source.is_finite() {
            return Err(BuildError::NonFiniteSource);
        }
        if let Some(bad) = points.iter().position(|p| !p.is_finite()) {
            return Err(BuildError::NonFinitePoint { index: bad });
        }
        let n = points.len();
        let _build_span = omt_obs::obs_span!("sphere_grid/build");
        omt_obs::obs_count!("sphere_grid/builds");
        let mut builder =
            TreeBuilder::new(source, points.to_vec()).max_out_degree(self.max_out_degree);
        if n == 0 {
            let tree = builder.finish()?;
            return Ok((tree, trivial_report(0)));
        }
        let partition_span = omt_obs::obs_span!("sphere_grid/partition");
        let sph: Vec<SphericalPoint> = points
            .iter()
            .map(|p| SphericalPoint::from_cartesian(&(*p - source)))
            .collect();
        let lower_bound = sph.iter().map(|p| p.radius).fold(0.0, f64::max);
        if lower_bound == 0.0 {
            fanout_chain3(&mut builder, self.max_out_degree)?;
            let tree = builder.finish()?;
            let mut report = trivial_report(1);
            report.occupied_cells = 1;
            return Ok((tree, report));
        }
        let rho = lower_bound * (1.0 + 1e-9);

        let k_max = finest_level(n);
        let finest = SphereGrid3::new(k_max, rho);
        let assignments = Assignments {
            k_max,
            ring: sph
                .iter()
                .map(|p| finest.ring_of_radius(p.radius))
                .collect(),
            path: sph.iter().map(|p| finest.angular_path(p) as u32).collect(),
        };
        let (k_auto, _) = select_rings(&assignments);
        let k = match self.rings_override {
            None => k_auto,
            Some(req) if req <= k_auto => req,
            Some(req) => {
                return Err(BuildError::InfeasibleRings {
                    requested: req,
                    feasible: k_auto,
                })
            }
        };
        let grid = SphereGrid3::new(k, rho);
        let deg10 = self.max_out_degree >= 10;

        // Bucket points per cell.
        let cells = cell_count(k);
        let (counts, members) = bucket_cells(&assignments, k);
        let cell_members = |c: usize| &members[counts[c] as usize..counts[c + 1] as usize];
        let occupied_cells = (0..cells).filter(|&c| counts[c] != counts[c + 1]).count();
        omt_obs::obs_observe!("sphere_grid/occupied_cells", occupied_cells as u64);
        drop(partition_span);

        // Two passes, exactly like the 2-D builder: sequential core
        // wiring capturing one bisection job per cell, then the jobs.
        let threads = omt_par::resolve_threads(self.threads);
        let mut core_delay = 0.0f64;
        let mut jobs: Vec<CellJob3> = Vec::new();
        if deg10 {
            let core_span = omt_obs::obs_span!("sphere_grid/core");
            let mut rep_ref: Vec<ParentRef> = vec![ParentRef::Source; cells];
            jobs.push(CellJob3 {
                cell: grid.cell(0, 0),
                parent: ParentRef::Source,
                q: 0.0,
                idx: cell_members(0).to_vec(),
            });
            for ring in 1..=k {
                for seg in 0..(1u64 << ring) {
                    let c = cell_index(ring, seg);
                    let mem = cell_members(c);
                    if mem.is_empty() {
                        continue;
                    }
                    let rep = pick_rep(
                        self.rep_strategy,
                        &sph,
                        mem,
                        inner_arc_mid(&grid, ring, seg),
                    );
                    let (pr, ps) = grid.parent(ring, seg).expect("ring >= 1 has a parent");
                    attach3(&mut builder, rep as usize, rep_ref[cell_index(pr, ps)])?;
                    core_delay =
                        core_delay.max(builder.depth_of(rep as usize).expect("just attached"));
                    rep_ref[c] = ParentRef::Node(rep as usize);
                    let rest: Vec<u32> = mem.iter().copied().filter(|&p| p != rep).collect();
                    jobs.push(CellJob3 {
                        cell: grid.cell(ring, seg),
                        parent: ParentRef::Node(rep as usize),
                        q: sph[rep as usize].radius,
                        idx: rest,
                    });
                }
            }
            drop(core_span);
            let _cells_span = omt_obs::obs_span!("sphere_grid/cells");
            run_cell_jobs3(&mut builder, &sph, jobs, false, threads)?;
        } else {
            let core_span = omt_obs::obs_span!("sphere_grid/core");
            let mut connector: Vec<ParentRef> = vec![ParentRef::Source; cells];
            {
                let mem = cell_members(0);
                let has_core_children = k >= 1
                    && (!cell_members(cell_index(1, 0)).is_empty()
                        || !cell_members(cell_index(1, 1)).is_empty());
                let (conn, job) = wire_cell_deg2_3d(
                    self.rep_strategy,
                    &mut builder,
                    &sph,
                    &grid,
                    0,
                    0,
                    ParentRef::Source,
                    0.0,
                    mem,
                    None,
                    has_core_children,
                )?;
                connector[0] = conn;
                jobs.extend(job);
            }
            for ring in 1..=k {
                for seg in 0..(1u64 << ring) {
                    let c = cell_index(ring, seg);
                    let mem = cell_members(c);
                    if mem.is_empty() {
                        continue;
                    }
                    let rep = pick_rep(
                        self.rep_strategy,
                        &sph,
                        mem,
                        inner_arc_mid(&grid, ring, seg),
                    );
                    let (pr, ps) = grid.parent(ring, seg).expect("ring >= 1 has a parent");
                    attach3(&mut builder, rep as usize, connector[cell_index(pr, ps)])?;
                    core_delay =
                        core_delay.max(builder.depth_of(rep as usize).expect("just attached"));
                    let has_core_children = match grid.children(ring, seg) {
                        None => false,
                        Some(kids) => kids
                            .iter()
                            .any(|&(r, s)| !cell_members(cell_index(r, s)).is_empty()),
                    };
                    let (conn, job) = wire_cell_deg2_3d(
                        self.rep_strategy,
                        &mut builder,
                        &sph,
                        &grid,
                        ring,
                        seg,
                        ParentRef::Node(rep as usize),
                        sph[rep as usize].radius,
                        mem,
                        Some(rep),
                        has_core_children,
                    )?;
                    connector[c] = conn;
                    jobs.extend(job);
                }
            }
            drop(core_span);
            let _cells_span = omt_obs::obs_span!("sphere_grid/cells");
            run_cell_jobs3(&mut builder, &sph, jobs, true, threads)?;
        }

        let _finish_span = omt_obs::obs_span!("sphere_grid/finish");
        let tree = builder.finish()?;
        let delay = tree.radius();
        let c = if deg10 { 2.0 } else { 4.0 };
        let mut bound = rho + c * grid.max_angular_diameter(0);
        for i in 1..k {
            bound += grid.max_angular_diameter(i);
        }
        let report = PolarGridReport {
            rings: k,
            delay,
            core_delay,
            bound,
            lower_bound,
            cells,
            occupied_cells,
        };
        Ok((tree, report))
    }

    /// Builds the multicast tree from a structure-of-arrays point store
    /// (the million-scale path).
    ///
    /// # Errors
    ///
    /// See [`SphereGridBuilder::build_store_with_report`].
    pub fn build_store(&self, store: &PointStore3) -> Result<MulticastTree<3>, BuildError> {
        self.build_store_with_report(store).map(|(t, _)| t)
    }

    /// Builds the multicast tree from a structure-of-arrays point store and
    /// returns the diagnostics.
    ///
    /// The 3-D twin of
    /// [`PolarGridBuilder::build_store_with_report`](crate::PolarGridBuilder::build_store_with_report):
    /// arena tree construction over the store's borrowed coordinate
    /// columns, counting-sort cell partition, in-place window bisections —
    /// **bit-identical** to [`SphereGridBuilder::build_with_report`] on the
    /// same input for every thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SphereGridBuilder::build_with_report`], in the
    /// same order.
    ///
    /// # Examples
    ///
    /// ```
    /// use omt_core::SphereGridBuilder;
    /// use omt_geom::{Ball, Point3, PointStore3, Region};
    /// use omt_rng::rngs::SmallRng;
    /// use omt_rng::SeedableRng;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut rng = SmallRng::seed_from_u64(5);
    /// let store =
    ///     PointStore3::sample_region(Point3::ORIGIN, &Ball::<3>::unit(), &mut rng, 3000);
    /// let (tree, report) = SphereGridBuilder::new().build_store_with_report(&store)?;
    /// tree.validate(Some(10))?;
    /// assert!(report.delay <= report.bound);
    ///
    /// let mut rng = SmallRng::seed_from_u64(5);
    /// let points = Ball::<3>::unit().sample_n(&mut rng, 3000);
    /// let legacy = SphereGridBuilder::new().build(Point3::ORIGIN, &points)?;
    /// assert_eq!(tree, legacy);
    /// # Ok(())
    /// # }
    /// ```
    pub fn build_store_with_report(
        &self,
        store: &PointStore3,
    ) -> Result<(MulticastTree<3>, PolarGridReport), BuildError> {
        if self.max_out_degree < 2 {
            return Err(BuildError::DegreeTooSmall {
                got: self.max_out_degree,
                min: 2,
            });
        }
        let source = store.source();
        if !source.is_finite() {
            return Err(BuildError::NonFiniteSource);
        }
        let n = store.len();
        check_node_capacity(n).map_err(|_| BuildError::TooManyPoints {
            nodes: n,
            max: omt_tree::MAX_NODES,
        })?;
        let (xs, ys, zs) = (store.xs(), store.ys(), store.zs());
        let threads = omt_par::resolve_threads(self.threads);
        // Chunked parallel finiteness scan; the first `Some` in chunk order
        // is the global first offending index.
        let chunk_starts: Vec<usize> = (0..n).step_by(SOA_CHUNK).collect();
        let first_bad = omt_par::par_map_indexed(&chunk_starts, threads, |_, &s| {
            let e = (s + SOA_CHUNK).min(n);
            (s..e).find(|&i| !(xs[i].is_finite() && ys[i].is_finite() && zs[i].is_finite()))
        })
        .into_iter()
        .flatten()
        .next();
        if let Some(bad) = first_bad {
            return Err(BuildError::NonFinitePoint { index: bad });
        }
        let _build_span = omt_obs::obs_span!("sphere_grid/build");
        omt_obs::obs_count!("sphere_grid/builds");
        if n == 0 {
            let arena = TreeArena::new(source, [xs, ys, zs]).max_out_degree(self.max_out_degree);
            let tree = arena.into_tree()?;
            return Ok((tree, trivial_report(0)));
        }
        let partition_span = omt_obs::obs_span!("sphere_grid/partition");
        let sph = SphSlices {
            radius: store.radius(),
            azimuth: store.azimuth(),
            cos_polar: store.cos_polar(),
        };
        // Chunked parallel max (associative over finite non-negative radii,
        // so bit-identical to the flat fold).
        let lower_bound = omt_par::par_map_indexed(&chunk_starts, threads, |_, &s| {
            let e = (s + SOA_CHUNK).min(n);
            sph.radius[s..e].iter().copied().fold(0.0, f64::max)
        })
        .into_iter()
        .fold(0.0, f64::max);
        if lower_bound == 0.0 {
            let mut arena =
                TreeArena::new(source, [xs, ys, zs]).max_out_degree(self.max_out_degree);
            fanout_sink(&mut arena, n, self.max_out_degree)?;
            let tree = arena.into_tree()?;
            let mut report = trivial_report(1);
            report.occupied_cells = 1;
            return Ok((tree, report));
        }
        let rho = lower_bound * (1.0 + 1e-9);

        // Finest-level assignment, batched over disjoint column chunks.
        let k_max = finest_level(n);
        let finest = SphereGrid3::new(k_max, rho);
        let mut ring = vec![0u32; n];
        let mut path = vec![0u32; n];
        {
            let mut chunks: Vec<(usize, &mut [u32], &mut [u32])> = ring
                .chunks_mut(SOA_CHUNK)
                .zip(path.chunks_mut(SOA_CHUNK))
                .enumerate()
                .map(|(ci, (r, p))| (ci * SOA_CHUNK, r, p))
                .collect();
            omt_par::par_map_indexed_mut(&mut chunks, threads, |_, (base, rc, pc)| {
                for j in 0..rc.len() {
                    let i = *base + j;
                    rc[j] = finest.ring_of_radius(sph.radius[i]);
                    pc[j] = finest.angular_path(&sph.get(i as u32)) as u32;
                }
            });
        }
        let assignments = Assignments { k_max, ring, path };
        let (k_auto, _) = select_rings(&assignments);
        let k = match self.rings_override {
            None => k_auto,
            Some(req) if req <= k_auto => req,
            Some(req) => {
                return Err(BuildError::InfeasibleRings {
                    requested: req,
                    feasible: k_auto,
                })
            }
        };
        let grid = SphereGrid3::new(k, rho);
        let deg10 = self.max_out_degree >= 10;

        // Bucket points per cell (counting sort); every later stage
        // permutes windows of this one flat array. The assignment columns
        // are dead after this and freed before the arena's node arrays are
        // allocated, keeping them out of the peak-RSS window.
        let cells = cell_count(k);
        let (counts, mut members) = bucket_cells(&assignments, k);
        drop(assignments);
        let cell_range = |c: usize| (counts[c] as usize, counts[c + 1] as usize);
        let occupied_cells = (0..cells).filter(|&c| counts[c] != counts[c + 1]).count();
        omt_obs::obs_observe!("sphere_grid/occupied_cells", occupied_cells as u64);
        drop(partition_span);

        let mut arena = TreeArena::new(source, [xs, ys, zs]).max_out_degree(self.max_out_degree);

        // Representative pre-pass (see `crate::polar_grid`): picks depend
        // only on the un-permuted window contents, so they run in parallel
        // up front and the sequential core pass consumes them via a cursor.
        let rep_span = omt_obs::obs_span!("sphere_grid/reps");
        let occupied_list: Vec<(u32, u32)> = (1..=k)
            .flat_map(|ring| (0..(1u64 << ring)).map(move |seg| (ring, seg as u32)))
            .filter(|&(ring, seg)| {
                let c = cell_index(ring, u64::from(seg));
                counts[c] != counts[c + 1]
            })
            .collect();
        let reps: Vec<u32> = {
            let members_ro: &[u32] = &members;
            omt_par::par_map_indexed(&occupied_list, threads, |_, &(ring, seg)| {
                let (cs, ce) = cell_range(cell_index(ring, u64::from(seg)));
                pick_rep_soa(
                    self.rep_strategy,
                    sph,
                    &members_ro[cs..ce],
                    inner_arc_mid(&grid, ring, u64::from(seg)),
                )
            })
        };
        drop(occupied_list);
        drop(rep_span);

        let mut core_delay = 0.0f64;
        let mut jobs: Vec<SoaCellJob3> = Vec::with_capacity(reps.len() + 1);
        let mut next_rep = reps.iter().copied();
        if deg10 {
            let core_span = omt_obs::obs_span!("sphere_grid/core");
            let mut rep_ref: Vec<NodeId> = vec![PACKED_SOURCE; cells];
            jobs.push(SoaCellJob3 {
                ring: 0,
                seg: 0,
                parent: PACKED_SOURCE,
                start: counts[0],
                end: counts[1],
            });
            for ring in 1..=k {
                for seg in 0..(1u64 << ring) {
                    let c = cell_index(ring, seg);
                    let (cs, ce) = cell_range(c);
                    if cs == ce {
                        continue;
                    }
                    let rep = next_rep.next().expect("one pre-picked rep per cell");
                    let (pr, ps) = grid.parent(ring, seg).expect("ring >= 1 has a parent");
                    attach3(
                        &mut arena,
                        rep as usize,
                        unpack_parent(rep_ref[cell_index(pr, ps)]),
                    )?;
                    core_delay =
                        core_delay.max(arena.depth_of(rep as usize).expect("just attached"));
                    rep_ref[c] = rep;
                    // Order-preserving removal of the representative.
                    let sub = &mut members[cs..ce];
                    let pos = sub.iter().position(|&p| p == rep).expect("rep is a member");
                    sub[pos..].rotate_left(1);
                    jobs.push(SoaCellJob3 {
                        ring,
                        seg: seg as u32,
                        parent: rep,
                        start: cs as u32,
                        end: (ce - 1) as u32,
                    });
                }
            }
            drop(core_span);
            drop(rep_ref);
        } else {
            let core_span = omt_obs::obs_span!("sphere_grid/core");
            let mut connector: Vec<NodeId> = vec![PACKED_SOURCE; cells];
            {
                let nonempty = |c: usize| counts[c] != counts[c + 1];
                let has_core_children =
                    k >= 1 && (nonempty(cell_index(1, 0)) || nonempty(cell_index(1, 1)));
                let (cs, ce) = cell_range(0);
                let (conn, job) = wire_cell_deg2_3d_soa(
                    &mut arena,
                    sph,
                    0,
                    0,
                    PACKED_SOURCE,
                    &mut members,
                    cs,
                    ce,
                    None,
                    has_core_children,
                )?;
                connector[0] = conn;
                jobs.extend(job);
            }
            for ring in 1..=k {
                for seg in 0..(1u64 << ring) {
                    let c = cell_index(ring, seg);
                    let (cs, ce) = cell_range(c);
                    if cs == ce {
                        continue;
                    }
                    let rep = next_rep.next().expect("one pre-picked rep per cell");
                    let (pr, ps) = grid.parent(ring, seg).expect("ring >= 1 has a parent");
                    attach3(
                        &mut arena,
                        rep as usize,
                        unpack_parent(connector[cell_index(pr, ps)]),
                    )?;
                    core_delay =
                        core_delay.max(arena.depth_of(rep as usize).expect("just attached"));
                    let has_core_children = match grid.children(ring, seg) {
                        None => false,
                        Some(kids) => kids.iter().any(|&(r, s)| {
                            let cc = cell_index(r, s);
                            counts[cc] != counts[cc + 1]
                        }),
                    };
                    let (conn, job) = wire_cell_deg2_3d_soa(
                        &mut arena,
                        sph,
                        ring,
                        seg as u32,
                        rep,
                        &mut members,
                        cs,
                        ce,
                        Some(rep),
                        has_core_children,
                    )?;
                    connector[c] = conn;
                    jobs.extend(job);
                }
            }
            drop(core_span);
            drop(connector);
        }
        debug_assert!(next_rep.next().is_none(), "every pre-picked rep consumed");
        drop(reps);
        drop(counts);

        {
            let _cells_span = omt_obs::obs_span!("sphere_grid/cells");
            run_cell_jobs3_soa(&mut arena, sph, &grid, jobs, &mut members, !deg10, threads)?;
        }
        drop(members);

        let _finish_span = omt_obs::obs_span!("sphere_grid/finish");
        let tree = arena.into_tree()?;
        let delay = tree.radius();
        let c = if deg10 { 2.0 } else { 4.0 };
        let mut bound = rho + c * grid.max_angular_diameter(0);
        for i in 1..k {
            bound += grid.max_angular_diameter(i);
        }
        let report = PolarGridReport {
            rings: k,
            delay,
            core_delay,
            bound,
            lower_bound,
            cells,
            occupied_cells,
        };
        Ok((tree, report))
    }
}

fn trivial_report(occupied: usize) -> PolarGridReport {
    PolarGridReport {
        rings: 0,
        delay: 0.0,
        core_delay: 0.0,
        bound: 0.0,
        lower_bound: 0.0,
        cells: 1,
        occupied_cells: occupied,
    }
}

/// Midpoint of a cell's inner boundary (minimum radius, central angles),
/// in the source-relative frame.
fn inner_arc_mid(grid: &SphereGrid3, ring: u32, seg: u64) -> Point3 {
    let cell = grid.cell(ring, seg);
    let (z_lo, z_hi) = cell.z_range();
    SphericalPoint::new(cell.r_lo(), cell.arc().mid(), 0.5 * (z_lo + z_hi)).to_cartesian()
}

fn pick_rep(
    strategy: RepStrategy,
    sph: &[SphericalPoint],
    members: &[u32],
    inner_mid: Point3,
) -> u32 {
    debug_assert!(!members.is_empty());
    match strategy {
        RepStrategy::InnerArcMid => *members
            .iter()
            .min_by(|&&a, &&b| {
                let da = sph[a as usize].to_cartesian().distance_squared(&inner_mid);
                let db = sph[b as usize].to_cartesian().distance_squared(&inner_mid);
                da.total_cmp(&db)
            })
            .expect("nonempty"),
        RepStrategy::MinRadius => *members
            .iter()
            .min_by(|&&a, &&b| sph[a as usize].radius.total_cmp(&sph[b as usize].radius))
            .expect("nonempty"),
        RepStrategy::MaxRadius => *members
            .iter()
            .max_by(|&&a, &&b| sph[a as usize].radius.total_cmp(&sph[b as usize].radius))
            .expect("nonempty"),
        RepStrategy::First => members[0],
    }
}

/// Degree-2 in-cell wiring (3-D twin of the 2-D version): returns the
/// cell's connector and the deferred in-cell bisection job, if any.
#[allow(clippy::too_many_arguments)]
fn wire_cell_deg2_3d(
    strategy: RepStrategy,
    builder: &mut TreeBuilder<3>,
    sph: &[SphericalPoint],
    grid: &SphereGrid3,
    ring: u32,
    seg: u64,
    rep_ref: ParentRef,
    rep_radius: f64,
    members: &[u32],
    rep: Option<u32>,
    has_core_children: bool,
) -> Result<(ParentRef, Option<CellJob3>), BuildError> {
    let _ = strategy;
    let mut rest: Vec<u32> = members
        .iter()
        .copied()
        .filter(|&p| Some(p) != rep)
        .collect();
    match rest.len() {
        0 => Ok((rep_ref, None)),
        1 => {
            let other = rest[0];
            attach3(builder, other as usize, rep_ref)?;
            Ok((ParentRef::Node(other as usize), None))
        }
        _ => {
            let connector = if has_core_children {
                // Nearest point to the representative (see the 2-D wiring
                // for the rationale: the extra hop stays local).
                let rep_pos = match rep_ref {
                    ParentRef::Source => omt_geom::Point3::ORIGIN,
                    ParentRef::Node(r) => sph[r].to_cartesian(),
                };
                let pos = rest
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        let da = sph[*a.1 as usize].to_cartesian().distance_squared(&rep_pos);
                        let db = sph[*b.1 as usize].to_cartesian().distance_squared(&rep_pos);
                        da.total_cmp(&db)
                    })
                    .map(|(i, _)| i)
                    .expect("nonempty");
                let x = rest.swap_remove(pos);
                attach3(builder, x as usize, rep_ref)?;
                Some(ParentRef::Node(x as usize))
            } else {
                None
            };
            let mut job = None;
            if !rest.is_empty() {
                let pos = rest
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        (sph[*a.1 as usize].radius - rep_radius)
                            .abs()
                            .total_cmp(&(sph[*b.1 as usize].radius - rep_radius).abs())
                    })
                    .map(|(i, _)| i)
                    .expect("nonempty");
                let s = rest.swap_remove(pos);
                attach3(builder, s as usize, rep_ref)?;
                job = Some(CellJob3 {
                    cell: grid.cell(ring, seg),
                    parent: ParentRef::Node(s as usize),
                    q: sph[s as usize].radius,
                    idx: rest,
                });
            }
            Ok((connector.unwrap_or(rep_ref), job))
        }
    }
}

/// SoA twin of [`pick_rep`]: identical comparator expressions and tie
/// rules over the slice view.
fn pick_rep_soa(
    strategy: RepStrategy,
    sph: SphSlices<'_>,
    members: &[u32],
    inner_mid: Point3,
) -> u32 {
    debug_assert!(!members.is_empty());
    match strategy {
        RepStrategy::InnerArcMid => *members
            .iter()
            .min_by(|&&a, &&b| {
                let da = sph.get(a).to_cartesian().distance_squared(&inner_mid);
                let db = sph.get(b).to_cartesian().distance_squared(&inner_mid);
                da.total_cmp(&db)
            })
            .expect("nonempty"),
        RepStrategy::MinRadius => *members
            .iter()
            .min_by(|&&a, &&b| sph.radius_of(a).total_cmp(&sph.radius_of(b)))
            .expect("nonempty"),
        RepStrategy::MaxRadius => *members
            .iter()
            .max_by(|&&a, &&b| sph.radius_of(a).total_cmp(&sph.radius_of(b)))
            .expect("nonempty"),
        RepStrategy::First => members[0],
    }
}

/// SoA twin of [`wire_cell_deg2_3d`], operating in place on the cell's
/// window `[cs, ce)` of the flat member array (rotate-to-back for the
/// order-preserving `filter`, swap-to-back for each `swap_remove`).
#[allow(clippy::too_many_arguments)]
fn wire_cell_deg2_3d_soa(
    arena: &mut TreeArena<'_, 3>,
    sph: SphSlices<'_>,
    ring: u32,
    seg: u32,
    rep_ref: NodeId,
    members: &mut [u32],
    cs: usize,
    ce: usize,
    rep: Option<u32>,
    has_core_children: bool,
) -> Result<(NodeId, Option<SoaCellJob3>), BuildError> {
    // The rep's radius is derivable from the packed reference: the source
    // sits at radius 0, anything else is a point id.
    let rep_radius = if rep_ref == PACKED_SOURCE {
        0.0
    } else {
        sph.radius_of(rep_ref)
    };
    let mut end = ce;
    if let Some(r) = rep {
        let sub = &mut members[cs..end];
        let pos = sub.iter().position(|&p| p == r).expect("rep is a member");
        sub[pos..].rotate_left(1);
        end -= 1;
    }
    match end - cs {
        0 => Ok((rep_ref, None)),
        1 => {
            let other = members[cs];
            attach3(arena, other as usize, unpack_parent(rep_ref))?;
            Ok((other, None))
        }
        _ => {
            let connector = if has_core_children {
                let rep_pos = if rep_ref == PACKED_SOURCE {
                    omt_geom::Point3::ORIGIN
                } else {
                    sph.get(rep_ref).to_cartesian()
                };
                let pos = members[cs..end]
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        let da = sph.get(*a.1).to_cartesian().distance_squared(&rep_pos);
                        let db = sph.get(*b.1).to_cartesian().distance_squared(&rep_pos);
                        da.total_cmp(&db)
                    })
                    .map(|(i, _)| i)
                    .expect("nonempty");
                let sub = &mut members[cs..end];
                let last = sub.len() - 1;
                sub.swap(pos, last);
                let x = sub[last];
                end -= 1;
                attach3(arena, x as usize, unpack_parent(rep_ref))?;
                Some(x)
            } else {
                None
            };
            let mut job = None;
            if end > cs {
                let pos = members[cs..end]
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        (sph.radius_of(*a.1) - rep_radius)
                            .abs()
                            .total_cmp(&(sph.radius_of(*b.1) - rep_radius).abs())
                    })
                    .map(|(i, _)| i)
                    .expect("nonempty");
                let sub = &mut members[cs..end];
                let last = sub.len() - 1;
                sub.swap(pos, last);
                let s = sub[last];
                end -= 1;
                attach3(arena, s as usize, unpack_parent(rep_ref))?;
                job = Some(SoaCellJob3 {
                    ring,
                    seg,
                    parent: s,
                    start: cs as u32,
                    end: end as u32,
                });
            }
            Ok((connector.unwrap_or(rep_ref), job))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Ball, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    fn ball_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = SmallRng::seed_from_u64(seed);
        Ball::<3>::unit().sample_n(&mut rng, n)
    }

    #[test]
    fn degree10_tree_is_valid_and_within_bounds() {
        for n in [1usize, 2, 10, 100, 3000] {
            let pts = ball_points(n, n as u64);
            let (tree, report) = SphereGridBuilder::new()
                .build_with_report(Point3::ORIGIN, &pts)
                .unwrap();
            assert_eq!(tree.len(), n);
            tree.validate(Some(10)).unwrap();
            assert!(
                report.delay <= report.bound + 1e-9,
                "n={n}: delay {} > bound {}",
                report.delay,
                report.bound
            );
            assert!(report.delay >= report.lower_bound - 1e-12);
        }
    }

    #[test]
    fn degree2_tree_is_valid() {
        for n in [1usize, 3, 50, 1500] {
            let pts = ball_points(n, 31 + n as u64);
            let (tree, report) = SphereGridBuilder::new()
                .max_out_degree(2)
                .build_with_report(Point3::ORIGIN, &pts)
                .unwrap();
            assert_eq!(tree.len(), n);
            tree.validate(Some(2)).unwrap();
            assert!(report.delay <= report.bound + 1e-9);
        }
    }

    #[test]
    fn delay_converges_toward_lower_bound() {
        let mut ratios = Vec::new();
        for (n, seed) in [(200usize, 1u64), (2000, 2), (20_000, 3)] {
            let pts = ball_points(n, seed);
            let (_, report) = SphereGridBuilder::new()
                .build_with_report(Point3::ORIGIN, &pts)
                .unwrap();
            ratios.push(report.delay / report.lower_bound);
        }
        // Convergence in 3-D is markedly slower than in 2-D (the paper's
        // Figure 8 observation); require monotone improvement and a sane
        // absolute level at n = 20k.
        assert!(ratios[0] > ratios[1] && ratios[1] > ratios[2], "{ratios:?}");
        assert!(ratios[2] < 2.5, "{ratios:?}");
    }

    #[test]
    fn three_d_converges_slower_than_two_d() {
        // Figure 8's observation: at equal n, the 3-D delay exceeds the
        // 2-D delay because points are sparser per unit volume.
        use crate::polar_grid::PolarGridBuilder;
        use omt_geom::{Disk, Point2};
        let n = 5000;
        let mut rng = SmallRng::seed_from_u64(4);
        let pts2 = Disk::unit().sample_n(&mut rng, n);
        let (_, r2) = PolarGridBuilder::new()
            .build_with_report(Point2::ORIGIN, &pts2)
            .unwrap();
        let pts3 = ball_points(n, 4);
        let (_, r3) = SphereGridBuilder::new()
            .build_with_report(Point3::ORIGIN, &pts3)
            .unwrap();
        assert!(
            r3.delay / r3.lower_bound > r2.delay / r2.lower_bound,
            "3-D {} vs 2-D {}",
            r3.delay / r3.lower_bound,
            r2.delay / r2.lower_bound
        );
    }

    #[test]
    fn intermediate_budgets_use_degree2_wiring() {
        let pts = ball_points(500, 9);
        for deg in [2u32, 5, 9] {
            let tree = SphereGridBuilder::new()
                .max_out_degree(deg)
                .build(Point3::ORIGIN, &pts)
                .unwrap();
            assert!(tree.max_out_degree() <= 2);
            tree.validate(Some(deg)).unwrap();
        }
    }

    #[test]
    fn offset_source_and_errors() {
        let pts = ball_points(2000, 11);
        let source = Point3::new([0.3, -0.2, 0.1]);
        let (tree, report) = SphereGridBuilder::new()
            .build_with_report(source, &pts)
            .unwrap();
        tree.validate(Some(10)).unwrap();
        assert!(report.delay <= report.bound + 1e-9);

        assert!(matches!(
            SphereGridBuilder::new()
                .max_out_degree(1)
                .build(Point3::ORIGIN, &pts),
            Err(BuildError::DegreeTooSmall { .. })
        ));
        assert!(matches!(
            SphereGridBuilder::new().build(Point3::new([f64::NAN, 0.0, 0.0]), &pts),
            Err(BuildError::NonFiniteSource)
        ));
    }

    #[test]
    fn degenerate_inputs() {
        let (tree, _) = SphereGridBuilder::new()
            .build_with_report(Point3::ORIGIN, &[])
            .unwrap();
        assert!(tree.is_empty());
        let pts = vec![Point3::new([1.0, 1.0, 1.0]); 30];
        let (tree, report) = SphereGridBuilder::new()
            .max_out_degree(2)
            .build_with_report(Point3::new([1.0, 1.0, 1.0]), &pts)
            .unwrap();
        assert_eq!(tree.radius(), 0.0);
        assert_eq!(report.delay, 0.0);
        tree.validate(Some(2)).unwrap();
    }

    #[test]
    fn rings_override_3d() {
        let pts = ball_points(1000, 14);
        let (_, auto) = SphereGridBuilder::new()
            .build_with_report(Point3::ORIGIN, &pts)
            .unwrap();
        assert!(auto.rings >= 1);
        let (tree, forced) = SphereGridBuilder::new()
            .rings(auto.rings - 1)
            .build_with_report(Point3::ORIGIN, &pts)
            .unwrap();
        assert_eq!(forced.rings, auto.rings - 1);
        tree.validate(Some(10)).unwrap();
        assert!(matches!(
            SphereGridBuilder::new()
                .rings(auto.rings + 6)
                .build(Point3::ORIGIN, &pts),
            Err(BuildError::InfeasibleRings { .. })
        ));
    }
}
