//! Heterogeneous fan-out capacities.
//!
//! The paper fixes one out-degree budget for every host ("it is natural to
//! assume that each participating host has a fixed bound"); real fleets
//! mix servers (high uplink) with consumer links (one stream, or none).
//! [`HeteroGridBuilder`] extends the polar-grid construction to per-host
//! capacities:
//!
//! 1. hosts with capacity ≥ 2 ("relays") carry the degree-2 polar-grid
//!    construction — every structural role in the Section IV-A wiring
//!    needs at most 2 out-links, so any relay can fill any role;
//! 2. constrained hosts (capacity 0 or 1) are then attached greedily —
//!    capacity-1 hosts first (slot-neutral), then capacity-0 hosts, each
//!    to the delay-minimizing host with residual capacity; capacity-1
//!    hosts join the candidate pool once attached, so chains form exactly
//!    where capacity is scarce.
//!
//! The second stage scans the candidate pool per constrained host
//! (`O(n_constrained · pool)`), which is fine for the mixed fleets this
//! models; fully-constrained fleets degenerate to the greedy baseline.

use omt_geom::Point2;
use omt_tree::{MulticastTree, ParentRef, TreeBuilder};

use crate::error::BuildError;
use crate::polar_grid::PolarGridBuilder;

/// Diagnostics of a heterogeneous build.
#[derive(Clone, Debug, PartialEq)]
pub struct HeteroReport {
    /// Number of relay hosts (capacity ≥ 2) that carried the grid.
    pub relays: usize,
    /// Number of constrained hosts (capacity 0 or 1) attached greedily.
    pub constrained: usize,
    /// The tree radius.
    pub delay: f64,
    /// The universal lower bound (max direct distance).
    pub lower_bound: f64,
}

/// Builder for trees over hosts with per-host fan-out capacities.
///
/// # Examples
///
/// ```
/// use omt_core::HeteroGridBuilder;
/// use omt_geom::Point2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let points = vec![
///     Point2::new([1.0, 0.0]),
///     Point2::new([0.5, 0.5]),
///     Point2::new([-0.5, 0.2]),
/// ];
/// // Host 1 is a server; hosts 0 and 2 can barely forward.
/// let capacities = vec![1, 8, 0];
/// let (tree, report) = HeteroGridBuilder::new()
///     .source_capacity(2)
///     .build(Point2::ORIGIN, &points, &capacities)?;
/// assert_eq!(tree.len(), 3);
/// assert!(tree.out_degree(2) == 0); // capacity-0 host is a leaf
/// # let _ = report;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeteroGridBuilder {
    source_capacity: u32,
}

impl Default for HeteroGridBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl HeteroGridBuilder {
    /// Creates a builder with source capacity 2 (the minimum the grid
    /// construction needs).
    pub fn new() -> Self {
        Self { source_capacity: 2 }
    }

    /// Sets the source's fan-out capacity.
    #[must_use]
    pub fn source_capacity(mut self, capacity: u32) -> Self {
        self.source_capacity = capacity;
        self
    }

    /// Builds the tree. `capacities[i]` is host `i`'s fan-out budget.
    ///
    /// # Errors
    ///
    /// * [`BuildError::DegreeTooSmall`] if the source capacity is below 2
    ///   while relays exist (the grid needs both source links), or if the
    ///   total capacity cannot host every node;
    /// * [`BuildError::NonFiniteSource`] / [`BuildError::NonFinitePoint`]
    ///   for bad coordinates;
    /// * a capacity slice of the wrong length is a programming error and
    ///   panics.
    ///
    /// # Panics
    ///
    /// Panics if `capacities.len() != points.len()`.
    pub fn build(
        &self,
        source: Point2,
        points: &[Point2],
        capacities: &[u32],
    ) -> Result<(MulticastTree<2>, HeteroReport), BuildError> {
        assert_eq!(
            capacities.len(),
            points.len(),
            "one capacity per point required"
        );
        if !source.is_finite() {
            return Err(BuildError::NonFiniteSource);
        }
        if let Some(bad) = points.iter().position(|p| !p.is_finite()) {
            return Err(BuildError::NonFinitePoint { index: bad });
        }
        let n = points.len();
        // Feasibility: the tree has n edges; the source plus all hosts
        // must offer at least n outgoing slots in aggregate.
        let total: u64 =
            u64::from(self.source_capacity) + capacities.iter().map(|&c| u64::from(c)).sum::<u64>();
        if (total as usize) < n {
            return Err(BuildError::DegreeTooSmall {
                got: self.source_capacity,
                min: 2,
            });
        }
        let relays: Vec<usize> = (0..n).filter(|&i| capacities[i] >= 2).collect();
        let constrained: Vec<usize> = (0..n).filter(|&i| capacities[i] < 2).collect();
        if !relays.is_empty() && self.source_capacity < 2 {
            return Err(BuildError::DegreeTooSmall {
                got: self.source_capacity,
                min: 2,
            });
        }
        if n > 0 && self.source_capacity == 0 {
            // Nothing can ever attach to the source.
            return Err(BuildError::DegreeTooSmall { got: 0, min: 1 });
        }

        let mut builder = TreeBuilder::new(source, points.to_vec());
        let mut residual: Vec<u32> = capacities.to_vec();
        let mut residual_source = self.source_capacity;

        // Stage 1: degree-2 polar grid over the relays, replayed into the
        // full builder.
        if !relays.is_empty() {
            let relay_points: Vec<Point2> = relays.iter().map(|&i| points[i]).collect();
            let relay_tree = PolarGridBuilder::new()
                .max_out_degree(2)
                .build(source, &relay_points)?;
            for local in relay_tree.iter_bfs() {
                let global = relays[local];
                match relay_tree.parent(local) {
                    ParentRef::Source => {
                        builder.attach_to_source(global)?;
                        residual_source -= 1;
                    }
                    ParentRef::Node(p) => {
                        let gp = relays[p];
                        builder.attach(global, gp)?;
                        residual[gp] -= 1;
                    }
                }
            }
        }

        // Stage 2: constrained hosts, each to the delay-minimizing open
        // slot. Capacity-1 hosts go before capacity-0 hosts (then closest
        // first): a capacity-1 attach is slot-neutral while a capacity-0
        // attach burns a slot, so this order never strands feasible
        // capacity behind exhausted slots (a distance-only order can).
        let mut order: Vec<usize> = constrained.clone();
        order.sort_by(|&a, &b| {
            capacities[b].cmp(&capacities[a]).then(
                source
                    .distance(&points[a])
                    .total_cmp(&source.distance(&points[b])),
            )
        });
        // Candidate pool: attached hosts with residual capacity.
        let mut pool: Vec<usize> = relays
            .iter()
            .copied()
            .filter(|&r| residual[r] > 0)
            .collect();
        for node in order {
            // Best candidate by resulting delay; the source competes too.
            let mut best: Option<(f64, Option<usize>)> = None;
            if residual_source > 0 {
                best = Some((source.distance(&points[node]), None));
            }
            for &c in &pool {
                let d = builder.depth_of(c).expect("pool members are attached")
                    + points[c].distance(&points[node]);
                if best.is_none() || d < best.expect("checked").0 {
                    best = Some((d, Some(c)));
                }
            }
            match best {
                Some((_, None)) => {
                    builder.attach_to_source(node)?;
                    residual_source -= 1;
                }
                Some((_, Some(p))) => {
                    builder.attach(node, p)?;
                    residual[p] -= 1;
                    if residual[p] == 0 {
                        pool.retain(|&x| x != p);
                    }
                }
                None => {
                    // Aggregate capacity was sufficient but everything
                    // reachable is saturated — cannot happen: every attach
                    // consumes one slot and adds `capacity[node]` slots, so
                    // the running residual never hits zero before n attaches
                    // when the total is at least n.
                    unreachable!("aggregate capacity admits a spanning tree");
                }
            }
            if residual[node] > 0 {
                pool.push(node);
            }
        }

        let tree = builder.finish()?;
        let lower_bound = points
            .iter()
            .map(|p| p.distance(&source))
            .fold(0.0, f64::max);
        let report = HeteroReport {
            relays: relays.len(),
            constrained: constrained.len(),
            delay: tree.radius(),
            lower_bound,
        };
        Ok((tree, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Disk, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::{RngExt, SeedableRng};

    fn check_capacities(tree: &MulticastTree<2>, capacities: &[u32], source_cap: u32) {
        assert!(tree.source_out_degree() <= source_cap);
        for (i, &cap) in capacities.iter().enumerate() {
            assert!(
                tree.out_degree(i) <= cap,
                "node {i}: degree {} > capacity {cap}",
                tree.out_degree(i)
            );
        }
        tree.validate(None).unwrap();
    }

    #[test]
    fn mixed_fleet_respects_capacities() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pts = Disk::unit().sample_n(&mut rng, 2000);
        // 30% servers (6), 50% modest (2), 15% single (1), 5% leeches (0).
        let caps: Vec<u32> = (0..2000)
            .map(|_| match rng.random_range(0..20u32) {
                0..=5 => 6,
                6..=15 => 2,
                16..=18 => 1,
                _ => 0,
            })
            .collect();
        let (tree, report) = HeteroGridBuilder::new()
            .source_capacity(6)
            .build(omt_geom::Point2::ORIGIN, &pts, &caps)
            .unwrap();
        assert_eq!(tree.len(), 2000);
        check_capacities(&tree, &caps, 6);
        assert!(report.relays + report.constrained == 2000);
        // Quality: still near-optimal with plenty of relays.
        assert!(
            report.delay < 2.0 * report.lower_bound,
            "delay {} vs lb {}",
            report.delay,
            report.lower_bound
        );
    }

    #[test]
    fn all_relays_equals_deg2_grid() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pts = Disk::unit().sample_n(&mut rng, 500);
        let caps = vec![2u32; 500];
        let (tree, report) = HeteroGridBuilder::new()
            .build(omt_geom::Point2::ORIGIN, &pts, &caps)
            .unwrap();
        let reference = PolarGridBuilder::new()
            .max_out_degree(2)
            .build(omt_geom::Point2::ORIGIN, &pts)
            .unwrap();
        assert_eq!(tree.radius(), reference.radius());
        assert_eq!(report.constrained, 0);
        check_capacities(&tree, &caps, 2);
    }

    #[test]
    fn capacity_one_hosts_form_chains() {
        // Source cap 1, every host cap 1: the only feasible shape is a
        // single chain.
        let pts: Vec<omt_geom::Point2> = (1..=20)
            .map(|i| omt_geom::Point2::new([i as f64 * 0.1, 0.0]))
            .collect();
        let caps = vec![1u32; 20];
        let (tree, _) = HeteroGridBuilder::new()
            .source_capacity(1)
            .build(omt_geom::Point2::ORIGIN, &pts, &caps)
            .unwrap();
        assert_eq!(tree.max_hops(), 20);
        check_capacities(&tree, &caps, 1);
    }

    #[test]
    fn zero_capacity_hosts_are_leaves() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pts = Disk::unit().sample_n(&mut rng, 200);
        let mut caps = vec![4u32; 200];
        for i in (0..200).step_by(3) {
            caps[i] = 0;
        }
        let (tree, _) = HeteroGridBuilder::new()
            .source_capacity(4)
            .build(omt_geom::Point2::ORIGIN, &pts, &caps)
            .unwrap();
        for i in (0..200).step_by(3) {
            assert_eq!(tree.out_degree(i), 0, "capacity-0 host {i} has children");
        }
        check_capacities(&tree, &caps, 4);
    }

    #[test]
    fn infeasible_capacity_rejected() {
        let pts = vec![omt_geom::Point2::new([1.0, 0.0]); 5];
        // Total slots = 2 (source) + 0 = 2 < 5 nodes.
        assert!(matches!(
            HeteroGridBuilder::new().build(omt_geom::Point2::ORIGIN, &pts, &[0, 0, 0, 0, 0]),
            Err(BuildError::DegreeTooSmall { .. })
        ));
        // Source capacity 1 with relays present is rejected too.
        assert!(matches!(
            HeteroGridBuilder::new().source_capacity(1).build(
                omt_geom::Point2::ORIGIN,
                &pts,
                &[6, 6, 6, 6, 6]
            ),
            Err(BuildError::DegreeTooSmall { .. })
        ));
    }

    #[test]
    fn exactly_feasible_capacity_succeeds() {
        // Total slots exactly n: source 2 + capacities summing to n - 2.
        let pts = vec![
            omt_geom::Point2::new([1.0, 0.0]),
            omt_geom::Point2::new([2.0, 0.0]),
            omt_geom::Point2::new([3.0, 0.0]),
            omt_geom::Point2::new([4.0, 0.0]),
        ];
        let caps = vec![1, 1, 0, 0];
        let (tree, _) = HeteroGridBuilder::new()
            .build(omt_geom::Point2::ORIGIN, &pts, &caps)
            .unwrap();
        assert_eq!(tree.len(), 4);
        check_capacities(&tree, &caps, 2);
    }

    #[test]
    fn degenerate_inputs() {
        let (tree, report) = HeteroGridBuilder::new()
            .build(omt_geom::Point2::ORIGIN, &[], &[])
            .unwrap();
        assert!(tree.is_empty());
        assert_eq!(report.relays, 0);
        // Single capacity-0 host: attaches to the source.
        let (tree, _) = HeteroGridBuilder::new()
            .source_capacity(1)
            .build(
                omt_geom::Point2::ORIGIN,
                &[omt_geom::Point2::new([0.5, 0.0])],
                &[0],
            )
            .unwrap();
        assert_eq!(tree.len(), 1);
    }

    #[test]
    #[should_panic(expected = "one capacity per point")]
    fn capacity_length_checked() {
        let _ = HeteroGridBuilder::new().build(
            omt_geom::Point2::ORIGIN,
            &[omt_geom::Point2::new([1.0, 0.0])],
            &[],
        );
    }

    #[test]
    fn more_relays_means_lower_delay() {
        let mut rng = SmallRng::seed_from_u64(4);
        let pts = Disk::unit().sample_n(&mut rng, 1500);
        let delay_for = |relay_fraction: f64, rng: &mut SmallRng| {
            let caps: Vec<u32> = (0..1500)
                .map(|_| {
                    if rng.random::<f64>() < relay_fraction {
                        4
                    } else {
                        1
                    }
                })
                .collect();
            HeteroGridBuilder::new()
                .source_capacity(4)
                .build(omt_geom::Point2::ORIGIN, &pts, &caps)
                .unwrap()
                .1
                .delay
        };
        let rich = delay_for(0.9, &mut rng);
        let poor = delay_for(0.05, &mut rng);
        assert!(rich < poor, "rich {rich} vs poor {poor}");
    }
}

#[cfg(test)]
mod order_tests {
    use super::*;

    /// The stranding scenario a distance-only order fails on: capacity-0
    /// hosts closest to the source, exactly-feasible totals.
    #[test]
    fn capacity_zero_hosts_cannot_strand_capacity_one_hosts() {
        let pts = vec![
            omt_geom::Point2::new([0.1, 0.0]), // cap 0, closest
            omt_geom::Point2::new([0.1, 0.1]), // cap 0
            omt_geom::Point2::new([0.9, 0.0]), // cap 1, far
            omt_geom::Point2::new([0.9, 0.1]), // cap 1
            omt_geom::Point2::new([0.9, 0.2]), // cap 1
        ];
        let caps = vec![0, 0, 1, 1, 1];
        // Total = 2 (source) + 3 = 5 = n: exactly feasible.
        let (tree, _) = HeteroGridBuilder::new()
            .build(omt_geom::Point2::ORIGIN, &pts, &caps)
            .unwrap();
        assert_eq!(tree.len(), 5);
        assert!(tree.source_out_degree() <= 2);
        for (i, &cap) in caps.iter().enumerate() {
            assert!(tree.out_degree(i) <= cap);
        }
    }

    #[test]
    fn zero_source_capacity_rejected() {
        let pts = vec![omt_geom::Point2::new([1.0, 0.0])];
        assert!(matches!(
            HeteroGridBuilder::new()
                .source_capacity(0)
                .build(omt_geom::Point2::ORIGIN, &pts, &[5]),
            Err(BuildError::DegreeTooSmall { .. })
        ));
    }
}
