//! Sharded parallel churn — batched joins/leaves fanned across polar
//! sectors with a deterministic merge.
//!
//! [`ShardedOverlay`] wraps a [`DynamicOverlay`] and processes membership
//! events in batches. Each shard owns a contiguous binary sector of the
//! polar grid (the subtree of cells below one ring-`log2(shards)` segment,
//! plus an aligned slice of the coarser inner rings), mirroring how a
//! deployment would partition the rendezvous service. A batch runs in two
//! phases:
//!
//! 1. **Speculation (parallel)** — joins are routed to the shard owning
//!    their cell under the frozen pre-batch grid, and every shard searches
//!    parents for its joins concurrently via `omt-par`, against the frozen
//!    overlay plus shard-local copy-on-write open lists (so a shard's own
//!    earlier joins are visible to its later ones).
//! 2. **Merge (sequential, deterministic)** — events are replayed in
//!    stream order. A speculative proposal is applied directly only when
//!    cell write-ownership tracking proves every cell its parent search
//!    consulted was untouched, or touched only by this shard's own
//!    fast-path joins; otherwise the event is recomputed with the normal
//!    sequential search. Leaves (and their orphan re-homing) always run in
//!    the merge and poison the cells they touch; a mid-batch rebuild
//!    invalidates every remaining proposal.
//!
//! Because the merge replays the full stream in order and only takes the
//! fast path when it provably matches what the sequential search would
//! choose, the final overlay is **bit-identical** to applying the same
//! events one at a time to an unsharded [`DynamicOverlay`] — for any shard
//! count, batch size, or thread count. The churn fuzz suite proves this
//! equivalence across seeds × degrees × shards × batch boundaries.

use std::collections::HashMap;

use omt_geom::Point2;
use omt_tree::NodeId;

use crate::dynamic::{unflatten, DynamicOverlay, HostId};
use crate::error::BuildError;

/// A membership event in a batched churn stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnEvent {
    /// A host joins at the given position.
    Join(Point2),
    /// The host with the given id leaves.
    Leave(HostId),
}

/// How the last [`ShardedOverlay::apply_batch`] resolved its events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Join events in the batch.
    pub joins: u64,
    /// Leave events in the batch.
    pub leaves: u64,
    /// Joins applied via a validated speculative proposal.
    pub fast_path: u64,
    /// Joins recomputed sequentially (invalidated or global-fallback).
    pub recomputed: u64,
    /// Joins whose speculation needed global state (source/global search)
    /// and therefore never produced a proposal.
    pub needs_global: u64,
    /// Full rebuilds triggered inside the merge.
    pub rebuilds: u64,
    /// Events whose writes crossed a sector boundary (a fast join whose
    /// parent lives in a foreign shard's cell, or a leave touching
    /// foreign cells during orphan re-homing).
    pub cross_shard_writes: u64,
    /// Leave events that touched at least one foreign shard's cell.
    pub cross_shard_leaves: u64,
}

/// A parent candidate in a shard's speculative view: either a live host
/// slot of the base overlay or a join earlier in this batch (by stream
/// index) that the shard itself placed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum SlotRef {
    Live(NodeId),
    Pending(u32),
}

/// A validated-attachable parent choice for one speculative join.
#[derive(Clone, Copy, Debug)]
struct Attach {
    parent: SlotRef,
    /// The attach cost at speculation time (debug cross-check only).
    cost: f64,
    /// The joiner's own cell under the frozen grid.
    own_cell: u32,
    /// The ancestor-chain cell the parent was found in. The cells the
    /// search consulted are exactly `own_cell..=resolve_cell` along the
    /// parent-cell chain.
    resolve_cell: u32,
}

/// One speculative join outcome, in shard-local stream order. `attach` is
/// `None` when the chain search missed and the sequential path would have
/// consulted global state (source capacity or the global open index).
#[derive(Clone, Copy, Debug)]
struct Proposal {
    stream_idx: u32,
    attach: Option<Attach>,
}

/// Write-ownership of a grid cell during the merge phase. Absent = clean
/// (untouched since the batch began).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Writer {
    /// Written only by validated fast-path joins of this one shard — the
    /// shard's speculation already accounts for every such write.
    Owned(u32),
    /// Written by a leave, a recomputed join, or a second shard; any
    /// proposal whose search consulted this cell must be recomputed.
    Poisoned,
}

/// Per-shard speculation state. Lives across batches so its allocations
/// are reused; the speculative maps are cleared before speculation ends.
#[derive(Debug, Default)]
struct ShardScratch {
    shard: u32,
    /// Routed joins: (stream index, position, cell under the frozen grid).
    joins: Vec<(u32, Point2, u32)>,
    /// One entry per routed join, same order.
    proposals: Vec<Proposal>,
    /// Copy-on-write open lists for cells this shard's speculation has
    /// mutated; untouched cells read the base overlay directly.
    open_cow: HashMap<u32, Vec<SlotRef>>,
    /// Speculatively placed joins: stream index -> (position, delay).
    pending: HashMap<u32, (Point2, f64)>,
    /// Children speculatively added per parent candidate.
    load_over: HashMap<SlotRef, u32>,
}

impl ShardScratch {
    fn reset(&mut self) {
        self.joins.clear();
        self.proposals.clear();
        debug_assert!(self.open_cow.is_empty(), "speculation state leaked");
        debug_assert!(self.pending.is_empty(), "speculation state leaked");
        debug_assert!(self.load_over.is_empty(), "speculation state leaked");
    }

    /// Attach cost of candidate `r` for a joiner at `pos`, bit-identical
    /// to [`DynamicOverlay`]'s sequential scoring.
    fn view_cost(&self, ov: &DynamicOverlay, r: SlotRef, pos: &Point2) -> f64 {
        match r {
            SlotRef::Live(s) => {
                let h = &ov.hosts[s as usize];
                h.delay + h.position.distance(pos)
            }
            SlotRef::Pending(k) => {
                let (p, d) = self.pending[&k];
                d + p.distance(pos)
            }
        }
    }

    /// The copy-on-write open list of `cell`, materialized from the base
    /// overlay on first mutation.
    fn cow_mut(&mut self, ov: &DynamicOverlay, cell: u32) -> &mut Vec<SlotRef> {
        self.open_cow.entry(cell).or_insert_with(|| {
            ov.cell_open[cell as usize]
                .iter()
                .map(|&s| SlotRef::Live(s))
                .collect()
        })
    }

    /// Replicates `DynamicOverlay::chain_candidate` over the speculative
    /// view: own cell first, then each ancestor cell, first non-empty
    /// candidate set wins, first minimum wins inside it.
    fn chain_search(
        &self,
        ov: &DynamicOverlay,
        pos: &Point2,
        own_cell: u32,
    ) -> Option<(SlotRef, f64, u32)> {
        let mut cell = own_cell;
        loop {
            let best = match self.open_cow.get(&cell) {
                Some(list) => list.iter().copied().min_by(|&a, &b| {
                    self.view_cost(ov, a, pos)
                        .total_cmp(&self.view_cost(ov, b, pos))
                }),
                // Cells the batch has not copied-on-write are exactly the
                // frozen pre-batch state, so the overlay's capacity index
                // (snapshotted before phase A) can rule them out without
                // touching the open list at all.
                None if ov
                    .hgrid_ref()
                    .is_some_and(|hg| hg.cell_total(cell as usize) == 0) =>
                {
                    None
                }
                None => ov.cell_open[cell as usize]
                    .iter()
                    .map(|&s| SlotRef::Live(s))
                    .min_by(|&a, &b| {
                        self.view_cost(ov, a, pos)
                            .total_cmp(&self.view_cost(ov, b, pos))
                    }),
            };
            if let Some(p) = best {
                return Some((p, self.view_cost(ov, p, pos), cell));
            }
            if cell == 0 {
                return None;
            }
            cell = parent_cell(cell);
        }
    }

    /// Phase-A body: searches a parent for every routed join, in shard
    /// stream order, applying each hit to the shard-local speculative view
    /// so later joins see earlier ones. Leaves the speculative maps empty.
    fn propose_all(&mut self, ov: &DynamicOverlay) {
        let max = ov.max_out_degree();
        for idx in 0..self.joins.len() {
            let (stream_idx, pos, own_cell) = self.joins[idx];
            match self.chain_search(ov, &pos, own_cell) {
                Some((parent, cost, resolve_cell)) => {
                    self.cow_mut(ov, own_cell)
                        .push(SlotRef::Pending(stream_idx));
                    self.pending.insert(stream_idx, (pos, cost));
                    let over = self.load_over.entry(parent).or_insert(0);
                    *over += 1;
                    let used = *over
                        + match parent {
                            SlotRef::Live(s) => ov.hosts[s as usize].children.len() as u32,
                            SlotRef::Pending(_) => 0,
                        };
                    debug_assert!(used <= max, "speculation over-filled a parent");
                    if used == max {
                        // Mirrors the sequential open_remove: the filled
                        // parent drops out of its cell's candidate list,
                        // order preserved.
                        self.cow_mut(ov, resolve_cell).retain(|&r| r != parent);
                    }
                    self.proposals.push(Proposal {
                        stream_idx,
                        attach: Some(Attach {
                            parent,
                            cost,
                            own_cell,
                            resolve_cell,
                        }),
                    });
                }
                None => {
                    // The sequential search would now consult the source
                    // or the global open index — not speculatable from
                    // shard-local state. The merge recomputes this join,
                    // and its writes poison whatever they touch, which
                    // also covers this join's absence from our view.
                    self.proposals.push(Proposal {
                        stream_idx,
                        attach: None,
                    });
                }
            }
        }
        self.open_cow.clear();
        self.pending.clear();
        self.load_over.clear();
    }
}

/// The parent cell along the ancestor chain (flat-index arithmetic of the
/// binary grid layout); cell 0 is its own fixpoint's terminator.
fn parent_cell(cell: u32) -> u32 {
    let (ring, seg) = unflatten(cell as usize);
    if ring <= 1 {
        0
    } else {
        ((1u64 << (ring - 1)) - 1 + seg / 2) as u32
    }
}

/// Interned per-shard observability names, computed once at construction.
#[derive(Debug)]
struct ShardNames {
    joins: &'static str,
    fast: &'static str,
}

/// A [`DynamicOverlay`] processed in batches across polar-sector shards.
///
/// Produces overlays bit-identical to the unsharded per-event path for
/// any shard count, batch size, or thread count — see the module docs for
/// the mechanism and `tests/churn_fuzz.rs` for the proof-by-fuzzing.
///
/// # Examples
///
/// ```
/// use omt_core::{ChurnEvent, ShardedOverlay};
/// use omt_geom::Point2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut overlay = ShardedOverlay::new(Point2::ORIGIN, 4, 4)?;
/// let ids = overlay.apply_batch(&[
///     ChurnEvent::Join(Point2::new([1.0, 0.0])),
///     ChurnEvent::Join(Point2::new([0.0, 1.0])),
/// ])?;
/// let a = ids[0].expect("joins yield ids");
/// overlay.apply_batch(&[ChurnEvent::Leave(a)])?;
/// assert_eq!(overlay.len(), 1);
/// overlay.snapshot()?.validate(Some(4))?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedOverlay {
    inner: DynamicOverlay,
    shards: u32,
    /// `log2(shards)`: the ring whose segments are the sector roots.
    shard_bits: u32,
    scratches: Vec<ShardScratch>,
    /// Worker override for phase A; `None` defers to `OMT_THREADS`.
    threads: Option<usize>,
    stats: BatchStats,
    /// Merge-phase write ownership per cell (cleared per batch).
    writer: HashMap<u32, Writer>,
    /// Reused drain buffer for the per-event write log.
    drained: Vec<u32>,
    names: Vec<ShardNames>,
}

impl ShardedOverlay {
    /// Creates an empty sharded overlay rooted at `source`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::BadShardCount`] unless `shards` is a power of
    /// two in `1..=64`, plus everything [`DynamicOverlay::new`] rejects.
    pub fn new(source: Point2, max_out_degree: u32, shards: u32) -> Result<Self, BuildError> {
        let inner = DynamicOverlay::new(source, max_out_degree)?;
        Self::from_overlay(inner, shards)
    }

    /// Wraps an already-populated [`DynamicOverlay`] (e.g. a prefilled
    /// million-host membership) without replaying its history. Subsequent
    /// batches behave exactly as if every prior event had gone through
    /// [`apply_batch`](Self::apply_batch).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::BadShardCount`] unless `shards` is a power of
    /// two in `1..=64`.
    pub fn from_overlay(overlay: DynamicOverlay, shards: u32) -> Result<Self, BuildError> {
        if !shards.is_power_of_two() || shards > 64 {
            return Err(BuildError::BadShardCount { got: shards });
        }
        let inner = overlay;
        let scratches = (0..shards)
            .map(|shard| ShardScratch {
                shard,
                ..ShardScratch::default()
            })
            .collect();
        let names = (0..shards)
            .map(|s| ShardNames {
                joins: omt_obs::intern(&format!("churn/shard{s}/joins")),
                fast: omt_obs::intern(&format!("churn/shard{s}/fast")),
            })
            .collect();
        Ok(Self {
            inner,
            shards,
            shard_bits: shards.trailing_zeros(),
            scratches,
            threads: None,
            stats: BatchStats::default(),
            writer: HashMap::new(),
            drained: Vec::new(),
            names,
        })
    }

    /// Overrides the phase-A worker count (default: the `OMT_THREADS`
    /// environment knob). Output is identical for every thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of live hosts.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no hosts are present.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The source position.
    pub fn source(&self) -> Point2 {
        self.inner.source()
    }

    /// The out-degree budget.
    pub fn max_out_degree(&self) -> u32 {
        self.inner.max_out_degree()
    }

    /// The current worst source-to-host delay.
    pub fn radius(&self) -> f64 {
        self.inner.radius()
    }

    /// The wrapped sequential overlay (read-only).
    pub fn overlay(&self) -> &DynamicOverlay {
        &self.inner
    }

    /// Counters describing how the most recent batch resolved.
    pub fn last_batch_stats(&self) -> BatchStats {
        self.stats
    }

    /// Materializes the current membership as an immutable tree.
    ///
    /// # Errors
    ///
    /// See [`DynamicOverlay::snapshot`].
    pub fn snapshot(&self) -> Result<omt_tree::MulticastTree<2>, BuildError> {
        self.inner.snapshot()
    }

    /// Forces a full rebuild of the wrapped overlay (between batches).
    pub fn rebuild(&mut self) {
        self.inner.rebuild();
    }

    /// The shard owning `cell` (flat index): sectors are the segments of
    /// ring `log2(shards)`; finer rings map by prefix, coarser inner rings
    /// (including cell 0) map to the first sector they overlap.
    fn shard_of_cell(&self, cell: u32) -> u32 {
        let m = self.shard_bits;
        if m == 0 {
            return 0;
        }
        let (ring, seg) = unflatten(cell as usize);
        if ring >= m {
            (seg >> (ring - m)) as u32
        } else {
            (seg << (m - ring)) as u32
        }
    }

    /// The shard a join at `position` routes to under the current grid.
    pub fn shard_of_position(&self, position: &Point2) -> u32 {
        self.shard_of_cell(self.inner.cell_of(position) as u32)
    }

    /// Marks `cells` as unreconstructable for speculative validation.
    fn poison(&mut self, cells: &[u32]) {
        for &c in cells {
            self.writer.insert(c, Writer::Poisoned);
        }
    }

    /// Checks that a proposal's entire consulted state is still what the
    /// shard speculated against, returning the parent's live slot if so.
    ///
    /// Sound because a fast-path join writes only cells inside its own
    /// consulted chain, never changes an existing host's cached delay, and
    /// every other mutation (leave, recomputed join, rebuild) poisons what
    /// it touches.
    fn validate(
        &self,
        shard: u32,
        at: &Attach,
        pos: &Point2,
        slot_of_stream: &HashMap<u32, (u32, bool)>,
    ) -> Option<u32> {
        // Every cell the chain search consulted must be clean or owned by
        // this shard's own fast-path joins (already in its speculation).
        let mut cell = at.own_cell;
        loop {
            match self.writer.get(&cell) {
                None => {}
                Some(Writer::Owned(o)) if *o == shard => {}
                Some(_) => return None,
            }
            if cell == at.resolve_cell {
                break;
            }
            if cell == 0 {
                debug_assert!(false, "resolve_cell is not on the ancestor chain");
                return None;
            }
            cell = parent_cell(cell);
        }
        let parent = match at.parent {
            SlotRef::Live(s) => s,
            SlotRef::Pending(j) => {
                let &(slot, was_fast) = slot_of_stream.get(&j)?;
                if !was_fast {
                    // The referenced join was recomputed; its actual slot
                    // may differ from the speculated placement.
                    return None;
                }
                slot
            }
        };
        let h = &self.inner.hosts[parent as usize];
        debug_assert!(h.alive, "validated proposal names a dead parent");
        debug_assert!(
            (h.children.len() as u32) < self.inner.max_out_degree(),
            "validated proposal names a full parent"
        );
        debug_assert_eq!(
            (h.delay + h.position.distance(pos)).to_bits(),
            at.cost.to_bits(),
            "validated proposal's cost drifted from the sequential search"
        );
        Some(parent)
    }

    /// Applies a batch of events, returning per-event new host ids
    /// (`Some` for joins, `None` for leaves).
    ///
    /// The result — down to internal slot assignment and id numbering —
    /// is identical to calling [`DynamicOverlay::join`] /
    /// [`DynamicOverlay::leave`] for the same events one at a time.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownHost`] for a leave of a departed or
    /// never-issued id; prior events of the batch remain applied.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite join position, like the sequential join.
    pub fn apply_batch(
        &mut self,
        events: &[ChurnEvent],
    ) -> Result<Vec<Option<HostId>>, BuildError> {
        let _batch_span = omt_obs::obs_span!("churn/batch");
        for sc in &mut self.scratches {
            sc.reset();
        }
        self.stats = BatchStats::default();
        // Route joins to sector owners under the frozen pre-batch grid.
        let mut route = vec![0u32; events.len()];
        for (i, ev) in events.iter().enumerate() {
            if let ChurnEvent::Join(p) = ev {
                assert!(p.is_finite(), "host position must be finite");
                let cell = self.inner.cell_of(p) as u32;
                let shard = self.shard_of_cell(cell);
                route[i] = shard;
                self.scratches[shard as usize]
                    .joins
                    .push((i as u32, *p, cell));
            }
        }
        // Phase A: per-shard speculative parent search, in parallel.
        {
            let _a_span = omt_obs::obs_span!("churn/batch/phase_a");
            let threads = omt_par::resolve_threads(self.threads);
            let inner = &self.inner;
            omt_par::par_map_indexed_mut(&mut self.scratches, threads, |_, sc| {
                sc.propose_all(inner);
            });
        }
        // Merge: replay the stream in order, fast-applying proposals that
        // survive write-ownership validation.
        let _m_span = omt_obs::obs_span!("churn/batch/merge");
        self.inner.set_write_tracking(true);
        self.writer.clear();
        let mut stats = BatchStats::default();
        let mut cursor = vec![0usize; self.shards as usize];
        let mut slot_of_stream: HashMap<u32, (u32, bool)> = HashMap::new();
        let mut fast_by_shard = vec![0u64; self.shards as usize];
        let mut all_invalid = false;
        let mut out = Vec::with_capacity(events.len());
        for (i, ev) in events.iter().enumerate() {
            match ev {
                ChurnEvent::Join(pos) => {
                    stats.joins += 1;
                    let shard = route[i];
                    let su = shard as usize;
                    let prop = self.scratches[su].proposals[cursor[su]];
                    cursor[su] += 1;
                    debug_assert_eq!(prop.stream_idx, i as u32);
                    if prop.attach.is_none() && !all_invalid {
                        stats.needs_global += 1;
                    }
                    let fast_parent = if all_invalid {
                        None
                    } else {
                        prop.attach
                            .as_ref()
                            .and_then(|at| self.validate(shard, at, pos, &slot_of_stream))
                    };
                    let (id, fast) = match fast_parent {
                        Some(parent) => (self.inner.insert_host(*pos, Some(parent)), true),
                        None => (self.inner.join(*pos), false),
                    };
                    self.drained.clear();
                    let mut drained = std::mem::take(&mut self.drained);
                    let rebuilt = self.inner.drain_writes(&mut drained);
                    if rebuilt {
                        stats.rebuilds += 1;
                        all_invalid = true;
                        self.writer.clear();
                    } else if fast {
                        for &c in &drained {
                            match self.writer.get(&c) {
                                None => {
                                    self.writer.insert(c, Writer::Owned(shard));
                                }
                                Some(Writer::Owned(o)) if *o == shard => {}
                                Some(_) => {
                                    debug_assert!(
                                        false,
                                        "fast join wrote outside its validated chain"
                                    );
                                    self.writer.insert(c, Writer::Poisoned);
                                }
                            }
                        }
                    } else {
                        // Recomputed: poison the actual writes plus the
                        // speculative placement the shard believed in.
                        self.poison(&drained);
                        if let Some(at) = &prop.attach {
                            self.poison(&[at.own_cell, at.resolve_cell]);
                        }
                    }
                    self.drained = drained;
                    if fast {
                        stats.fast_path += 1;
                        fast_by_shard[su] += 1;
                        if let Some(at) = &prop.attach {
                            if self.shard_of_cell(at.resolve_cell) != shard {
                                stats.cross_shard_writes += 1;
                            }
                        }
                    } else {
                        stats.recomputed += 1;
                    }
                    if !all_invalid {
                        let slot = self.inner.slot_of(id).expect("just inserted") as u32;
                        slot_of_stream.insert(i as u32, (slot, fast));
                    }
                    out.push(Some(id));
                }
                ChurnEvent::Leave(id) => {
                    stats.leaves += 1;
                    let ev_shard = self
                        .inner
                        .slot_of(*id)
                        .map(|s| self.shard_of_cell(self.inner.hosts[s].cell));
                    if let Err(e) = self.inner.leave(*id) {
                        self.inner.set_write_tracking(false);
                        self.stats = stats;
                        return Err(e);
                    }
                    self.drained.clear();
                    let mut drained = std::mem::take(&mut self.drained);
                    let rebuilt = self.inner.drain_writes(&mut drained);
                    if rebuilt {
                        stats.rebuilds += 1;
                        all_invalid = true;
                        self.writer.clear();
                    } else {
                        self.poison(&drained);
                        let ev_shard = ev_shard.expect("leave succeeded");
                        let foreign = drained
                            .iter()
                            .filter(|&&c| self.shard_of_cell(c) != ev_shard)
                            .count() as u64;
                        stats.cross_shard_writes += foreign;
                        if foreign > 0 {
                            stats.cross_shard_leaves += 1;
                        }
                    }
                    self.drained = drained;
                    out.push(None);
                }
            }
        }
        self.inner.set_write_tracking(false);
        for (s, names) in self.names.iter().enumerate() {
            let joins = self.scratches[s].joins.len() as u64;
            if joins > 0 {
                omt_obs::counter(names.joins, joins);
            }
            if fast_by_shard[s] > 0 {
                omt_obs::counter(names.fast, fast_by_shard[s]);
            }
        }
        self.stats = stats;
        Ok(out)
    }

    /// Re-verifies the wrapped overlay's invariants plus the sharding
    /// layer's own: every live host maps to a valid shard, the sector
    /// ownership partitions the membership, speculation state is drained,
    /// and the last batch's counters are coherent.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn assert_invariants(&self) {
        self.inner.assert_invariants();
        let mut owned = vec![0usize; self.shards as usize];
        for h in self.inner.hosts.iter().filter(|h| h.alive) {
            let s = self.shard_of_cell(h.cell);
            assert!(s < self.shards, "host cell {} maps to shard {s}", h.cell);
            owned[s as usize] += 1;
        }
        assert_eq!(
            owned.iter().sum::<usize>(),
            self.inner.len(),
            "sector ownership does not partition the membership"
        );
        for sc in &self.scratches {
            assert!(
                sc.open_cow.is_empty(),
                "shard {} leaked cow state",
                sc.shard
            );
            assert!(
                sc.pending.is_empty(),
                "shard {} leaked pending state",
                sc.shard
            );
            assert!(
                sc.load_over.is_empty(),
                "shard {} leaked load state",
                sc.shard
            );
            assert_eq!(
                sc.joins.len(),
                sc.proposals.len(),
                "shard {} has unproposed joins",
                sc.shard
            );
        }
        assert_eq!(
            self.stats.fast_path + self.stats.recomputed,
            self.stats.joins,
            "every join is either fast or recomputed"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Disk, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::{RngExt, SeedableRng};

    fn points(seed: u64, n: usize) -> Vec<Point2> {
        let mut rng = SmallRng::seed_from_u64(seed);
        Disk::unit().sample_n(&mut rng, n)
    }

    #[test]
    fn constructor_validates_shard_count() {
        for bad in [0u32, 3, 5, 65, 128] {
            assert!(matches!(
                ShardedOverlay::new(Point2::ORIGIN, 4, bad),
                Err(BuildError::BadShardCount { got }) if got == bad
            ));
        }
        for ok in [1u32, 2, 4, 8, 16, 32, 64] {
            assert!(ShardedOverlay::new(Point2::ORIGIN, 4, ok).is_ok());
        }
        assert!(matches!(
            ShardedOverlay::new(Point2::ORIGIN, 1, 4),
            Err(BuildError::DegreeTooSmall { .. })
        ));
    }

    #[test]
    fn from_overlay_continues_a_prefilled_membership() {
        // Prefill per-event, wrap, batch more churn: the result must match
        // an unsharded overlay fed the identical stream throughout.
        let mut mirror = DynamicOverlay::new(Point2::ORIGIN, 4).unwrap();
        let prefill = points(0xF0, 60);
        for p in &prefill {
            mirror.join(*p);
        }
        let mut sharded = ShardedOverlay::from_overlay(mirror.clone(), 4).unwrap();
        let extra = points(0xF1, 40);
        let batch: Vec<ChurnEvent> = extra.iter().map(|&p| ChurnEvent::Join(p)).collect();
        let ids = sharded.apply_batch(&batch).unwrap();
        for (p, id) in extra.iter().zip(ids) {
            assert_eq!(mirror.join(*p), id.unwrap());
        }
        sharded.assert_invariants();
        assert_eq!(sharded.len(), mirror.len());
        let (got, want) = (sharded.snapshot().unwrap(), mirror.snapshot().unwrap());
        assert_eq!(got.points(), want.points());
        for i in 0..got.len() {
            assert_eq!(got.parent(i), want.parent(i));
        }
        assert!(matches!(
            ShardedOverlay::from_overlay(DynamicOverlay::new(Point2::ORIGIN, 4).unwrap(), 6),
            Err(BuildError::BadShardCount { got: 6 })
        ));
    }

    #[test]
    fn shard_of_cell_partitions_every_ring() {
        let ov = ShardedOverlay::new(Point2::ORIGIN, 4, 8).unwrap();
        // Ring >= 3: segments map by prefix; ring < 3: aligned expansion.
        for ring in 0..10u32 {
            for seg in 0..(1u64 << ring) {
                let cell = ((1u64 << ring) - 1 + seg) as u32;
                let s = ov.shard_of_cell(cell);
                assert!(s < 8, "cell {cell} -> shard {s}");
                if ring >= 3 {
                    assert_eq!(u64::from(s), seg >> (ring - 3));
                }
            }
        }
        assert_eq!(ov.shard_of_cell(0), 0);
        // Single shard: everything is shard 0.
        let ov1 = ShardedOverlay::new(Point2::ORIGIN, 4, 1).unwrap();
        for cell in 0..127u32 {
            assert_eq!(ov1.shard_of_cell(cell), 0);
        }
    }

    #[test]
    fn batched_joins_match_sequential() {
        for shards in [1u32, 4] {
            let mut sharded = ShardedOverlay::new(Point2::ORIGIN, 4, shards).unwrap();
            let mut seq = DynamicOverlay::new(Point2::ORIGIN, 4).unwrap();
            let pts = points(42, 300);
            let events: Vec<ChurnEvent> = pts.iter().map(|&p| ChurnEvent::Join(p)).collect();
            let ids = sharded.apply_batch(&events).unwrap();
            let seq_ids: Vec<HostId> = pts.iter().map(|&p| seq.join(p)).collect();
            for (got, want) in ids.iter().zip(&seq_ids) {
                assert_eq!(got.as_ref(), Some(want));
            }
            sharded.assert_invariants();
            let a = sharded.snapshot().unwrap();
            let b = seq.snapshot().unwrap();
            assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                assert_eq!(a.parent(i), b.parent(i), "parent of host {i} differs");
            }
            assert_eq!(a.radius().to_bits(), b.radius().to_bits());
        }
    }

    #[test]
    fn mixed_churn_matches_sequential_and_reports_stats() {
        let mut sharded = ShardedOverlay::new(Point2::ORIGIN, 3, 4).unwrap();
        let mut seq = DynamicOverlay::new(Point2::ORIGIN, 3).unwrap();
        let pts = points(7, 400);
        let mut seq_live: Vec<HostId> = Vec::new();
        let mut it = pts.iter();
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..8 {
            // Build one batch: joins plus leaves of currently-live ids.
            let mut events = Vec::new();
            for _ in 0..40 {
                if seq_live.len() > 10 && rng.random::<f64>() < 0.33 {
                    let i = rng.random_range(0..seq_live.len());
                    events.push(ChurnEvent::Leave(seq_live.swap_remove(i)));
                } else if let Some(&p) = it.next() {
                    events.push(ChurnEvent::Join(p));
                }
            }
            for ev in &events {
                if let ChurnEvent::Join(p) = ev {
                    seq_live.push(seq.join(*p));
                } else if let ChurnEvent::Leave(id) = ev {
                    seq.leave(*id).unwrap();
                }
            }
            sharded.apply_batch(&events).unwrap();
            sharded.assert_invariants();
            let st = sharded.last_batch_stats();
            assert_eq!(st.joins + st.leaves, events.len() as u64);
        }
        assert_eq!(sharded.len(), seq.len());
        let a = sharded.snapshot().unwrap();
        let b = seq.snapshot().unwrap();
        for i in 0..a.len() {
            assert_eq!(a.parent(i), b.parent(i));
        }
        assert_eq!(a.radius().to_bits(), b.radius().to_bits());
    }

    #[test]
    fn leave_of_unknown_id_errors_and_overlay_stays_consistent() {
        let mut sharded = ShardedOverlay::new(Point2::ORIGIN, 4, 2).unwrap();
        let ids = sharded
            .apply_batch(&[ChurnEvent::Join(Point2::new([0.5, 0.1]))])
            .unwrap();
        let id = ids[0].unwrap();
        sharded.apply_batch(&[ChurnEvent::Leave(id)]).unwrap();
        let err = sharded.apply_batch(&[
            ChurnEvent::Join(Point2::new([0.2, 0.2])),
            ChurnEvent::Leave(id),
        ]);
        assert!(matches!(err, Err(BuildError::UnknownHost { .. })));
        // The join before the failing leave stays applied.
        assert_eq!(sharded.len(), 1);
        sharded.overlay().assert_invariants();
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let pts = points(11, 500);
        let events: Vec<ChurnEvent> = pts.iter().map(|&p| ChurnEvent::Join(p)).collect();
        let mut reference: Option<Vec<u64>> = None;
        for threads in [1usize, 2, 8] {
            let mut ov = ShardedOverlay::new(Point2::ORIGIN, 4, 8)
                .unwrap()
                .with_threads(threads);
            for chunk in events.chunks(64) {
                ov.apply_batch(chunk).unwrap();
            }
            let snap = ov.snapshot().unwrap();
            let bits: Vec<u64> = (0..snap.len()).map(|i| snap.depth(i).to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(r, &bits, "threads={threads} diverged"),
            }
        }
    }
}
