//! Edge sinks: the seam that lets one bisection implementation serve both
//! the sequential and the parallel construction paths.
//!
//! The bisection subroutines are pure functions of their inputs — they
//! never read back from the tree under construction — so *what* they
//! attach is independent of *where* the attachments go. Sequentially they
//! write straight into the [`TreeBuilder`] or [`TreeArena`]; in the
//! parallel store path each cell job writes **directly** into the shared
//! arena through [`SharedArena`], exploiting the disjointness of the
//! counting-sort cell windows (each job's write set is its own window plus
//! its already-attached representative — no two jobs overlap). Either way
//! the edge set is identical, so the finished tree is bit-identical
//! (parent, depth, hop and CSR arrays only depend on the edge set, not on
//! attachment order). [`EdgeList`] remains as the deferred-recording sink
//! for callers that genuinely need to replay (the legacy builder's
//! parallel path).

use omt_tree::{NodeId, ParentRef, TreeArena, TreeBuilder, TreeError};

/// Packed parent reference for the cell-job structs: a [`NodeId`] with
/// `NodeId::MAX` meaning the source. 4 bytes instead of the 16-byte
/// `ParentRef`, which matters when a million-point build carries a job per
/// occupied cell.
pub(crate) const PACKED_SOURCE: NodeId = NodeId::MAX;

/// Expands a packed parent back into a [`ParentRef`].
#[inline]
pub(crate) fn unpack_parent(p: NodeId) -> ParentRef {
    if p == PACKED_SOURCE {
        ParentRef::Source
    } else {
        ParentRef::Node(p as usize)
    }
}

/// Accepts `child -> parent` attachments emitted by the bisection
/// subroutines.
pub(crate) trait AttachSink {
    /// Records (or performs) the attachment of `child` under `parent`.
    fn attach_edge(&mut self, child: u32, parent: ParentRef) -> Result<(), TreeError>;
}

impl<const D: usize> AttachSink for TreeBuilder<D> {
    fn attach_edge(&mut self, child: u32, parent: ParentRef) -> Result<(), TreeError> {
        match parent {
            ParentRef::Source => self.attach_to_source(child as usize),
            ParentRef::Node(p) => self.attach(child as usize, p),
        }
    }
}

impl<const D: usize> AttachSink for TreeArena<'_, D> {
    fn attach_edge(&mut self, child: u32, parent: ParentRef) -> Result<(), TreeError> {
        match parent {
            ParentRef::Source => self.attach_to_source(child as usize),
            ParentRef::Node(p) => self.attach(child as usize, p),
        }
    }
}

/// A sink that writes into a shared [`TreeArena`] through `&self`, using
/// the arena's parallel attachment methods.
///
/// This is what each parallel cell job holds: the attachments land in the
/// arena immediately, on the worker thread, with no per-job edge buffer and
/// no sequential replay. The caller owns the disjointness argument (see
/// [`TreeArena::attach_parallel`]); the grid builders satisfy it by giving
/// each job an exclusive counting-sort window.
pub(crate) struct SharedArena<'s, 'a, const D: usize>(pub &'s TreeArena<'a, D>);

impl<const D: usize> AttachSink for SharedArena<'_, '_, D> {
    fn attach_edge(&mut self, child: u32, parent: ParentRef) -> Result<(), TreeError> {
        match parent {
            ParentRef::Source => self.0.attach_to_source_parallel(child as usize),
            ParentRef::Node(p) => self.0.attach_parallel(child as usize, p),
        }
    }
}

/// A deferred edge list: infallible recording, validated later when the
/// list is replayed into the real builder.
#[derive(Debug, Default)]
pub(crate) struct EdgeList(pub Vec<(u32, ParentRef)>);

impl AttachSink for EdgeList {
    fn attach_edge(&mut self, child: u32, parent: ParentRef) -> Result<(), TreeError> {
        self.0.push((child, parent));
        Ok(())
    }
}

/// Attaches `child` under `parent` in any sink (the shared helper the
/// 2-D and 3-D construction code calls).
pub(crate) fn attach<S: AttachSink + ?Sized>(
    b: &mut S,
    child: usize,
    parent: ParentRef,
) -> Result<(), TreeError> {
    b.attach_edge(child as u32, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::Point2;

    #[test]
    fn edge_list_records_in_emission_order() {
        let mut list = EdgeList::default();
        attach(&mut list, 3, ParentRef::Source).unwrap();
        attach(&mut list, 1, ParentRef::Node(3)).unwrap();
        assert_eq!(
            list.0,
            vec![(3, ParentRef::Source), (1, ParentRef::Node(3))]
        );
    }

    #[test]
    fn shared_arena_sink_matches_sequential_arena() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [0.0, 0.5, 1.0];
        let mut direct = TreeArena::new(Point2::ORIGIN, [&xs, &ys]);
        attach(&mut direct, 0, ParentRef::Source).unwrap();
        attach(&mut direct, 1, ParentRef::Node(0)).unwrap();
        attach(&mut direct, 2, ParentRef::Node(1)).unwrap();

        let mut shared = TreeArena::new(Point2::ORIGIN, [&xs, &ys]);
        {
            let mut sink = SharedArena(&shared);
            attach(&mut sink, 0, ParentRef::Source).unwrap();
            attach(&mut sink, 1, ParentRef::Node(0)).unwrap();
            attach(&mut sink, 2, ParentRef::Node(1)).unwrap();
        }
        shared.add_attached(3);
        assert_eq!(
            direct.into_tree().unwrap(),
            shared.into_tree().unwrap(),
            "direct-fill sink must be indistinguishable from &mut attachment"
        );
    }

    #[test]
    fn builder_sink_matches_direct_calls() {
        let pts = vec![Point2::new([1.0, 0.0]), Point2::new([2.0, 0.0])];
        let mut direct = TreeBuilder::new(Point2::ORIGIN, pts.clone());
        direct.attach_to_source(0).unwrap();
        direct.attach(1, 0).unwrap();

        let mut via_sink = TreeBuilder::new(Point2::ORIGIN, pts);
        attach(&mut via_sink, 0, ParentRef::Source).unwrap();
        attach(&mut via_sink, 1, ParentRef::Node(0)).unwrap();

        assert_eq!(direct.finish().unwrap(), via_sink.finish().unwrap());
    }
}
