//! Edge sinks: the seam that lets one bisection implementation serve both
//! the sequential and the parallel construction paths.
//!
//! The bisection subroutines are pure functions of their inputs — they
//! never read back from the tree under construction — so *what* they
//! attach is independent of *where* the attachments go. Sequentially they
//! write straight into the [`TreeBuilder`]; in the parallel path each cell
//! writes into a private [`EdgeList`] on a worker thread, and the lists
//! are replayed into the builder in deterministic cell order afterwards.
//! Either way the edge set is identical, so the finished tree is
//! bit-identical (parent, depth, hop and CSR arrays only depend on the
//! edge set, not on attachment order).

use omt_tree::{ParentRef, TreeArena, TreeBuilder, TreeError};

/// Accepts `child -> parent` attachments emitted by the bisection
/// subroutines.
pub(crate) trait AttachSink {
    /// Records (or performs) the attachment of `child` under `parent`.
    fn attach_edge(&mut self, child: u32, parent: ParentRef) -> Result<(), TreeError>;
}

impl<const D: usize> AttachSink for TreeBuilder<D> {
    fn attach_edge(&mut self, child: u32, parent: ParentRef) -> Result<(), TreeError> {
        match parent {
            ParentRef::Source => self.attach_to_source(child as usize),
            ParentRef::Node(p) => self.attach(child as usize, p),
        }
    }
}

impl<const D: usize> AttachSink for TreeArena<'_, D> {
    fn attach_edge(&mut self, child: u32, parent: ParentRef) -> Result<(), TreeError> {
        match parent {
            ParentRef::Source => self.attach_to_source(child as usize),
            ParentRef::Node(p) => self.attach(child as usize, p),
        }
    }
}

/// A deferred edge list: infallible recording, validated later when the
/// list is replayed into the real builder.
#[derive(Debug, Default)]
pub(crate) struct EdgeList(pub Vec<(u32, ParentRef)>);

impl AttachSink for EdgeList {
    fn attach_edge(&mut self, child: u32, parent: ParentRef) -> Result<(), TreeError> {
        self.0.push((child, parent));
        Ok(())
    }
}

/// Attaches `child` under `parent` in any sink (the shared helper the
/// 2-D and 3-D construction code calls).
pub(crate) fn attach<S: AttachSink + ?Sized>(
    b: &mut S,
    child: usize,
    parent: ParentRef,
) -> Result<(), TreeError> {
    b.attach_edge(child as u32, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::Point2;

    #[test]
    fn edge_list_records_in_emission_order() {
        let mut list = EdgeList::default();
        attach(&mut list, 3, ParentRef::Source).unwrap();
        attach(&mut list, 1, ParentRef::Node(3)).unwrap();
        assert_eq!(
            list.0,
            vec![(3, ParentRef::Source), (1, ParentRef::Node(3))]
        );
    }

    #[test]
    fn builder_sink_matches_direct_calls() {
        let pts = vec![Point2::new([1.0, 0.0]), Point2::new([2.0, 0.0])];
        let mut direct = TreeBuilder::new(Point2::ORIGIN, pts.clone());
        direct.attach_to_source(0).unwrap();
        direct.attach(1, 0).unwrap();

        let mut via_sink = TreeBuilder::new(Point2::ORIGIN, pts);
        attach(&mut via_sink, 0, ParentRef::Source).unwrap();
        attach(&mut via_sink, 1, ParentRef::Node(0)).unwrap();

        assert_eq!(direct.finish().unwrap(), via_sink.finish().unwrap());
    }
}
