//! General-dimension `Polar_Grid` (Section IV-B sketches this; the paper
//! only evaluates d = 2, 3 and remarks "the details of equal volume split
//! become tedious").
//!
//! We make the split exact in any dimension with the *quantile trick*: in
//! hyperspherical coordinates `(r, φ_1, …, φ_{D-1})` the volume element
//! factorizes as `r^{D-1} dr · sin^{D-2}φ_1 dφ_1 ⋯ sin φ_{D-2} dφ_{D-2} ·
//! dφ_{D-1}`, so
//!
//! * rings of equal volume use radii growing by `2^{1/D}`;
//! * each polar angle `φ_j` is measured through its own CDF
//!   `F_m(x) = ∫_0^x sin^m t dt` (closed form by the standard reduction
//!   formula), which maps it to a uniform quantile in `[0, 1)`;
//! * the azimuth `φ_{D-1}` is already uniform.
//!
//! Binary angular splits then cut exact measure-halves by halving quantile
//! intervals, and a point's angular bit path is just the interleaved binary
//! digits of its per-axis quantiles — the same level-independent encoding
//! the 2-D and 3-D grids use, so ring selection is shared.
//!
//! Trees use the degree-2 wiring of Section IV-A with a binary in-cell
//! bisection (axes cycling radius → quantile axes), so any out-degree
//! budget ≥ 2 is supported; the emitted tree always has out-degree ≤ 2.

use omt_geom::Point;
use omt_tree::{MulticastTree, ParentRef, TreeBuilder, TreeError};

use crate::error::BuildError;
use crate::fanout::fanout_chain as fanout_nd;
use crate::kselect::{
    bucket_cells, cell_count, cell_index, finest_level, select_rings, Assignments,
};

/// `F_m(x) = ∫_0^x sin^m t dt` via the reduction formula
/// `m·F_m(x) = -cos x · sin^{m-1} x + (m-1)·F_{m-2}(x)`.
fn sin_power_integral(m: u32, x: f64) -> f64 {
    match m {
        0 => x,
        1 => 1.0 - x.cos(),
        _ => {
            let s = x.sin();
            (-x.cos() * s.powi(m as i32 - 1) + (m - 1) as f64 * sin_power_integral(m - 2, x))
                / m as f64
        }
    }
}

/// A point in the grid's internal coordinates: radius plus one quantile in
/// `[0, 1)` per angular axis.
#[derive(Clone, Debug)]
struct QuantPoint {
    radius: f64,
    /// Quantiles of the `D-1` angular coordinates.
    quant: Vec<f64>,
}

/// Hyperspherical quantile coordinates of `p - source`.
fn to_quant<const D: usize>(v: &Point<D>) -> QuantPoint {
    let r = v.norm();
    let mut quant = Vec::with_capacity(D - 1);
    // Residual squared norm of coordinates j.. (suffix sums).
    let mut suffix = [0.0f64; D];
    let mut acc = 0.0;
    for j in (0..D).rev() {
        acc += v[j] * v[j];
        suffix[j] = acc;
    }
    // Polar angles φ_1..φ_{D-2} with sin-power densities.
    for j in 0..D.saturating_sub(2) {
        let tail = suffix[j + 1].max(0.0).sqrt();
        let phi = tail.atan2(v[j]); // in [0, π]
        let m = (D - 2 - j) as u32;
        let q = sin_power_integral(m, phi) / sin_power_integral(m, core::f64::consts::PI);
        quant.push(q.clamp(0.0, 1.0 - 1e-15));
    }
    // Azimuth φ_{D-1}: uniform in [0, 2π).
    let az = omt_geom::normalize_angle(v[D - 1].atan2(v[D - 2]));
    quant.push((az / core::f64::consts::TAU).clamp(0.0, 1.0 - 1e-15));
    QuantPoint { radius: r, quant }
}

/// The angular bit path of a point at level `k`: bit `ℓ` (MSB-first) is the
/// next binary digit of the quantile on axis `ℓ mod (D-1)`.
fn angular_path(q: &QuantPoint, k: u32) -> u64 {
    let axes = q.quant.len();
    let mut counts = vec![0u32; axes];
    let mut path = 0u64;
    for l in 0..k {
        let a = (l as usize) % axes;
        counts[a] += 1;
        // Binary digit `counts[a]` of the quantile's binary expansion.
        let digit = (q.quant[a] * 2f64.powi(counts[a] as i32)) as u64 & 1;
        path = (path << 1) | digit;
    }
    path
}

/// An axis-aligned box in (radius, quantile) space plus the split cursor.
#[derive(Clone, Debug)]
struct QuantCell {
    r_lo: f64,
    r_hi: f64,
    /// Per-axis quantile intervals `[lo, hi)`.
    q: Vec<(f64, f64)>,
}

/// Report of an [`NdGridBuilder`] run.
#[derive(Clone, Debug, PartialEq)]
pub struct NdGridReport {
    /// The number of grid rings `k`.
    pub rings: u32,
    /// The longest source-to-receiver delay in the tree.
    pub delay: f64,
    /// The trivial lower bound: the largest direct source-to-point distance.
    pub lower_bound: f64,
    /// Total number of grid cells, `2^(k+1) - 1`.
    pub cells: usize,
    /// Number of cells containing at least one point.
    pub occupied_cells: usize,
}

/// Builder for the general-dimension `Polar_Grid` algorithm (`D ≥ 2`).
///
/// For `D = 2` and `D = 3` prefer [`crate::PolarGridBuilder`] and
/// [`crate::SphereGridBuilder`], which implement the exact paper
/// constructions with their analytic bounds; this builder exists for
/// higher-dimensional embeddings (the GNP coordinates of the paper's
/// motivation use dimension "3 and above").
///
/// # Examples
///
/// ```
/// use omt_core::NdGridBuilder;
/// use omt_geom::{Ball, Point, Region};
/// use omt_rng::rngs::SmallRng;
/// use omt_rng::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = SmallRng::seed_from_u64(2);
/// let hosts = Ball::<4>::unit().sample_n(&mut rng, 500);
/// let tree = NdGridBuilder::new().build(Point::ORIGIN, &hosts)?;
/// tree.validate(Some(2))?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NdGridBuilder {
    max_out_degree: u32,
    rings_override: Option<u32>,
}

impl Default for NdGridBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NdGridBuilder {
    /// Creates a builder with out-degree budget 2 and automatic ring
    /// selection.
    pub fn new() -> Self {
        Self {
            max_out_degree: 2,
            rings_override: None,
        }
    }

    /// Sets the out-degree budget (any value ≥ 2; the construction emits
    /// out-degree ≤ 2 regardless, so larger budgets are slack).
    #[must_use]
    pub fn max_out_degree(mut self, budget: u32) -> Self {
        self.max_out_degree = budget;
        self
    }

    /// Forces a specific number of rings. Fails at build time if
    /// infeasible.
    #[must_use]
    pub fn rings(mut self, k: u32) -> Self {
        self.rings_override = Some(k);
        self
    }

    /// Builds the multicast tree over `D`-dimensional points.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`PolarGridBuilder::build_with_report`](crate::PolarGridBuilder::build_with_report).
    pub fn build<const D: usize>(
        &self,
        source: Point<D>,
        points: &[Point<D>],
    ) -> Result<MulticastTree<D>, BuildError> {
        self.build_with_report(source, points).map(|(t, _)| t)
    }

    /// Builds the multicast tree and returns diagnostics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NdGridBuilder::build`].
    pub fn build_with_report<const D: usize>(
        &self,
        source: Point<D>,
        points: &[Point<D>],
    ) -> Result<(MulticastTree<D>, NdGridReport), BuildError> {
        assert!(D >= 2, "NdGridBuilder needs dimension >= 2");
        if self.max_out_degree < 2 {
            return Err(BuildError::DegreeTooSmall {
                got: self.max_out_degree,
                min: 2,
            });
        }
        if !source.is_finite() {
            return Err(BuildError::NonFiniteSource);
        }
        if let Some(bad) = points.iter().position(|p| !p.is_finite()) {
            return Err(BuildError::NonFinitePoint { index: bad });
        }
        let n = points.len();
        let mut builder = TreeBuilder::new(source, points.to_vec()).max_out_degree(2);
        if n == 0 {
            let tree = builder.finish()?;
            return Ok((
                tree,
                NdGridReport {
                    rings: 0,
                    delay: 0.0,
                    lower_bound: 0.0,
                    cells: 1,
                    occupied_cells: 0,
                },
            ));
        }
        let quant: Vec<QuantPoint> = points.iter().map(|p| to_quant(&(*p - source))).collect();
        let lower_bound = quant.iter().map(|q| q.radius).fold(0.0, f64::max);
        if lower_bound == 0.0 {
            fanout_nd(&mut builder, 2)?;
            let tree = builder.finish()?;
            return Ok((
                tree,
                NdGridReport {
                    rings: 0,
                    delay: 0.0,
                    lower_bound: 0.0,
                    cells: 1,
                    occupied_cells: 1,
                },
            ));
        }
        let rho = lower_bound * (1.0 + 1e-9);

        let k_max = finest_level(n);
        // Ring radii at the finest level: rho · 2^(-(k_max - i)/D).
        let shell = |i: u32| rho * 2f64.powf(-((k_max - i) as f64) / D as f64);
        let ring_of = |r: f64| -> u32 {
            if k_max == 0 || r < shell(0) {
                return 0;
            }
            if r >= rho {
                return k_max;
            }
            let guess = (k_max as f64 + D as f64 * (r / rho).log2()).floor() as i64 + 1;
            let mut ring = guess.clamp(1, k_max as i64) as u32;
            while ring > 1 && r < shell(ring - 1) {
                ring -= 1;
            }
            while ring < k_max && r >= shell(ring) {
                ring += 1;
            }
            ring
        };
        let assignments = Assignments {
            k_max,
            ring: quant.iter().map(|q| ring_of(q.radius)).collect(),
            path: quant
                .iter()
                .map(|q| angular_path(q, k_max) as u32)
                .collect(),
        };
        let (k_auto, _) = select_rings(&assignments);
        let k = match self.rings_override {
            None => k_auto,
            Some(req) if req <= k_auto => req,
            Some(req) => {
                return Err(BuildError::InfeasibleRings {
                    requested: req,
                    feasible: k_auto,
                })
            }
        };

        // Cell geometry at level k.
        let level_shell = |i: u32| rho * 2f64.powf(-((k - i) as f64) / D as f64);
        let cell_geom = |ring: u32, seg: u64| -> QuantCell {
            let axes = D - 1;
            let mut q = vec![(0.0, 1.0); axes];
            let mut counts = vec![0u32; axes];
            for l in 0..ring {
                let a = (l as usize) % axes;
                counts[a] += 1;
                let bit = (seg >> (ring - 1 - l)) & 1;
                let mid = 0.5 * (q[a].0 + q[a].1);
                if bit == 1 {
                    q[a].0 = mid;
                } else {
                    q[a].1 = mid;
                }
            }
            QuantCell {
                r_lo: if ring == 0 {
                    0.0
                } else {
                    level_shell(ring - 1)
                },
                r_hi: level_shell(ring),
                q,
            }
        };

        // Bucket points per cell.
        let cells = cell_count(k);
        let (counts, members) = bucket_cells(&assignments, k);
        let cell_members = |c: usize| &members[counts[c] as usize..counts[c + 1] as usize];
        let occupied_cells = (0..cells).filter(|&c| counts[c] != counts[c + 1]).count();

        // Degree-2 wiring, identical in shape to the 2-D/3-D versions.
        let mut connector: Vec<ParentRef> = vec![ParentRef::Source; cells];
        {
            let mem = cell_members(0);
            let has_core_children = k >= 1
                && (!cell_members(cell_index(1, 0)).is_empty()
                    || !cell_members(cell_index(1, 1)).is_empty());
            connector[0] = wire_cell(
                &mut builder,
                &quant,
                cell_geom(0, 0),
                ParentRef::Source,
                0.0,
                mem,
                None,
                has_core_children,
            )?;
        }
        for ring in 1..=k {
            for seg in 0..(1u64 << ring) {
                let c = cell_index(ring, seg);
                let mem = cell_members(c);
                if mem.is_empty() {
                    continue;
                }
                let rep = *mem
                    .iter()
                    .min_by(|&&a, &&b| {
                        quant[a as usize]
                            .radius
                            .total_cmp(&quant[b as usize].radius)
                    })
                    .expect("nonempty");
                let parent_idx = if ring == 1 {
                    cell_index(0, 0)
                } else {
                    cell_index(ring - 1, seg / 2)
                };
                match connector[parent_idx] {
                    ParentRef::Source => builder.attach_to_source(rep as usize)?,
                    ParentRef::Node(p) => builder.attach(rep as usize, p)?,
                }
                let has_core_children = ring < k && {
                    let kids = [
                        cell_index(ring + 1, 2 * seg),
                        cell_index(ring + 1, 2 * seg + 1),
                    ];
                    kids.iter().any(|&kc| !cell_members(kc).is_empty())
                };
                connector[c] = wire_cell(
                    &mut builder,
                    &quant,
                    cell_geom(ring, seg),
                    ParentRef::Node(rep as usize),
                    quant[rep as usize].radius,
                    mem,
                    Some(rep),
                    has_core_children,
                )?;
            }
        }

        let tree = builder.finish()?;
        let delay = tree.radius();
        Ok((
            tree,
            NdGridReport {
                rings: k,
                delay,
                lower_bound,
                cells,
                occupied_cells,
            },
        ))
    }
}

/// Degree-2 in-cell wiring; returns the connector.
#[allow(clippy::too_many_arguments)]
fn wire_cell<const D: usize>(
    builder: &mut TreeBuilder<D>,
    quant: &[QuantPoint],
    cell: QuantCell,
    rep_ref: ParentRef,
    rep_radius: f64,
    members: &[u32],
    rep: Option<u32>,
    has_core_children: bool,
) -> Result<ParentRef, BuildError> {
    let attach = |b: &mut TreeBuilder<D>, child: usize, parent: ParentRef| match parent {
        ParentRef::Source => b.attach_to_source(child),
        ParentRef::Node(p) => b.attach(child, p),
    };
    let mut rest: Vec<u32> = members
        .iter()
        .copied()
        .filter(|&p| Some(p) != rep)
        .collect();
    match rest.len() {
        0 => Ok(rep_ref),
        1 => {
            let other = rest[0];
            attach(builder, other as usize, rep_ref)?;
            Ok(ParentRef::Node(other as usize))
        }
        _ => {
            let connector = if has_core_children {
                // Nearest point to the representative in the original
                // coordinates (see the 2-D wiring for the rationale).
                let rep_pos = match rep_ref {
                    ParentRef::Source => builder.source(),
                    ParentRef::Node(r) => builder.point(r),
                };
                let pos = rest
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        let da = builder.point(*a.1 as usize).distance_squared(&rep_pos);
                        let db = builder.point(*b.1 as usize).distance_squared(&rep_pos);
                        da.total_cmp(&db)
                    })
                    .map(|(i, _)| i)
                    .expect("nonempty");
                let x = rest.swap_remove(pos);
                attach(builder, x as usize, rep_ref)?;
                Some(ParentRef::Node(x as usize))
            } else {
                None
            };
            if !rest.is_empty() {
                let pos = rest
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        (quant[*a.1 as usize].radius - rep_radius)
                            .abs()
                            .total_cmp(&(quant[*b.1 as usize].radius - rep_radius).abs())
                    })
                    .map(|(i, _)| i)
                    .expect("nonempty");
                let s = rest.swap_remove(pos);
                attach(builder, s as usize, rep_ref)?;
                bisect2_nd(builder, quant, cell, ParentRef::Node(s as usize), rest)?;
            }
            Ok(connector.unwrap_or(rep_ref))
        }
    }
}

/// Binary in-cell bisection for general dimension: axes cycle radius →
/// quantile axis 0 → quantile axis 1 → … Each step removes two points, so
/// termination is unconditional.
fn bisect2_nd<const D: usize>(
    b: &mut TreeBuilder<D>,
    quant: &[QuantPoint],
    cell: QuantCell,
    src: ParentRef,
    idx: Vec<u32>,
) -> Result<(), TreeError> {
    let attach = |b: &mut TreeBuilder<D>, child: usize, parent: ParentRef| match parent {
        ParentRef::Source => b.attach_to_source(child),
        ParentRef::Node(p) => b.attach(child, p),
    };
    let axes = cell.q.len() + 1; // radius plus angular axes
    let mut stack: Vec<(QuantCell, usize, ParentRef, Vec<u32>)> = vec![(cell, 0, src, idx)];
    while let Some((cell, axis, src, mut idx)) = stack.pop() {
        match idx.len() {
            0 => continue,
            1 => {
                attach(b, idx[0] as usize, src)?;
                continue;
            }
            2 => {
                attach(b, idx[0] as usize, src)?;
                attach(b, idx[1] as usize, src)?;
                continue;
            }
            _ => {}
        }
        // Two carriers: the points with radius closest to the cell's inner
        // boundary (a stand-in for the local source radius; exactness is
        // not needed for validity).
        let take_min = |idx: &mut Vec<u32>, target: f64| -> u32 {
            let pos = idx
                .iter()
                .enumerate()
                .min_by(|x, y| {
                    (quant[*x.1 as usize].radius - target)
                        .abs()
                        .total_cmp(&(quant[*y.1 as usize].radius - target).abs())
                })
                .map(|(i, _)| i)
                .expect("nonempty");
            idx.swap_remove(pos)
        };
        let a = take_min(&mut idx, cell.r_lo);
        let c = take_min(&mut idx, cell.r_lo);
        attach(b, a as usize, src)?;
        attach(b, c as usize, src)?;
        let coordinate = |p: &QuantPoint| -> (f64, f64) {
            if axis == 0 {
                (p.radius, 0.5 * (cell.r_lo + cell.r_hi))
            } else {
                let (lo, hi) = cell.q[axis - 1];
                (p.quant[axis - 1], 0.5 * (lo + hi))
            }
        };
        let mut lo_cell = cell.clone();
        let mut hi_cell = cell.clone();
        if axis == 0 {
            let mid = 0.5 * (cell.r_lo + cell.r_hi);
            lo_cell.r_hi = mid;
            hi_cell.r_lo = mid;
        } else {
            let (lo, hi) = cell.q[axis - 1];
            let mid = 0.5 * (lo + hi);
            lo_cell.q[axis - 1].1 = mid;
            hi_cell.q[axis - 1].0 = mid;
        }
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        for p in idx {
            let (v, mid) = coordinate(&quant[p as usize]);
            if v >= mid {
                hi.push(p);
            } else {
                lo.push(p);
            }
        }
        let (va, _) = coordinate(&quant[a as usize]);
        let (vc, _) = coordinate(&quant[c as usize]);
        let (carrier_lo, carrier_hi) = if va <= vc { (a, c) } else { (c, a) };
        let next = (axis + 1) % axes;
        stack.push((lo_cell, next, ParentRef::Node(carrier_lo as usize), lo));
        stack.push((hi_cell, next, ParentRef::Node(carrier_hi as usize), hi));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Ball, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    #[test]
    fn sin_power_integral_known_values() {
        use core::f64::consts::PI;
        assert!((sin_power_integral(0, PI) - PI).abs() < 1e-12);
        assert!((sin_power_integral(1, PI) - 2.0).abs() < 1e-12);
        // ∫ sin² over [0, π] = π/2; ∫ sin³ = 4/3.
        assert!((sin_power_integral(2, PI) - PI / 2.0).abs() < 1e-12);
        assert!((sin_power_integral(3, PI) - 4.0 / 3.0).abs() < 1e-12);
        // Monotone in x.
        for m in 0..5 {
            assert!(sin_power_integral(m, 1.0) < sin_power_integral(m, 2.0));
        }
    }

    #[test]
    fn quantiles_are_uniform_for_uniform_directions() {
        // For points uniform in a ball, every angular quantile must be
        // uniform in [0,1): check first and second moments per axis.
        let mut rng = SmallRng::seed_from_u64(1);
        let pts = Ball::<4>::unit().sample_n(&mut rng, 20_000);
        let qs: Vec<QuantPoint> = pts.iter().map(to_quant).collect();
        for axis in 0..3 {
            let vals: Vec<f64> = qs.iter().map(|q| q.quant[axis]).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            assert!((mean - 0.5).abs() < 0.01, "axis {axis} mean {mean}");
            assert!((var - 1.0 / 12.0).abs() < 0.005, "axis {axis} var {var}");
        }
    }

    #[test]
    fn builds_valid_trees_in_dimension_4_and_5() {
        let mut rng = SmallRng::seed_from_u64(3);
        for n in [1usize, 5, 100, 2000] {
            let pts = Ball::<4>::unit().sample_n(&mut rng, n);
            let (tree, report) = NdGridBuilder::new()
                .build_with_report(Point::ORIGIN, &pts)
                .unwrap();
            assert_eq!(tree.len(), n);
            tree.validate(Some(2)).unwrap();
            assert!(report.delay >= report.lower_bound - 1e-12);
        }
        let pts = Ball::<5>::unit().sample_n(&mut rng, 1000);
        let tree = NdGridBuilder::new().build(Point::ORIGIN, &pts).unwrap();
        tree.validate(Some(2)).unwrap();
    }

    #[test]
    fn two_dimensional_case_agrees_with_paper_structure() {
        // In D = 2 the quantile grid degenerates to the polar grid (one
        // uniform angular axis); sanity-check validity and quality.
        let mut rng = SmallRng::seed_from_u64(7);
        let pts = Ball::<2>::unit().sample_n(&mut rng, 3000);
        let (tree, report) = NdGridBuilder::new()
            .build_with_report(Point::ORIGIN, &pts)
            .unwrap();
        tree.validate(Some(2)).unwrap();
        assert!(report.delay < 2.0 * report.lower_bound);
        assert!(report.rings >= 4);
    }

    #[test]
    fn delay_converges_in_dimension_4() {
        let mut ratios = Vec::new();
        for (n, seed) in [(500usize, 1u64), (5000, 2), (50_000, 3)] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let pts = Ball::<4>::unit().sample_n(&mut rng, n);
            let (_, report) = NdGridBuilder::new()
                .build_with_report(Point::ORIGIN, &pts)
                .unwrap();
            ratios.push(report.delay / report.lower_bound);
        }
        assert!(ratios[2] < ratios[0], "no convergence in 4-D: {ratios:?}");
    }

    #[test]
    fn errors_and_degenerates() {
        let pts = vec![Point::<4>::new([0.1, 0.2, 0.3, 0.4])];
        assert!(matches!(
            NdGridBuilder::new()
                .max_out_degree(1)
                .build(Point::ORIGIN, &pts),
            Err(BuildError::DegreeTooSmall { .. })
        ));
        let (tree, _) = NdGridBuilder::new()
            .build_with_report::<4>(Point::ORIGIN, &[])
            .unwrap();
        assert!(tree.is_empty());
        let dup = vec![Point::<4>::new([1.0, 0.0, 0.0, 0.0]); 20];
        let tree = NdGridBuilder::new().build(Point::ORIGIN, &dup).unwrap();
        assert_eq!(tree.len(), 20);
        tree.validate(Some(2)).unwrap();
        let all_source = vec![Point::<4>::ORIGIN; 10];
        let tree = NdGridBuilder::new()
            .build(Point::ORIGIN, &all_source)
            .unwrap();
        assert_eq!(tree.radius(), 0.0);
    }

    #[test]
    fn rings_override_nd() {
        let mut rng = SmallRng::seed_from_u64(9);
        let pts = Ball::<4>::unit().sample_n(&mut rng, 2000);
        let (_, auto) = NdGridBuilder::new()
            .build_with_report(Point::ORIGIN, &pts)
            .unwrap();
        assert!(auto.rings >= 1);
        let (tree, forced) = NdGridBuilder::new()
            .rings(auto.rings - 1)
            .build_with_report(Point::ORIGIN, &pts)
            .unwrap();
        assert_eq!(forced.rings, auto.rings - 1);
        tree.validate(Some(2)).unwrap();
        assert!(matches!(
            NdGridBuilder::new()
                .rings(auto.rings + 8)
                .build(Point::ORIGIN, &pts),
            Err(BuildError::InfeasibleRings { .. })
        ));
    }

    #[test]
    fn angular_path_prefix_property() {
        let q = QuantPoint {
            radius: 1.0,
            quant: vec![0.7, 0.3, 0.9],
        };
        // The path at level k must be a prefix of the path at level k+1
        // restricted to shared splits.
        let p6 = angular_path(&q, 6);
        let p3 = angular_path(&q, 3);
        assert_eq!(p6 >> 3, p3);
    }
}
