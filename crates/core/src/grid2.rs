//! The 2-D equal-area polar grid (Section III-A of the paper).
//!
//! For `k` rings over a disk of radius `ρ`, the grid consists of circles of
//! radius `r_i = ρ·(1/√2)^(k-i)` for `0 ≤ i ≤ k-1`, giving:
//!
//! * ring 0 — the inner disk of radius `ρ·2^(-k/2)`, one cell;
//! * ring `i` (`1 ≤ i ≤ k`) — the annulus between circles `i-1` and `i`
//!   (circle `k` being the disk boundary), split into `2^i` equal segments.
//!
//! Every cell has area `π·ρ²·2^(-k-1)`, each ring has twice the cells of
//! the ring inside it, and cell `(i, j)` is aligned with cells
//! `(i+1, 2j)` and `(i+1, 2j+1)` — the binary "core" tree.

use core::f64::consts::TAU;

use omt_geom::{PolarPoint, RingSegment};

/// The 2-D polar grid over a disk of radius `rho` with `k` rings.
///
/// # Examples
///
/// ```
/// use omt_core::PolarGrid2;
/// use omt_geom::PolarPoint;
///
/// let grid = PolarGrid2::new(3, 1.0);
/// assert_eq!(grid.cell_count(), 15); // 2^(3+1) - 1
/// let (ring, seg) = grid.cell_of(&PolarPoint::new(0.9, 0.1));
/// assert_eq!(ring, 3); // outermost ring
/// assert_eq!(seg, 0);
/// // Every cell of the grid has the same area.
/// let a0 = grid.segment(0, 0).area();
/// let a3 = grid.segment(3, 5).area();
/// assert!((a0 / 2.0 - a3).abs() < 1e-12); // the inner disk counts as 2 cells
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PolarGrid2 {
    k: u32,
    rho: f64,
    /// `circle[i] = rho · 2^(-(k-i)/2)` for `i = 0..=k`; `circle[k] = rho`.
    circle: Vec<f64>,
}

impl PolarGrid2 {
    /// Creates the `k`-ring grid over a disk of radius `rho`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not positive and finite, or `k > 60`.
    pub fn new(k: u32, rho: f64) -> Self {
        assert!(rho > 0.0 && rho.is_finite(), "bad disk radius {rho}");
        assert!(k <= 60, "ring count {k} too large");
        let circle = (0..=k)
            .map(|i| rho * 2f64.powf(-((k - i) as f64) / 2.0))
            .collect();
        Self { k, rho, circle }
    }

    /// Number of rings `k`.
    #[inline]
    pub const fn rings(&self) -> u32 {
        self.k
    }

    /// The disk radius `ρ`.
    #[inline]
    pub const fn rho(&self) -> f64 {
        self.rho
    }

    /// Total number of cells: `2^(k+1) - 1`.
    #[inline]
    pub fn cell_count(&self) -> usize {
        ((1u64 << (self.k + 1)) - 1) as usize
    }

    /// Number of segments on ring `i`: 1 for the inner disk, else `2^i`.
    ///
    /// # Panics
    ///
    /// Panics if `ring > k`.
    pub fn segments_on_ring(&self, ring: u32) -> u64 {
        assert!(ring <= self.k, "ring {ring} out of range");
        1u64 << ring
    }

    /// Radius of grid circle `i` (`0 ≤ i ≤ k`; index `k` is the boundary).
    ///
    /// # Panics
    ///
    /// Panics if `i > k`.
    #[inline]
    pub fn circle_radius(&self, i: u32) -> f64 {
        self.circle[i as usize]
    }

    /// The geometric region of cell `(ring, seg)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn segment(&self, ring: u32, seg: u64) -> RingSegment {
        assert!(ring <= self.k, "ring {ring} out of range");
        if ring == 0 {
            return RingSegment::disk(self.circle[0]);
        }
        let count = 1u64 << ring;
        assert!(seg < count, "segment {seg} out of range for ring {ring}");
        let width = TAU / count as f64;
        // Derive the upper angle from the next boundary index so adjacent
        // segments share boundaries exactly.
        let lo = seg as f64 * width;
        let hi = if seg + 1 == count {
            TAU
        } else {
            (seg + 1) as f64 * width
        };
        RingSegment::new(
            self.circle[ring as usize - 1],
            self.circle[ring as usize],
            lo,
            hi,
        )
    }

    /// The cell containing a polar point (radius must satisfy `r < ρ`;
    /// larger radii clamp to the outermost ring).
    pub fn cell_of(&self, p: &PolarPoint) -> (u32, u64) {
        omt_obs::obs_count!("grid2/cell_of");
        let ring = self.ring_of_radius(p.radius);
        if ring == 0 {
            return (0, 0);
        }
        let count = 1u64 << ring;
        let seg = ((p.angle / TAU) * count as f64) as u64;
        (ring, seg.min(count - 1))
    }

    /// The ring containing radius `r`, by logarithm plus boundary fix-up so
    /// the result is exactly consistent with [`PolarGrid2::circle_radius`]
    /// comparisons.
    pub fn ring_of_radius(&self, r: f64) -> u32 {
        if r < self.circle[0] {
            return 0;
        }
        if r >= self.circle[self.k as usize] {
            return self.k;
        }
        // r in [circle[i-1], circle[i]) -> ring i.
        let guess = (self.k as f64 + 2.0 * (r / self.rho).log2()).floor() as i64 + 1;
        let mut ring = guess.clamp(1, self.k as i64) as u32;
        // Fix up at most one step in each direction (log rounding).
        while ring > 1 && r < self.circle[ring as usize - 1] {
            ring -= 1;
        }
        while ring < self.k && r >= self.circle[ring as usize] {
            ring += 1;
        }
        ring
    }

    /// The parent cell of `(ring, seg)` in the core tree, or `None` for the
    /// inner disk.
    pub fn parent(&self, ring: u32, seg: u64) -> Option<(u32, u64)> {
        assert!(ring <= self.k, "ring {ring} out of range");
        match ring {
            0 => None,
            1 => Some((0, 0)),
            _ => Some((ring - 1, seg / 2)),
        }
    }

    /// The two aligned children of `(ring, seg)` on the next ring, or
    /// `None` for outermost-ring cells.
    pub fn children(&self, ring: u32, seg: u64) -> Option<[(u32, u64); 2]> {
        if ring >= self.k {
            return None;
        }
        if ring == 0 {
            Some([(1, 0), (1, 1)])
        } else {
            Some([(ring + 1, 2 * seg), (ring + 1, 2 * seg + 1)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radii_follow_sqrt2_progression() {
        let g = PolarGrid2::new(4, 1.0);
        for i in 0..4 {
            let ratio = g.circle_radius(i + 1) / g.circle_radius(i);
            assert!((ratio - 2f64.sqrt()).abs() < 1e-12);
        }
        assert!((g.circle_radius(4) - 1.0).abs() < 1e-15);
        assert!((g.circle_radius(0) - 0.25).abs() < 1e-12); // 2^(-2)
    }

    #[test]
    fn all_cells_have_equal_area() {
        let g = PolarGrid2::new(5, 2.0);
        let unit = core::f64::consts::PI * 4.0 * 2f64.powi(-6); // π ρ² 2^-(k+1)
                                                                // Inner disk counts as two cells.
        assert!((g.segment(0, 0).area() - 2.0 * unit).abs() < 1e-12);
        for ring in 1..=5 {
            for seg in [0u64, (1 << ring) - 1] {
                assert!(
                    (g.segment(ring, seg).area() - unit).abs() < 1e-12,
                    "ring {ring} seg {seg}"
                );
            }
        }
    }

    #[test]
    fn areas_sum_to_disk() {
        let g = PolarGrid2::new(4, 1.5);
        let mut total = g.segment(0, 0).area();
        for ring in 1..=4 {
            for seg in 0..(1u64 << ring) {
                total += g.segment(ring, seg).area();
            }
        }
        assert!((total - core::f64::consts::PI * 1.5 * 1.5).abs() < 1e-9);
    }

    #[test]
    fn cell_of_agrees_with_segment_containment() {
        let g = PolarGrid2::new(5, 1.0);
        // A deterministic sweep of points.
        for i in 0..50 {
            for j in 0..50 {
                let r = (i as f64 + 0.5) / 50.0;
                let t = (j as f64 + 0.5) / 50.0 * TAU;
                let p = PolarPoint::new(r, t);
                let (ring, seg) = g.cell_of(&p);
                assert!(
                    g.segment(ring, seg).contains(&p),
                    "point {p:?} assigned to ({ring},{seg})"
                );
            }
        }
    }

    #[test]
    fn ring_of_radius_boundaries() {
        let g = PolarGrid2::new(6, 1.0);
        for i in 0..=6u32 {
            let r = g.circle_radius(i);
            if i < 6 {
                // Exactly on circle i -> ring i+1 (half-open annuli).
                assert_eq!(g.ring_of_radius(r), i + 1, "circle {i}");
            } else {
                assert_eq!(g.ring_of_radius(r), 6);
            }
            if i > 0 {
                let just_in = r * (1.0 - 1e-12);
                assert_eq!(g.ring_of_radius(just_in), i, "just inside circle {i}");
            }
        }
        assert_eq!(g.ring_of_radius(0.0), 0);
        assert_eq!(g.ring_of_radius(5.0), 6); // clamped
    }

    #[test]
    fn parent_child_alignment() {
        let g = PolarGrid2::new(3, 1.0);
        assert_eq!(g.parent(0, 0), None);
        assert_eq!(g.parent(1, 1), Some((0, 0)));
        assert_eq!(g.parent(3, 5), Some((2, 2)));
        assert_eq!(g.children(0, 0), Some([(1, 0), (1, 1)]));
        assert_eq!(g.children(2, 3), Some([(3, 6), (3, 7)]));
        assert_eq!(g.children(3, 0), None);
        // Parent/children are inverse.
        for ring in 1..=3u32 {
            for seg in 0..(1u64 << ring) {
                let (pr, ps) = g.parent(ring, seg).unwrap();
                let kids = g.children(pr, ps).unwrap();
                assert!(kids.contains(&(ring, seg)));
            }
        }
    }

    #[test]
    fn children_cover_parent_angles() {
        let g = PolarGrid2::new(4, 1.0);
        for ring in 1..4u32 {
            for seg in 0..(1u64 << ring) {
                let parent = g.segment(ring, seg);
                let kids = g.children(ring, seg).unwrap();
                let a = g.segment(kids[0].0, kids[0].1);
                let b = g.segment(kids[1].0, kids[1].1);
                assert!((a.arc().lo() - parent.arc().lo()).abs() < 1e-12);
                assert!((b.arc().hi() - parent.arc().hi()).abs() < 1e-12);
                assert!((a.arc().hi() - b.arc().lo()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn k_zero_grid_is_single_disk() {
        let g = PolarGrid2::new(0, 1.0);
        assert_eq!(g.cell_count(), 1);
        assert_eq!(g.cell_of(&PolarPoint::new(0.5, 1.0)), (0, 0));
        assert!((g.segment(0, 0).r_hi() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn last_segment_reaches_tau() {
        let g = PolarGrid2::new(3, 1.0);
        let last = g.segment(3, 7);
        assert_eq!(last.arc().hi(), TAU);
        // A point with angle just under TAU lands in it.
        let p = PolarPoint::new(0.9, TAU - 1e-9);
        assert_eq!(g.cell_of(&p), (3, 7));
        assert!(last.contains(&p));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_rejects_bad_ring() {
        let g = PolarGrid2::new(2, 1.0);
        let _ = g.segment(3, 0);
    }
}
