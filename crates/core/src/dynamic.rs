//! Dynamic group membership — the practical extension the paper's
//! conclusion asks for ("in practice, there is interest in a decentralized
//! version of the algorithm").
//!
//! [`DynamicOverlay`] maintains a degree-constrained multicast tree under
//! host joins and leaves:
//!
//! * **join** — the new host is placed in its polar-grid cell and attached
//!   to the best open host of that cell (falling back outward along the
//!   cell's ancestor chain, then to any open host), mirroring how a real
//!   rendezvous service would route a join request down the grid;
//! * **leave** — leaves detach directly; interior departures promote the
//!   closest orphan into the vacated attachment point and re-home the
//!   remaining orphans (their subtrees ride along intact);
//! * **amortized rebuild** — after enough churn the structure rebuilds
//!   itself with the full [`PolarGridBuilder`] (the grid parameters are
//!   only asymptotically right for the membership they were chosen for),
//!   so steady-state quality tracks the static algorithm's.
//!
//! The structure is a faithful *simulation* of the decentralized protocol:
//! all decisions use only cell-local information plus the ancestor chain,
//! which is exactly the state a distributed implementation would replicate.
//!
//! # Incremental maintenance
//!
//! Every quantity a membership event consults is cached and updated in
//! place, so the churn path never rescans the whole membership:
//!
//! * `delay` — the source-to-host delay is stored per host and refreshed
//!   along the affected subtree when a host is attached or re-parented
//!   (`delay(child) = delay(parent) + edge`), so candidate scoring is O(1)
//!   per candidate instead of an O(depth) parent walk;
//! * `cell_open` — each grid cell keeps the list of its *open* hosts
//!   (alive, out-degree below budget), so parent searches walk candidate
//!   sets instead of filtering all cell members;
//! * `source_children` — the live source out-degree is a counter, not an
//!   O(n) scan; it counts **attached** hosts only, so an orphan that is
//!   mid-re-homing no longer inflates the count;
//! * `slot_by_id` — host lookup is a hash-map hit, not a linear search;
//! * departed hosts have their parent pointer and child list cleared and
//!   their slot recycled through a free list, so no search or delay walk
//!   can ever traverse a dead slot and memory is bounded by the peak
//!   membership between rebuilds.
//!
//! [`DynamicOverlay::assert_invariants`] re-verifies all of this — plus
//! spanning, acyclicity, and the degree budget *including the source* —
//! from scratch; the churn fuzz suite runs it after every membership event.

use std::collections::HashMap;

use omt_geom::{HGrid, Point2, PolarPoint};
use omt_tree::{validate_parent_forest, MulticastTree, NodeId, ParentRef, TreeBuilder};

use crate::error::BuildError;
use crate::grid2::PolarGrid2;
use crate::polar_grid::PolarGridBuilder;

/// Identifier of a live host inside a [`DynamicOverlay`]. Stable across
/// joins/leaves of other hosts; invalidated when the host itself leaves.
/// Ids are never reused, so a stale id can never alias a newer host.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(u64);

#[derive(Clone, Debug)]
pub(crate) struct Host {
    pub(crate) position: Point2,
    /// Parent slot: `None` = the source (or detached, transiently inside
    /// `leave` while an orphan awaits re-homing). Slots share the arena's
    /// compact [`NodeId`] width, so the overlay's per-host footprint tracks
    /// the static builders'.
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    /// Cached source-to-host delay; refreshed along the subtree whenever
    /// the host is (re-)attached.
    pub(crate) delay: f64,
    /// Flat index of the host's current grid cell.
    pub(crate) cell: u32,
    pub(crate) alive: bool,
    /// Generation counter for id reuse protection.
    pub(crate) id: HostId,
}

/// Cell-granular write log feeding the sharded batch engine
/// (`crate::sharded`). When enabled, every mutation of *search-relevant*
/// state — an open-list change, or a cached-delay refresh of any host —
/// records the affected cell, and a full rebuild raises a flag. The merge
/// phase drains the log after each replayed event to decide which
/// speculative shard proposals are still provably valid. Disabled (the
/// default) it costs one predictable branch per mutation.
#[derive(Clone, Debug, Default)]
struct WriteLog {
    enabled: bool,
    /// Cells written since the last drain; may contain duplicates.
    cells: Vec<u32>,
    /// Whether a full rebuild ran since the last drain.
    rebuilt: bool,
}

/// Counters of parent-search work, kept in relaxed atomics because
/// searches are logically read-only (`&self`) and the overlay is shared
/// across threads during sharded speculation. `cells_scanned` counts
/// open-list consultations (one per cell whose open list was walked);
/// `cost_probes` counts attach-cost evaluations. Both run in scan mode
/// and index mode, so the two paths' work is directly comparable.
#[derive(Debug, Default)]
struct SearchProbes {
    cells_scanned: std::sync::atomic::AtomicU64,
    cost_probes: std::sync::atomic::AtomicU64,
}

impl Clone for SearchProbes {
    fn clone(&self) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        Self {
            cells_scanned: AtomicU64::new(self.cells_scanned.load(Ordering::Relaxed)),
            cost_probes: AtomicU64::new(self.cost_probes.load(Ordering::Relaxed)),
        }
    }
}

impl SearchProbes {
    #[inline]
    fn bump_cells(&self) {
        self.cells_scanned
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    #[inline]
    fn bump_costs(&self, by: u64) {
        self.cost_probes
            .fetch_add(by, std::sync::atomic::Ordering::Relaxed);
    }
}

/// A multicast tree that supports joins and leaves.
///
/// # Examples
///
/// ```
/// use omt_core::DynamicOverlay;
/// use omt_geom::Point2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6)?;
/// let a = overlay.join(Point2::new([1.0, 0.0]));
/// let b = overlay.join(Point2::new([0.5, 0.5]));
/// assert_eq!(overlay.len(), 2);
/// overlay.leave(a)?;
/// assert_eq!(overlay.len(), 1);
/// let tree = overlay.snapshot()?;
/// tree.validate(Some(6))?;
/// # let _ = b;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct DynamicOverlay {
    source: Point2,
    max_out_degree: u32,
    pub(crate) hosts: Vec<Host>,
    /// Raw id -> slot of each live host.
    slot_by_id: HashMap<u64, NodeId>,
    /// Recycled slots of departed hosts.
    free_slots: Vec<NodeId>,
    /// Slots of live hosts, bucketed by their current grid cell.
    cell_members: Vec<Vec<NodeId>>,
    /// Slots of *open* live hosts (out-degree below budget), per cell.
    pub(crate) cell_open: Vec<Vec<NodeId>>,
    /// The grid the members are bucketed against (rebuilt on churn).
    pub(crate) grid: Option<PolarGrid2>,
    live: usize,
    /// Number of live hosts attached directly to the source.
    source_children: u32,
    churn_since_rebuild: usize,
    next_id: u64,
    /// Write tracking for the sharded batch merge; off by default.
    write_log: WriteLog,
    /// Hierarchical capacity-summary index mirroring `cell_open` (`None`
    /// = plain scan mode). Enabled by `OMT_HGRID=1` or
    /// [`set_hgrid`](Self::set_hgrid); parent searches through it return
    /// bit-identical answers to the scans they replace.
    hgrid: Option<HGrid>,
    /// Parent-search work counters.
    probes: SearchProbes,
}

impl DynamicOverlay {
    /// Creates an empty overlay rooted at `source`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DegreeTooSmall`] for budgets below 2 and
    /// [`BuildError::NonFiniteSource`] for bad coordinates.
    pub fn new(source: Point2, max_out_degree: u32) -> Result<Self, BuildError> {
        if max_out_degree < 2 {
            return Err(BuildError::DegreeTooSmall {
                got: max_out_degree,
                min: 2,
            });
        }
        if !source.is_finite() {
            return Err(BuildError::NonFiniteSource);
        }
        let mut overlay = Self {
            source,
            max_out_degree,
            hosts: Vec::new(),
            slot_by_id: HashMap::new(),
            free_slots: Vec::new(),
            cell_members: vec![Vec::new()],
            cell_open: vec![Vec::new()],
            grid: None,
            live: 0,
            source_children: 0,
            churn_since_rebuild: 0,
            next_id: 0,
            write_log: WriteLog::default(),
            hgrid: None,
            probes: SearchProbes::default(),
        };
        if omt_geom::hgrid::env_enabled() {
            overlay.set_hgrid(true);
        }
        Ok(overlay)
    }

    /// Turns the hierarchical capacity-summary index on (building it from
    /// the current membership) or off. Every parent search is answered
    /// identically either way — the index only changes how much work the
    /// answer costs (see [`search_probes`](Self::search_probes)).
    pub fn set_hgrid(&mut self, on: bool) {
        self.hgrid = on.then(|| self.build_hgrid());
    }

    /// Whether the hierarchical capacity index is active.
    pub fn hgrid_enabled(&self) -> bool {
        self.hgrid.is_some()
    }

    /// The frozen index for the sharded engine's speculation phase.
    pub(crate) fn hgrid_ref(&self) -> Option<&HGrid> {
        self.hgrid.as_ref()
    }

    /// The parent-search work counters accumulated since the last
    /// [`reset_search_probes`](Self::reset_search_probes), as
    /// `(cells_scanned, cost_probes)`: open-list consultations and
    /// attach-cost evaluations.
    pub fn search_probes(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.probes.cells_scanned.load(Ordering::Relaxed),
            self.probes.cost_probes.load(Ordering::Relaxed),
        )
    }

    /// Zeroes the parent-search work counters.
    pub fn reset_search_probes(&self) {
        use std::sync::atomic::Ordering;
        self.probes.cells_scanned.store(0, Ordering::Relaxed);
        self.probes.cost_probes.store(0, Ordering::Relaxed);
    }

    /// Read-only parent search: the host a [`join`](Self::join) at
    /// `position` would attach to right now (`None` = the source).
    pub fn peek_parent(&self, position: &Point2) -> Option<HostId> {
        self.find_parent_for(position)
            .map(|s| self.hosts[s as usize].id)
    }

    /// Builds the capacity index from scratch against the current grid
    /// and open lists.
    fn build_hgrid(&self) -> HGrid {
        let (rings, ring_inner) = match &self.grid {
            None => (0u32, vec![0.0]),
            Some(grid) => {
                let k = grid.rings();
                let mut inner = Vec::with_capacity(k as usize + 1);
                inner.push(0.0);
                for ring in 1..=k {
                    inner.push(grid.circle_radius(ring - 1));
                }
                (k, inner)
            }
        };
        let classes = self.max_out_degree as usize;
        let mut hg = HGrid::new(rings, classes, &ring_inner);
        let mut counts = vec![0u32; classes];
        for cell in 0..self.cell_open.len() {
            counts.fill(0);
            let mut min_delay = f64::INFINITY;
            for &s in &self.cell_open[cell] {
                let h = &self.hosts[s as usize];
                counts[h.children.len()] += 1;
                min_delay = min_delay.min(h.delay);
            }
            // A fresh index is already all-empty; only occupied cells
            // need declaring.
            if counts.iter().any(|&c| c > 0) {
                hg.set_cell(cell, &counts, min_delay);
            }
        }
        hg
    }

    /// Re-declares one cell's census to the capacity index (call after
    /// any mutation of the cell's open list or of an open host's class or
    /// delay). No-op when the index is off.
    fn hg_sync_cell(&mut self, cell: usize) {
        if self.hgrid.is_none() {
            return;
        }
        let classes = self.max_out_degree as usize;
        let mut counts = vec![0u32; classes];
        let mut min_delay = f64::INFINITY;
        for &s in &self.cell_open[cell] {
            let h = &self.hosts[s as usize];
            counts[h.children.len()] += 1;
            min_delay = min_delay.min(h.delay);
        }
        self.hgrid
            .as_mut()
            .expect("checked above")
            .set_cell(cell, &counts, min_delay);
    }

    /// Rebuilds the capacity index (if on) after a grid change.
    fn refresh_hgrid(&mut self) {
        if self.hgrid.is_some() {
            self.hgrid = Some(self.build_hgrid());
        }
    }

    /// Turns batch write tracking on or off, clearing any logged state.
    pub(crate) fn set_write_tracking(&mut self, on: bool) {
        self.write_log.enabled = on;
        self.write_log.cells.clear();
        self.write_log.rebuilt = false;
    }

    /// Appends the cells written since the last drain to `into` and
    /// returns whether a rebuild ran since then (resetting the flag).
    pub(crate) fn drain_writes(&mut self, into: &mut Vec<u32>) -> bool {
        into.append(&mut self.write_log.cells);
        std::mem::take(&mut self.write_log.rebuilt)
    }

    /// Records that `cell`'s search-relevant state changed. The write
    /// points are exactly the mutations the capacity index must see, so
    /// the index sync piggybacks here (attach/detach additionally sync
    /// class shifts that leave the open list untouched).
    #[inline]
    fn note_cell_write(&mut self, cell: u32) {
        if self.write_log.enabled {
            self.write_log.cells.push(cell);
        }
        if self.hgrid.is_some() {
            self.hg_sync_cell(cell as usize);
        }
    }

    /// Number of live hosts.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no hosts are present.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The source position.
    pub fn source(&self) -> Point2 {
        self.source
    }

    /// The out-degree budget.
    pub fn max_out_degree(&self) -> u32 {
        self.max_out_degree
    }

    /// Position of a live host.
    pub fn position(&self, id: HostId) -> Option<Point2> {
        self.slot_of(id).map(|s| self.hosts[s].position)
    }

    pub(crate) fn slot_of(&self, id: HostId) -> Option<usize> {
        self.slot_by_id.get(&id.0).map(|&s| s as usize)
    }

    /// The current worst source-to-host delay.
    pub fn radius(&self) -> f64 {
        self.hosts
            .iter()
            .filter(|h| h.alive)
            .map(|h| h.delay)
            .fold(0.0, f64::max)
    }

    /// The grid cell of a position under the current grid (flat index).
    pub(crate) fn cell_of(&self, p: &Point2) -> usize {
        match &self.grid {
            None => 0,
            Some(grid) => {
                let polar = PolarPoint::from_cartesian(&(*p - self.source));
                let (ring, seg) = grid.cell_of(&polar);
                ((1u64 << ring) - 1 + seg) as usize
            }
        }
    }

    /// Cost of attaching a joiner at `position` under open host `s`.
    fn attach_cost(&self, s: u32, position: &Point2) -> f64 {
        let h = &self.hosts[s as usize];
        h.delay + h.position.distance(position)
    }

    /// Removes `slot` from its cell's open list (order-preserving, so tie
    /// handling stays deterministic).
    fn open_remove(&mut self, slot: u32) {
        let cell = self.hosts[slot as usize].cell;
        self.cell_open[cell as usize].retain(|&s| s != slot);
        self.note_cell_write(cell);
    }

    /// Adds `slot` back to its cell's open list.
    fn open_push(&mut self, slot: u32) {
        let cell = self.hosts[slot as usize].cell;
        debug_assert!(!self.cell_open[cell as usize].contains(&slot));
        self.cell_open[cell as usize].push(slot);
        self.note_cell_write(cell);
    }

    /// Recomputes the cached delay of `root` from its parent and propagates
    /// through the whole subtree below it.
    fn refresh_subtree_delays(&mut self, root: u32) {
        let r = root as usize;
        self.hosts[r].delay = match self.hosts[r].parent {
            None => self.hosts[r].position.distance(&self.source),
            Some(p) => {
                let p = p as usize;
                self.hosts[p].delay + self.hosts[r].position.distance(&self.hosts[p].position)
            }
        };
        let root_cell = self.hosts[r].cell;
        self.note_cell_write(root_cell);
        let mut refreshed = 1u64;
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            let u = u as usize;
            for i in 0..self.hosts[u].children.len() {
                let c = self.hosts[u].children[i] as usize;
                let d =
                    self.hosts[u].delay + self.hosts[u].position.distance(&self.hosts[c].position);
                self.hosts[c].delay = d;
                let c_cell = self.hosts[c].cell;
                self.note_cell_write(c_cell);
                refreshed += 1;
                stack.push(c as u32);
            }
        }
        omt_obs::obs_observe!("dynamic/refresh_size", refreshed);
    }

    /// Attaches a currently-detached host under `parent` (`None` = the
    /// source), maintaining the child list, the source out-degree counter,
    /// the open-host index, and the subtree's cached delays.
    fn attach(&mut self, child: u32, parent: Option<u32>) {
        debug_assert!(self.hosts[child as usize].parent.is_none());
        self.hosts[child as usize].parent = parent;
        match parent {
            None => {
                self.source_children += 1;
                debug_assert!(
                    self.source_children <= self.max_out_degree,
                    "source out-degree budget exceeded"
                );
            }
            Some(p) => {
                let pu = p as usize;
                debug_assert!(self.hosts[pu].alive, "attaching under a dead host");
                debug_assert!(
                    (self.hosts[pu].children.len() as u32) < self.max_out_degree,
                    "attaching under a full host"
                );
                self.hosts[pu].children.push(child);
                if self.hosts[pu].children.len() as u32 == self.max_out_degree {
                    self.open_remove(p);
                } else if self.hgrid.is_some() {
                    // Still open, but its degree class changed; the write
                    // log does not need to hear about this (the open list
                    // is untouched), the index does.
                    let cell = self.hosts[pu].cell;
                    self.hg_sync_cell(cell as usize);
                }
            }
        }
        self.refresh_subtree_delays(child);
    }

    /// Detaches a host from its parent, clearing its parent pointer and
    /// reversing everything [`attach`](Self::attach) maintains.
    fn detach(&mut self, slot: u32) {
        match self.hosts[slot as usize].parent.take() {
            None => self.source_children -= 1,
            Some(p) => {
                let pu = p as usize;
                let was_full = self.hosts[pu].children.len() as u32 == self.max_out_degree;
                self.hosts[pu].children.retain(|&c| c != slot);
                if was_full {
                    self.open_push(p);
                } else if self.hgrid.is_some() {
                    let cell = self.hosts[pu].cell;
                    self.hg_sync_cell(cell as usize);
                }
            }
        }
    }

    /// Adds a host and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the position is not finite (joins are a hot path; callers
    /// own input hygiene, unlike the batch builders which return errors).
    pub fn join(&mut self, position: Point2) -> HostId {
        assert!(position.is_finite(), "host position must be finite");
        let _join_span = omt_obs::obs_span!("dynamic/join");
        // Choose a parent: best open host in the cell, walking up the
        // ancestor-cell chain, else the source if open, else the best open
        // host globally (exists whenever the tree is nonempty and the
        // budget is ≥ 2: leaves are open).
        let parent = self.find_parent_for(&position);
        self.insert_host(position, parent)
    }

    /// Adds a host under an already-chosen parent (`None` = the source).
    /// The shared tail of [`join`](Self::join) and the sharded fast path:
    /// the caller owns parent selection, this owns all bookkeeping.
    pub(crate) fn insert_host(&mut self, position: Point2, parent: Option<u32>) -> HostId {
        omt_obs::obs_count!("dynamic/joins");
        let id = HostId(self.next_id);
        self.next_id += 1;
        let cell = self.cell_of(&position) as u32;
        let host = Host {
            position,
            parent: None,
            children: Vec::new(),
            delay: 0.0,
            cell,
            alive: true,
            id,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.hosts[s as usize] = host;
                s
            }
            None => {
                self.hosts.push(host);
                (self.hosts.len() - 1) as u32
            }
        };
        self.slot_by_id.insert(id.0, slot);
        self.cell_members[cell as usize].push(slot);
        self.cell_open[cell as usize].push(slot);
        self.note_cell_write(cell);
        self.attach(slot, parent);
        self.live += 1;
        self.churn_since_rebuild += 1;
        self.maybe_rebuild();
        id
    }

    /// Chooses the parent slot for a joining position (`None` = source).
    fn find_parent_for(&self, position: &Point2) -> Option<u32> {
        let source_open = self.source_children < self.max_out_degree;
        if let Some(p) = self.chain_candidate(position, None) {
            return Some(p);
        }
        if source_open {
            return None;
        }
        // Global fallback: any open host, preferring small delay.
        let best = self.best_open_excluding(position, None);
        assert!(best.is_some(), "a degree >= 2 tree always has an open host");
        best
    }

    /// The cheapest eligible open host along the ancestor-cell chain of
    /// `position`: its own cell's open hosts first, then each ancestor
    /// cell's, stopping at the first cell that yields a candidate. This is
    /// the cell-local state a decentralized implementation replicates.
    fn chain_candidate(
        &self,
        position: &Point2,
        banned: Option<&std::collections::HashSet<u32>>,
    ) -> Option<u32> {
        let mut cell = self.cell_of(position);
        let mut hops = 0u64;
        loop {
            // Known-empty cells are skipped without touching their open
            // list (or the cost of walking it): the index's direct count
            // is exact, so this can never change the answer — a zero
            // count means there is nothing to scan, banned or not.
            let known_empty = self
                .hgrid
                .as_ref()
                .is_some_and(|hg| hg.cell_total(cell) == 0);
            let best = if known_empty {
                None
            } else {
                self.probes.bump_cells();
                self.cell_open[cell]
                    .iter()
                    .copied()
                    .filter(|s| !banned.is_some_and(|set| set.contains(s)))
                    .min_by(|&a, &b| {
                        self.probes.bump_costs(2);
                        self.attach_cost(a, position)
                            .total_cmp(&self.attach_cost(b, position))
                    })
            };
            if best.is_some() {
                omt_obs::obs_observe!("dynamic/chain_len", hops);
                return best;
            }
            if cell == 0 {
                omt_obs::obs_observe!("dynamic/chain_len", hops);
                return None;
            }
            hops += 1;
            // Parent cell: flat index arithmetic of the binary layout.
            let (ring, seg) = unflatten(cell);
            cell = if ring <= 1 {
                0
            } else {
                ((1u64 << (ring - 1)) - 1 + seg / 2) as usize
            };
        }
    }

    /// The cheapest open host for `position` over the whole open index,
    /// skipping hosts in `banned` (the flat set of a subtree being
    /// re-homed) when given. Deterministic: first minimum wins — i.e. the
    /// winner is the lexicographic minimum of `(cost, cell, list
    /// position)`, which is exactly the tie rule the capacity-index
    /// search preserves, so both paths return the same host bit for bit.
    fn best_open_excluding(
        &self,
        position: &Point2,
        banned: Option<&std::collections::HashSet<u32>>,
    ) -> Option<u32> {
        if let Some(hg) = &self.hgrid {
            // Bound-pruned best-first search. The per-cell closure
            // reproduces the scan's in-cell rule (earliest strict
            // minimum); the index handles the cross-cell `(cost, cell)`
            // tie rule and prunes only subtrees whose guarded lower
            // bound *strictly* exceeds the incumbent.
            let q = *position - self.source;
            return hg
                .best_open_parent(
                    &q,
                    self.max_out_degree as usize,
                    |cell| self.scan_cell_for(cell, position, banned),
                    None,
                )
                .map(|(_, _, s)| s);
        }
        let mut best: Option<(f64, u32)> = None;
        for cell in 0..self.cell_open.len() {
            if let Some((cost, s)) = self.scan_cell_for(cell, position, banned) {
                if best.is_none_or(|(bc, _)| cost < bc) {
                    best = Some((cost, s));
                }
            }
        }
        best.map(|(_, s)| s)
    }

    /// Scans one cell's open list for the cheapest eligible host
    /// (earliest strict minimum), counting the work.
    fn scan_cell_for(
        &self,
        cell: usize,
        position: &Point2,
        banned: Option<&std::collections::HashSet<u32>>,
    ) -> Option<(f64, u32)> {
        self.probes.bump_cells();
        let mut best: Option<(f64, u32)> = None;
        for &s in &self.cell_open[cell] {
            if banned.is_some_and(|set| set.contains(&s)) {
                continue;
            }
            self.probes.bump_costs(1);
            let cost = self.attach_cost(s, position);
            if best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, s));
            }
        }
        best
    }

    /// Removes a host.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownHost`] if the id was never issued by
    /// this overlay or the host has already departed.
    pub fn leave(&mut self, id: HostId) -> Result<(), BuildError> {
        let Some(slot) = self.slot_by_id.remove(&id.0) else {
            return Err(BuildError::UnknownHost { id: id.0 });
        };
        let _leave_span = omt_obs::obs_span!("dynamic/leave");
        omt_obs::obs_count!("dynamic/leaves");
        let su = slot as usize;
        debug_assert!(self.hosts[su].alive && self.hosts[su].id == id);
        let vacated_parent = self.hosts[su].parent;
        self.detach(slot);
        // Remove the departing host from every index before any re-homing
        // decision, so it can never be selected as a parent.
        if (self.hosts[su].children.len() as u32) < self.max_out_degree {
            self.open_remove(slot);
        }
        let cell = self.hosts[su].cell as usize;
        self.cell_members[cell].retain(|&s| s != slot);
        let children = std::mem::take(&mut self.hosts[su].children);
        self.hosts[su].alive = false;
        self.hosts[su].delay = 0.0;
        self.live -= 1;
        if !children.is_empty() {
            // Promote the orphan closest to the departed host into the
            // vacated attachment point (its subtree rides along); the
            // remaining orphans re-join through the normal search, each
            // banned from its own subtree.
            let departed_pos = self.hosts[su].position;
            let promoted = *children
                .iter()
                .min_by(|&&a, &&b| {
                    let da = self.hosts[a as usize].position.distance(&departed_pos);
                    let db = self.hosts[b as usize].position.distance(&departed_pos);
                    da.total_cmp(&db)
                })
                .expect("nonempty");
            // Detach every orphan up front: no orphan may keep a parent
            // pointer into the dead slot. Detached orphans are not source
            // children — the source out-degree counter deliberately counts
            // attached hosts only. Their cached delays (and their
            // subtrees') still describe the pre-departure tree, which is
            // exactly the score the re-homing search should use for them
            // as candidates.
            for &c in &children {
                self.hosts[c as usize].parent = None;
            }
            self.attach(promoted, vacated_parent);
            for &c in &children {
                if c == promoted {
                    continue;
                }
                let pos = self.hosts[c as usize].position;
                let parent = self.find_parent_for_excluding(&pos, c);
                self.attach(c, parent);
            }
        }
        self.free_slots.push(slot);
        self.churn_since_rebuild += 1;
        self.maybe_rebuild();
        Ok(())
    }

    /// Parent search that refuses to attach inside the subtree of `banned`
    /// (which is being re-homed — attaching inside it would create a
    /// cycle). Candidates come from the same ancestor-cell chain the join
    /// path walks (the pre-change code scanned every live host here, which
    /// both made interior leaves O(n·depth) and consulted global state a
    /// decentralized node would not have), with a global scan only as the
    /// last-resort fallback. Returns `None` (= attach to the source) only
    /// when the source has spare out-degree: the previous implementation
    /// silently fell back to the source when no open candidate survived
    /// the subtree filter, which would break the degree cap whenever the
    /// source was already full.
    fn find_parent_for_excluding(&self, position: &Point2, banned: u32) -> Option<u32> {
        // Flatten the banned subtree once so each candidate check is O(1).
        let mut banned_set = std::collections::HashSet::new();
        let mut stack = vec![banned];
        while let Some(u) = stack.pop() {
            if banned_set.insert(u) {
                stack.extend(self.hosts[u as usize].children.iter().copied());
            }
        }
        let source_open = self.source_children < self.max_out_degree;
        match self
            .chain_candidate(position, Some(&banned_set))
            .or_else(|| self.best_open_excluding(position, Some(&banned_set)))
        {
            Some(s) => {
                if source_open {
                    let direct = self.source.distance(position);
                    let via = self.attach_cost(s, position);
                    if direct <= via {
                        return None;
                    }
                }
                Some(s)
            }
            None => {
                // No open host outside the orphan's own subtree. Every
                // host outside that subtree descends from a source child,
                // and a finite forest of live hosts always contains an
                // open leaf — so this can only be reached when the source
                // has no children at all, and the source then has room by
                // construction. Enforce that instead of silently
                // over-attaching a full source.
                assert!(
                    source_open,
                    "no open host outside the re-homed subtree and the source is full; \
                     the overlay degree invariant is broken"
                );
                None
            }
        }
    }

    /// Rebuilds with the full static algorithm when churn since the last
    /// rebuild exceeds half the membership.
    fn maybe_rebuild(&mut self) {
        if self.churn_since_rebuild * 2 <= self.live.max(8) {
            return;
        }
        self.rebuild();
    }

    /// Live slots sorted by id — i.e. in join order (ids are monotone and
    /// never reused, while slots are recycled).
    fn live_slots_in_join_order(&self) -> Vec<u32> {
        let mut live_slots: Vec<u32> = (0..self.hosts.len() as u32)
            .filter(|&s| self.hosts[s as usize].alive)
            .collect();
        live_slots.sort_by_key(|&s| self.hosts[s as usize].id);
        live_slots
    }

    /// Forces a full rebuild with [`PolarGridBuilder`].
    pub fn rebuild(&mut self) {
        let _rebuild_span = omt_obs::obs_span!("dynamic/rebuild");
        omt_obs::obs_count!("dynamic/rebuilds");
        if self.write_log.enabled {
            self.write_log.rebuilt = true;
        }
        self.churn_since_rebuild = 0;
        let live_slots = self.live_slots_in_join_order();
        let positions: Vec<Point2> = live_slots
            .iter()
            .map(|&s| self.hosts[s as usize].position)
            .collect();
        if positions.is_empty() {
            self.hosts.clear();
            self.slot_by_id.clear();
            self.free_slots.clear();
            self.cell_members = vec![Vec::new()];
            self.cell_open = vec![Vec::new()];
            self.grid = None;
            self.source_children = 0;
            self.refresh_hgrid();
            return;
        }
        let (tree, report) = PolarGridBuilder::new()
            .max_out_degree(self.max_out_degree)
            .build_with_report(self.source, &positions)
            .expect("live positions are finite");
        // Compact: new slot i corresponds to live_slots[i] (join order).
        let mut new_hosts: Vec<Host> = Vec::with_capacity(positions.len());
        for (i, &old) in live_slots.iter().enumerate() {
            new_hosts.push(Host {
                position: positions[i],
                parent: match tree.parent(i) {
                    ParentRef::Source => None,
                    ParentRef::Node(p) => Some(p as u32),
                },
                children: tree.children(i).to_vec(),
                delay: tree.depth(i),
                cell: 0, // assigned below once the new grid exists
                alive: true,
                id: self.hosts[old as usize].id,
            });
        }
        self.hosts = new_hosts;
        self.slot_by_id = self
            .hosts
            .iter()
            .enumerate()
            .map(|(s, h)| (h.id.0, s as u32))
            .collect();
        self.free_slots.clear();
        self.source_children = tree.source_out_degree();
        let grid = PolarGrid2::new(report.rings, {
            let rho = positions
                .iter()
                .map(|p| p.distance(&self.source))
                .fold(0.0f64, f64::max);
            if rho > 0.0 {
                rho * (1.0 + 1e-9)
            } else {
                1.0
            }
        });
        let cells = ((1u64 << (report.rings + 1)) - 1) as usize;
        let mut cell_members = vec![Vec::new(); cells];
        let mut cell_open = vec![Vec::new(); cells];
        let source = self.source;
        let max = self.max_out_degree;
        for (slot, host) in self.hosts.iter_mut().enumerate() {
            let polar = PolarPoint::from_cartesian(&(host.position - source));
            let (ring, seg) = grid.cell_of(&polar);
            let cell = ((1u64 << ring) - 1 + seg) as usize;
            host.cell = cell as u32;
            cell_members[cell].push(slot as u32);
            if (host.children.len() as u32) < max {
                cell_open[cell].push(slot as u32);
            }
        }
        self.grid = Some(grid);
        self.cell_members = cell_members;
        self.cell_open = cell_open;
        self.refresh_hgrid();
    }

    /// Materializes the current membership as an immutable
    /// [`MulticastTree`] (host order = join order of live hosts).
    ///
    /// # Errors
    ///
    /// Never fails for a consistent overlay; an [`BuildError::Internal`]
    /// would indicate a bug in the maintenance logic.
    pub fn snapshot(&self) -> Result<MulticastTree<2>, BuildError> {
        let live_slots = self.live_slots_in_join_order();
        let mut slot_to_new = vec![u32::MAX; self.hosts.len()];
        for (new, &old) in live_slots.iter().enumerate() {
            slot_to_new[old as usize] = new as u32;
        }
        let positions: Vec<Point2> = live_slots
            .iter()
            .map(|&s| self.hosts[s as usize].position)
            .collect();
        let mut builder =
            TreeBuilder::new(self.source, positions).max_out_degree(self.max_out_degree);
        // Attach top-down via BFS from the source children.
        let mut queue: std::collections::VecDeque<u32> = live_slots
            .iter()
            .copied()
            .filter(|&s| self.hosts[s as usize].parent.is_none())
            .collect();
        while let Some(slot) = queue.pop_front() {
            let su = slot as usize;
            let new = slot_to_new[su] as usize;
            match self.hosts[su].parent {
                None => builder.attach_to_source(new)?,
                Some(p) => builder.attach(new, slot_to_new[p as usize] as usize)?,
            }
            for &c in &self.hosts[su].children {
                queue.push_back(c);
            }
        }
        Ok(builder.finish()?)
    }

    /// Re-verifies every maintenance invariant from scratch, panicking on
    /// the first violation. Intended for fuzzing and tests (the churn fuzz
    /// suite runs this after **every** membership event); O(n + cells).
    ///
    /// Checked: alive/dead bookkeeping (id map, free list, cleared dead
    /// slots), parent/child mutual consistency, the source out-degree
    /// counter, spanning + acyclicity + the degree budget including the
    /// source (via [`validate_parent_forest`]), cached delays, and the
    /// exactness of the cell-membership and open-host indexes.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn assert_invariants(&self) {
        let n = self.hosts.len();
        let max = self.max_out_degree;
        let mut alive_count = 0usize;
        for (s, h) in self.hosts.iter().enumerate() {
            if !h.alive {
                assert!(
                    h.parent.is_none() && h.children.is_empty(),
                    "dead slot {s} keeps stale topology"
                );
                continue;
            }
            alive_count += 1;
            assert_eq!(
                self.slot_by_id.get(&h.id.0),
                Some(&(s as u32)),
                "live host in slot {s} missing from the id map"
            );
            if let Some(p) = h.parent {
                assert!(
                    (p as usize) < n && self.hosts[p as usize].alive,
                    "host {s} has a dead or dangling parent {p}"
                );
            }
            assert!(
                h.children.len() as u32 <= max,
                "host {s} exceeds the out-degree budget: {} > {max}",
                h.children.len()
            );
            for &c in &h.children {
                assert!((c as usize) < n, "host {s} has dangling child {c}");
                let ch = &self.hosts[c as usize];
                assert!(ch.alive, "host {s} has dead child {c}");
                assert_eq!(
                    ch.parent,
                    Some(s as u32),
                    "child {c} does not point back to parent {s}"
                );
            }
            let expected = match h.parent {
                None => h.position.distance(&self.source),
                Some(p) => {
                    let p = p as usize;
                    self.hosts[p].delay + h.position.distance(&self.hosts[p].position)
                }
            };
            assert!(
                (h.delay - expected).abs() <= 1e-9 * (1.0 + expected.abs()),
                "host {s} cached delay {} disagrees with recomputed {expected}",
                h.delay
            );
            assert_eq!(
                h.cell as usize,
                self.cell_of(&h.position),
                "host {s} is bucketed in a stale cell"
            );
        }
        assert_eq!(alive_count, self.live, "live counter is stale");
        assert_eq!(self.slot_by_id.len(), self.live, "id map size mismatch");
        let mut freed = vec![false; n];
        for &s in &self.free_slots {
            let su = s as usize;
            assert!(
                su < n && !self.hosts[su].alive,
                "free list holds live slot {s}"
            );
            assert!(!freed[su], "slot {s} is on the free list twice");
            freed[su] = true;
        }
        assert_eq!(
            self.free_slots.len(),
            n - self.live,
            "every dead slot must be recyclable exactly once"
        );
        let source_children = self
            .hosts
            .iter()
            .filter(|h| h.alive && h.parent.is_none())
            .count();
        assert_eq!(
            source_children as u32, self.source_children,
            "source out-degree counter is stale"
        );
        assert!(
            self.source_children <= max,
            "source exceeds the out-degree budget: {} > {max}",
            self.source_children
        );
        // Spanning + acyclicity + degree (including the source) on the
        // compacted live topology, via the tree crate's validator.
        let live_slots = self.live_slots_in_join_order();
        let mut slot_to_new = vec![usize::MAX; n];
        for (new, &old) in live_slots.iter().enumerate() {
            slot_to_new[old as usize] = new;
        }
        let parents: Vec<Option<usize>> = live_slots
            .iter()
            .map(|&s| {
                self.hosts[s as usize]
                    .parent
                    .map(|p| slot_to_new[p as usize])
            })
            .collect();
        validate_parent_forest(&parents, Some(max)).expect("overlay topology invariant violated");
        // The cell indexes partition the membership exactly.
        let cells = self.grid.as_ref().map_or(1, PolarGrid2::cell_count);
        assert_eq!(self.cell_members.len(), cells, "cell index has wrong size");
        assert_eq!(self.cell_open.len(), cells, "open index has wrong size");
        let mut in_members = vec![false; n];
        let mut member_total = 0usize;
        for (cell, list) in self.cell_members.iter().enumerate() {
            for &s in list {
                let su = s as usize;
                let h = &self.hosts[su];
                assert!(h.alive, "cell {cell} lists dead slot {s}");
                assert_eq!(
                    h.cell as usize, cell,
                    "slot {s} listed in foreign cell {cell}"
                );
                assert!(!in_members[su], "slot {s} listed in cells twice");
                in_members[su] = true;
                member_total += 1;
            }
        }
        assert_eq!(
            member_total, self.live,
            "cell index does not cover the membership"
        );
        let mut in_open = vec![false; n];
        let mut open_total = 0usize;
        for (cell, list) in self.cell_open.iter().enumerate() {
            for &s in list {
                let su = s as usize;
                let h = &self.hosts[su];
                assert!(h.alive, "open index {cell} lists dead slot {s}");
                assert!(
                    (h.children.len() as u32) < max,
                    "open index lists full host {s}"
                );
                assert_eq!(
                    h.cell as usize, cell,
                    "open slot {s} in foreign cell {cell}"
                );
                assert!(!in_open[su], "slot {s} in the open index twice");
                in_open[su] = true;
                open_total += 1;
            }
        }
        let open_expected = self
            .hosts
            .iter()
            .filter(|h| h.alive && (h.children.len() as u32) < max)
            .count();
        assert_eq!(
            open_total, open_expected,
            "open index does not cover all open hosts"
        );
        // The incrementally-maintained capacity index must agree with a
        // from-scratch rebuild on every summary — counts and delay
        // minima, bit for bit.
        if let Some(hg) = &self.hgrid {
            hg.assert_same(&self.build_hgrid());
        }
    }
}

/// Inverse of the flat cell index: `(ring, seg)`.
pub(crate) fn unflatten(idx: usize) -> (u32, u64) {
    let v = idx as u64 + 1;
    let ring = 63 - v.leading_zeros();
    (ring, v - (1u64 << ring))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Disk, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::{RngExt, SeedableRng};

    #[test]
    fn unflatten_inverts_layout() {
        for ring in 0..8u32 {
            for seg in 0..(1u64 << ring) {
                let idx = ((1u64 << ring) - 1 + seg) as usize;
                assert_eq!(unflatten(idx), (ring, seg));
            }
        }
    }

    #[test]
    fn joins_build_valid_trees() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6).unwrap();
        for p in Disk::unit().sample_n(&mut rng, 500) {
            overlay.join(p);
        }
        assert_eq!(overlay.len(), 500);
        overlay.assert_invariants();
        let tree = overlay.snapshot().unwrap();
        assert_eq!(tree.len(), 500);
        tree.validate(Some(6)).unwrap();
    }

    #[test]
    fn leaves_remove_and_rewire() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 3).unwrap();
        let ids: Vec<HostId> = Disk::unit()
            .sample_n(&mut rng, 200)
            .into_iter()
            .map(|p| overlay.join(p))
            .collect();
        // Remove every third host, including interior ones.
        for id in ids.iter().step_by(3) {
            overlay.leave(*id).unwrap();
        }
        assert_eq!(overlay.len(), 200 - 67);
        overlay.assert_invariants();
        let tree = overlay.snapshot().unwrap();
        tree.validate(Some(3)).unwrap();
        // Departed ids are gone, with the dedicated error.
        assert!(overlay.position(ids[0]).is_none());
        assert!(matches!(
            overlay.leave(ids[0]),
            Err(BuildError::UnknownHost { .. })
        ));
        // Survivors remain addressable.
        assert!(overlay.position(ids[1]).is_some());
    }

    #[test]
    fn churn_quality_tracks_static_rebuild() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6).unwrap();
        let mut live: Vec<HostId> = Vec::new();
        for _ in 0..1500 {
            if live.len() < 50 || rng.random::<f64>() < 0.6 {
                let p = {
                    let r = rng.random::<f64>().sqrt();
                    let t = rng.random_range(0.0..core::f64::consts::TAU);
                    Point2::new([r * t.cos(), r * t.sin()])
                };
                live.push(overlay.join(p));
            } else {
                let i = rng.random_range(0..live.len());
                let id = live.swap_remove(i);
                overlay.leave(id).unwrap();
            }
        }
        let churned = overlay.radius();
        let snapshot = overlay.snapshot().unwrap();
        snapshot.validate(Some(6)).unwrap();
        // Compare against a fresh static build over the same membership.
        let fresh = PolarGridBuilder::new()
            .build(Point2::ORIGIN, snapshot.points())
            .unwrap();
        assert!(
            churned <= fresh.radius() * 2.5 + 0.2,
            "churned {churned} vs fresh {}",
            fresh.radius()
        );
    }

    #[test]
    fn degree_budget_never_violated_under_churn() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 2).unwrap();
        let mut live = Vec::new();
        for step in 0..600 {
            if live.is_empty() || step % 3 != 0 {
                live.push(overlay.join(Point2::new([
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                ])));
            } else {
                let i = rng.random_range(0..live.len());
                overlay.leave(live.swap_remove(i)).unwrap();
            }
            overlay.assert_invariants();
            if step % 97 == 0 {
                overlay.snapshot().unwrap().validate(Some(2)).unwrap();
            }
        }
        overlay.snapshot().unwrap().validate(Some(2)).unwrap();
    }

    /// Regression for the degree-cap hole in the pre-caching `leave`: an
    /// interior departure while the source is at its out-degree budget
    /// must re-home every orphan without over-attaching the source (the
    /// old `find_parent_for_excluding` fell back to "attach to source"
    /// without any capacity check).
    #[test]
    fn interior_leave_with_full_source_respects_cap() {
        let mut exercised = 0;
        for seed in 0..50u64 {
            let mut rng = SmallRng::seed_from_u64(1000 + seed);
            let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 2).unwrap();
            let mut live = Vec::new();
            for _ in 0..120 {
                if live.len() < 6 || rng.random::<f64>() < 0.7 {
                    live.push(overlay.join(Point2::new([
                        rng.random_range(-1.0..1.0),
                        rng.random_range(-1.0..1.0),
                    ])));
                } else {
                    let i = rng.random_range(0..live.len());
                    overlay.leave(live.swap_remove(i)).unwrap();
                }
            }
            if overlay.source_children < overlay.max_out_degree {
                continue;
            }
            // Pick an interior host (non-source-child with children) and
            // remove it while the source is full.
            let interior = overlay
                .hosts
                .iter()
                .find(|h| h.alive && h.parent.is_some() && h.children.len() >= 2);
            let Some(interior) = interior else { continue };
            let id = interior.id;
            live.retain(|&l| l != id);
            overlay.leave(id).unwrap();
            exercised += 1;
            overlay.assert_invariants();
            overlay.snapshot().unwrap().validate(Some(2)).unwrap();
        }
        assert!(
            exercised >= 5,
            "workload failed to produce interior leaves under a full source ({exercised})"
        );
    }

    /// Departed slots are fully cleared and recycled: no index, parent
    /// pointer, or child list may ever reference a dead slot, and the slot
    /// pool stays bounded by the peak membership between rebuilds.
    #[test]
    fn dead_slots_are_cleared_and_recycled() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 3).unwrap();
        let mut live = Vec::new();
        let mut peak_pool = 0;
        for step in 0..1500 {
            if live.len() < 20 || step % 2 == 0 {
                live.push(overlay.join(Point2::new([
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                ])));
            } else {
                let i = rng.random_range(0..live.len());
                overlay.leave(live.swap_remove(i)).unwrap();
            }
            // assert_invariants covers: dead slots have no parent/children,
            // no live child list or index references a dead slot.
            overlay.assert_invariants();
            peak_pool = peak_pool.max(overlay.hosts.len());
        }
        // Slot recycling keeps the pool at the peak live size (plus the
        // at-most-one slot freed between reuse opportunities), instead of
        // growing with the total number of joins (~1000 here).
        assert!(
            peak_pool <= live.len() + overlay.free_slots.len() + 1,
            "slot pool grew past the live membership: {peak_pool} slots for {} live",
            live.len()
        );
        // Ids are never recycled even though slots are.
        let stale = live[0];
        overlay.leave(stale).unwrap();
        let fresh = overlay.join(Point2::new([0.1, 0.2]));
        assert_ne!(stale, fresh);
        assert!(overlay.position(stale).is_none());
        assert!(matches!(
            overlay.leave(stale),
            Err(BuildError::UnknownHost { .. })
        ));
    }

    #[test]
    fn empty_overlay_behaviour() {
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 4).unwrap();
        assert!(overlay.is_empty());
        assert_eq!(overlay.radius(), 0.0);
        let t = overlay.snapshot().unwrap();
        assert!(t.is_empty());
        // Drain to empty and come back.
        let id = overlay.join(Point2::new([1.0, 0.0]));
        overlay.leave(id).unwrap();
        assert!(overlay.is_empty());
        overlay.assert_invariants();
        let id2 = overlay.join(Point2::new([0.0, 1.0]));
        assert_eq!(overlay.len(), 1);
        assert!(overlay.position(id2).is_some());
    }

    #[test]
    fn constructor_validation() {
        assert!(matches!(
            DynamicOverlay::new(Point2::ORIGIN, 1),
            Err(BuildError::DegreeTooSmall { .. })
        ));
        assert!(matches!(
            DynamicOverlay::new(Point2::new([f64::NAN, 0.0]), 4),
            Err(BuildError::NonFiniteSource)
        ));
    }

    #[test]
    fn explicit_rebuild_preserves_validity_and_bounds() {
        // Points on the unit circle are adversarial for an area-based grid
        // (everything lands in the outermost ring, forcing k = 1), so the
        // rebuild is not guaranteed to beat the greedy join path — but it
        // must stay valid and within the analytic bound of the static
        // algorithm.
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 2).unwrap();
        for i in 0..100 {
            let t = i as f64 * 0.7;
            overlay.join(Point2::new([t.cos(), t.sin()]));
        }
        overlay.rebuild();
        overlay.assert_invariants();
        let snapshot = overlay.snapshot().unwrap();
        snapshot.validate(Some(2)).unwrap();
        let (_, report) = PolarGridBuilder::new()
            .max_out_degree(2)
            .build_with_report(Point2::ORIGIN, snapshot.points())
            .unwrap();
        assert!(overlay.radius() <= report.bound + 1e-9);
        // On a well-behaved area distribution the rebuild must not lose to
        // the incremental tree by much.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6).unwrap();
        for p in Disk::unit().sample_n(&mut rng, 800) {
            overlay.join(p);
        }
        let before = overlay.radius();
        overlay.rebuild();
        assert!(overlay.radius() <= before * 1.25 + 0.1);
        overlay.snapshot().unwrap().validate(Some(6)).unwrap();
    }

    /// The cached radius agrees with the snapshot's from-scratch radius.
    #[test]
    fn cached_radius_matches_snapshot() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 4).unwrap();
        let mut live = Vec::new();
        for step in 0..400 {
            if live.len() < 10 || step % 3 != 0 {
                live.push(overlay.join(Point2::new([
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                ])));
            } else {
                let i = rng.random_range(0..live.len());
                overlay.leave(live.swap_remove(i)).unwrap();
            }
        }
        let snap = overlay.snapshot().unwrap();
        assert!(
            (overlay.radius() - snap.radius()).abs() <= 1e-9 * (1.0 + snap.radius()),
            "cached radius {} vs snapshot {}",
            overlay.radius(),
            snap.radius()
        );
    }
}
