//! Dynamic group membership — the practical extension the paper's
//! conclusion asks for ("in practice, there is interest in a decentralized
//! version of the algorithm").
//!
//! [`DynamicOverlay`] maintains a degree-constrained multicast tree under
//! host joins and leaves:
//!
//! * **join** — the new host is placed in its polar-grid cell and attached
//!   to the best open host of that cell (falling back outward along the
//!   cell's ancestor chain, then to any open host), mirroring how a real
//!   rendezvous service would route a join request down the grid;
//! * **leave** — leaves detach directly; interior departures promote the
//!   shallowest descendant into the vacated attachment point and re-parent
//!   the orphaned children under it;
//! * **amortized rebuild** — after enough churn the structure rebuilds
//!   itself with the full [`PolarGridBuilder`] (the grid parameters are
//!   only asymptotically right for the membership they were chosen for),
//!   so steady-state quality tracks the static algorithm's.
//!
//! The structure is a faithful *simulation* of the decentralized protocol:
//! all decisions use only cell-local information plus the ancestor chain,
//! which is exactly the state a distributed implementation would replicate.

use omt_geom::{Point2, PolarPoint};
use omt_tree::{MulticastTree, ParentRef, TreeBuilder};

use crate::error::BuildError;
use crate::grid2::PolarGrid2;
use crate::polar_grid::PolarGridBuilder;

/// Identifier of a live host inside a [`DynamicOverlay`]. Stable across
/// joins/leaves of other hosts; invalidated when the host itself leaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(u64);

#[derive(Clone, Debug)]
struct Host {
    position: Point2,
    /// Parent slot: `None` = the source.
    parent: Option<u64>,
    children: Vec<u64>,
    alive: bool,
    /// Generation counter for id reuse protection.
    id: HostId,
}

/// A multicast tree that supports joins and leaves.
///
/// # Examples
///
/// ```
/// use omt_core::DynamicOverlay;
/// use omt_geom::Point2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6)?;
/// let a = overlay.join(Point2::new([1.0, 0.0]));
/// let b = overlay.join(Point2::new([0.5, 0.5]));
/// assert_eq!(overlay.len(), 2);
/// overlay.leave(a)?;
/// assert_eq!(overlay.len(), 1);
/// let tree = overlay.snapshot()?;
/// tree.validate(Some(6))?;
/// # let _ = b;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct DynamicOverlay {
    source: Point2,
    max_out_degree: u32,
    hosts: Vec<Host>,
    /// Slots of live hosts, bucketed by their current grid cell.
    cell_members: Vec<Vec<u64>>,
    /// The grid the members are bucketed against (rebuilt on churn).
    grid: Option<PolarGrid2>,
    live: usize,
    churn_since_rebuild: usize,
    next_id: u64,
}

impl DynamicOverlay {
    /// Creates an empty overlay rooted at `source`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DegreeTooSmall`] for budgets below 2 and
    /// [`BuildError::NonFiniteSource`] for bad coordinates.
    pub fn new(source: Point2, max_out_degree: u32) -> Result<Self, BuildError> {
        if max_out_degree < 2 {
            return Err(BuildError::DegreeTooSmall {
                got: max_out_degree,
                min: 2,
            });
        }
        if !source.is_finite() {
            return Err(BuildError::NonFiniteSource);
        }
        Ok(Self {
            source,
            max_out_degree,
            hosts: Vec::new(),
            cell_members: vec![Vec::new()],
            grid: None,
            live: 0,
            churn_since_rebuild: 0,
            next_id: 0,
        })
    }

    /// Number of live hosts.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no hosts are present.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The source position.
    pub fn source(&self) -> Point2 {
        self.source
    }

    /// The out-degree budget.
    pub fn max_out_degree(&self) -> u32 {
        self.max_out_degree
    }

    /// Position of a live host.
    pub fn position(&self, id: HostId) -> Option<Point2> {
        self.slot_of(id).map(|s| self.hosts[s].position)
    }

    fn slot_of(&self, id: HostId) -> Option<usize> {
        self.hosts.iter().position(|h| h.alive && h.id == id)
    }

    fn out_degree(&self, slot: usize) -> u32 {
        self.hosts[slot].children.len() as u32
    }

    /// Number of live hosts attached directly to the source. O(n) — used
    /// only on join/leave paths where an O(pool) scan already dominates.
    fn source_child_count(&self) -> usize {
        self.hosts
            .iter()
            .filter(|h| h.alive && h.parent.is_none())
            .count()
    }

    /// Delay from the source to the host in `slot`.
    fn delay_of(&self, slot: usize) -> f64 {
        let mut d = 0.0;
        let mut cur = slot;
        let mut hops = 0;
        loop {
            match self.hosts[cur].parent {
                None => {
                    d += self.hosts[cur].position.distance(&self.source);
                    break;
                }
                Some(p) => {
                    d += self.hosts[cur]
                        .position
                        .distance(&self.hosts[p as usize].position);
                    cur = p as usize;
                }
            }
            hops += 1;
            debug_assert!(hops <= self.hosts.len(), "parent cycle");
        }
        d
    }

    /// The current worst source-to-host delay.
    pub fn radius(&self) -> f64 {
        (0..self.hosts.len())
            .filter(|&s| self.hosts[s].alive)
            .map(|s| self.delay_of(s))
            .fold(0.0, f64::max)
    }

    /// The grid cell of a position under the current grid (flat index).
    fn cell_of(&self, p: &Point2) -> usize {
        match &self.grid {
            None => 0,
            Some(grid) => {
                let polar = PolarPoint::from_cartesian(&(*p - self.source));
                let (ring, seg) = grid.cell_of(&polar);
                ((1u64 << ring) - 1 + seg) as usize
            }
        }
    }

    /// Adds a host and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the position is not finite (joins are a hot path; callers
    /// own input hygiene, unlike the batch builders which return errors).
    pub fn join(&mut self, position: Point2) -> HostId {
        assert!(position.is_finite(), "host position must be finite");
        let id = HostId(self.next_id);
        self.next_id += 1;
        let slot = self.hosts.len() as u64;
        // Choose a parent: best open host in the cell, walking up the
        // ancestor-cell chain, else the source if open, else the best open
        // host globally (exists whenever the tree is nonempty and the
        // budget is ≥ 2: leaves are open).
        let parent = self.find_parent_for(&position);
        self.hosts.push(Host {
            position,
            parent,
            children: Vec::new(),
            alive: true,
            id,
        });
        if let Some(p) = parent {
            self.hosts[p as usize].children.push(slot);
        }
        let cell = self.cell_of(&position);
        self.cell_members[cell].push(slot);
        self.live += 1;
        self.churn_since_rebuild += 1;
        self.maybe_rebuild();
        id
    }

    /// Chooses the parent slot for a joining position (`None` = source).
    fn find_parent_for(&self, position: &Point2) -> Option<u64> {
        let source_open = self.source_child_count() < self.max_out_degree as usize;
        // Candidate list: own cell, then ancestor cells.
        let mut cell = self.cell_of(position);
        loop {
            let best = self.cell_members[cell]
                .iter()
                .copied()
                .filter(|&s| {
                    self.hosts[s as usize].alive
                        && self.out_degree(s as usize) < self.max_out_degree
                })
                .min_by(|&a, &b| {
                    let da = self.delay_of(a as usize)
                        + self.hosts[a as usize].position.distance(position);
                    let db = self.delay_of(b as usize)
                        + self.hosts[b as usize].position.distance(position);
                    da.total_cmp(&db)
                });
            if let Some(p) = best {
                return Some(p);
            }
            if cell == 0 {
                break;
            }
            // Parent cell: flat index arithmetic of the binary layout.
            let (ring, seg) = unflatten(cell);
            cell = if ring <= 1 {
                0
            } else {
                ((1u64 << (ring - 1)) - 1 + seg / 2) as usize
            };
        }
        if source_open {
            return None;
        }
        // Global fallback: any open host, preferring small delay.
        (0..self.hosts.len())
            .filter(|&s| self.hosts[s].alive && self.out_degree(s) < self.max_out_degree)
            .min_by(|&a, &b| {
                let da = self.delay_of(a) + self.hosts[a].position.distance(position);
                let db = self.delay_of(b) + self.hosts[b].position.distance(position);
                da.total_cmp(&db)
            })
            .map(|s| s as u64)
            .or_else(|| {
                // No host is open and the source is full: impossible with
                // budget >= 2 unless the overlay is empty (then the source
                // has spare slots anyway).
                unreachable!("a degree >= 2 tree always has an open host")
            })
    }

    /// Removes a host.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NonFinitePoint`] — repurposed with the slot
    /// index — if the id is unknown or already departed. (A dedicated error
    /// type is overkill for the one failure mode.)
    pub fn leave(&mut self, id: HostId) -> Result<(), BuildError> {
        let slot = self
            .slot_of(id)
            .ok_or(BuildError::NonFinitePoint { index: usize::MAX })?;
        // Detach from the parent.
        if let Some(p) = self.hosts[slot].parent {
            let p = p as usize;
            self.hosts[p].children.retain(|&c| c != slot as u64);
        }
        let children = std::mem::take(&mut self.hosts[slot].children);
        self.hosts[slot].alive = false;
        let cell = self.cell_of(&self.hosts[slot].position.clone());
        self.cell_members[cell].retain(|&s| s != slot as u64);
        self.live -= 1;
        if !children.is_empty() {
            // Promote the orphan with the most spare capacity-weighted
            // proximity: simply the orphan closest to the departed host;
            // re-parent it into the vacated position, and hand it the
            // remaining orphans (its budget allows |children| - 1 + its own
            // children... not necessarily!). To stay within budget, promote
            // greedily: each remaining orphan re-joins through the normal
            // join path.
            let vacated_parent = self.hosts[slot].parent;
            let promoted = *children
                .iter()
                .min_by(|&&a, &&b| {
                    let da = self.hosts[a as usize]
                        .position
                        .distance(&self.hosts[slot].position);
                    let db = self.hosts[b as usize]
                        .position
                        .distance(&self.hosts[slot].position);
                    da.total_cmp(&db)
                })
                .expect("nonempty");
            self.hosts[promoted as usize].parent = vacated_parent;
            if let Some(p) = vacated_parent {
                self.hosts[p as usize].children.push(promoted);
            }
            // Re-home the remaining orphans (and none of their subtrees —
            // those stay intact below them).
            for c in children {
                if c == promoted {
                    continue;
                }
                self.hosts[c as usize].parent = None; // detached for now
                let pos = self.hosts[c as usize].position;
                let parent = self.find_parent_for_excluding(&pos, c);
                self.hosts[c as usize].parent = parent;
                if let Some(p) = parent {
                    self.hosts[p as usize].children.push(c);
                }
            }
        }
        self.churn_since_rebuild += 1;
        self.maybe_rebuild();
        Ok(())
    }

    /// Parent search that refuses to attach under the subtree of `banned`
    /// (which is being re-homed — attaching inside it would create a
    /// cycle).
    fn find_parent_for_excluding(&self, position: &Point2, banned: u64) -> Option<u64> {
        let in_banned_subtree = |mut s: u64| -> bool {
            let mut hops = 0;
            loop {
                if s == banned {
                    return true;
                }
                match self.hosts[s as usize].parent {
                    None => return false,
                    Some(p) => s = p,
                }
                hops += 1;
                if hops > self.hosts.len() {
                    return true; // defensive: treat cycles as banned
                }
            }
        };
        let source_open = self.source_child_count() < self.max_out_degree as usize;
        let candidate = (0..self.hosts.len())
            .filter(|&s| {
                self.hosts[s].alive
                    && self.out_degree(s) < self.max_out_degree
                    && !in_banned_subtree(s as u64)
            })
            .min_by(|&a, &b| {
                let da = self.delay_of(a) + self.hosts[a].position.distance(position);
                let db = self.delay_of(b) + self.hosts[b].position.distance(position);
                da.total_cmp(&db)
            });
        match candidate {
            Some(s) => {
                if source_open {
                    let direct = self.source.distance(position);
                    let via = self.delay_of(s) + self.hosts[s].position.distance(position);
                    if direct <= via {
                        return None;
                    }
                }
                Some(s as u64)
            }
            None => None, // attach to source (always legal when nothing else is)
        }
    }

    /// Rebuilds with the full static algorithm when churn since the last
    /// rebuild exceeds half the membership.
    fn maybe_rebuild(&mut self) {
        if self.churn_since_rebuild * 2 <= self.live.max(8) {
            return;
        }
        self.rebuild();
    }

    /// Forces a full rebuild with [`PolarGridBuilder`].
    pub fn rebuild(&mut self) {
        self.churn_since_rebuild = 0;
        let live_slots: Vec<usize> = (0..self.hosts.len())
            .filter(|&s| self.hosts[s].alive)
            .collect();
        let positions: Vec<Point2> = live_slots.iter().map(|&s| self.hosts[s].position).collect();
        if positions.is_empty() {
            self.hosts.clear();
            self.cell_members = vec![Vec::new()];
            self.grid = None;
            return;
        }
        let (tree, report) = PolarGridBuilder::new()
            .max_out_degree(self.max_out_degree)
            .build_with_report(self.source, &positions)
            .expect("live positions are finite");
        // Compact: new slot i corresponds to live_slots[i].
        let mut new_hosts: Vec<Host> = Vec::with_capacity(positions.len());
        for (i, &old) in live_slots.iter().enumerate() {
            new_hosts.push(Host {
                position: positions[i],
                parent: match tree.parent(i) {
                    ParentRef::Source => None,
                    ParentRef::Node(p) => Some(p as u64),
                },
                children: tree.children(i).iter().map(|&c| u64::from(c)).collect(),
                alive: true,
                id: self.hosts[old].id,
            });
        }
        self.hosts = new_hosts;
        let grid = PolarGrid2::new(report.rings, {
            let rho = positions
                .iter()
                .map(|p| p.distance(&self.source))
                .fold(0.0f64, f64::max);
            if rho > 0.0 {
                rho * (1.0 + 1e-9)
            } else {
                1.0
            }
        });
        let mut cell_members = vec![Vec::new(); ((1u64 << (report.rings + 1)) - 1) as usize];
        for (slot, host) in self.hosts.iter().enumerate() {
            let polar = PolarPoint::from_cartesian(&(host.position - self.source));
            let (ring, seg) = grid.cell_of(&polar);
            cell_members[((1u64 << ring) - 1 + seg) as usize].push(slot as u64);
        }
        self.grid = Some(grid);
        self.cell_members = cell_members;
    }

    /// Materializes the current membership as an immutable
    /// [`MulticastTree`] (host order = join order of live hosts).
    ///
    /// # Errors
    ///
    /// Never fails for a consistent overlay; an [`BuildError::Internal`]
    /// would indicate a bug in the maintenance logic.
    pub fn snapshot(&self) -> Result<MulticastTree<2>, BuildError> {
        let live_slots: Vec<usize> = (0..self.hosts.len())
            .filter(|&s| self.hosts[s].alive)
            .collect();
        let slot_to_new: std::collections::HashMap<usize, usize> = live_slots
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let positions: Vec<Point2> = live_slots.iter().map(|&s| self.hosts[s].position).collect();
        let mut builder =
            TreeBuilder::new(self.source, positions).max_out_degree(self.max_out_degree);
        // Attach top-down via BFS from the source children.
        let mut queue: std::collections::VecDeque<usize> = live_slots
            .iter()
            .copied()
            .filter(|&s| self.hosts[s].parent.is_none())
            .collect();
        while let Some(slot) = queue.pop_front() {
            let new = slot_to_new[&slot];
            match self.hosts[slot].parent {
                None => builder.attach_to_source(new)?,
                Some(p) => builder.attach(new, slot_to_new[&(p as usize)])?,
            }
            for &c in &self.hosts[slot].children {
                queue.push_back(c as usize);
            }
        }
        Ok(builder.finish()?)
    }
}

/// Inverse of the flat cell index: `(ring, seg)`.
fn unflatten(idx: usize) -> (u32, u64) {
    let v = idx as u64 + 1;
    let ring = 63 - v.leading_zeros();
    (ring, v - (1u64 << ring))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Disk, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::{RngExt, SeedableRng};

    #[test]
    fn unflatten_inverts_layout() {
        for ring in 0..8u32 {
            for seg in 0..(1u64 << ring) {
                let idx = ((1u64 << ring) - 1 + seg) as usize;
                assert_eq!(unflatten(idx), (ring, seg));
            }
        }
    }

    #[test]
    fn joins_build_valid_trees() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6).unwrap();
        for p in Disk::unit().sample_n(&mut rng, 500) {
            overlay.join(p);
        }
        assert_eq!(overlay.len(), 500);
        let tree = overlay.snapshot().unwrap();
        assert_eq!(tree.len(), 500);
        tree.validate(Some(6)).unwrap();
    }

    #[test]
    fn leaves_remove_and_rewire() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 3).unwrap();
        let ids: Vec<HostId> = Disk::unit()
            .sample_n(&mut rng, 200)
            .into_iter()
            .map(|p| overlay.join(p))
            .collect();
        // Remove every third host, including interior ones.
        for id in ids.iter().step_by(3) {
            overlay.leave(*id).unwrap();
        }
        assert_eq!(overlay.len(), 200 - 67);
        let tree = overlay.snapshot().unwrap();
        tree.validate(Some(3)).unwrap();
        // Departed ids are gone.
        assert!(overlay.position(ids[0]).is_none());
        assert!(overlay.leave(ids[0]).is_err());
        // Survivors remain addressable.
        assert!(overlay.position(ids[1]).is_some());
    }

    #[test]
    fn churn_quality_tracks_static_rebuild() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6).unwrap();
        let mut live: Vec<HostId> = Vec::new();
        for _ in 0..1500 {
            if live.len() < 50 || rng.random::<f64>() < 0.6 {
                let p = {
                    let r = rng.random::<f64>().sqrt();
                    let t = rng.random_range(0.0..core::f64::consts::TAU);
                    Point2::new([r * t.cos(), r * t.sin()])
                };
                live.push(overlay.join(p));
            } else {
                let i = rng.random_range(0..live.len());
                let id = live.swap_remove(i);
                overlay.leave(id).unwrap();
            }
        }
        let churned = overlay.radius();
        let snapshot = overlay.snapshot().unwrap();
        snapshot.validate(Some(6)).unwrap();
        // Compare against a fresh static build over the same membership.
        let fresh = PolarGridBuilder::new()
            .build(Point2::ORIGIN, snapshot.points())
            .unwrap();
        assert!(
            churned <= fresh.radius() * 2.5 + 0.2,
            "churned {churned} vs fresh {}",
            fresh.radius()
        );
    }

    #[test]
    fn degree_budget_never_violated_under_churn() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 2).unwrap();
        let mut live = Vec::new();
        for step in 0..600 {
            if live.is_empty() || step % 3 != 0 {
                live.push(overlay.join(Point2::new([
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                ])));
            } else {
                let i = rng.random_range(0..live.len());
                overlay.leave(live.swap_remove(i)).unwrap();
            }
            if step % 97 == 0 {
                overlay.snapshot().unwrap().validate(Some(2)).unwrap();
            }
        }
        overlay.snapshot().unwrap().validate(Some(2)).unwrap();
    }

    #[test]
    fn empty_overlay_behaviour() {
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 4).unwrap();
        assert!(overlay.is_empty());
        assert_eq!(overlay.radius(), 0.0);
        let t = overlay.snapshot().unwrap();
        assert!(t.is_empty());
        // Drain to empty and come back.
        let id = overlay.join(Point2::new([1.0, 0.0]));
        overlay.leave(id).unwrap();
        assert!(overlay.is_empty());
        let id2 = overlay.join(Point2::new([0.0, 1.0]));
        assert_eq!(overlay.len(), 1);
        assert!(overlay.position(id2).is_some());
    }

    #[test]
    fn constructor_validation() {
        assert!(matches!(
            DynamicOverlay::new(Point2::ORIGIN, 1),
            Err(BuildError::DegreeTooSmall { .. })
        ));
        assert!(matches!(
            DynamicOverlay::new(Point2::new([f64::NAN, 0.0]), 4),
            Err(BuildError::NonFiniteSource)
        ));
    }

    #[test]
    fn explicit_rebuild_preserves_validity_and_bounds() {
        // Points on the unit circle are adversarial for an area-based grid
        // (everything lands in the outermost ring, forcing k = 1), so the
        // rebuild is not guaranteed to beat the greedy join path — but it
        // must stay valid and within the analytic bound of the static
        // algorithm.
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 2).unwrap();
        for i in 0..100 {
            let t = i as f64 * 0.7;
            overlay.join(Point2::new([t.cos(), t.sin()]));
        }
        overlay.rebuild();
        let snapshot = overlay.snapshot().unwrap();
        snapshot.validate(Some(2)).unwrap();
        let (_, report) = PolarGridBuilder::new()
            .max_out_degree(2)
            .build_with_report(Point2::ORIGIN, snapshot.points())
            .unwrap();
        assert!(overlay.radius() <= report.bound + 1e-9);
        // On a well-behaved area distribution the rebuild must not lose to
        // the incremental tree by much.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6).unwrap();
        for p in Disk::unit().sample_n(&mut rng, 800) {
            overlay.join(p);
        }
        let before = overlay.radius();
        overlay.rebuild();
        assert!(overlay.radius() <= before * 1.25 + 0.1);
        overlay.snapshot().unwrap().validate(Some(6)).unwrap();
    }
}
