//! The 3-D bisection subroutines: the 8-way split used by the out-degree-10
//! tree of Figure 8 ("each cell representative node … uses at most 8 links
//! to connect to points inside the cell"), and a binary variant for
//! out-degree-2 trees (axes cycling radius → azimuth → z).

use omt_geom::{ShellCell, SphericalPoint};
use omt_tree::{ParentRef, TreeBuilder, TreeError};

pub(crate) use crate::fanout::fanout_chain as fanout_chain3;
pub(crate) use crate::sink::attach as attach3;

use crate::sink::AttachSink;

/// Removes and returns the index whose radius is closest to `q`.
fn take_closest_radius(sph: &[SphericalPoint], idx: &mut Vec<u32>, q: f64) -> u32 {
    debug_assert!(!idx.is_empty());
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (pos, &p) in idx.iter().enumerate() {
        let d = (sph[p as usize].radius - q).abs();
        if d < best_d {
            best_d = d;
            best = pos;
        }
    }
    idx.swap_remove(best)
}

/// Connects every point in `idx` below `src` with out-degree at most 8 per
/// node, following the 8-way octant split of the shell cell.
pub(crate) fn bisect8<S: AttachSink>(
    b: &mut S,
    sph: &[SphericalPoint],
    cell: ShellCell,
    src: ParentRef,
    src_radius: f64,
    idx: Vec<u32>,
) -> Result<(), TreeError> {
    // The last tuple field is the recursion depth the frame would have in
    // the recursive formulation; it only feeds the observability layer.
    let mut stack: Vec<(ShellCell, ParentRef, f64, Vec<u32>, u32)> =
        vec![(cell, src, src_radius, idx, 0)];
    while let Some((cell, src, q, idx, depth)) = stack.pop() {
        if idx.is_empty() {
            continue;
        }
        omt_obs::obs_observe!("bisect3d/depth", u64::from(depth));
        omt_obs::obs_count!("bisect3d/splits");
        let children = cell.split8();
        let mut parts: [Vec<u32>; 8] = Default::default();
        for p in idx {
            parts[cell.classify8(&sph[p as usize])].push(p);
        }
        for (c, mut part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let rep = take_closest_radius(sph, &mut part, q);
            attach3(b, rep as usize, src)?;
            if !part.is_empty() {
                stack.push((
                    children[c],
                    ParentRef::Node(rep as usize),
                    sph[rep as usize].radius,
                    part,
                    depth + 1,
                ));
            }
        }
    }
    Ok(())
}

/// The axis a binary split halves, cycling radius → azimuth → z.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Axis3 {
    Radius,
    Azimuth,
    Z,
}

impl Axis3 {
    fn next(self) -> Self {
        match self {
            Self::Radius => Self::Azimuth,
            Self::Azimuth => Self::Z,
            Self::Z => Self::Radius,
        }
    }
}

/// Connects every point in `idx` below `src` with out-degree at most 2 per
/// node: binary splits along cycling axes, two carriers per step chosen by
/// radius proximity to the local source.
pub(crate) fn bisect2_3d<S: AttachSink>(
    b: &mut S,
    sph: &[SphericalPoint],
    cell: ShellCell,
    src: ParentRef,
    src_radius: f64,
    idx: Vec<u32>,
) -> Result<(), TreeError> {
    let mut stack: Vec<(ShellCell, Axis3, ParentRef, f64, Vec<u32>, u32)> =
        vec![(cell, Axis3::Radius, src, src_radius, idx, 0)];
    while let Some((cell, axis, src, q, mut idx, depth)) = stack.pop() {
        match idx.len() {
            0 => continue,
            1 => {
                attach3(b, idx[0] as usize, src)?;
                continue;
            }
            2 => {
                attach3(b, idx[0] as usize, src)?;
                attach3(b, idx[1] as usize, src)?;
                continue;
            }
            _ => {}
        }
        omt_obs::obs_observe!("bisect3d/depth", u64::from(depth));
        omt_obs::obs_count!("bisect3d/splits");
        let a = take_closest_radius(sph, &mut idx, q);
        let c = take_closest_radius(sph, &mut idx, q);
        attach3(b, a as usize, src)?;
        attach3(b, c as usize, src)?;
        let rm = 0.5 * (cell.r_lo() + cell.r_hi());
        let am = cell.arc().mid();
        let (z_lo, z_hi) = cell.z_range();
        let zm = 0.5 * (z_lo + z_hi);
        let coordinate = |p: &SphericalPoint| match axis {
            Axis3::Radius => (p.radius, rm),
            Axis3::Azimuth => (p.azimuth, am),
            Axis3::Z => (p.cos_polar, zm),
        };
        let (lo_cell, hi_cell) = match axis {
            Axis3::Radius => (
                ShellCell::new(
                    cell.r_lo(),
                    rm,
                    cell.arc().lo(),
                    cell.arc().hi(),
                    z_lo,
                    z_hi,
                ),
                ShellCell::new(
                    rm,
                    cell.r_hi(),
                    cell.arc().lo(),
                    cell.arc().hi(),
                    z_lo,
                    z_hi,
                ),
            ),
            Axis3::Azimuth => cell.split_azimuth(),
            Axis3::Z => cell.split_z(),
        };
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        for p in idx {
            let (v, mid) = coordinate(&sph[p as usize]);
            if v >= mid {
                hi.push(p);
            } else {
                lo.push(p);
            }
        }
        // Carrier closer to each half (in the split coordinate) takes it.
        let (va, _) = coordinate(&sph[a as usize]);
        let (vc, _) = coordinate(&sph[c as usize]);
        let (carrier_lo, carrier_hi) = if va <= vc { (a, c) } else { (c, a) };
        stack.push((
            lo_cell,
            axis.next(),
            ParentRef::Node(carrier_lo as usize),
            sph[carrier_lo as usize].radius,
            lo,
            depth + 1,
        ));
        stack.push((
            hi_cell,
            axis.next(),
            ParentRef::Node(carrier_hi as usize),
            sph[carrier_hi as usize].radius,
            hi,
            depth + 1,
        ));
    }
    Ok(())
}

/// A read-only structure-of-arrays view of spherical coordinates: the
/// columns of `omt_geom::PointStore3`, consumed by the slice-based 3-D
/// bisection twins.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SphSlices<'a> {
    /// Source-relative radii.
    pub radius: &'a [f64],
    /// Source-relative azimuths in `[0, 2π)`.
    pub azimuth: &'a [f64],
    /// Source-relative polar-angle cosines in `[-1, 1]`.
    pub cos_polar: &'a [f64],
}

impl SphSlices<'_> {
    /// Reassembles point `i` as a [`SphericalPoint`] — bit-identical to
    /// the AoS element by the `PointStore3` contract.
    #[inline]
    pub fn get(&self, i: u32) -> SphericalPoint {
        SphericalPoint {
            radius: self.radius[i as usize],
            azimuth: self.azimuth[i as usize],
            cos_polar: self.cos_polar[i as usize],
        }
    }

    /// Radius of point `i`.
    #[inline]
    pub fn radius_of(&self, i: u32) -> f64 {
        self.radius[i as usize]
    }
}

/// An 8-way work frame over a range of the shared flat index array.
#[derive(Clone, Debug)]
struct Frame8 {
    cell: ShellCell,
    src: ParentRef,
    q: f64,
    start: u32,
    end: u32,
    depth: u32,
}

/// A binary 3-D work frame over a range of the shared flat index array.
#[derive(Clone, Debug)]
struct Frame2x3 {
    cell: ShellCell,
    axis: Axis3,
    src: ParentRef,
    q: f64,
    start: u32,
    end: u32,
    depth: u32,
}

/// Reusable scratch for the slice-based 3-D bisection twins (see
/// `bisect2d::Scratch2` for the rationale).
#[derive(Debug, Default)]
pub(crate) struct Scratch3 {
    perm: Vec<u32>,
    class: Vec<u8>,
    stack8: Vec<Frame8>,
    stack2: Vec<Frame2x3>,
}

/// Slice twin of [`take_closest_radius`]: swap-to-back removal with the
/// same first-minimum tie rule and the same surviving order.
fn take_closest_in_slice(radius: &[f64], idx: &mut [u32], q: f64) -> u32 {
    debug_assert!(!idx.is_empty());
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (pos, &p) in idx.iter().enumerate() {
        let d = (radius[p as usize] - q).abs();
        if d < best_d {
            best_d = d;
            best = pos;
        }
    }
    let last = idx.len() - 1;
    idx.swap(best, last);
    idx[last]
}

/// Slice twin of [`bisect8`]: in-place octant bisection over a window of
/// the flat member-index array, emitting the identical attachment sequence.
pub(crate) fn bisect8_soa<S: AttachSink>(
    b: &mut S,
    sph: SphSlices<'_>,
    cell: ShellCell,
    src: ParentRef,
    src_radius: f64,
    idx: &mut [u32],
    scratch: &mut Scratch3,
) -> Result<(), TreeError> {
    let Scratch3 {
        perm,
        class,
        stack8,
        ..
    } = scratch;
    stack8.clear();
    stack8.push(Frame8 {
        cell,
        src,
        q: src_radius,
        start: 0,
        end: idx.len() as u32,
        depth: 0,
    });
    while let Some(f) = stack8.pop() {
        let (start, end) = (f.start as usize, f.end as usize);
        if start == end {
            continue;
        }
        omt_obs::obs_observe!("bisect3d/depth", u64::from(f.depth));
        omt_obs::obs_count!("bisect3d/splits");
        let children = f.cell.split8();
        // Stable 8-way partition: classify + count, then scatter from a
        // staged copy, preserving the legacy per-octant push order.
        class.clear();
        let mut counts = [0u32; 8];
        for &p in &idx[start..end] {
            let c = f.cell.classify8(&sph.get(p));
            class.push(c as u8);
            counts[c] += 1;
        }
        perm.clear();
        perm.extend_from_slice(&idx[start..end]);
        let mut bounds = [0usize; 9];
        bounds[0] = start;
        for c in 0..8 {
            bounds[c + 1] = bounds[c] + counts[c] as usize;
        }
        let mut cursors = [0usize; 8];
        cursors.copy_from_slice(&bounds[..8]);
        for (j, &p) in perm.iter().enumerate() {
            let c = class[j] as usize;
            idx[cursors[c]] = p;
            cursors[c] += 1;
        }
        for c in 0..8 {
            let (cs, ce) = (bounds[c], bounds[c + 1]);
            if cs == ce {
                continue;
            }
            let rep = take_closest_in_slice(sph.radius, &mut idx[cs..ce], f.q);
            attach3(b, rep as usize, f.src)?;
            if ce - cs > 1 {
                stack8.push(Frame8 {
                    cell: children[c],
                    src: ParentRef::Node(rep as usize),
                    q: sph.radius_of(rep),
                    start: cs as u32,
                    end: (ce - 1) as u32,
                    depth: f.depth + 1,
                });
            }
        }
    }
    Ok(())
}

/// Slice twin of [`bisect2_3d`]: in-place binary bisection along cycling
/// radius → azimuth → z axes, emitting the identical attachment sequence.
pub(crate) fn bisect2_3d_soa<S: AttachSink>(
    b: &mut S,
    sph: SphSlices<'_>,
    cell: ShellCell,
    src: ParentRef,
    src_radius: f64,
    idx: &mut [u32],
    scratch: &mut Scratch3,
) -> Result<(), TreeError> {
    let Scratch3 { perm, stack2, .. } = scratch;
    stack2.clear();
    stack2.push(Frame2x3 {
        cell,
        axis: Axis3::Radius,
        src,
        q: src_radius,
        start: 0,
        end: idx.len() as u32,
        depth: 0,
    });
    while let Some(f) = stack2.pop() {
        let (start, end) = (f.start as usize, f.end as usize);
        match end - start {
            0 => continue,
            1 => {
                attach3(b, idx[start] as usize, f.src)?;
                continue;
            }
            2 => {
                attach3(b, idx[start] as usize, f.src)?;
                attach3(b, idx[start + 1] as usize, f.src)?;
                continue;
            }
            _ => {}
        }
        omt_obs::obs_observe!("bisect3d/depth", u64::from(f.depth));
        omt_obs::obs_count!("bisect3d/splits");
        let a = take_closest_in_slice(sph.radius, &mut idx[start..end], f.q);
        let c = take_closest_in_slice(sph.radius, &mut idx[start..end - 1], f.q);
        attach3(b, a as usize, f.src)?;
        attach3(b, c as usize, f.src)?;
        let rm = 0.5 * (f.cell.r_lo() + f.cell.r_hi());
        let am = f.cell.arc().mid();
        let (z_lo, z_hi) = f.cell.z_range();
        let zm = 0.5 * (z_lo + z_hi);
        let coordinate = |p: &SphericalPoint| match f.axis {
            Axis3::Radius => (p.radius, rm),
            Axis3::Azimuth => (p.azimuth, am),
            Axis3::Z => (p.cos_polar, zm),
        };
        let (lo_cell, hi_cell) = match f.axis {
            Axis3::Radius => (
                ShellCell::new(
                    f.cell.r_lo(),
                    rm,
                    f.cell.arc().lo(),
                    f.cell.arc().hi(),
                    z_lo,
                    z_hi,
                ),
                ShellCell::new(
                    rm,
                    f.cell.r_hi(),
                    f.cell.arc().lo(),
                    f.cell.arc().hi(),
                    z_lo,
                    z_hi,
                ),
            ),
            Axis3::Azimuth => f.cell.split_azimuth(),
            Axis3::Z => f.cell.split_z(),
        };
        // Stable lo/hi partition of the remaining window (carriers parked
        // past `rest_end`).
        let rest_end = end - 2;
        perm.clear();
        perm.extend_from_slice(&idx[start..rest_end]);
        let mut w = start;
        for &p in perm.iter() {
            let (v, mid) = coordinate(&sph.get(p));
            if v < mid {
                idx[w] = p;
                w += 1;
            }
        }
        let mid_pos = w;
        for &p in perm.iter() {
            let (v, mid) = coordinate(&sph.get(p));
            if v >= mid {
                idx[w] = p;
                w += 1;
            }
        }
        debug_assert_eq!(w, rest_end);
        // Carrier closer to each half (in the split coordinate) takes it.
        let (va, _) = coordinate(&sph.get(a));
        let (vc, _) = coordinate(&sph.get(c));
        let (carrier_lo, carrier_hi) = if va <= vc { (a, c) } else { (c, a) };
        stack2.push(Frame2x3 {
            cell: lo_cell,
            axis: f.axis.next(),
            src: ParentRef::Node(carrier_lo as usize),
            q: sph.radius_of(carrier_lo),
            start: start as u32,
            end: mid_pos as u32,
            depth: f.depth + 1,
        });
        stack2.push(Frame2x3 {
            cell: hi_cell,
            axis: f.axis.next(),
            src: ParentRef::Node(carrier_hi as usize),
            q: sph.radius_of(carrier_hi),
            start: mid_pos as u32,
            end: rest_end as u32,
            depth: f.depth + 1,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Ball, Point3, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    fn setup(n: usize, seed: u64) -> (TreeBuilder<3>, Vec<SphericalPoint>, Vec<u32>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = Ball::<3>::unit().sample_n(&mut rng, n);
        let sph = pts.iter().map(SphericalPoint::from_cartesian).collect();
        let b = TreeBuilder::new(Point3::ORIGIN, pts);
        let idx = (0..n as u32).collect();
        (b, sph, idx)
    }

    #[test]
    fn bisect8_produces_valid_degree8_tree() {
        for n in [1usize, 5, 64, 500] {
            let (mut b, sph, idx) = setup(n, n as u64);
            let mut b = {
                b = b.max_out_degree(8);
                b
            };
            bisect8(
                &mut b,
                &sph,
                ShellCell::ball(1.0 + 1e-9),
                ParentRef::Source,
                0.0,
                idx,
            )
            .unwrap();
            let t = b.finish().unwrap();
            assert_eq!(t.len(), n);
            t.validate(Some(8)).unwrap();
        }
    }

    #[test]
    fn bisect2_3d_produces_valid_degree2_tree() {
        for n in [1usize, 2, 3, 9, 200] {
            let (b, sph, idx) = setup(n, 90 + n as u64);
            let mut b = b.max_out_degree(2);
            bisect2_3d(
                &mut b,
                &sph,
                ShellCell::ball(1.0 + 1e-9),
                ParentRef::Source,
                0.0,
                idx,
            )
            .unwrap();
            let t = b.finish().unwrap();
            assert_eq!(t.len(), n);
            t.validate(Some(2)).unwrap();
        }
    }

    #[test]
    fn duplicate_points_terminate() {
        let pts = vec![Point3::new([0.3, 0.3, 0.3]); 40];
        let sph: Vec<SphericalPoint> = pts.iter().map(SphericalPoint::from_cartesian).collect();
        let mut b = TreeBuilder::new(Point3::ORIGIN, pts.clone()).max_out_degree(8);
        bisect8(
            &mut b,
            &sph,
            ShellCell::ball(1.0),
            ParentRef::Source,
            0.0,
            (0..40).collect(),
        )
        .unwrap();
        b.finish().unwrap().validate(Some(8)).unwrap();

        let mut b = TreeBuilder::new(Point3::ORIGIN, pts).max_out_degree(2);
        bisect2_3d(
            &mut b,
            &sph,
            ShellCell::ball(1.0),
            ParentRef::Source,
            0.0,
            (0..40).collect(),
        )
        .unwrap();
        b.finish().unwrap().validate(Some(2)).unwrap();
    }

    #[test]
    fn radius_stays_within_constant_factor_of_direct() {
        let (b, sph, idx) = setup(1000, 7);
        let opt_lb = sph.iter().map(|p| p.radius).fold(0.0, f64::max);
        let mut b = b.max_out_degree(8);
        bisect8(
            &mut b,
            &sph,
            ShellCell::ball(1.0 + 1e-9),
            ParentRef::Source,
            0.0,
            idx,
        )
        .unwrap();
        let t = b.finish().unwrap();
        // Inside the full ball the bisection is not the tuned covering-
        // segment setting, but the radius must still be a small multiple of
        // the lower bound.
        assert!(t.radius() <= 8.0 * opt_lb, "radius {}", t.radius());
    }

    #[test]
    fn soa_twins_emit_identical_edge_lists_3d() {
        use crate::sink::EdgeList;
        let (_, sph, idx) = setup(300, 42);
        let radius: Vec<f64> = sph.iter().map(|p| p.radius).collect();
        let azimuth: Vec<f64> = sph.iter().map(|p| p.azimuth).collect();
        let cos_polar: Vec<f64> = sph.iter().map(|p| p.cos_polar).collect();
        let slices = SphSlices {
            radius: &radius,
            azimuth: &azimuth,
            cos_polar: &cos_polar,
        };
        let cell = ShellCell::ball(1.0 + 1e-9);
        let mut scratch = Scratch3::default();

        let mut legacy8 = EdgeList::default();
        bisect8(
            &mut legacy8,
            &sph,
            cell,
            ParentRef::Source,
            0.0,
            idx.clone(),
        )
        .unwrap();
        let mut soa8 = EdgeList::default();
        let mut idx8 = idx.clone();
        bisect8_soa(
            &mut soa8,
            slices,
            cell,
            ParentRef::Source,
            0.0,
            &mut idx8,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(legacy8.0, soa8.0, "deg-8 edge emission diverged");

        let mut legacy2 = EdgeList::default();
        bisect2_3d(
            &mut legacy2,
            &sph,
            cell,
            ParentRef::Source,
            0.0,
            idx.clone(),
        )
        .unwrap();
        let mut soa2 = EdgeList::default();
        let mut idx2 = idx;
        bisect2_3d_soa(
            &mut soa2,
            slices,
            cell,
            ParentRef::Source,
            0.0,
            &mut idx2,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(legacy2.0, soa2.0, "deg-2 edge emission diverged");
    }

    #[test]
    fn fanout_chain3_attaches_everything() {
        let pts = vec![Point3::ORIGIN; 17];
        let mut b = TreeBuilder::new(Point3::ORIGIN, pts).max_out_degree(2);
        fanout_chain3(&mut b, 2).unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.len(), 17);
        t.validate(Some(2)).unwrap();
    }
}

/// The standalone 3-D bisection builder: the Section-II constant-factor
/// construction lifted to shell cells (8-way splits at out-degree 8, the
/// binary variant at out-degree 2–7).
///
/// # Examples
///
/// ```
/// use omt_core::Bisection3;
/// use omt_geom::Point3;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let points: Vec<Point3> = (0..60)
///     .map(|i| {
///         let t = i as f64 * 0.4;
///         Point3::new([t.cos(), t.sin(), (t * 0.3).sin() * 0.5])
///     })
///     .collect();
/// let tree = Bisection3::new(8)?.build(Point3::ORIGIN, &points)?;
/// tree.validate(Some(8))?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bisection3 {
    max_out_degree: u32,
}

impl Bisection3 {
    /// Creates a 3-D bisection builder with the given out-degree budget.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::BuildError::DegreeTooSmall`] for budgets below 2.
    pub fn new(max_out_degree: u32) -> Result<Self, crate::error::BuildError> {
        if max_out_degree < 2 {
            return Err(crate::error::BuildError::DegreeTooSmall {
                got: max_out_degree,
                min: 2,
            });
        }
        Ok(Self { max_out_degree })
    }

    /// The configured out-degree budget.
    pub const fn max_out_degree(&self) -> u32 {
        self.max_out_degree
    }

    /// Builds the spanning tree rooted at `source` over `points`, bisecting
    /// the smallest source-centered ball covering the input (the natural
    /// 3-D covering region; a far-pole covering shell buys nothing in 3-D
    /// because the octant split already bounds all three coordinates).
    ///
    /// # Errors
    ///
    /// Returns an error for non-finite coordinates; internal tree errors
    /// indicate bugs.
    pub fn build(
        &self,
        source: omt_geom::Point3,
        points: &[omt_geom::Point3],
    ) -> Result<omt_tree::MulticastTree<3>, crate::error::BuildError> {
        use crate::error::BuildError;
        if !source.is_finite() {
            return Err(BuildError::NonFiniteSource);
        }
        if let Some(bad) = points.iter().position(|p| !p.is_finite()) {
            return Err(BuildError::NonFinitePoint { index: bad });
        }
        let mut builder =
            TreeBuilder::new(source, points.to_vec()).max_out_degree(self.max_out_degree);
        let sph: Vec<SphericalPoint> = points
            .iter()
            .map(|p| SphericalPoint::from_cartesian(&(*p - source)))
            .collect();
        let rho = sph.iter().map(|p| p.radius).fold(0.0f64, f64::max);
        if rho == 0.0 {
            fanout_chain3(&mut builder, self.max_out_degree)?;
            return Ok(builder.finish()?);
        }
        let cell = ShellCell::ball(rho * (1.0 + 1e-9));
        let idx: Vec<u32> = (0..points.len() as u32).collect();
        if self.max_out_degree >= 8 {
            bisect8(&mut builder, &sph, cell, ParentRef::Source, 0.0, idx)?;
        } else {
            bisect2_3d(&mut builder, &sph, cell, ParentRef::Source, 0.0, idx)?;
        }
        Ok(builder.finish()?)
    }
}

#[cfg(test)]
mod standalone_tests {
    use super::*;
    use omt_geom::{Ball, Point3, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    #[test]
    fn builds_valid_trees_at_both_variants() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pts = Ball::<3>::unit().sample_n(&mut rng, 600);
        for deg in [2u32, 5, 8, 12] {
            let t = Bisection3::new(deg)
                .unwrap()
                .build(Point3::ORIGIN, &pts)
                .unwrap();
            assert_eq!(t.len(), 600);
            t.validate(Some(deg)).unwrap();
        }
    }

    #[test]
    fn constant_factor_versus_lower_bound_3d() {
        for seed in 0..3u64 {
            let mut r = SmallRng::seed_from_u64(seed);
            let pts = Ball::<3>::unit().sample_n(&mut r, 400);
            let lb = pts.iter().map(|p| p.norm()).fold(0.0f64, f64::max);
            let t8 = Bisection3::new(8)
                .unwrap()
                .build(Point3::ORIGIN, &pts)
                .unwrap();
            assert!(t8.radius() <= 8.0 * lb, "deg8 radius {}", t8.radius());
            let t2 = Bisection3::new(2)
                .unwrap()
                .build(Point3::ORIGIN, &pts)
                .unwrap();
            assert!(t2.radius() <= 14.0 * lb, "deg2 radius {}", t2.radius());
        }
    }

    #[test]
    fn rejects_degree_one_and_bad_points() {
        assert!(Bisection3::new(1).is_err());
        let b = Bisection3::new(4).unwrap();
        assert!(b.build(Point3::new([f64::NAN, 0.0, 0.0]), &[]).is_err());
        assert!(b
            .build(Point3::ORIGIN, &[Point3::new([0.0, f64::INFINITY, 0.0])])
            .is_err());
    }

    #[test]
    fn degenerates() {
        let b = Bisection3::new(2).unwrap();
        assert!(b.build(Point3::ORIGIN, &[]).unwrap().is_empty());
        let dup = vec![Point3::new([1.0, 1.0, 1.0]); 30];
        let t = b.build(Point3::new([1.0, 1.0, 1.0]), &dup).unwrap();
        assert_eq!(t.radius(), 0.0);
        t.validate(Some(2)).unwrap();
    }
}
