//! Breadth-first fan-out attachment for degenerate inputs (all points at
//! the source): any degree-respecting tree has radius 0, so only
//! feasibility matters.

use omt_tree::{ParentRef, TreeBuilder, TreeError};

use crate::sink::{attach, AttachSink};

/// Attaches nodes `0..n` to any sink in a breadth-first fan-out respecting
/// `max_out_degree`. This is the sink-generic core shared by the legacy
/// builder path ([`fanout_chain`]) and the arena/SoA path.
///
/// # Panics
///
/// Panics if `max_out_degree == 0` with `n > 0`.
pub(crate) fn fanout_sink<S: AttachSink>(
    b: &mut S,
    n: usize,
    max_out_degree: u32,
) -> Result<(), TreeError> {
    assert!(
        max_out_degree >= 1 || n == 0,
        "fan-out needs a positive budget"
    );
    // Parents in the order they become available: the source, then every
    // node as it is attached. Each parent adopts `max_out_degree` children.
    let mut parents: Vec<ParentRef> = vec![ParentRef::Source];
    let mut head = 0usize;
    let mut used = 0u32;
    for i in 0..n {
        if used >= max_out_degree {
            head += 1;
            used = 0;
        }
        attach(b, i, parents[head])?;
        parents.push(ParentRef::Node(i));
        used += 1;
    }
    Ok(())
}

/// Attaches all nodes of `b` in a breadth-first fan-out respecting
/// `max_out_degree`.
///
/// # Panics
///
/// Panics if `max_out_degree == 0` with a nonempty builder.
pub(crate) fn fanout_chain<const D: usize>(
    b: &mut TreeBuilder<D>,
    max_out_degree: u32,
) -> Result<(), TreeError> {
    let n = b.len();
    fanout_sink(b, n, max_out_degree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Point2, Point3};

    #[test]
    fn attaches_everything_within_budget() {
        for deg in [1u32, 2, 5] {
            let pts = vec![Point2::new([1.0, 1.0]); 23];
            let mut b = TreeBuilder::new(Point2::ORIGIN, pts).max_out_degree(deg);
            fanout_chain(&mut b, deg).unwrap();
            let t = b.finish().unwrap();
            assert_eq!(t.len(), 23);
            t.validate(Some(deg)).unwrap();
        }
    }

    #[test]
    fn works_in_three_dimensions() {
        let pts = vec![Point3::ORIGIN; 9];
        let mut b = TreeBuilder::new(Point3::ORIGIN, pts).max_out_degree(2);
        fanout_chain(&mut b, 2).unwrap();
        b.finish().unwrap().validate(Some(2)).unwrap();
    }
}
