//! The paper's analytic bounds: equations (1), (2), (5), (7) and the
//! occupancy lemmas (Lemmas 1 and 2).
//!
//! All formulas are stated for a disk of radius `rho`; the paper's unit-disk
//! versions are recovered with `rho = 1`.

use omt_geom::RingSegment;

/// Arc length `Δ_i = 2π·ρ / √2^(k+i)` of a segment on circle `i` of the
/// `k`-ring polar grid over a disk of radius `rho` (Section III-E).
///
/// ```
/// use omt_core::bounds::delta;
/// // Δ_0 on the unit disk with k = 4 rings: 2π / 2² = π/2.
/// assert!((delta(4, 0, 1.0) - core::f64::consts::FRAC_PI_2).abs() < 1e-12);
/// ```
pub fn delta(k: u32, i: u32, rho: f64) -> f64 {
    core::f64::consts::TAU * rho / 2f64.powf((k + i) as f64 / 2.0)
}

/// `S_k = Σ_{i=1}^{k-1} Δ_i` — the total angular contribution of the inner
/// `k - 1` circles to the path-length bound (Section III-E).
///
/// Zero for `k ≤ 1`.
pub fn s_k(k: u32, rho: f64) -> f64 {
    (1..k).map(|i| delta(k, i, rho)).sum()
}

/// The upper bound of equation (7) evaluated at `j = 0` (the paper's choice
/// for Table I, since `Δ_0 ≥ Δ_j` for all `j`):
/// `ρ + c·Δ_0 + S_k`, where the arc coefficient `c` is 2 for the
/// out-degree-6 tree and 4 for the out-degree-2 tree (Section IV-A doubles
/// the arc contributions).
///
/// ```
/// use omt_core::bounds::upper_bound_eq7;
/// // Spot-check against Table I: at k = 4 the degree-6 bound is ≈ 6.59.
/// let b = upper_bound_eq7(4, 6, 1.0);
/// assert!((b - 6.593).abs() < 0.01, "{b}");
/// ```
///
/// # Panics
///
/// Panics if `max_out_degree < 2`.
pub fn upper_bound_eq7(k: u32, max_out_degree: u32, rho: f64) -> f64 {
    assert!(
        max_out_degree >= 2,
        "the paper's algorithms need degree >= 2"
    );
    let c = if max_out_degree >= 6 { 2.0 } else { 4.0 };
    rho + c * delta(k, 0, rho) + s_k(k, rho)
}

/// Equation (1): upper bound on any path produced by the out-degree-4
/// bisection algorithm inside a ring segment, for a source at radius `q`:
/// `max(R - q, q - r) + 2·R·a`.
pub fn bisection_bound_deg4(seg: &RingSegment, q: f64) -> f64 {
    radial_extent(seg, q) + 2.0 * seg.r_hi() * seg.angle_width()
}

/// Equation (2): same bound for the out-degree-2 variant, whose angular
/// term doubles: `max(R - q, q - r) + 4·R·a`.
pub fn bisection_bound_deg2(seg: &RingSegment, q: f64) -> f64 {
    radial_extent(seg, q) + 4.0 * seg.r_hi() * seg.angle_width()
}

fn radial_extent(seg: &RingSegment, q: f64) -> f64 {
    (seg.r_hi() - q).max(q - seg.r_lo())
}

/// Lemma 1: if `n` balls are thrown uniformly and independently into
/// `n^alpha` buckets, the probability that some bucket stays empty is at
/// most `n^alpha · e^(-n^(1-alpha))`.
///
/// The return value is clamped to `[0, 1]` (the raw bound can exceed 1 for
/// small `n`, where it is vacuous).
///
/// # Panics
///
/// Panics if `n == 0` or `alpha` is not finite.
pub fn empty_bucket_probability_bound(n: u64, alpha: f64) -> f64 {
    assert!(n > 0, "need at least one ball");
    assert!(alpha.is_finite(), "alpha must be finite");
    let nf = n as f64;
    let bound = nf.powf(alpha) * (-nf.powf(1.0 - alpha)).exp();
    bound.clamp(0.0, 1.0)
}

/// Lemma 2's guarantee: for `alpha ≤ 1/2` the Lemma-1 bound is at most
/// `e^(-1)` for every `n ≥ 1`. Exposed for tests and documentation.
pub const LEMMA2_CEILING: f64 = 0.36787944117144233; // e^(-1)

/// Equation (5): the whp lower bound `k ≥ ½·log2(n)` on the number of grid
/// rings, used to argue that `k → ∞` with `n`.
///
/// Returns 0 for `n ≤ 1`.
pub fn min_rings_estimate(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        ((n as f64).log2() / 2.0).floor() as u32
    }
}

/// The number of cells of the `k`-ring grid: `2^(k+1) - 1` (inner disk plus
/// `2^i` segments on each ring `1 ≤ i ≤ k`).
pub fn grid_cell_count(k: u32) -> u64 {
    (1u64 << (k + 1)) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_matches_closed_form() {
        // Δ_i = 2π / √2^(k+i) on the unit disk.
        let k = 6;
        for i in 0..=k {
            let expected = core::f64::consts::TAU / 2f64.sqrt().powi((k + i) as i32);
            assert!((delta(k, i, 1.0) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn delta_is_decreasing_in_i() {
        for i in 0..10 {
            assert!(delta(10, i, 1.0) > delta(10, i + 1, 1.0));
        }
    }

    #[test]
    fn s_k_is_sum_of_inner_arcs() {
        assert_eq!(s_k(0, 1.0), 0.0);
        assert_eq!(s_k(1, 1.0), 0.0);
        let k = 5;
        let manual: f64 = (1..k).map(|i| delta(k, i, 1.0)).sum();
        assert_eq!(s_k(k, 1.0), manual);
    }

    #[test]
    fn bound_reproduces_table1_row_100() {
        // Table I, n = 100: average rings 3.61, bounds 7.18 (deg 6) and
        // 10.74 (deg 2). Mixing k = 3 and k = 4 with weights (0.39, 0.61)
        // reproduces both printed values to ~1%.
        let mix =
            |deg: u32| 0.39 * upper_bound_eq7(3, deg, 1.0) + 0.61 * upper_bound_eq7(4, deg, 1.0);
        assert!((mix(6) - 7.18).abs() < 0.05, "deg6 {}", mix(6));
        assert!((mix(2) - 10.74).abs() < 0.12, "deg2 {}", mix(2));
    }

    #[test]
    fn bound_approaches_disk_radius() {
        // As k grows, the bound converges to rho from above (Theorem 2).
        let b20 = upper_bound_eq7(20, 6, 1.0);
        let b30 = upper_bound_eq7(30, 6, 1.0);
        assert!(b20 > b30 && b30 > 1.0);
        assert!(b30 - 1.0 < 1e-3);
    }

    #[test]
    fn bound_scales_linearly_with_rho() {
        let b1 = upper_bound_eq7(8, 6, 1.0);
        let b3 = upper_bound_eq7(8, 6, 3.0);
        assert!((b3 - 3.0 * b1).abs() < 1e-12);
    }

    #[test]
    fn degree_2_bound_exceeds_degree_6() {
        for k in 1..20 {
            assert!(upper_bound_eq7(k, 2, 1.0) > upper_bound_eq7(k, 6, 1.0));
        }
    }

    #[test]
    #[should_panic(expected = "degree >= 2")]
    fn bound_rejects_degree_1() {
        let _ = upper_bound_eq7(5, 1, 1.0);
    }

    #[test]
    fn bisection_bounds() {
        let seg = RingSegment::new(0.6, 1.0, 0.0, 0.1);
        // Source on the inner arc.
        let b4 = bisection_bound_deg4(&seg, 0.6);
        assert!((b4 - (0.4 + 2.0 * 0.1)).abs() < 1e-12);
        let b2 = bisection_bound_deg2(&seg, 0.6);
        assert!((b2 - (0.4 + 4.0 * 0.1)).abs() < 1e-12);
        // Source in the middle: radial extent is the max one-sided distance.
        let b_mid = bisection_bound_deg4(&seg, 0.9);
        assert!((b_mid - (0.3 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn lemma1_bound_behaviour() {
        // Exactly e^-1 at n = 1 (Lemma 2 is tight there), vanishing for
        // large n at alpha = 1/2.
        let p1 = empty_bucket_probability_bound(1, 0.5);
        assert!((p1 - LEMMA2_CEILING).abs() < 1e-15);
        let p = empty_bucket_probability_bound(1_000_000, 0.5);
        assert!(p < 1e-300, "{p}");
        // Monotone vanishing along a sample of sizes.
        let mut last = 1.0;
        for &n in &[10u64, 100, 1000, 10_000] {
            let p = empty_bucket_probability_bound(n, 0.5);
            assert!(p <= last);
            last = p;
        }
    }

    #[test]
    fn lemma2_ceiling_holds_for_alpha_half() {
        for n in 1..2000u64 {
            let p = empty_bucket_probability_bound(n, 0.5);
            assert!(p <= LEMMA2_CEILING + 1e-12, "n = {n}: {p} > e^-1");
        }
    }

    #[test]
    fn lemma2_fails_above_half() {
        // For alpha > 1/2 the e^-1 ceiling is violated at some small n,
        // which is exactly why the paper restricts to alpha <= 1/2.
        let worst = (1..100u64)
            .map(|n| empty_bucket_probability_bound(n, 0.9))
            .fold(0.0, f64::max);
        assert!(worst > LEMMA2_CEILING);
    }

    #[test]
    fn min_rings_eq5() {
        assert_eq!(min_rings_estimate(0), 0);
        assert_eq!(min_rings_estimate(1), 0);
        assert_eq!(min_rings_estimate(4), 1);
        assert_eq!(min_rings_estimate(100), 3);
        assert_eq!(min_rings_estimate(1_000_000), 9);
    }

    #[test]
    fn cell_count_formula() {
        assert_eq!(grid_cell_count(0), 1);
        assert_eq!(grid_cell_count(1), 3);
        assert_eq!(grid_cell_count(4), 31);
        // 1 (inner disk) + sum of 2^i segments.
        let manual: u64 = 1 + (1..=10).map(|i| 1u64 << i).sum::<u64>();
        assert_eq!(grid_cell_count(10), manual);
    }
}
