//! Error types for tree-construction algorithms.

use core::fmt;

use omt_tree::TreeError;

/// Errors raised by the algorithm builders in this crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The requested out-degree budget is below the algorithm's minimum
    /// (every algorithm in the paper needs at least 2).
    DegreeTooSmall {
        /// The requested budget.
        got: u32,
        /// The smallest budget the algorithm supports.
        min: u32,
    },
    /// An input point has a NaN or infinite coordinate.
    NonFinitePoint {
        /// Index of the offending point.
        index: usize,
    },
    /// The multicast source position has a NaN or infinite coordinate.
    NonFiniteSource,
    /// A host id passed to a dynamic-membership operation does not name a
    /// live host — it was never issued by this overlay or the host has
    /// already departed.
    UnknownHost {
        /// The raw id value, for diagnostics.
        id: u64,
    },
    /// An explicit ring-count override is infeasible for the input (some
    /// active non-outermost grid cell would be empty, which would break the
    /// degree guarantee).
    InfeasibleRings {
        /// The requested number of rings.
        requested: u32,
        /// The largest feasible number of rings for this input.
        feasible: u32,
    },
    /// The requested shard count for a sharded overlay is not a power of
    /// two in `1..=64` (shards map to binary polar sectors, so the count
    /// must match a sector split).
    BadShardCount {
        /// The requested number of shards.
        got: u32,
    },
    /// The input has more points than the arena's `u32` node-id space can
    /// address (`omt_tree::MAX_NODES`). Checked up front by the store
    /// builders so oversized inputs fail with a typed error instead of
    /// wrapping ids.
    TooManyPoints {
        /// The requested number of points.
        nodes: usize,
        /// The largest supported count ([`omt_tree::MAX_NODES`]).
        max: usize,
    },
    /// Internal tree construction failed. This indicates a bug in the
    /// algorithm implementation, never bad user input; it is surfaced
    /// instead of panicking so fuzzing can observe it.
    Internal(TreeError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DegreeTooSmall { got, min } => {
                write!(f, "out-degree budget {got} is below the minimum {min}")
            }
            Self::NonFinitePoint { index } => {
                write!(f, "point {index} has a non-finite coordinate")
            }
            Self::NonFiniteSource => write!(f, "source has a non-finite coordinate"),
            Self::UnknownHost { id } => {
                write!(f, "host id {id} is unknown or has already departed")
            }
            Self::InfeasibleRings {
                requested,
                feasible,
            } => write!(
                f,
                "ring override {requested} is infeasible; largest feasible is {feasible}"
            ),
            Self::BadShardCount { got } => {
                write!(f, "shard count {got} is not a power of two in 1..=64")
            }
            Self::TooManyPoints { nodes, max } => {
                write!(f, "{nodes} points exceed the u32 node-id space (max {max})")
            }
            Self::Internal(e) => write!(f, "internal tree construction error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Internal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TreeError> for BuildError {
    fn from(e: TreeError) -> Self {
        Self::Internal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(BuildError::DegreeTooSmall { got: 1, min: 2 }
            .to_string()
            .contains('1'));
        assert!(BuildError::NonFinitePoint { index: 3 }
            .to_string()
            .contains('3'));
        assert!(!BuildError::NonFiniteSource.to_string().is_empty());
        assert!(BuildError::UnknownHost { id: 42 }
            .to_string()
            .contains("42"));
        assert!(BuildError::InfeasibleRings {
            requested: 9,
            feasible: 4
        }
        .to_string()
        .contains('9'));
        assert!(BuildError::BadShardCount { got: 3 }
            .to_string()
            .contains('3'));
        assert!(BuildError::TooManyPoints {
            nodes: 5_000_000_000,
            max: omt_tree::MAX_NODES
        }
        .to_string()
        .contains("5000000000"));
    }

    #[test]
    fn from_tree_error_preserves_source() {
        use std::error::Error;
        let e = BuildError::from(TreeError::SelfLoop { index: 0 });
        assert!(e.source().is_some());
    }
}
