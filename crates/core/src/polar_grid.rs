//! Algorithm `Polar_Grid` (Section III of the paper): the asymptotically
//! optimal construction.
//!
//! The algorithm proceeds in three stages:
//!
//! 1. build an equal-area polar grid over the smallest disk centered at the
//!    source that covers all points, choosing the number of rings `k` as
//!    large as possible such that every *active* non-outermost cell is
//!    occupied (see [`crate::kselect`]);
//! 2. connect cell representatives in a binary core tree rooted at the
//!    source — each representative adopts the representatives of the two
//!    aligned cells on the next ring;
//! 3. connect the remaining points inside each cell with the bisection
//!    algorithm.
//!
//! With the 4-way bisection this yields out-degree ≤ 6 (2 core links +
//! 4 bisection links per representative); the out-degree-2 wiring of
//! Section IV-A threads the core through two designated in-cell points
//! instead. Because the source is the grid pole, the construction also
//! handles arbitrary convex regions with any interior source placement
//! (Section IV-C): the covering disk is built around the source, and the
//! active-cell rule tolerates the empty cells outside the region.

use omt_geom::{Point2, PointStore2, PolarPoint};
use omt_tree::{check_node_capacity, MulticastTree, NodeId, ParentRef, TreeArena, TreeBuilder};

use omt_geom::RingSegment;
use omt_tree::TreeError;

use crate::bisect2d::{
    attach, bisect2, bisect2_soa, bisect4, bisect4_soa, fanout_chain, PolarSlices, Scratch2,
};
use crate::bounds::upper_bound_eq7;
use crate::error::BuildError;
use crate::fanout::fanout_sink;
use crate::grid2::PolarGrid2;
use crate::kselect::{
    bucket_cells, cell_count, cell_index, finest_level, select_rings, Assignments,
};
use crate::sink::{unpack_parent, EdgeList, SharedArena, PACKED_SOURCE};

/// Chunk length for the batched SoA pre-passes (finiteness scan, lower
/// bound, polar-column ring/path binning): large enough to amortize the
/// dispatch, small enough to load-balance on skewed machines.
pub(crate) const SOA_CHUNK: usize = 1 << 16;

/// One deferred in-cell bisection, captured in deterministic cell order
/// during core wiring. Cells are independent by construction (a bisection
/// only touches the cell's own members under its own local root), so the
/// jobs can run on any thread: each one is a pure function of this data
/// plus the shared read-only polar coordinates.
struct CellJob {
    seg: RingSegment,
    parent: ParentRef,
    q: f64,
    idx: Vec<u32>,
}

/// Runs the per-cell bisections. With one thread each job runs directly
/// against the builder, in cell order — the sequential path. With more,
/// every job emits a private edge list on a worker thread and the lists
/// are replayed in the same cell order, producing the identical edge set
/// and therefore a bit-identical tree (see `crate::sink`).
fn run_cell_jobs(
    builder: &mut TreeBuilder<2>,
    polar: &[PolarPoint],
    jobs: Vec<CellJob>,
    binary: bool,
    threads: usize,
) -> Result<(), TreeError> {
    if threads <= 1 || jobs.len() <= 1 {
        for job in jobs {
            if binary {
                bisect2(builder, polar, job.seg, job.parent, job.q, job.idx)?;
            } else {
                bisect4(builder, polar, job.seg, job.parent, job.q, job.idx)?;
            }
        }
        return Ok(());
    }
    let lists = omt_par::par_map_indexed(&jobs, threads, |_, job| {
        let mut edges = EdgeList::default();
        let result = if binary {
            bisect2(
                &mut edges,
                polar,
                job.seg,
                job.parent,
                job.q,
                job.idx.clone(),
            )
        } else {
            bisect4(
                &mut edges,
                polar,
                job.seg,
                job.parent,
                job.q,
                job.idx.clone(),
            )
        };
        result.map(|()| edges.0)
    });
    for list in lists {
        for (child, parent) in list? {
            attach(builder, child as usize, parent)?;
        }
    }
    Ok(())
}

/// The SoA twin of [`CellJob`], packed to 20 bytes: the job names its cell
/// by `(ring, seg)` (the [`RingSegment`] geometry is pure arithmetic,
/// re-derived from the grid at dispatch), its local root by a packed
/// [`NodeId`] (`PACKED_SOURCE` = the source; the bisection offset `q` is
/// always that root's radius, 0 for the source), and its members by a
/// window `[start, end)` of the shared flat member array produced by the
/// counting-sort partition. `Copy`, so the parallel path can hand jobs to
/// workers without cloning index lists.
#[derive(Clone, Copy, Debug)]
struct SoaCellJob {
    ring: u32,
    seg: u32,
    parent: NodeId,
    start: u32,
    end: u32,
}

/// Runs the per-cell bisections of the arena/SoA path. Sequentially each
/// job bisects its window of the flat member array **in place** (one shared
/// scratch, zero per-job allocation). In parallel the window slices are
/// split out of the member array up front — the counting-sort windows are
/// sorted and disjoint, so this is a chain of `split_at_mut` — and every
/// worker writes **directly** into the shared arena through its exclusive
/// window and the [`SharedArena`] sink: no per-job edge buffers, no
/// sequential replay. The edge set (and therefore the finished tree) is
/// identical either way, because each attachment is a pure function of the
/// job and the shared read-only polar columns.
fn run_cell_jobs_soa(
    arena: &mut TreeArena<'_, 2>,
    polar: PolarSlices<'_>,
    grid: &PolarGrid2,
    jobs: Vec<SoaCellJob>,
    members: &mut [u32],
    binary: bool,
    threads: usize,
) -> Result<(), TreeError> {
    // Unpack the 20-byte job: cell geometry from pure grid arithmetic, and
    // the bisection offset `q` as the local root's radius (0 at the
    // source) — exactly the values the core pass computed when it emitted
    // the job.
    let job_geometry = |job: &SoaCellJob| -> (RingSegment, ParentRef, f64) {
        let seg = grid.segment(job.ring, u64::from(job.seg));
        let (parent, q) = if job.parent == PACKED_SOURCE {
            (ParentRef::Source, 0.0)
        } else {
            (
                ParentRef::Node(job.parent as usize),
                polar.radius_of(job.parent),
            )
        };
        (seg, parent, q)
    };
    if threads <= 1 || jobs.len() <= 1 {
        let mut scratch = Scratch2::default();
        for job in jobs {
            let (seg, parent, q) = job_geometry(&job);
            let idx = &mut members[job.start as usize..job.end as usize];
            if binary {
                bisect2_soa(arena, polar, seg, parent, q, idx, &mut scratch)?;
            } else {
                bisect4_soa(arena, polar, seg, parent, q, idx, &mut scratch)?;
            }
        }
        return Ok(());
    }
    // Slice the member array into exclusive per-job windows. Job windows
    // are emitted in ascending, non-overlapping order (cell order over a
    // counting-sort permutation), so a forward chain of `split_at_mut`
    // hands each job its own `&mut` window with no copying.
    let mut filled = 0usize;
    let mut work: Vec<(SoaCellJob, &mut [u32])> = Vec::with_capacity(jobs.len());
    {
        let mut rest: &mut [u32] = members;
        let mut base = 0usize;
        for job in jobs {
            let (start, end) = (job.start as usize, job.end as usize);
            debug_assert!(start >= base && end >= start, "job windows must ascend");
            let tail = rest.split_at_mut(start - base).1;
            let (win, tail) = tail.split_at_mut(end - start);
            base = end;
            rest = tail;
            filled += win.len();
            work.push((job, win));
        }
    }
    let shared: &TreeArena<'_, 2> = arena;
    let results = omt_par::par_map_with_mut(
        &mut work,
        threads,
        Scratch2::default,
        |scratch, _, (job, win)| {
            let (seg, parent, q) = job_geometry(job);
            let win: &mut [u32] = win;
            let mut sink = SharedArena(shared);
            if binary {
                bisect2_soa(&mut sink, polar, seg, parent, q, win, scratch)
            } else {
                bisect4_soa(&mut sink, polar, seg, parent, q, win, scratch)
            }
        },
    );
    for r in results {
        r?;
    }
    // Every window member was attached exactly once by its job; fold the
    // statically known total into the arena's counter (the parallel attach
    // methods leave it alone so the fill stays coordination-free).
    arena.add_attached(filled);
    Ok(())
}

/// How a cell representative is chosen — the paper uses the point closest
/// to the disk center ("on the inner arc of the segment"); the alternatives
/// exist for the ablation experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RepStrategy {
    /// The point closest to the midpoint of the cell's inner arc — the
    /// paper's rule read literally ("closest to the center on the inner
    /// arc of the segment"): minimal radius *and* central angle.
    #[default]
    InnerArcMid,
    /// The point with minimal radius (the reading the paper's analysis
    /// uses: "we pick the least-radius point").
    MinRadius,
    /// The point with maximal radius (ablation: pessimal-ish choice).
    MaxRadius,
    /// The first point in input order (ablation: arbitrary choice).
    First,
}

/// Diagnostics of a [`PolarGridBuilder`] run, matching the columns of
/// Table I in the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct PolarGridReport {
    /// The number of grid rings `k` ("Rings").
    pub rings: u32,
    /// The longest source-to-receiver delay in the tree ("Delay").
    pub delay: f64,
    /// The longest source-to-representative portion of any path ("Core").
    pub core_delay: f64,
    /// The analytic upper bound of equation (7) at `j = 0` ("Bound").
    pub bound: f64,
    /// The trivial lower bound on the optimum: the largest direct
    /// source-to-point distance (approaches the disk radius).
    pub lower_bound: f64,
    /// Total number of grid cells, `2^(k+1) - 1`.
    pub cells: usize,
    /// Number of cells containing at least one point.
    pub occupied_cells: usize,
}

/// Builder for the `Polar_Grid` algorithm.
///
/// # Examples
///
/// ```
/// use omt_core::PolarGridBuilder;
/// use omt_geom::{Disk, Point2, Region};
/// use omt_rng::rngs::SmallRng;
/// use omt_rng::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = SmallRng::seed_from_u64(5);
/// let points = Disk::unit().sample_n(&mut rng, 2000);
/// let (tree, report) = PolarGridBuilder::new()
///     .max_out_degree(6)
///     .build_with_report(Point2::ORIGIN, &points)?;
/// tree.validate(Some(6))?;
/// assert!(report.delay <= report.bound);
/// assert!(report.delay >= report.lower_bound);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolarGridBuilder {
    max_out_degree: u32,
    rings_override: Option<u32>,
    rep_strategy: RepStrategy,
    threads: Option<usize>,
}

impl Default for PolarGridBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PolarGridBuilder {
    /// Creates a builder with the paper's defaults: out-degree 6,
    /// automatic ring selection, inner-arc-midpoint representatives.
    pub fn new() -> Self {
        Self {
            max_out_degree: 6,
            rings_override: None,
            rep_strategy: RepStrategy::InnerArcMid,
            threads: None,
        }
    }

    /// Sets the out-degree budget. Budgets of 6 and above use the
    /// degree-6 construction (Section III); budgets 2–5 use the
    /// degree-2 wiring (Section IV-A). Budgets below 2 fail at build time.
    #[must_use]
    pub fn max_out_degree(mut self, budget: u32) -> Self {
        self.max_out_degree = budget;
        self
    }

    /// Forces a specific number of rings instead of the automatic maximal
    /// feasible choice. Fails at build time if infeasible.
    #[must_use]
    pub fn rings(mut self, k: u32) -> Self {
        self.rings_override = Some(k);
        self
    }

    /// Overrides the representative selection rule (for ablations).
    #[must_use]
    pub fn representative_strategy(mut self, strategy: RepStrategy) -> Self {
        self.rep_strategy = strategy;
        self
    }

    /// Pins the worker-thread count for the per-cell bisection phase.
    ///
    /// `1` forces the sequential path (no threads are spawned). Unset, the
    /// builder follows `OMT_THREADS` / the machine's available parallelism.
    /// The constructed tree is **bit-identical for every thread count** —
    /// cells are independent and results join in deterministic cell order —
    /// so this knob only affects wall-clock, never results.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Builds the multicast tree.
    ///
    /// # Errors
    ///
    /// See [`PolarGridBuilder::build_with_report`].
    pub fn build(&self, source: Point2, points: &[Point2]) -> Result<MulticastTree<2>, BuildError> {
        self.build_with_report(source, points).map(|(t, _)| t)
    }

    /// Builds the multicast tree and returns the Table-I diagnostics.
    ///
    /// # Errors
    ///
    /// * [`BuildError::DegreeTooSmall`] for out-degree budgets below 2;
    /// * [`BuildError::NonFiniteSource`] / [`BuildError::NonFinitePoint`]
    ///   for NaN or infinite coordinates;
    /// * [`BuildError::InfeasibleRings`] if a [`PolarGridBuilder::rings`]
    ///   override cannot keep every active interior cell occupied.
    pub fn build_with_report(
        &self,
        source: Point2,
        points: &[Point2],
    ) -> Result<(MulticastTree<2>, PolarGridReport), BuildError> {
        if self.max_out_degree < 2 {
            return Err(BuildError::DegreeTooSmall {
                got: self.max_out_degree,
                min: 2,
            });
        }
        if !source.is_finite() {
            return Err(BuildError::NonFiniteSource);
        }
        if let Some(bad) = points.iter().position(|p| !p.is_finite()) {
            return Err(BuildError::NonFinitePoint { index: bad });
        }
        let n = points.len();
        let _build_span = omt_obs::obs_span!("polar_grid/build");
        omt_obs::obs_count!("polar_grid/builds");
        let mut builder =
            TreeBuilder::new(source, points.to_vec()).max_out_degree(self.max_out_degree);
        if n == 0 {
            let tree = builder.finish()?;
            return Ok((
                tree,
                PolarGridReport {
                    rings: 0,
                    delay: 0.0,
                    core_delay: 0.0,
                    bound: 0.0,
                    lower_bound: 0.0,
                    cells: 1,
                    occupied_cells: 0,
                },
            ));
        }

        // Polar coordinates relative to the source (the grid pole).
        let partition_span = omt_obs::obs_span!("polar_grid/partition");
        let polar: Vec<PolarPoint> = points
            .iter()
            .map(|p| PolarPoint::from_cartesian(&(*p - source)))
            .collect();
        let lower_bound = polar.iter().map(|p| p.radius).fold(0.0, f64::max);
        if lower_bound == 0.0 {
            // Every point coincides with the source.
            fanout_chain(&mut builder, self.max_out_degree)?;
            let tree = builder.finish()?;
            return Ok((
                tree,
                PolarGridReport {
                    rings: 0,
                    delay: 0.0,
                    core_delay: 0.0,
                    bound: 0.0,
                    lower_bound: 0.0,
                    cells: 1,
                    occupied_cells: 1,
                },
            ));
        }
        // Covering disk radius: strictly above the farthest point so the
        // half-open outermost ring contains it.
        let rho = lower_bound * (1.0 + 1e-9);

        // Assign every point once at the finest level, then select k.
        let k_max = finest_level(n);
        let finest = PolarGrid2::new(k_max, rho);
        let scale = (1u64 << k_max) as f64 / core::f64::consts::TAU;
        let assignments = Assignments {
            k_max,
            ring: polar
                .iter()
                .map(|p| finest.ring_of_radius(p.radius))
                .collect(),
            path: polar
                .iter()
                .map(|p| ((p.angle * scale) as u64).min((1u64 << k_max) - 1) as u32)
                .collect(),
        };
        let (k_auto, _) = select_rings(&assignments);
        let k = match self.rings_override {
            None => k_auto,
            Some(req) => {
                if req <= k_auto {
                    req
                } else {
                    return Err(BuildError::InfeasibleRings {
                        requested: req,
                        feasible: k_auto,
                    });
                }
            }
        };

        let grid = PolarGrid2::new(k, rho);
        let deg6 = self.max_out_degree >= 6;

        // Bucket points per cell (counting sort into CSR lists).
        let cells = cell_count(k);
        let (counts, members) = bucket_cells(&assignments, k);
        let cell_members = |c: usize| &members[counts[c] as usize..counts[c + 1] as usize];
        let occupied_cells = (0..cells).filter(|&c| counts[c] != counts[c + 1]).count();
        omt_obs::obs_observe!("polar_grid/occupied_cells", occupied_cells as u64);
        drop(partition_span);

        // Wire the tree in two passes: a sequential core pass (cheap —
        // O(n) representative picks plus one edge per occupied cell) that
        // captures one bisection job per cell, then the job pass, which is
        // where the algorithm spends its time and where the worker pool
        // pays off. Cell order is fixed by the (ring, seg) sweep, so the
        // job list — and with it the final edge set — is the same for
        // every thread count.
        let threads = omt_par::resolve_threads(self.threads);
        let mut core_delay = 0.0f64;
        let mut jobs: Vec<CellJob> = Vec::new();
        if deg6 {
            let core_span = omt_obs::obs_span!("polar_grid/core");
            // rep_ref[cell] = the representative the cell's children attach to.
            let mut rep_ref: Vec<ParentRef> = vec![ParentRef::Source; cells];
            // Ring 0: the source is the representative; bisect the rest.
            jobs.push(CellJob {
                seg: grid.segment(0, 0),
                parent: ParentRef::Source,
                q: 0.0,
                idx: cell_members(0).to_vec(),
            });
            for ring in 1..=k {
                for seg in 0..(1u64 << ring) {
                    let c = cell_index(ring, seg);
                    let mem = cell_members(c);
                    if mem.is_empty() {
                        continue;
                    }
                    let cell_seg = grid.segment(ring, seg);
                    let inner_mid =
                        PolarPoint::new(cell_seg.r_lo(), cell_seg.arc().mid()).to_cartesian();
                    let rep = self.pick_rep(&polar, mem, inner_mid);
                    let (pr, ps) = grid.parent(ring, seg).expect("ring >= 1 has a parent");
                    attach(&mut builder, rep as usize, rep_ref[cell_index(pr, ps)])?;
                    core_delay =
                        core_delay.max(builder.depth_of(rep as usize).expect("just attached"));
                    rep_ref[c] = ParentRef::Node(rep as usize);
                    let rest: Vec<u32> = mem.iter().copied().filter(|&p| p != rep).collect();
                    jobs.push(CellJob {
                        seg: grid.segment(ring, seg),
                        parent: ParentRef::Node(rep as usize),
                        q: polar[rep as usize].radius,
                        idx: rest,
                    });
                }
            }
            drop(core_span);
            let _cells_span = omt_obs::obs_span!("polar_grid/cells");
            run_cell_jobs(&mut builder, &polar, jobs, false, threads)?;
        } else {
            let core_span = omt_obs::obs_span!("polar_grid/core");
            // Degree-2 wiring (Section IV-A): each cell exposes a
            // "connector" with spare budget 2 that adopts the
            // representatives of the cell's occupied children.
            let mut connector: Vec<ParentRef> = vec![ParentRef::Source; cells];
            // Ring 0 — the source is the representative.
            {
                let mem = cell_members(0);
                let has_core_children = k >= 1
                    && (!cell_members(cell_index(1, 0)).is_empty()
                        || !cell_members(cell_index(1, 1)).is_empty());
                let (conn, job) = self.wire_cell_deg2(
                    &mut builder,
                    &polar,
                    &grid,
                    0,
                    0,
                    ParentRef::Source,
                    0.0,
                    mem,
                    None,
                    has_core_children,
                )?;
                connector[0] = conn;
                jobs.extend(job);
            }
            for ring in 1..=k {
                for seg in 0..(1u64 << ring) {
                    let c = cell_index(ring, seg);
                    let mem = cell_members(c);
                    if mem.is_empty() {
                        continue;
                    }
                    let cell_seg = grid.segment(ring, seg);
                    let inner_mid =
                        PolarPoint::new(cell_seg.r_lo(), cell_seg.arc().mid()).to_cartesian();
                    let rep = self.pick_rep(&polar, mem, inner_mid);
                    let (pr, ps) = grid.parent(ring, seg).expect("ring >= 1 has a parent");
                    attach(&mut builder, rep as usize, connector[cell_index(pr, ps)])?;
                    core_delay =
                        core_delay.max(builder.depth_of(rep as usize).expect("just attached"));
                    let has_core_children = match grid.children(ring, seg) {
                        None => false,
                        Some(kids) => kids
                            .iter()
                            .any(|&(r, s)| !cell_members(cell_index(r, s)).is_empty()),
                    };
                    let (conn, job) = self.wire_cell_deg2(
                        &mut builder,
                        &polar,
                        &grid,
                        ring,
                        seg,
                        ParentRef::Node(rep as usize),
                        polar[rep as usize].radius,
                        mem,
                        Some(rep),
                        has_core_children,
                    )?;
                    connector[c] = conn;
                    jobs.extend(job);
                }
            }
            drop(core_span);
            let _cells_span = omt_obs::obs_span!("polar_grid/cells");
            run_cell_jobs(&mut builder, &polar, jobs, true, threads)?;
        }

        let _finish_span = omt_obs::obs_span!("polar_grid/finish");
        let tree = builder.finish()?;
        let delay = tree.radius();
        let report = PolarGridReport {
            rings: k,
            delay,
            core_delay,
            bound: upper_bound_eq7(k, self.max_out_degree, rho),
            lower_bound,
            cells,
            occupied_cells,
        };
        Ok((tree, report))
    }

    /// Builds the multicast tree from a structure-of-arrays point store
    /// (the million-scale path).
    ///
    /// # Errors
    ///
    /// See [`PolarGridBuilder::build_store_with_report`].
    pub fn build_store(&self, store: &PointStore2) -> Result<MulticastTree<2>, BuildError> {
        self.build_store_with_report(store).map(|(t, _)| t)
    }

    /// Builds the multicast tree from a structure-of-arrays point store and
    /// returns the Table-I diagnostics.
    ///
    /// This is the million-scale construction path: the store's coordinate
    /// columns are borrowed by an arena builder ([`omt_tree::TreeArena`] —
    /// preallocated flat arrays, no per-node allocation), the cell
    /// partition is the same counting sort as the legacy path, and the
    /// per-cell bisections run in place on windows of the flat member
    /// array with explicit work stacks. The result is **bit-identical** to
    /// [`PolarGridBuilder::build_with_report`] on the same input — same
    /// radii, same edge lists — for every thread count; the parity suite
    /// (`tests/arena_parity.rs`) enforces this.
    ///
    /// # Errors
    ///
    /// The same conditions as [`PolarGridBuilder::build_with_report`], in
    /// the same order.
    ///
    /// # Examples
    ///
    /// ```
    /// use omt_core::PolarGridBuilder;
    /// use omt_geom::{Disk, Point2, PointStore2, Region};
    /// use omt_rng::rngs::SmallRng;
    /// use omt_rng::SeedableRng;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut rng = SmallRng::seed_from_u64(5);
    /// let store = PointStore2::sample_region(Point2::ORIGIN, &Disk::unit(), &mut rng, 2000);
    /// let (tree, report) = PolarGridBuilder::new()
    ///     .max_out_degree(6)
    ///     .build_store_with_report(&store)?;
    /// tree.validate(Some(6))?;
    /// assert!(report.delay <= report.bound);
    ///
    /// // Bit-identical to the legacy array-of-structs path:
    /// let mut rng = SmallRng::seed_from_u64(5);
    /// let points = Disk::unit().sample_n(&mut rng, 2000);
    /// let legacy = PolarGridBuilder::new()
    ///     .max_out_degree(6)
    ///     .build(Point2::ORIGIN, &points)?;
    /// assert_eq!(tree, legacy);
    /// # Ok(())
    /// # }
    /// ```
    pub fn build_store_with_report(
        &self,
        store: &PointStore2,
    ) -> Result<(MulticastTree<2>, PolarGridReport), BuildError> {
        if self.max_out_degree < 2 {
            return Err(BuildError::DegreeTooSmall {
                got: self.max_out_degree,
                min: 2,
            });
        }
        let source = store.source();
        if !source.is_finite() {
            return Err(BuildError::NonFiniteSource);
        }
        let n = store.len();
        check_node_capacity(n).map_err(|_| BuildError::TooManyPoints {
            nodes: n,
            max: omt_tree::MAX_NODES,
        })?;
        let (xs, ys) = (store.xs(), store.ys());
        let threads = omt_par::resolve_threads(self.threads);
        // Chunked parallel finiteness scan: each chunk reports its first
        // offending index (or none), and the first `Some` in chunk order is
        // the global first — the same index the sequential scan finds.
        let chunk_starts: Vec<usize> = (0..n).step_by(SOA_CHUNK).collect();
        let first_bad = omt_par::par_map_indexed(&chunk_starts, threads, |_, &s| {
            let e = (s + SOA_CHUNK).min(n);
            (s..e).find(|&i| !(xs[i].is_finite() && ys[i].is_finite()))
        })
        .into_iter()
        .flatten()
        .next();
        if let Some(bad) = first_bad {
            return Err(BuildError::NonFinitePoint { index: bad });
        }
        let _build_span = omt_obs::obs_span!("polar_grid/build");
        omt_obs::obs_count!("polar_grid/builds");
        if n == 0 {
            let arena = TreeArena::new(source, [xs, ys]).max_out_degree(self.max_out_degree);
            let tree = arena.into_tree()?;
            return Ok((
                tree,
                PolarGridReport {
                    rings: 0,
                    delay: 0.0,
                    core_delay: 0.0,
                    bound: 0.0,
                    lower_bound: 0.0,
                    cells: 1,
                    occupied_cells: 0,
                },
            ));
        }

        // The store's polar columns are the precomputed source-relative
        // coordinates — bit-identical to the AoS conversion by the
        // `PointStore2` contract.
        let partition_span = omt_obs::obs_span!("polar_grid/partition");
        let polar = PolarSlices {
            radius: store.radius(),
            angle: store.angle(),
        };
        // Chunked parallel max: `f64::max` is associative over the finite,
        // non-negative radii, so folding per-chunk maxima in chunk order is
        // bit-identical to the flat fold.
        let lower_bound = omt_par::par_map_indexed(&chunk_starts, threads, |_, &s| {
            let e = (s + SOA_CHUNK).min(n);
            polar.radius[s..e].iter().copied().fold(0.0, f64::max)
        })
        .into_iter()
        .fold(0.0, f64::max);
        if lower_bound == 0.0 {
            // Every point coincides with the source.
            let mut arena = TreeArena::new(source, [xs, ys]).max_out_degree(self.max_out_degree);
            fanout_sink(&mut arena, n, self.max_out_degree)?;
            let tree = arena.into_tree()?;
            return Ok((
                tree,
                PolarGridReport {
                    rings: 0,
                    delay: 0.0,
                    core_delay: 0.0,
                    bound: 0.0,
                    lower_bound: 0.0,
                    cells: 1,
                    occupied_cells: 1,
                },
            ));
        }
        // Covering disk radius: strictly above the farthest point so the
        // half-open outermost ring contains it.
        let rho = lower_bound * (1.0 + 1e-9);

        // Assign every point once at the finest level, then select k. The
        // ring/path binning is pure per-point math (a log2-guess ring locate
        // plus an angle-to-bits scale), batched over disjoint column chunks.
        let k_max = finest_level(n);
        let finest = PolarGrid2::new(k_max, rho);
        let scale = (1u64 << k_max) as f64 / core::f64::consts::TAU;
        let mut ring = vec![0u32; n];
        let mut path = vec![0u32; n];
        {
            let mut chunks: Vec<(usize, &mut [u32], &mut [u32])> = ring
                .chunks_mut(SOA_CHUNK)
                .zip(path.chunks_mut(SOA_CHUNK))
                .enumerate()
                .map(|(ci, (r, p))| (ci * SOA_CHUNK, r, p))
                .collect();
            omt_par::par_map_indexed_mut(&mut chunks, threads, |_, (base, rc, pc)| {
                for j in 0..rc.len() {
                    let i = *base + j;
                    rc[j] = finest.ring_of_radius(polar.radius[i]);
                    pc[j] = ((polar.angle[i] * scale) as u64).min((1u64 << k_max) - 1) as u32;
                }
            });
        }
        let assignments = Assignments { k_max, ring, path };
        let (k_auto, _) = select_rings(&assignments);
        let k = match self.rings_override {
            None => k_auto,
            Some(req) => {
                if req <= k_auto {
                    req
                } else {
                    return Err(BuildError::InfeasibleRings {
                        requested: req,
                        feasible: k_auto,
                    });
                }
            }
        };

        let grid = PolarGrid2::new(k, rho);
        let deg6 = self.max_out_degree >= 6;

        // Bucket points per cell (counting sort into CSR lists). `members`
        // stays mutable: every downstream stage — representative removal,
        // connector picks, in-place bisection — permutes windows of this
        // one flat array instead of materializing per-cell Vecs. The
        // assignments (two u32 columns) are dead after this and freed
        // before the arena's node arrays are allocated, keeping them out of
        // the peak-RSS window.
        let cells = cell_count(k);
        let (counts, mut members) = bucket_cells(&assignments, k);
        drop(assignments);
        let cell_range = |c: usize| (counts[c] as usize, counts[c + 1] as usize);
        let occupied_cells = (0..cells).filter(|&c| counts[c] != counts[c + 1]).count();
        omt_obs::obs_observe!("polar_grid/occupied_cells", occupied_cells as u64);
        drop(partition_span);

        let mut arena = TreeArena::new(source, [xs, ys]).max_out_degree(self.max_out_degree);

        // Representative pre-pass: the dominant per-cell cost of the core
        // pass is the representative pick — a `sin_cos` plus a distance
        // scan over the whole window — and it reads only the window's
        // original counting-sort order (a cell's window is first permuted
        // during its *own* core step, after its pick). So the picks for
        // every occupied ring ≥ 1 cell run in parallel up front, and the
        // sequential core pass consumes them via a cursor.
        let rep_span = omt_obs::obs_span!("polar_grid/reps");
        let occupied_list: Vec<(u32, u32)> = (1..=k)
            .flat_map(|ring| (0..(1u64 << ring)).map(move |seg| (ring, seg as u32)))
            .filter(|&(ring, seg)| {
                let c = cell_index(ring, u64::from(seg));
                counts[c] != counts[c + 1]
            })
            .collect();
        let reps: Vec<u32> = {
            let members_ro: &[u32] = &members;
            omt_par::par_map_indexed(&occupied_list, threads, |_, &(ring, seg)| {
                let (cs, ce) = cell_range(cell_index(ring, u64::from(seg)));
                let cell_seg = grid.segment(ring, u64::from(seg));
                let inner_mid =
                    PolarPoint::new(cell_seg.r_lo(), cell_seg.arc().mid()).to_cartesian();
                self.pick_rep_soa(polar, &members_ro[cs..ce], inner_mid)
            })
        };
        drop(occupied_list);
        drop(rep_span);

        // Same two-pass wiring as the legacy path: a sequential core pass
        // capturing one window-job per cell, then the bisection pass.
        let mut core_delay = 0.0f64;
        let mut jobs: Vec<SoaCellJob> = Vec::with_capacity(reps.len() + 1);
        let mut next_rep = reps.iter().copied();
        if deg6 {
            let core_span = omt_obs::obs_span!("polar_grid/core");
            // rep_ref[cell] = the representative the cell's children attach to.
            let mut rep_ref: Vec<NodeId> = vec![PACKED_SOURCE; cells];
            // Ring 0: the source is the representative; bisect the rest.
            jobs.push(SoaCellJob {
                ring: 0,
                seg: 0,
                parent: PACKED_SOURCE,
                start: counts[0],
                end: counts[1],
            });
            for ring in 1..=k {
                for seg in 0..(1u64 << ring) {
                    let c = cell_index(ring, seg);
                    let (cs, ce) = cell_range(c);
                    if cs == ce {
                        continue;
                    }
                    let rep = next_rep.next().expect("one pre-picked rep per cell");
                    let (pr, ps) = grid.parent(ring, seg).expect("ring >= 1 has a parent");
                    attach(
                        &mut arena,
                        rep as usize,
                        unpack_parent(rep_ref[cell_index(pr, ps)]),
                    )?;
                    core_delay =
                        core_delay.max(arena.depth_of(rep as usize).expect("just attached"));
                    rep_ref[c] = rep;
                    // Order-preserving removal of the representative from
                    // the window (the legacy path's `filter(p != rep)`):
                    // rotate it to the back and shrink the job range.
                    let sub = &mut members[cs..ce];
                    let pos = sub.iter().position(|&p| p == rep).expect("rep is a member");
                    sub[pos..].rotate_left(1);
                    jobs.push(SoaCellJob {
                        ring,
                        seg: seg as u32,
                        parent: rep,
                        start: cs as u32,
                        end: (ce - 1) as u32,
                    });
                }
            }
            drop(core_span);
            drop(rep_ref);
        } else {
            let core_span = omt_obs::obs_span!("polar_grid/core");
            // Degree-2 wiring (Section IV-A); see `wire_cell_deg2`. The
            // connector and bisection-source picks stay in the sequential
            // core pass: unlike the rep pick they run over a window the
            // pass has already permuted, so hoisting them would change the
            // comparison order and break bit parity.
            let mut connector: Vec<NodeId> = vec![PACKED_SOURCE; cells];
            // Ring 0 — the source is the representative.
            {
                let nonempty = |c: usize| counts[c] != counts[c + 1];
                let has_core_children =
                    k >= 1 && (nonempty(cell_index(1, 0)) || nonempty(cell_index(1, 1)));
                let (cs, ce) = cell_range(0);
                let (conn, job) = self.wire_cell_deg2_soa(
                    &mut arena,
                    polar,
                    0,
                    0,
                    PACKED_SOURCE,
                    &mut members,
                    cs,
                    ce,
                    None,
                    has_core_children,
                )?;
                connector[0] = conn;
                jobs.extend(job);
            }
            for ring in 1..=k {
                for seg in 0..(1u64 << ring) {
                    let c = cell_index(ring, seg);
                    let (cs, ce) = cell_range(c);
                    if cs == ce {
                        continue;
                    }
                    let rep = next_rep.next().expect("one pre-picked rep per cell");
                    let (pr, ps) = grid.parent(ring, seg).expect("ring >= 1 has a parent");
                    attach(
                        &mut arena,
                        rep as usize,
                        unpack_parent(connector[cell_index(pr, ps)]),
                    )?;
                    core_delay =
                        core_delay.max(arena.depth_of(rep as usize).expect("just attached"));
                    let has_core_children = match grid.children(ring, seg) {
                        None => false,
                        Some(kids) => kids.iter().any(|&(r, s)| {
                            let cc = cell_index(r, s);
                            counts[cc] != counts[cc + 1]
                        }),
                    };
                    let (conn, job) = self.wire_cell_deg2_soa(
                        &mut arena,
                        polar,
                        ring,
                        seg as u32,
                        rep,
                        &mut members,
                        cs,
                        ce,
                        Some(rep),
                        has_core_children,
                    )?;
                    connector[c] = conn;
                    jobs.extend(job);
                }
            }
            drop(core_span);
            drop(connector);
        }
        debug_assert!(next_rep.next().is_none(), "every pre-picked rep consumed");
        drop(reps);
        drop(counts);

        {
            let _cells_span = omt_obs::obs_span!("polar_grid/cells");
            run_cell_jobs_soa(&mut arena, polar, &grid, jobs, &mut members, !deg6, threads)?;
        }
        drop(members);

        let _finish_span = omt_obs::obs_span!("polar_grid/finish");
        let tree = arena.into_tree()?;
        let delay = tree.radius();
        let report = PolarGridReport {
            rings: k,
            delay,
            core_delay,
            bound: upper_bound_eq7(k, self.max_out_degree, rho),
            lower_bound,
            cells,
            occupied_cells,
        };
        Ok((tree, report))
    }

    /// SoA twin of [`PolarGridBuilder::pick_rep`]: identical comparator
    /// expressions and tie rules over the slice view.
    fn pick_rep_soa(&self, polar: PolarSlices<'_>, members: &[u32], inner_mid: Point2) -> u32 {
        debug_assert!(!members.is_empty());
        match self.rep_strategy {
            RepStrategy::InnerArcMid => *members
                .iter()
                .min_by(|&&a, &&b| {
                    let da = polar.get(a).to_cartesian().distance_squared(&inner_mid);
                    let db = polar.get(b).to_cartesian().distance_squared(&inner_mid);
                    da.total_cmp(&db)
                })
                .expect("nonempty"),
            RepStrategy::MinRadius => *members
                .iter()
                .min_by(|&&a, &&b| polar.radius_of(a).total_cmp(&polar.radius_of(b)))
                .expect("nonempty"),
            RepStrategy::MaxRadius => *members
                .iter()
                .max_by(|&&a, &&b| polar.radius_of(a).total_cmp(&polar.radius_of(b)))
                .expect("nonempty"),
            RepStrategy::First => members[0],
        }
    }

    /// SoA twin of [`PolarGridBuilder::wire_cell_deg2`], operating in place
    /// on the cell's window `[cs, ce)` of the flat member array.
    ///
    /// The legacy `Vec` manipulations map onto window operations that
    /// provably preserve the surviving member order: the `filter(p != rep)`
    /// copy becomes a rotate-to-back, and each `swap_remove` becomes a
    /// swap-to-back plus a window shrink.
    #[allow(clippy::too_many_arguments)]
    fn wire_cell_deg2_soa(
        &self,
        arena: &mut TreeArena<'_, 2>,
        polar: PolarSlices<'_>,
        ring: u32,
        seg: u32,
        rep_ref: NodeId,
        members: &mut [u32],
        cs: usize,
        ce: usize,
        rep: Option<u32>,
        has_core_children: bool,
    ) -> Result<(NodeId, Option<SoaCellJob>), BuildError> {
        // The rep's radius is derivable from the packed reference: the
        // source sits at radius 0, anything else is a point id.
        let rep_radius = if rep_ref == PACKED_SOURCE {
            0.0
        } else {
            polar.radius_of(rep_ref)
        };
        // Drop the representative from the window, preserving order.
        let mut end = ce;
        if let Some(r) = rep {
            let sub = &mut members[cs..end];
            let pos = sub.iter().position(|&p| p == r).expect("rep is a member");
            sub[pos..].rotate_left(1);
            end -= 1;
        }
        match end - cs {
            0 => {
                // Case 1: the representative alone (or the bare source for
                // the inner disk); it has both links spare.
                Ok((rep_ref, None))
            }
            1 => {
                // Case 2: rep -> other; the other point becomes the
                // connector with both links spare.
                let other = members[cs];
                attach(arena, other as usize, unpack_parent(rep_ref))?;
                Ok((other, None))
            }
            _ => {
                // Case 3: rep -> {bisection source, connector}; the
                // connector keeps both links for the child cells.
                let connector = if has_core_children {
                    let rep_pos = if rep_ref == PACKED_SOURCE {
                        omt_geom::Point2::ORIGIN
                    } else {
                        polar.get(rep_ref).to_cartesian()
                    };
                    let pos = members[cs..end]
                        .iter()
                        .enumerate()
                        .min_by(|a, b| {
                            let da = polar.get(*a.1).to_cartesian().distance_squared(&rep_pos);
                            let db = polar.get(*b.1).to_cartesian().distance_squared(&rep_pos);
                            da.total_cmp(&db)
                        })
                        .map(|(i, _)| i)
                        .expect("nonempty");
                    let sub = &mut members[cs..end];
                    let last = sub.len() - 1;
                    sub.swap(pos, last);
                    let x = sub[last];
                    end -= 1;
                    attach(arena, x as usize, unpack_parent(rep_ref))?;
                    Some(x)
                } else {
                    None
                };
                let mut job = None;
                if end > cs {
                    // Bisection source: radius closest to the representative.
                    let pos = members[cs..end]
                        .iter()
                        .enumerate()
                        .min_by(|a, b| {
                            (polar.radius_of(*a.1) - rep_radius)
                                .abs()
                                .total_cmp(&(polar.radius_of(*b.1) - rep_radius).abs())
                        })
                        .map(|(i, _)| i)
                        .expect("nonempty");
                    let sub = &mut members[cs..end];
                    let last = sub.len() - 1;
                    sub.swap(pos, last);
                    let s = sub[last];
                    end -= 1;
                    attach(arena, s as usize, unpack_parent(rep_ref))?;
                    job = Some(SoaCellJob {
                        ring,
                        seg,
                        parent: s,
                        start: cs as u32,
                        end: end as u32,
                    });
                }
                Ok((connector.unwrap_or(rep_ref), job))
            }
        }
    }

    /// Chooses the representative of a non-empty cell; `inner_mid` is the
    /// midpoint of the cell's inner arc in the source-relative frame.
    fn pick_rep(&self, polar: &[PolarPoint], members: &[u32], inner_mid: Point2) -> u32 {
        debug_assert!(!members.is_empty());
        match self.rep_strategy {
            RepStrategy::InnerArcMid => *members
                .iter()
                .min_by(|&&a, &&b| {
                    let da = polar[a as usize]
                        .to_cartesian()
                        .distance_squared(&inner_mid);
                    let db = polar[b as usize]
                        .to_cartesian()
                        .distance_squared(&inner_mid);
                    da.total_cmp(&db)
                })
                .expect("nonempty"),
            RepStrategy::MinRadius => *members
                .iter()
                .min_by(|&&a, &&b| {
                    polar[a as usize]
                        .radius
                        .total_cmp(&polar[b as usize].radius)
                })
                .expect("nonempty"),
            RepStrategy::MaxRadius => *members
                .iter()
                .max_by(|&&a, &&b| {
                    polar[a as usize]
                        .radius
                        .total_cmp(&polar[b as usize].radius)
                })
                .expect("nonempty"),
            RepStrategy::First => members[0],
        }
    }

    /// Wires the scaffold of one cell in the degree-2 scheme and returns
    /// the cell's connector — the node (or source) with ≥ 2 spare
    /// out-links that will adopt the representatives of the occupied child
    /// cells — plus the deferred in-cell bisection job, if the cell has
    /// enough points to need one.
    ///
    /// `rep` is `None` for the inner disk (the source is the
    /// representative there and `rep_ref` is `ParentRef::Source`).
    #[allow(clippy::too_many_arguments)]
    fn wire_cell_deg2(
        &self,
        builder: &mut TreeBuilder<2>,
        polar: &[PolarPoint],
        grid: &PolarGrid2,
        ring: u32,
        seg: u64,
        rep_ref: ParentRef,
        rep_radius: f64,
        members: &[u32],
        rep: Option<u32>,
        has_core_children: bool,
    ) -> Result<(ParentRef, Option<CellJob>), BuildError> {
        // The points still to be wired inside the cell.
        let mut rest: Vec<u32> = members
            .iter()
            .copied()
            .filter(|&p| Some(p) != rep)
            .collect();
        match rest.len() {
            0 => {
                // Case 1: the representative alone (or the bare source for
                // the inner disk); it has both links spare.
                Ok((rep_ref, None))
            }
            1 => {
                // Case 2: rep -> other; the other point becomes the
                // connector with both links spare.
                let other = rest[0];
                attach(builder, other as usize, rep_ref)?;
                Ok((ParentRef::Node(other as usize), None))
            }
            _ => {
                // Case 3: rep -> {bisection source, connector}; the
                // connector keeps both links for the child cells. When the
                // cell has no occupied children the connector is skipped
                // and every spare point goes through the bisection.
                let connector = if has_core_children {
                    // The point nearest the representative: the extra
                    // rep -> connector hop stays short, so the core costs
                    // roughly one degree-6 hop per ring plus a local step.
                    let rep_pos = match rep_ref {
                        ParentRef::Source => omt_geom::Point2::ORIGIN,
                        ParentRef::Node(r) => polar[r].to_cartesian(),
                    };
                    let pos = rest
                        .iter()
                        .enumerate()
                        .min_by(|a, b| {
                            let da = polar[*a.1 as usize]
                                .to_cartesian()
                                .distance_squared(&rep_pos);
                            let db = polar[*b.1 as usize]
                                .to_cartesian()
                                .distance_squared(&rep_pos);
                            da.total_cmp(&db)
                        })
                        .map(|(i, _)| i)
                        .expect("nonempty");
                    let x = rest.swap_remove(pos);
                    attach(builder, x as usize, rep_ref)?;
                    Some(ParentRef::Node(x as usize))
                } else {
                    None
                };
                let mut job = None;
                if !rest.is_empty() {
                    // Bisection source: radius closest to the representative.
                    let pos = rest
                        .iter()
                        .enumerate()
                        .min_by(|a, b| {
                            (polar[*a.1 as usize].radius - rep_radius)
                                .abs()
                                .total_cmp(&(polar[*b.1 as usize].radius - rep_radius).abs())
                        })
                        .map(|(i, _)| i)
                        .expect("nonempty");
                    let s = rest.swap_remove(pos);
                    attach(builder, s as usize, rep_ref)?;
                    job = Some(CellJob {
                        seg: grid.segment(ring, seg),
                        parent: ParentRef::Node(s as usize),
                        q: polar[s as usize].radius,
                        idx: rest,
                    });
                }
                Ok((connector.unwrap_or(rep_ref), job))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{BoxRegion, Disk, Point, Region, Translated};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    fn disk_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = SmallRng::seed_from_u64(seed);
        Disk::unit().sample_n(&mut rng, n)
    }

    #[test]
    fn degree6_tree_is_valid_and_within_bounds() {
        for n in [1usize, 2, 3, 10, 100, 2000] {
            let pts = disk_points(n, n as u64);
            let (tree, report) = PolarGridBuilder::new()
                .build_with_report(Point2::ORIGIN, &pts)
                .unwrap();
            assert_eq!(tree.len(), n);
            tree.validate(Some(6)).unwrap();
            assert!(
                report.delay <= report.bound + 1e-9,
                "n={n}: delay {} > bound {}",
                report.delay,
                report.bound
            );
            assert!(report.delay >= report.lower_bound - 1e-12);
            assert!((report.delay - tree.radius()).abs() < 1e-12);
        }
    }

    #[test]
    fn degree2_tree_is_valid_and_within_bounds() {
        for n in [1usize, 2, 3, 4, 10, 100, 2000] {
            let pts = disk_points(n, 50 + n as u64);
            let (tree, report) = PolarGridBuilder::new()
                .max_out_degree(2)
                .build_with_report(Point2::ORIGIN, &pts)
                .unwrap();
            assert_eq!(tree.len(), n);
            tree.validate(Some(2)).unwrap();
            assert!(
                report.delay <= report.bound + 1e-9,
                "n={n}: delay {} > bound {}",
                report.delay,
                report.bound
            );
        }
    }

    #[test]
    fn delay_converges_toward_lower_bound() {
        // Theorem 2: the radius approaches the optimum as n grows.
        let mut last_ratio = f64::INFINITY;
        for (n, seed) in [(100usize, 1u64), (1000, 2), (10_000, 3)] {
            let pts = disk_points(n, seed);
            let (_, report) = PolarGridBuilder::new()
                .build_with_report(Point2::ORIGIN, &pts)
                .unwrap();
            let ratio = report.delay / report.lower_bound;
            assert!(
                ratio < last_ratio + 0.05,
                "n={n}: ratio {ratio} not shrinking"
            );
            last_ratio = ratio;
        }
        assert!(last_ratio < 1.2, "ratio at n=10000 is {last_ratio}");
    }

    #[test]
    fn rings_grow_logarithmically() {
        // Equation (5): k >= 1/2 log2 n with high probability.
        for (n, seed) in [(100usize, 7u64), (1000, 8), (10_000, 9)] {
            let pts = disk_points(n, seed);
            let (_, report) = PolarGridBuilder::new()
                .build_with_report(Point2::ORIGIN, &pts)
                .unwrap();
            let floor = crate::bounds::min_rings_estimate(n as u64);
            assert!(
                report.rings >= floor,
                "n={n}: rings {} below eq-5 floor {floor}",
                report.rings
            );
            // And not absurdly large either (cells need points).
            assert!((1u64 << report.rings) <= 2 * n as u64 + 2);
        }
    }

    #[test]
    fn rings_override() {
        let pts = disk_points(500, 4);
        let (_, auto) = PolarGridBuilder::new()
            .build_with_report(Point2::ORIGIN, &pts)
            .unwrap();
        // A smaller k is always feasible.
        let (tree, forced) = PolarGridBuilder::new()
            .rings(auto.rings - 1)
            .build_with_report(Point2::ORIGIN, &pts)
            .unwrap();
        assert_eq!(forced.rings, auto.rings - 1);
        tree.validate(Some(6)).unwrap();
        // A much larger k is infeasible.
        let err = PolarGridBuilder::new()
            .rings(auto.rings + 5)
            .build_with_report(Point2::ORIGIN, &pts)
            .unwrap_err();
        assert!(matches!(err, BuildError::InfeasibleRings { .. }));
    }

    #[test]
    fn rings_zero_override_is_pure_bisection() {
        let pts = disk_points(200, 12);
        let (tree, report) = PolarGridBuilder::new()
            .rings(0)
            .build_with_report(Point2::ORIGIN, &pts)
            .unwrap();
        assert_eq!(report.rings, 0);
        assert_eq!(report.cells, 1);
        tree.validate(Some(6)).unwrap();
    }

    #[test]
    fn rep_strategies_all_yield_valid_trees() {
        let pts = disk_points(800, 21);
        for strategy in [
            RepStrategy::MinRadius,
            RepStrategy::MaxRadius,
            RepStrategy::First,
        ] {
            for deg in [2, 6] {
                let tree = PolarGridBuilder::new()
                    .max_out_degree(deg)
                    .representative_strategy(strategy)
                    .build(Point2::ORIGIN, &pts)
                    .unwrap();
                tree.validate(Some(deg)).unwrap();
            }
        }
    }

    #[test]
    fn min_radius_reps_beat_max_radius_reps() {
        // The paper's rule should not be worse than the adversarial one on
        // average; check a single decently-sized instance.
        let pts = disk_points(5000, 33);
        let (_, good) = PolarGridBuilder::new()
            .build_with_report(Point2::ORIGIN, &pts)
            .unwrap();
        let (_, bad) = PolarGridBuilder::new()
            .representative_strategy(RepStrategy::MaxRadius)
            .build_with_report(Point2::ORIGIN, &pts)
            .unwrap();
        assert!(
            good.delay <= bad.delay * 1.05,
            "{} vs {}",
            good.delay,
            bad.delay
        );
    }

    #[test]
    fn degree_validation() {
        let pts = disk_points(10, 1);
        assert!(matches!(
            PolarGridBuilder::new()
                .max_out_degree(1)
                .build(Point2::ORIGIN, &pts),
            Err(BuildError::DegreeTooSmall { got: 1, min: 2 })
        ));
        for deg in [2, 3, 4, 5, 6, 7, 16] {
            let tree = PolarGridBuilder::new()
                .max_out_degree(deg)
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            tree.validate(Some(deg)).unwrap();
        }
    }

    #[test]
    fn non_finite_rejected() {
        assert!(matches!(
            PolarGridBuilder::new().build(Point2::new([f64::NAN, 0.0]), &[]),
            Err(BuildError::NonFiniteSource)
        ));
        assert!(matches!(
            PolarGridBuilder::new().build(Point2::ORIGIN, &[Point2::new([1.0, f64::NAN])]),
            Err(BuildError::NonFinitePoint { index: 0 })
        ));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let (tree, report) = PolarGridBuilder::new()
            .build_with_report(Point2::ORIGIN, &[])
            .unwrap();
        assert!(tree.is_empty());
        assert_eq!(report.rings, 0);

        // All points at the source.
        let pts = vec![Point2::new([2.0, 2.0]); 25];
        let (tree, report) = PolarGridBuilder::new()
            .max_out_degree(2)
            .build_with_report(Point2::new([2.0, 2.0]), &pts)
            .unwrap();
        assert_eq!(tree.len(), 25);
        assert_eq!(tree.radius(), 0.0);
        assert_eq!(report.delay, 0.0);
        tree.validate(Some(2)).unwrap();
    }

    #[test]
    fn duplicated_points_terminate_and_validate() {
        let mut pts = disk_points(50, 5);
        let dup = pts[7];
        pts.extend(std::iter::repeat_n(dup, 40));
        for deg in [2, 6] {
            let tree = PolarGridBuilder::new()
                .max_out_degree(deg)
                .build(Point2::ORIGIN, &pts)
                .unwrap();
            assert_eq!(tree.len(), 90);
            tree.validate(Some(deg)).unwrap();
        }
    }

    #[test]
    fn offset_source_in_disk() {
        // Arbitrary source placement inside the region (Section IV-C).
        let pts = disk_points(3000, 17);
        let source = Point2::new([0.4, -0.3]);
        for deg in [2, 6] {
            let (tree, report) = PolarGridBuilder::new()
                .max_out_degree(deg)
                .build_with_report(source, &pts)
                .unwrap();
            tree.validate(Some(deg)).unwrap();
            assert!(report.delay <= report.bound + 1e-9);
            // Still near-optimal: within 2x of the covering radius.
            assert!(report.delay <= 2.0 * report.lower_bound);
        }
    }

    #[test]
    fn square_region_with_corner_source() {
        // Convex region, source near a corner: most of the covering disk is
        // empty, exercising the active-cell rule.
        let mut rng = SmallRng::seed_from_u64(88);
        let square = BoxRegion::new(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
        let pts = square.sample_n(&mut rng, 4000);
        let source = Point2::new([0.05, 0.05]);
        for deg in [2, 6] {
            let (tree, report) = PolarGridBuilder::new()
                .max_out_degree(deg)
                .build_with_report(source, &pts)
                .unwrap();
            tree.validate(Some(deg)).unwrap();
            assert!(report.delay <= report.bound + 1e-9);
            assert!(
                report.delay <= 2.0 * report.lower_bound,
                "deg {deg}: delay {} vs lb {}",
                report.delay,
                report.lower_bound
            );
        }
    }

    #[test]
    fn translated_region_far_from_origin() {
        // The grid pole is the source, wherever it is in absolute terms.
        let mut rng = SmallRng::seed_from_u64(3);
        let region = Translated::new(Disk::unit(), Point2::new([100.0, -50.0]));
        let pts = region.sample_n(&mut rng, 1000);
        let (tree, report) = PolarGridBuilder::new()
            .build_with_report(Point2::new([100.0, -50.0]), &pts)
            .unwrap();
        tree.validate(Some(6)).unwrap();
        assert!(report.delay <= report.bound + 1e-9);
        assert!(report.lower_bound <= 1.0 + 1e-9);
    }

    #[test]
    fn report_cell_accounting() {
        let pts = disk_points(1000, 2);
        let (_, report) = PolarGridBuilder::new()
            .build_with_report(Point2::ORIGIN, &pts)
            .unwrap();
        assert_eq!(report.cells, (1usize << (report.rings + 1)) - 1);
        assert!(report.occupied_cells <= report.cells);
        // Interior cells are all occupied, so at least 2^k - 1 cells are.
        assert!(report.occupied_cells >= (1usize << report.rings) - 1);
        assert!(report.core_delay <= report.delay + 1e-12);
    }

    #[test]
    fn clustered_input_far_from_source() {
        // A tight cluster at distance 1: optimal radius ~1; the algorithm
        // must cope with almost every cell being inactive.
        let mut rng = SmallRng::seed_from_u64(14);
        let cluster = Translated::new(Disk::new(Point2::ORIGIN, 0.01), Point2::new([1.0, 0.0]));
        let pts = cluster.sample_n(&mut rng, 500);
        for deg in [2, 6] {
            let (tree, report) = PolarGridBuilder::new()
                .max_out_degree(deg)
                .build_with_report(Point2::ORIGIN, &pts)
                .unwrap();
            tree.validate(Some(deg)).unwrap();
            assert!(
                report.delay < 1.25,
                "deg {deg}: cluster delay {}",
                report.delay
            );
        }
    }

    #[test]
    fn deterministic_given_same_input() {
        let pts = disk_points(500, 77);
        let t1 = PolarGridBuilder::new().build(Point2::ORIGIN, &pts).unwrap();
        let t2 = PolarGridBuilder::new().build(Point2::ORIGIN, &pts).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn builder_is_reusable_and_default() {
        let b = PolarGridBuilder::default();
        let pts = disk_points(50, 6);
        let _ = b.build(Point2::ORIGIN, &pts).unwrap();
        let _ = b.build(Point2::ORIGIN, &pts).unwrap();
    }
}
